//! Movie night: the paper's case-study scenario as a runnable program.
//!
//! A viewer binges classic dramas, then drifts toward action/sci-fi — the
//! situation Figure 9 of the paper illustrates. We train three recommenders
//! and show how each continues the story:
//!
//! * the raw language model anchors on title semantics alone;
//! * SASRec follows the sequential pattern it learned from ids;
//! * DELRec combines both via distilled soft prompts.
//!
//! ```sh
//! cargo run --release --example movie_night
//! ```

use delrec::core::baselines::ZeroShotLm;
use delrec::core::{
    build_teacher, pretrained_lm, DelRec, DelRecConfig, LmPreset, Pipeline, TeacherKind,
};
use delrec::data::synthetic::{DatasetProfile, SyntheticConfig};
use delrec::data::{ItemId, Split};
use delrec::lm::PretrainConfig;

fn main() {
    let data = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
        .scaled(0.15)
        .generate(7);
    let catalog = &data.catalog;
    let pipeline = Pipeline::build(&data);
    let lm = pretrained_lm(
        &data,
        &pipeline,
        LmPreset::Xl,
        &PretrainConfig {
            epochs: 6,
            lr: 5e-3,
            ..Default::default()
        },
        7,
    );
    let teacher = build_teacher(&data, TeacherKind::SASRec, 8, None, 7);

    // Find a genre-drifting viewer in the test split.
    let genre_of = |i: ItemId| catalog.get(i).genre;
    let story = data
        .examples(Split::Test)
        .iter()
        .filter(|e| e.prefix.len() >= 6)
        .find(|e| {
            let gs: Vec<usize> = e.prefix.iter().map(|&i| genre_of(i)).collect();
            gs[gs.len() - 1] != gs[0] && gs[gs.len() - 2] == gs[gs.len() - 1]
        })
        .expect("a drifting viewer exists")
        .clone();

    println!("## The viewer's history\n");
    for &m in &story.prefix {
        println!(
            "  • {} — {}",
            catalog.title(m),
            catalog.genres()[genre_of(m)]
        );
    }
    println!(
        "\n(they actually watched next: {} — {})\n",
        catalog.title(story.target),
        catalog.genres()[genre_of(story.target)]
    );

    // Three recommenders.
    let zero_shot = ZeroShotLm::new(
        "lm",
        lm.clone(),
        pipeline.vocab.clone(),
        pipeline.items.clone(),
    );
    let cfg = DelRecConfig::small(TeacherKind::SASRec).with_alpha_for(&data.name);
    let delrec = DelRec::fit(&data, &pipeline, teacher.as_ref(), lm, &cfg);

    let all: Vec<ItemId> = catalog.ids().collect();
    let show = |name: &str, scores: Vec<f32>| {
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
        println!("{name} suggests:");
        for &i in idx.iter().take(3) {
            let id = ItemId(i as u32);
            println!(
                "  → {} — {}",
                catalog.title(id),
                catalog.genres()[genre_of(id)]
            );
        }
        let rank = idx
            .iter()
            .position(|&i| i as u32 == story.target.0)
            .unwrap()
            + 1;
        println!("  (their actual next pick ranked #{rank})\n");
    };

    show(
        "The raw language model",
        delrec::eval::score_candidates_chunked(&zero_shot, &story.prefix, &all, 14),
    );
    show("SASRec", {
        let s = teacher.scores(&story.prefix);
        all.iter().map(|c| s[c.index()]).collect()
    });
    show(
        "DELRec",
        delrec::eval::score_candidates_chunked(&delrec, &story.prefix, &all, 14),
    );
}
