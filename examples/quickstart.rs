//! Quickstart: train DELRec end to end on a small synthetic MovieLens-like
//! dataset and evaluate it with the paper's 15-candidate protocol.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use delrec::core::{
    build_teacher, pretrained_lm, DelRec, DelRecConfig, LmPreset, Pipeline, TeacherKind,
};
use delrec::data::synthetic::{DatasetProfile, SyntheticConfig};
use delrec::data::Split;
use delrec::eval::{evaluate, EvalConfig};
use delrec::lm::PretrainConfig;

fn main() {
    // 1. A dataset: synthetic stand-in for MovieLens-100K (titles + genres +
    //    sequential structure + preference drift).
    let data = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
        .scaled(0.15)
        .generate(42);
    let stats = data.stats();
    println!(
        "dataset: {} — {} users, {} items, {} interactions",
        data.name, stats.sequences, stats.items, stats.interactions
    );

    // 2. Shared plumbing: vocabulary, tokenized titles, a pretrained MiniLM
    //    (the Flan-T5 stand-in), and a trained SASRec teacher.
    let pipeline = Pipeline::build(&data);
    println!("pretraining the language model on the world-knowledge corpus …");
    let lm = pretrained_lm(
        &data,
        &pipeline,
        LmPreset::Xl,
        &PretrainConfig {
            epochs: 6,
            lr: 5e-3,
            ..Default::default()
        },
        42,
    );
    println!("training the SASRec teacher …");
    let teacher = build_teacher(&data, TeacherKind::SASRec, 8, None, 42);

    // 3. DELRec: Stage 1 distills the teacher's pattern into soft prompts;
    //    Stage 2 fine-tunes the LM on ground truth with the prompts frozen.
    println!("fitting DELRec (Stage 1: distillation, Stage 2: fine-tuning) …");
    let cfg = DelRecConfig::small(TeacherKind::SASRec).with_alpha_for(&data.name);
    let model = DelRec::fit(&data, &pipeline, teacher.as_ref(), lm, &cfg);
    println!("stage 1 λ per epoch: {:?}", model.stage1_stats.lambdas);
    println!("stage 2 loss per epoch: {:?}", model.stage2_losses);

    // 4. Evaluate with the paper's protocol: rank 15 candidates (ground
    //    truth + 14 random) for each test example.
    let report = evaluate(
        &model,
        &data,
        Split::Test,
        &EvalConfig {
            max_examples: Some(150),
            ..Default::default()
        },
    );
    println!("\nDELRec (SASRec backbone) on the test split:");
    println!("  HR@1    = {:.4}", report.hr(1));
    println!("  HR@5    = {:.4}", report.hr(5));
    println!("  NDCG@5  = {:.4}", report.ndcg(5));
    println!("  HR@10   = {:.4}", report.hr(10));
    println!("  NDCG@10 = {:.4}", report.ndcg(10));
}
