//! Bring your own data: load a real interaction log from the simple TSV
//! format (`user \t item \t timestamp \t title…`) and run the full pipeline
//! on it. This example writes a small sample log to a temp file to stay
//! self-contained — point `load_tsv_file` at your own export instead.
//!
//! ```sh
//! cargo run --release --example real_data
//! ```

use delrec::core::{
    build_teacher, pretrained_lm, DelRec, DelRecConfig, LmPreset, Pipeline, TeacherKind,
};
use delrec::data::io::load_tsv_file;
use delrec::data::Split;
use delrec::eval::{evaluate, EvalConfig};
use delrec::lm::PretrainConfig;
use std::io::Write as _;

fn main() -> std::io::Result<()> {
    // A miniature watch log: 30 users cycling through 20 titled movies.
    // Replace this block with your own TSV export.
    let path = std::env::temp_dir().join("delrec_example_log.tsv");
    {
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "# user\titem\tts\ttitle")?;
        let titles = [
            "midnight harbor",
            "silver canyon",
            "iron resolve",
            "paper moons",
            "static bloom",
            "lantern hill",
            "copper sky",
            "quiet engine",
            "glass orchard",
            "ember field",
            "north signal",
            "velvet rail",
            "hollow crown",
            "sable coast",
            "briar gate",
            "plain thunder",
            "garnet row",
            "winter market",
            "salt meridian",
            "cedar line",
        ];
        for user in 0..30 {
            for step in 0..12 {
                // Users walk the catalog with a personal stride — a simple
                // but learnable sequential pattern.
                let item = (user * 3 + step * (1 + user % 3)) % titles.len();
                writeln!(
                    f,
                    "u{user}\tm{item}\t{}\t{}",
                    user * 1000 + step,
                    titles[item]
                )?;
            }
        }
    }

    let data = load_tsv_file("my-watch-log", &path, 9)?;
    let stats = data.stats();
    println!(
        "loaded {}: {} users, {} items, {} interactions ({:.1}% sparse)",
        data.name,
        stats.sequences,
        stats.items,
        stats.interactions,
        stats.sparsity * 100.0
    );

    let pipeline = Pipeline::build(&data);
    let lm = pretrained_lm(
        &data,
        &pipeline,
        LmPreset::Xl,
        &PretrainConfig {
            epochs: 4,
            lr: 5e-3,
            ..Default::default()
        },
        1,
    );
    let teacher = build_teacher(&data, TeacherKind::SASRec, 6, None, 1);
    let cfg = DelRecConfig::small(TeacherKind::SASRec);
    let model = DelRec::fit(&data, &pipeline, teacher.as_ref(), lm, &cfg);

    let report = evaluate(
        &model,
        &data,
        Split::Test,
        &EvalConfig {
            m: 10, // small catalog → smaller candidate sets
            ..Default::default()
        },
    );
    println!(
        "DELRec on your log: HR@1 {:.3}, HR@5 {:.3}, NDCG@10 {:.3}",
        report.hr(1),
        report.hr(5),
        report.ndcg(10)
    );

    // Peek inside one decision (interpretability hook).
    let ex = &data.examples(Split::Test)[0];
    let cands: Vec<_> = data.catalog.ids().take(5).collect();
    println!("\nwhy candidate #0 scored what it did:");
    for (word, logp) in model.explain(&ex.prefix, &cands, 0) {
        println!("  {word:<12} {logp:+.3}");
    }
    std::fs::remove_file(&path).ok();
    Ok(())
}
