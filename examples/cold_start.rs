//! Cold start (paper §V-F): how well do recommenders serve users with fewer
//! than 3 prior interactions? DELRec's answer is that world knowledge from
//! pretraining plus distilled patterns keep it useful when the conventional
//! model has almost nothing to go on.
//!
//! ```sh
//! cargo run --release --example cold_start
//! ```

use delrec::core::{
    build_teacher, pretrained_lm, DelRec, DelRecConfig, LmPreset, Pipeline, TeacherKind,
};
use delrec::data::synthetic::{DatasetProfile, SyntheticConfig};
use delrec::data::ItemId;
use delrec::eval::runner::evaluate_examples;
use delrec::eval::{EvalConfig, FnRanker, Ranker};
use delrec::lm::PretrainConfig;

fn main() {
    let data = SyntheticConfig::profile(DatasetProfile::HomeKitchen)
        .scaled(0.15)
        .generate(3);
    let cold = data.cold_start_examples(3);
    println!(
        "dataset: {} — {} cold-start test examples (prefix < 3)",
        data.name,
        cold.len()
    );
    if cold.is_empty() {
        println!("no cold-start examples at this scale; increase the dataset scale");
        return;
    }
    let eval_cfg = EvalConfig::default();

    let teacher = build_teacher(&data, TeacherKind::SASRec, 8, None, 3);
    let sasrec_ranker = FnRanker::new("sasrec", |prefix: &[ItemId], cands: &[ItemId]| {
        let all = teacher.scores(prefix);
        cands.iter().map(|c| all[c.index()]).collect()
    });
    let rep = evaluate_examples(&sasrec_ranker, &cold, data.num_items(), &eval_cfg);
    println!(
        "SASRec   cold-start: HR@1 {:.4}  HR@5 {:.4}  NDCG@10 {:.4}",
        rep.hr(1),
        rep.hr(5),
        rep.ndcg(10)
    );

    let pipeline = Pipeline::build(&data);
    let lm = pretrained_lm(
        &data,
        &pipeline,
        LmPreset::Xl,
        &PretrainConfig {
            epochs: 6,
            lr: 5e-3,
            ..Default::default()
        },
        3,
    );
    let cfg = DelRecConfig::small(TeacherKind::SASRec).with_alpha_for(&data.name);
    let model = DelRec::fit(&data, &pipeline, teacher.as_ref(), lm, &cfg);
    let rep = evaluate_examples(&model, &cold, data.num_items(), &eval_cfg);
    println!(
        "DELRec   cold-start: HR@1 {:.4}  HR@5 {:.4}  NDCG@10 {:.4}",
        rep.hr(1),
        rep.hr(5),
        rep.ndcg(10)
    );
    println!("\n(model name: {})", model.name());
}
