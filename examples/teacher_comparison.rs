//! Teacher comparison: train all three conventional backbones (Caser,
//! GRU4Rec, SASRec) plus the counting baselines on a Steam-like dataset and
//! compare them under the paper's protocol — the "Conventional" block of
//! Table II in miniature, plus distillation on the strongest teacher.
//!
//! ```sh
//! cargo run --release --example teacher_comparison
//! ```

use delrec::core::{
    build_teacher, pretrained_lm, DelRec, DelRecConfig, LmPreset, Pipeline, TeacherKind,
};
use delrec::data::synthetic::{DatasetProfile, SyntheticConfig};
use delrec::data::{ItemId, Split};
use delrec::eval::{evaluate, EvalConfig, FnRanker};
use delrec::lm::PretrainConfig;
use delrec::seqrec::{MarkovRecommender, PopularityRecommender, SequentialRecommender};

fn main() {
    let data = SyntheticConfig::profile(DatasetProfile::Steam)
        .scaled(0.15)
        .generate(11);
    println!("dataset: {}\n", data.name);
    let eval_cfg = EvalConfig {
        max_examples: Some(150),
        ..Default::default()
    };

    let report_for = |name: &str, model: &dyn SequentialRecommender| {
        let ranker = FnRanker::new(name, |prefix: &[ItemId], cands: &[ItemId]| {
            let all = model.scores(prefix);
            cands.iter().map(|c| all[c.index()]).collect()
        });
        let rep = evaluate(&ranker, &data, Split::Test, &eval_cfg);
        println!(
            "{name:<12} HR@1 {:.4}  HR@5 {:.4}  NDCG@10 {:.4}",
            rep.hr(1),
            rep.hr(5),
            rep.ndcg(10)
        );
        rep.hr(1)
    };

    println!("## Counting baselines");
    let pop = PopularityRecommender::fit(&data);
    report_for("popularity", &pop);
    let markov = MarkovRecommender::fit(&data);
    report_for("markov", &markov);

    println!("\n## Conventional neural models (paper §V-A3 recipes)");
    let mut best: (f64, TeacherKind) = (f64::MIN, TeacherKind::SASRec);
    for kind in [
        TeacherKind::Caser,
        TeacherKind::GRU4Rec,
        TeacherKind::SASRec,
    ] {
        let teacher = build_teacher(&data, kind, 8, None, 11);
        let hr1 = report_for(kind.name(), teacher.as_ref());
        if hr1 > best.0 {
            best = (hr1, kind);
        }
    }

    println!("\n## DELRec on the strongest teacher ({})", best.1.name());
    let pipeline = Pipeline::build(&data);
    let lm = pretrained_lm(
        &data,
        &pipeline,
        LmPreset::Xl,
        &PretrainConfig {
            epochs: 6,
            lr: 5e-3,
            ..Default::default()
        },
        11,
    );
    let teacher = build_teacher(&data, best.1, 8, None, 11);
    let cfg = DelRecConfig::small(best.1).with_alpha_for(&data.name);
    let model = DelRec::fit(&data, &pipeline, teacher.as_ref(), lm, &cfg);
    let rep = evaluate(&model, &data, Split::Test, &eval_cfg);
    println!(
        "delrec       HR@1 {:.4}  HR@5 {:.4}  NDCG@10 {:.4}",
        rep.hr(1),
        rep.hr(5),
        rep.ndcg(10)
    );
}
