//! Serve recommendations over HTTP — the "real-time response capability" of
//! RQ5 (§V-F) as a runnable demo, with no web-framework dependency (plain
//! `std::net`).
//!
//! The example trains DELRec, starts a tiny single-threaded HTTP server on a
//! random local port, issues a request against itself, prints the JSON
//! response and latency, and exits. Run with `--listen` to keep serving:
//!
//! ```sh
//! cargo run --release --example serve            # self-demo, exits
//! cargo run --release --example serve -- --listen  # stays up; curl it
//! ```
//!
//! API: `GET /recommend/<user-index>` → `{"user":N,"items":[…]}`.

use delrec::core::{
    build_teacher, pretrained_lm, DelRec, DelRecConfig, LmPreset, Pipeline, TeacherKind,
};
use delrec::data::synthetic::{DatasetProfile, SyntheticConfig};
use delrec::data::{Dataset, ItemId};
use delrec::lm::PretrainConfig;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Instant;

fn main() {
    let listen_forever = std::env::args().any(|a| a == "--listen");

    eprintln!("training a small DELRec model …");
    let data = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
        .scaled(0.1)
        .generate(13);
    let pipeline = Pipeline::build(&data);
    let lm = pretrained_lm(
        &data,
        &pipeline,
        LmPreset::Xl,
        &PretrainConfig {
            epochs: 3,
            lr: 5e-3,
            ..Default::default()
        },
        13,
    );
    let teacher = build_teacher(&data, TeacherKind::SASRec, 4, Some(400), 13);
    let mut cfg = DelRecConfig::small(TeacherKind::SASRec);
    cfg.stage1.max_examples = Some(120);
    cfg.stage2.max_examples = Some(240);
    cfg.stage2.epochs = 3;
    let model = DelRec::fit(&data, &pipeline, teacher.as_ref(), lm, &cfg);

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    eprintln!("serving on http://{addr}/recommend/<user>");

    if listen_forever {
        for stream in listener.incoming().flatten() {
            handle(stream, &model, &data);
        }
        return;
    }

    // Self-demo: one request from a helper thread.
    let t = std::thread::spawn(move || {
        let mut conn = TcpStream::connect(addr).expect("connect");
        let started = Instant::now();
        write!(conn, "GET /recommend/0 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut reader = BufReader::new(conn);
        let mut body = String::new();
        let mut line = String::new();
        let mut in_body = false;
        while reader.read_line(&mut line).unwrap_or(0) > 0 {
            if in_body {
                body.push_str(&line);
                break;
            }
            if line.trim().is_empty() {
                in_body = true;
            }
            line.clear();
        }
        (body, started.elapsed())
    });
    if let Ok(stream) = listener.incoming().next().unwrap() {
        handle(stream, &model, &data);
    }
    let (body, latency) = t.join().unwrap();
    println!("response: {body}");
    println!(
        "round-trip latency: {:.1} ms",
        latency.as_secs_f64() * 1000.0
    );
}

/// Parse one request, write one response, close.
fn handle(stream: TcpStream, model: &DelRec, data: &Dataset) {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers.
    let mut line = String::new();
    while reader.read_line(&mut line).unwrap_or(0) > 0 && line.trim() != "" {
        line.clear();
    }
    let mut stream = reader.into_inner();
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let response = match path
        .strip_prefix("/recommend/")
        .and_then(|u| u.parse::<usize>().ok())
    {
        Some(user) if user < data.sequences.len() => {
            let history: Vec<ItemId> = data.sequences[user].items().collect();
            let candidates: Vec<ItemId> = data.catalog.ids().collect();
            let scores = delrec::eval::score_candidates_chunked(model, &history, &candidates, 14);
            let mut idx: Vec<usize> = (0..scores.len()).collect();
            idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
            let items: Vec<String> = idx
                .iter()
                .take(5)
                .map(|&i| format!("\"{}\"", data.catalog.title(ItemId(i as u32))))
                .collect();
            let body = format!("{{\"user\":{user},\"items\":[{}]}}\n", items.join(","));
            format!(
                "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
        }
        _ => {
            let body = "{\"error\":\"use /recommend/<user-index>\"}\n";
            format!(
                "HTTP/1.1 404 Not Found\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
        }
    };
    let _ = stream.write_all(response.as_bytes());
}
