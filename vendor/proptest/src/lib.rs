//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, range and `prop_oneof!`
//! strategies, `prop::collection::vec`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Deviations from upstream: failing cases are **not shrunk** (the panic
//! reports the sampled inputs instead), and case generation is a fixed
//! deterministic stream per test (seeded from the test's module path), so
//! failures reproduce exactly on re-run.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generator driving case sampling (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for one `(test, case)` pair — stable across runs.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_path.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A value generator. Unlike upstream there is no shrinking: `sample` draws
/// one case directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erase for heterogeneous unions ([`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Owned, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64 + 1;
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

/// Constant strategy (`Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between alternative strategies of one value type.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Union over the given alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "empty union strategy");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Size specification for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// `Vec` strategy: `len` elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Build a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a test module needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng, Union,
    };

    /// Namespaced strategy modules (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Run each test body against many sampled inputs.
///
/// Supported grammar (a subset of upstream):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0usize..10, v in prop::collection::vec(0f32..1.0, 3)) { … }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` with proptest's name (no shrink-aware error routing here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` with proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` with proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies (optionally trailing-comma'd).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_and_vecs(x in 2usize..9, v in prop::collection::vec(-1.0f32..1.0, 3..=5)) {
            prop_assert!((2..9).contains(&x));
            prop_assert!(v.len() >= 3 && v.len() <= 5);
            prop_assert!(v.iter().all(|f| (-1.0..1.0).contains(f)));
        }

        #[test]
        fn oneof_respects_branches(x in prop_oneof![(-2.0f32..-1.0), (1.0f32..2.0)]) {
            prop_assert!(!(-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 0);
        let mut c = TestRng::for_case("t", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
