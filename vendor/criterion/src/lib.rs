//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset this workspace uses: `Criterion::default()`,
//! `sample_size`, `bench_function` with `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros (the `name/config/targets`
//! form). Each benchmark runs a short warmup, then `sample_size` timed
//! samples, and reports min/median/mean iteration time to stdout.
//!
//! Deviations from upstream: no statistical outlier analysis, no HTML
//! reports, no baseline comparison — just wall-clock numbers, so benches
//! stay runnable without registry access.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, mirroring `criterion::black_box`.
pub use std::hint::black_box;

/// Benchmark harness: collects samples and prints a summary per benchmark.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (upstream default is 100; this
    /// shim defaults lower since there is no statistical analysis to feed).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run one benchmark: warmup, then `sample_size` timed samples of the
    /// closure handed to [`Bencher::iter`].
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        // Warmup: run until ~50ms elapsed so caches/branch predictors settle
        // and we can pick an iteration count that makes samples measurable.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warmup_start = Instant::now();
        let mut warmup_runs = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(50) {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            warmup_runs += 1;
            if bencher.elapsed > Duration::from_millis(200) {
                break;
            }
        }
        let per_iter = if warmup_runs > 0 {
            warmup_start.elapsed() / warmup_runs as u32
        } else {
            Duration::from_millis(1)
        };
        // Aim for samples of ~10ms each, capped to keep total time bounded.
        let target = Duration::from_millis(10);
        let iters = (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000) as u64;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed / iters as u32);
        }
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{id:<40} time: [min {:>12?}  median {:>12?}  mean {:>12?}]  ({} samples x {iters} iters)",
            min,
            median,
            mean,
            samples.len(),
        );
        self
    }

    /// Upstream calls this after all groups run; here it's a no-op.
    pub fn final_summary(&mut self) {}
}

/// Handed to each benchmark closure; times the routine under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it the harness-chosen number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Define a benchmark group. Supports both the plain form
/// `criterion_group!(benches, f1, f2)` and the configured form
/// `criterion_group!{name = benches; config = ...; targets = f1, f2}`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given benchmark groups in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("sum_small", |b| {
            b.iter(|| (0..64u64).map(black_box).sum::<u64>())
        });
    }

    #[test]
    fn harness_runs_to_completion() {
        let mut c = Criterion::default().sample_size(3);
        tiny_bench(&mut c);
    }
}
