//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! This workspace builds in environments with no crates.io access, so the
//! small slice of `rand` it actually uses is vendored here: [`rngs::StdRng`]
//! (a seedable, deterministic generator), the [`SeedableRng`] constructor
//! trait, and the [`Rng`] extension trait with `random`, `random_range`,
//! and `random_bool`.
//!
//! The generator is SplitMix64 — statistically strong enough for weight
//! initialization, dropout masks, shuffles, and bootstrap resampling (the
//! only uses in this workspace), and byte-for-byte reproducible across
//! platforms. It is **not** the upstream ChaCha12 `StdRng`, so streams
//! differ from real `rand`; all seeds in this repo are interpreted relative
//! to this implementation.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: sources of random `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` (the only constructor this workspace uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = state.to_le_bytes();
        for (i, b) in seed.as_mut().iter_mut().enumerate() {
            *b = bytes[i % 8] ^ (i as u8).wrapping_mul(0x9E);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from a generator's full output domain
/// (`rand`'s `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1) with full f32 mantissa coverage.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable uniformly (`rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Lemire multiply-shift: uniform-enough for span ≪ 2^64.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u128).wrapping_sub(lo as u128) as u64 + 1;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample over a type's full domain (floats: `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (SplitMix64; see crate docs for the
    /// deviation from upstream's ChaCha12).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u8; 8];
            s.copy_from_slice(&seed[..8]);
            let mut rng = StdRng {
                state: u64::from_le_bytes(s),
            };
            // Decorrelate adjacent integer seeds.
            rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_and_seed_sensitivity() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let (xa, xb, xc): (f32, f32, f32) = (a.random(), b.random(), c.random());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.random_range(0..=4u32);
            assert!(w <= 4);
            let f = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut a = StdRng::seed_from_u64(5);
        let _: u64 = a.random();
        let mut b = a.clone();
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }
}
