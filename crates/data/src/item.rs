//! Items: the recommendable units, carrying the textual titles that LLM-based
//! recommenders exploit and conventional ID-based models ignore.

/// Dense item identifier, valid within one [`crate::ItemCatalog`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ItemId(pub u32);

impl ItemId {
    /// Index into catalog-ordered arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A recommendable item.
///
/// Titles are stored as word lists (already normalized/lowercased) because
/// both the tokenizer and the title generator operate word-by-word.
#[derive(Clone, Debug, PartialEq)]
pub struct Item {
    /// Dense id, equal to the item's position in its catalog.
    pub id: ItemId,
    /// Title words, e.g. `["crimson", "starship", "saga"]`.
    pub title_words: Vec<String>,
    /// Genre index into the catalog's genre table. The genre is *latent*
    /// ground truth used by the synthetic generator and diagnostics; no model
    /// sees it directly (models see only ids and title text).
    pub genre: usize,
    /// Popularity weight used by the generator (Zipf-like).
    pub popularity: f32,
}

impl Item {
    /// Human-readable title (words joined by spaces).
    pub fn title(&self) -> String {
        self.title_words.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn title_joins_words() {
        let item = Item {
            id: ItemId(3),
            title_words: vec!["dark".into(), "empire".into()],
            genre: 1,
            popularity: 0.5,
        };
        assert_eq!(item.title(), "dark empire");
        assert_eq!(item.id.index(), 3);
    }
}
