//! Datasets: filtering, example extraction, and the chronological 8:1:1 split.

use crate::catalog::ItemCatalog;
use crate::interactions::UserSequence;
use crate::item::ItemId;
use std::collections::HashMap;

/// Which split an example belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Split {
    /// 80% earliest interactions.
    Train,
    /// Next 10%.
    Val,
    /// Latest 10%.
    Test,
}

/// One supervised next-item example: predict `target` from `prefix`.
#[derive(Clone, Debug, PartialEq)]
pub struct Example {
    /// Owning user.
    pub user: u32,
    /// Up to `max_prefix` most recent items before the target, chronological.
    pub prefix: Vec<ItemId>,
    /// The ground-truth next item.
    pub target: ItemId,
    /// Timestamp of the target interaction (split key).
    pub ts: u64,
}

/// Summary statistics in the shape of the paper's Table I.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStats {
    /// Number of user sequences after filtering.
    pub sequences: usize,
    /// Number of distinct items with at least one interaction.
    pub items: usize,
    /// Total interactions.
    pub interactions: usize,
    /// `1 − interactions / (sequences × items)`.
    pub sparsity: f64,
}

/// A fully-prepared sequential-recommendation dataset.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Dataset name (e.g. `"MovieLens-100K (synthetic)"`).
    pub name: String,
    /// All items with titles and genres.
    pub catalog: ItemCatalog,
    /// Filtered user sequences.
    pub sequences: Vec<UserSequence>,
    /// Maximum prefix length per example (the paper's `n − 1 = 9`).
    pub max_prefix: usize,
    train: Vec<Example>,
    val: Vec<Example>,
    test: Vec<Example>,
}

/// Minimum interactions per user *and* per item (paper §V-A1).
pub const MIN_INTERACTIONS: usize = 5;

impl Dataset {
    /// Assemble a dataset from raw sequences:
    ///
    /// 1. iteratively drop items and users with fewer than
    ///    [`MIN_INTERACTIONS`] interactions (to a fixpoint);
    /// 2. extract one example per non-initial position of every sequence
    ///    (prefix = up to `max_prefix` preceding items);
    /// 3. order all examples chronologically and split 8:1:1.
    pub fn build(
        name: impl Into<String>,
        catalog: ItemCatalog,
        sequences: Vec<UserSequence>,
        max_prefix: usize,
    ) -> Self {
        let sequences = filter_min_interactions(sequences, MIN_INTERACTIONS);
        let mut examples: Vec<Example> = Vec::new();
        for seq in &sequences {
            for t in 1..seq.len() {
                let start = t.saturating_sub(max_prefix);
                let prefix: Vec<ItemId> = seq.events[start..t].iter().map(|&(i, _)| i).collect();
                let (target, ts) = seq.events[t];
                examples.push(Example {
                    user: seq.user,
                    prefix,
                    target,
                    ts,
                });
            }
        }
        examples.sort_by_key(|e| (e.ts, e.user));
        let n = examples.len();
        let train_end = n * 8 / 10;
        let val_end = n * 9 / 10;
        let test = examples.split_off(val_end);
        let val = examples.split_off(train_end);
        Dataset {
            name: name.into(),
            catalog,
            sequences,
            max_prefix,
            train: examples,
            val,
            test,
        }
    }

    /// Examples of one split.
    pub fn examples(&self, split: Split) -> &[Example] {
        match split {
            Split::Train => &self.train,
            Split::Val => &self.val,
            Split::Test => &self.test,
        }
    }

    /// Number of items in the catalog (model vocabulary size).
    pub fn num_items(&self) -> usize {
        self.catalog.len()
    }

    /// Table-I statistics.
    pub fn stats(&self) -> DatasetStats {
        let mut item_seen = vec![false; self.catalog.len()];
        let mut interactions = 0usize;
        for seq in &self.sequences {
            interactions += seq.len();
            for item in seq.items() {
                item_seen[item.index()] = true;
            }
        }
        let items = item_seen.iter().filter(|&&s| s).count();
        let sequences = self.sequences.len();
        let denom = (sequences * items) as f64;
        let sparsity = if denom > 0.0 {
            1.0 - interactions as f64 / denom
        } else {
            0.0
        };
        DatasetStats {
            sequences,
            items,
            interactions,
            sparsity,
        }
    }

    /// Test examples whose prefix is shorter than `max_len` — the paper's
    /// cold-start slice (§V-F uses "fewer than 3 interactions").
    pub fn cold_start_examples(&self, max_len: usize) -> Vec<Example> {
        self.test
            .iter()
            .filter(|e| e.prefix.len() < max_len)
            .cloned()
            .collect()
    }
}

/// Iteratively remove items with < `min` interactions and users with < `min`
/// remaining interactions until both constraints hold.
fn filter_min_interactions(mut sequences: Vec<UserSequence>, min: usize) -> Vec<UserSequence> {
    loop {
        let mut item_counts: HashMap<ItemId, usize> = HashMap::new();
        for seq in &sequences {
            for item in seq.items() {
                *item_counts.entry(item).or_default() += 1;
            }
        }
        let mut changed = false;
        for seq in &mut sequences {
            let before = seq.len();
            seq.events.retain(|(item, _)| item_counts[item] >= min);
            changed |= seq.len() != before;
        }
        let before_users = sequences.len();
        sequences.retain(|s| s.len() >= min);
        changed |= sequences.len() != before_users;
        if !changed {
            return sequences;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;

    fn catalog(n: u32) -> ItemCatalog {
        let items = (0..n)
            .map(|i| Item {
                id: ItemId(i),
                title_words: vec![format!("item{i}")],
                genre: 0,
                popularity: 1.0,
            })
            .collect();
        ItemCatalog::new(items, vec!["g".into()])
    }

    fn seq(user: u32, items: &[u32]) -> UserSequence {
        UserSequence {
            user,
            events: items
                .iter()
                .enumerate()
                .map(|(t, &i)| (ItemId(i), t as u64))
                .collect(),
        }
    }

    #[test]
    fn short_users_are_filtered() {
        let sequences = vec![seq(0, &[0, 1, 0, 1, 0, 1, 0, 1, 0, 1]), seq(1, &[0, 1])];
        let ds = Dataset::build("t", catalog(5), sequences, 9);
        assert_eq!(ds.sequences.len(), 1);
    }

    #[test]
    fn rare_items_are_filtered_then_users_rechecked() {
        // Item 9 appears once; dropping it shortens user 1 below 5 events.
        let sequences = vec![
            seq(0, &[0, 1, 0, 1, 0, 1]),
            seq(1, &[0, 1, 0, 1, 9]),
            seq(2, &[0, 1, 0, 1, 0]),
        ];
        let ds = Dataset::build("t", catalog(10), sequences, 9);
        assert_eq!(
            ds.sequences.len(),
            2,
            "user 1 must fall out after item 9 is dropped"
        );
        assert!(ds.sequences.iter().all(|s| s.items().all(|i| i.0 != 9)));
    }

    #[test]
    fn split_is_chronological_and_8_1_1() {
        // One long user: 21 events → 20 examples → 16/2/2.
        let items: Vec<u32> = (0..21).map(|i| i % 3).collect();
        let ds = Dataset::build("t", catalog(5), vec![seq(0, &items)], 9);
        assert_eq!(ds.examples(Split::Train).len(), 16);
        assert_eq!(ds.examples(Split::Val).len(), 2);
        assert_eq!(ds.examples(Split::Test).len(), 2);
        let max_train = ds
            .examples(Split::Train)
            .iter()
            .map(|e| e.ts)
            .max()
            .unwrap();
        let min_test = ds.examples(Split::Test).iter().map(|e| e.ts).min().unwrap();
        assert!(max_train < min_test, "no leakage: train precedes test");
    }

    #[test]
    fn prefixes_are_capped_and_causal() {
        let items: Vec<u32> = (0..30).map(|i| i % 5).collect();
        let ds = Dataset::build("t", catalog(5), vec![seq(0, &items)], 9);
        for split in [Split::Train, Split::Val, Split::Test] {
            for e in ds.examples(split) {
                assert!(e.prefix.len() <= 9);
                assert!(!e.prefix.is_empty());
            }
        }
    }

    #[test]
    fn stats_count_correctly() {
        // 5 users × the same 5 items: every count is exactly 5; density 1.
        let sequences = (0..5).map(|u| seq(u, &[0, 1, 2, 3, 4])).collect();
        let ds = Dataset::build("t", catalog(5), sequences, 9);
        let st = ds.stats();
        assert_eq!(st.sequences, 5);
        assert_eq!(st.items, 5);
        assert_eq!(st.interactions, 25);
        assert!(st.sparsity.abs() < 1e-9, "fully dense ⇒ sparsity 0");
    }

    #[test]
    fn cold_start_selects_short_prefixes() {
        // All examples here have long prefixes except none — craft a user
        // whose early interactions land in the test split is hard with one
        // user, so check the filter logic directly.
        let items: Vec<u32> = (0..30).map(|i| i % 5).collect();
        let ds = Dataset::build("t", catalog(5), vec![seq(0, &items)], 9);
        let cold = ds.cold_start_examples(3);
        assert!(cold.iter().all(|e| e.prefix.len() < 3));
    }
}
