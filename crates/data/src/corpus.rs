//! The synthetic "world-knowledge" corpus.
//!
//! A real LLM arrives knowing what item titles mean (that *Aliens* is sci-fi,
//! that two serums are similar products). Our MiniLM substitute earns the
//! same knowledge by masked-language-model pretraining on this corpus, which
//! states title ↔ genre facts and within-genre co-preferences — exactly the
//! semantic signal DELRec's LLM contributes on top of the teacher's
//! sequential pattern. Deliberately, the corpus says *nothing* about
//! sequential transitions: that knowledge only enters via distillation.

use crate::catalog::ItemCatalog;
use crate::vocab::Vocab;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Function words used by corpus sentences.
pub const TEMPLATE_WORDS: &[&str] = &[
    "is", "a", "the", "fans", "of", "also", "like", "enjoy", "people", "who", "and", "item",
    "this", "belongs", "to", "genre", "similar", "another", "popular",
];

/// Instruction words used by the DELRec prompt templates (Figures 4–6); kept
/// here so the single shared vocabulary covers prompts, titles, and corpus.
pub const PROMPT_WORDS: &[&str] = &[
    "given",
    "user",
    "interaction",
    "history",
    "sequence",
    "candidates",
    "candidate",
    "predict",
    "next",
    "recommend",
    "recommendation",
    "recommends",
    "most",
    "recent",
    "model",
    "conventional",
    "results",
    "reference",
    "auxiliary",
    "watched",
    "then",
    "will",
    "choose",
    "from",
    "top",
    "items",
    "analyze",
    "temporal",
    "order",
    "example",
    "answer",
    "question",
    "pattern",
    "sasrec",
    "gru4rec",
    "caser",
    "bert4rec",
    "kda",
    "popularity",
    "markov",
    "simulate",
    "as",
    "by",
    "list",
    "for",
    "based",
    "on",
    "with",
    "following",
    "their",
];

/// Build the shared vocabulary covering specials, prompt words, template
/// words, genre names, and every title word in the catalog.
pub fn build_vocab(catalog: &ItemCatalog) -> Vocab {
    let mut words: Vec<String> = Vec::new();
    words.extend(PROMPT_WORDS.iter().map(|s| s.to_string()));
    words.extend(TEMPLATE_WORDS.iter().map(|s| s.to_string()));
    words.extend(catalog.genres().iter().cloned());
    for item in catalog.items() {
        words.extend(item.title_words.iter().cloned());
    }
    Vocab::build(words)
}

/// Generate the pretraining corpus: `per_item` sentences per catalog item,
/// as token-id sequences under `vocab`. Deterministic in `seed`.
pub fn build_corpus(
    catalog: &ItemCatalog,
    vocab: &Vocab,
    per_item: usize,
    seed: u64,
) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Pre-bucket items by genre for co-preference sentences.
    let mut by_genre: Vec<Vec<usize>> = vec![Vec::new(); catalog.genres().len()];
    for (i, item) in catalog.items().iter().enumerate() {
        by_genre[item.genre].push(i);
    }
    let mut corpus = Vec::with_capacity(catalog.len() * per_item);
    for (i, item) in catalog.items().iter().enumerate() {
        let genre_name = &catalog.genres()[item.genre];
        for s in 0..per_item {
            let sentence: String = match s % 3 {
                // "TITLE is a GENRE item"
                0 => format!("{} is a {} item", item.title(), genre_name),
                // "fans of TITLE also like TITLE2" (same genre)
                1 => {
                    let peers = &by_genre[item.genre];
                    let peer = peers[rng.random_range(0..peers.len())];
                    let peer = if peers.len() > 1 && peer == i {
                        peers[(peers.iter().position(|&p| p == i).unwrap() + 1) % peers.len()]
                    } else {
                        peer
                    };
                    format!(
                        "fans of {} also like {}",
                        item.title(),
                        catalog.items()[peer].title()
                    )
                }
                // "this GENRE item is the TITLE"
                _ => format!("this {} item is the {}", genre_name, item.title()),
            };
            corpus.push(vocab.encode(&sentence));
        }
    }
    corpus
}

/// Pack sentences into documents of ≈ `target_len` tokens separated by
/// `[sep]`, shuffling sentence order. Prompt inputs are ~10× longer than a
/// single corpus sentence; packing ensures *every* position embedding the
/// prompts will use is trained during MLM pretraining.
pub fn pack_corpus(
    sentences: &[Vec<u32>],
    vocab: &Vocab,
    target_len: usize,
    seed: u64,
) -> Vec<Vec<u32>> {
    assert!(target_len >= 8, "target_len too small to pack");
    let mut order: Vec<usize> = (0..sentences.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let mut docs = Vec::new();
    let mut doc: Vec<u32> = Vec::with_capacity(target_len);
    for &si in &order {
        let sent = &sentences[si];
        if !doc.is_empty() && doc.len() + sent.len() + 1 > target_len {
            docs.push(std::mem::take(&mut doc));
        }
        if !doc.is_empty() {
            doc.push(vocab.sep());
        }
        doc.extend_from_slice(sent);
    }
    if !doc.is_empty() {
        docs.push(doc);
    }
    docs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{DatasetProfile, SyntheticConfig};

    fn tiny_catalog() -> ItemCatalog {
        SyntheticConfig::profile(DatasetProfile::MovieLens100K)
            .scaled(0.1)
            .generate(1)
            .catalog
    }

    #[test]
    fn vocab_covers_all_title_words() {
        let catalog = tiny_catalog();
        let vocab = build_vocab(&catalog);
        for item in catalog.items() {
            for w in &item.title_words {
                assert!(vocab.id_strict(w).is_some(), "missing title word {w:?}");
            }
        }
        for g in catalog.genres() {
            assert!(vocab.id_strict(g).is_some(), "missing genre {g:?}");
        }
    }

    #[test]
    fn corpus_has_no_unk_tokens() {
        let catalog = tiny_catalog();
        let vocab = build_vocab(&catalog);
        let corpus = build_corpus(&catalog, &vocab, 3, 9);
        assert_eq!(corpus.len(), catalog.len() * 3);
        for sent in &corpus {
            assert!(
                !sent.iter().any(|&t| t == vocab.unk()),
                "corpus contains [unk]"
            );
            assert!(sent.len() >= 4);
        }
    }

    #[test]
    fn co_preference_sentences_pair_same_genre_items() {
        let catalog = tiny_catalog();
        let vocab = build_vocab(&catalog);
        let corpus = build_corpus(&catalog, &vocab, 3, 9);
        // Sentence layout: item i's sentences are at [3i, 3i+3); index 3i+1
        // is the "fans of A also like B" form.
        let fans = vocab.id("fans");
        for (i, item) in catalog.items().iter().enumerate().take(20) {
            let sent = &corpus[3 * i + 1];
            assert_eq!(sent[0], fans);
            // Decode and find the second title: it must share the genre.
            let text = vocab.decode(sent);
            let tail = text.split(" also like ").nth(1).unwrap();
            let peer = catalog
                .items()
                .iter()
                .find(|p| p.title() == tail)
                .unwrap_or_else(|| panic!("unknown peer title {tail:?}"));
            assert_eq!(peer.genre, item.genre);
        }
    }

    #[test]
    fn packing_respects_target_length_and_keeps_all_tokens() {
        let catalog = tiny_catalog();
        let vocab = build_vocab(&catalog);
        let corpus = build_corpus(&catalog, &vocab, 3, 9);
        let docs = pack_corpus(&corpus, &vocab, 120, 1);
        assert!(docs.iter().all(|d| d.len() <= 120));
        // Long docs dominate: most docs should be near the target.
        let near = docs.iter().filter(|d| d.len() > 90).count();
        assert!(near * 2 >= docs.len(), "packing leaves docs too short");
        // Token conservation (content tokens; separators added).
        let content_before: usize = corpus.iter().map(Vec::len).sum();
        let sep = vocab.sep();
        let content_after: usize = docs
            .iter()
            .map(|d| d.iter().filter(|&&t| t != sep).count())
            .sum();
        assert_eq!(content_before, content_after);
    }

    #[test]
    fn corpus_is_deterministic() {
        let catalog = tiny_catalog();
        let vocab = build_vocab(&catalog);
        assert_eq!(
            build_corpus(&catalog, &vocab, 2, 5),
            build_corpus(&catalog, &vocab, 2, 5)
        );
    }
}
