//! Dataset substrate for the DELRec reproduction.
//!
//! Provides the sequential-recommendation data model (items with textual
//! titles, user interaction sequences, chronological splits, candidate-set
//! sampling), the synthetic dataset generator with profiles calibrated to the
//! paper's five benchmarks, and the synthetic "world-knowledge" corpus used
//! to pretrain the MiniLM language model.
//!
//! The paper's protocol (§V-A1) is implemented exactly:
//!
//! * implicit feedback, ordered by timestamp;
//! * users/items with fewer than 5 interactions filtered out;
//! * chronological 8:1:1 train/validation/test split (no leakage);
//! * prediction examples use the latest `n = 10` interactions (padded) and a
//!   candidate set of `m = 15` items (1 positive + 14 random).

#![warn(missing_docs)]

pub mod catalog;
pub mod corpus;
pub mod dataset;
pub mod interactions;
pub mod io;
pub mod item;
pub mod sampling;
pub mod synthetic;
pub mod vocab;

pub use catalog::ItemCatalog;
pub use dataset::{Dataset, DatasetStats, Example, Split};
pub use interactions::{Interaction, UserSequence};
pub use item::{Item, ItemId};
pub use sampling::CandidateSampler;
pub use vocab::Vocab;
