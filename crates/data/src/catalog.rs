//! The item catalog: all items of one dataset plus its genre table.

use crate::item::{Item, ItemId};

/// Immutable collection of a dataset's items.
#[derive(Clone, Debug, Default)]
pub struct ItemCatalog {
    items: Vec<Item>,
    genres: Vec<String>,
}

impl ItemCatalog {
    /// Build a catalog; item ids must equal their positions.
    pub fn new(items: Vec<Item>, genres: Vec<String>) -> Self {
        for (i, item) in items.iter().enumerate() {
            assert_eq!(
                item.id.index(),
                i,
                "item id {:?} does not match its catalog position {i}",
                item.id
            );
            assert!(
                item.genre < genres.len(),
                "item {i} references unknown genre {}",
                item.genre
            );
        }
        ItemCatalog { items, genres }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the catalog has no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Item by id.
    pub fn get(&self, id: ItemId) -> &Item {
        &self.items[id.index()]
    }

    /// All items in id order.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Genre names.
    pub fn genres(&self) -> &[String] {
        &self.genres
    }

    /// Title of an item (convenience).
    pub fn title(&self, id: ItemId) -> String {
        self.get(id).title()
    }

    /// Iterate over all item ids.
    pub fn ids(&self) -> impl Iterator<Item = ItemId> + '_ {
        (0..self.items.len() as u32).map(ItemId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(i: u32, genre: usize) -> Item {
        Item {
            id: ItemId(i),
            title_words: vec![format!("item{i}")],
            genre,
            popularity: 1.0,
        }
    }

    #[test]
    fn catalog_roundtrip() {
        let c = ItemCatalog::new(vec![item(0, 0), item(1, 1)], vec!["a".into(), "b".into()]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.title(ItemId(1)), "item1");
        assert_eq!(c.ids().count(), 2);
    }

    #[test]
    #[should_panic(expected = "does not match its catalog position")]
    fn misnumbered_items_panic() {
        ItemCatalog::new(vec![item(1, 0)], vec!["a".into()]);
    }

    #[test]
    #[should_panic(expected = "unknown genre")]
    fn unknown_genre_panics() {
        ItemCatalog::new(vec![item(0, 5)], vec!["a".into()]);
    }
}
