//! Loading real interaction logs.
//!
//! The reproduction runs on synthetic data, but the library is usable with
//! real datasets (MovieLens, Amazon review dumps, …) exported to a simple
//! tab-separated format:
//!
//! ```text
//! # user <TAB> item_key <TAB> timestamp <TAB> title words…
//! 196\t242\t881250949\tkolya 1996
//! 186\t302\t891717742\tl.a. confidential 1997
//! ```
//!
//! * `user` — any string; users are indexed in order of first appearance.
//! * `item_key` — any string; items are indexed in order of first appearance.
//! * `timestamp` — integer; orders each user's interactions.
//! * `title words…` — the rest of the line, whitespace-split and lowercased.
//!   The first line seen for an item fixes its title.
//!
//! Genres are unknown for real data, so every item gets the single genre
//! `"unknown"` — genre is only consumed by the synthetic generator and
//! diagnostics, never by models.

use crate::catalog::ItemCatalog;
use crate::dataset::Dataset;
use crate::interactions::{group_by_user, Interaction};
use crate::item::{Item, ItemId};
use std::collections::HashMap;
use std::io::{self, BufRead};

/// Parse the TSV format from any reader and assemble a [`Dataset`]
/// (min-5 filtering and the chronological 8:1:1 split included).
pub fn load_tsv<R: BufRead>(name: &str, reader: R, max_prefix: usize) -> io::Result<Dataset> {
    let mut users: HashMap<String, u32> = HashMap::new();
    let mut items: HashMap<String, ItemId> = HashMap::new();
    let mut catalog_items: Vec<Item> = Vec::new();
    let mut interactions: Vec<Interaction> = Vec::new();

    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(4, '\t');
        let (user_key, item_key, ts, title) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(u), Some(i), Some(t), Some(title)) => (u, i, t, title),
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("line {}: expected 4 tab-separated fields", line_no + 1),
                    ))
                }
            };
        let ts: u64 = ts.parse().map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: bad timestamp {ts:?}", line_no + 1),
            )
        })?;
        let next_user = users.len() as u32;
        let user = *users.entry(user_key.to_string()).or_insert(next_user);
        let item = *items.entry(item_key.to_string()).or_insert_with(|| {
            let id = ItemId(catalog_items.len() as u32);
            let title_words: Vec<String> =
                title.split_whitespace().map(|w| w.to_lowercase()).collect();
            catalog_items.push(Item {
                id,
                title_words: if title_words.is_empty() {
                    vec![format!("item{}", id.0)]
                } else {
                    title_words
                },
                genre: 0,
                popularity: 1.0,
            });
            id
        });
        interactions.push(Interaction { user, item, ts });
    }
    if catalog_items.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "no interactions found",
        ));
    }
    let catalog = ItemCatalog::new(catalog_items, vec!["unknown".to_string()]);
    let sequences = group_by_user(&interactions);
    Ok(Dataset::build(name, catalog, sequences, max_prefix))
}

/// Convenience: [`load_tsv`] from a file path.
pub fn load_tsv_file(name: &str, path: &std::path::Path, max_prefix: usize) -> io::Result<Dataset> {
    let file = std::fs::File::open(path)?;
    load_tsv(name, io::BufReader::new(file), max_prefix)
}

/// Export a dataset's interactions in the TSV format [`load_tsv`] reads —
/// lets a synthetic dataset be inspected, versioned, or consumed by other
/// tooling, and makes generation externally reproducible.
pub fn save_tsv<W: io::Write>(dataset: &Dataset, w: &mut W) -> io::Result<()> {
    writeln!(
        w,
        "# user\titem\ttimestamp\ttitle (exported from {})",
        dataset.name
    )?;
    for seq in &dataset.sequences {
        for &(item, ts) in &seq.events {
            writeln!(
                w,
                "u{}\ti{}\t{ts}\t{}",
                seq.user,
                item.0,
                dataset.catalog.title(item)
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Split;

    fn sample_tsv() -> String {
        // Two users, five items, each item appearing ≥ 5 times so the
        // min-interaction filter keeps everything.
        let mut s = String::from("# comment line\n");
        for rep in 0..5 {
            for (u, base) in [("alice", 0u64), ("bob", 100)] {
                for item in 0..5 {
                    s.push_str(&format!(
                        "{u}\tI{item}\t{}\tfancy item {item}\n",
                        base + rep * 10 + item
                    ));
                }
            }
        }
        s
    }

    #[test]
    fn loads_and_splits() {
        let ds = load_tsv("real", sample_tsv().as_bytes(), 9).unwrap();
        assert_eq!(ds.name, "real");
        assert_eq!(ds.sequences.len(), 2);
        assert_eq!(ds.num_items(), 5);
        let stats = ds.stats();
        assert_eq!(stats.interactions, 50);
        assert!(!ds.examples(Split::Train).is_empty());
        assert!(!ds.examples(Split::Test).is_empty());
    }

    #[test]
    fn titles_are_lowercased_word_lists() {
        let ds = load_tsv("real", sample_tsv().as_bytes(), 9).unwrap();
        let title = ds.catalog.title(ItemId(0));
        assert_eq!(title, "fancy item 0");
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = load_tsv("bad", "only\ttwo\n".as_bytes(), 9).unwrap_err();
        assert!(err.to_string().contains("4 tab-separated fields"));
        let err = load_tsv("bad", "u\ti\tnotatime\ttitle\n".as_bytes(), 9).unwrap_err();
        assert!(err.to_string().contains("bad timestamp"));
        assert!(load_tsv("empty", "".as_bytes(), 9).is_err());
    }

    #[test]
    fn synthetic_dataset_roundtrips_through_tsv() {
        use crate::synthetic::{DatasetProfile, SyntheticConfig};
        let original = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
            .scaled(0.06)
            .generate(9);
        let mut buf = Vec::new();
        save_tsv(&original, &mut buf).unwrap();
        let reloaded = load_tsv("roundtrip", buf.as_slice(), original.max_prefix).unwrap();
        // Same interaction structure (item ids may be renumbered by
        // first-appearance order, so compare counts and sparsity).
        let (a, b) = (original.stats(), reloaded.stats());
        assert_eq!(a.sequences, b.sequences);
        assert_eq!(a.items, b.items);
        assert_eq!(a.interactions, b.interactions);
        assert!((a.sparsity - b.sparsity).abs() < 1e-9);
        // Titles of interacted items survive verbatim (the export only
        // contains interactions, so never-interacted catalog items drop out).
        let mut orig_titles: Vec<String> = original
            .sequences
            .iter()
            .flat_map(|s| s.items())
            .map(|i| original.catalog.title(i))
            .collect();
        let mut new_titles: Vec<String> = reloaded
            .sequences
            .iter()
            .flat_map(|s| s.items())
            .map(|i| reloaded.catalog.title(i))
            .collect();
        orig_titles.sort();
        new_titles.sort();
        assert_eq!(orig_titles, new_titles);
    }

    #[test]
    fn first_title_wins() {
        let tsv =
            "u\tI0\t1\tfirst name\nu\tI0\t2\tsecond name\nu\tI0\t3\tx\nu\tI0\t4\tx\nu\tI0\t5\tx\n";
        let ds = load_tsv("t", tsv.as_bytes(), 9).unwrap();
        assert_eq!(ds.catalog.title(ItemId(0)), "first name");
    }
}
