//! User–item interactions and per-user chronological sequences.

use crate::item::ItemId;

/// One implicit-feedback event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interaction {
    /// User index.
    pub user: u32,
    /// Item interacted with.
    pub item: ItemId,
    /// Logical timestamp; interactions are ordered by it.
    pub ts: u64,
}

/// A user's interaction history in chronological order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct UserSequence {
    /// User index.
    pub user: u32,
    /// `(item, timestamp)` pairs sorted ascending by timestamp.
    pub events: Vec<(ItemId, u64)>,
}

impl UserSequence {
    /// Build from unordered interactions of one user, sorting by timestamp
    /// (stable, so equal timestamps keep input order).
    pub fn from_interactions(user: u32, mut events: Vec<(ItemId, u64)>) -> Self {
        events.sort_by_key(|&(_, ts)| ts);
        UserSequence { user, events }
    }

    /// Number of interactions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the user has no interactions.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Items only, in chronological order.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.events.iter().map(|&(i, _)| i)
    }
}

/// Group a flat interaction log into per-user chronological sequences,
/// ordered by user index.
pub fn group_by_user(interactions: &[Interaction]) -> Vec<UserSequence> {
    let mut by_user: std::collections::BTreeMap<u32, Vec<(ItemId, u64)>> =
        std::collections::BTreeMap::new();
    for it in interactions {
        by_user.entry(it.user).or_default().push((it.item, it.ts));
    }
    by_user
        .into_iter()
        .map(|(user, events)| UserSequence::from_interactions(user, events))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_sorted_by_time() {
        let seq = UserSequence::from_interactions(
            0,
            vec![(ItemId(2), 30), (ItemId(0), 10), (ItemId(1), 20)],
        );
        let items: Vec<u32> = seq.items().map(|i| i.0).collect();
        assert_eq!(items, vec![0, 1, 2]);
    }

    #[test]
    fn group_by_user_splits_and_orders() {
        let log = vec![
            Interaction {
                user: 1,
                item: ItemId(5),
                ts: 2,
            },
            Interaction {
                user: 0,
                item: ItemId(3),
                ts: 9,
            },
            Interaction {
                user: 1,
                item: ItemId(4),
                ts: 1,
            },
        ];
        let seqs = group_by_user(&log);
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].user, 0);
        assert_eq!(seqs[1].user, 1);
        assert_eq!(seqs[1].items().map(|i| i.0).collect::<Vec<_>>(), vec![4, 5]);
    }

    #[test]
    fn stable_sort_keeps_equal_timestamps() {
        let seq = UserSequence::from_interactions(0, vec![(ItemId(7), 5), (ItemId(8), 5)]);
        assert_eq!(seq.items().map(|i| i.0).collect::<Vec<_>>(), vec![7, 8]);
    }
}
