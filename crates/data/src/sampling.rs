//! Candidate-set construction (paper §V-A3: `m = 15` candidates — the ground
//! truth plus 14 randomly selected other items) and negative sampling for the
//! conventional-model trainers.

use crate::item::ItemId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds candidate sets for ranking evaluation and training prompts.
#[derive(Clone, Debug)]
pub struct CandidateSampler {
    num_items: usize,
    /// Total candidate-set size `m` (including the positive).
    pub m: usize,
}

impl CandidateSampler {
    /// Sampler over a catalog of `num_items` items with candidate size `m`.
    pub fn new(num_items: usize, m: usize) -> Self {
        assert!(m >= 1, "candidate set must hold at least the positive");
        assert!(
            num_items >= m,
            "cannot draw {m} distinct candidates from {num_items} items"
        );
        CandidateSampler { num_items, m }
    }

    /// Candidate set for one example: the positive plus `m − 1` distinct
    /// random negatives, shuffled so the positive's position is uniform.
    /// Deterministic in `(seed, example index)`.
    pub fn candidates(&self, positive: ItemId, seed: u64, example_idx: usize) -> Vec<ItemId> {
        let mut rng =
            StdRng::seed_from_u64(seed ^ (example_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut set = Vec::with_capacity(self.m);
        set.push(positive);
        while set.len() < self.m {
            let cand = ItemId(rng.random_range(0..self.num_items as u32));
            if !set.contains(&cand) {
                set.push(cand);
            }
        }
        // Fisher–Yates shuffle so the positive isn't always first.
        for i in (1..set.len()).rev() {
            let j = rng.random_range(0..=i);
            set.swap(i, j);
        }
        set
    }

    /// One uniform negative different from `positive` (for BPR-style or
    /// sampled-softmax training).
    pub fn negative<R: Rng>(&self, positive: ItemId, rng: &mut R) -> ItemId {
        loop {
            let cand = ItemId(rng.random_range(0..self.num_items as u32));
            if cand != positive {
                return cand;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_contain_positive_and_are_distinct() {
        let s = CandidateSampler::new(100, 15);
        let c = s.candidates(ItemId(7), 42, 3);
        assert_eq!(c.len(), 15);
        assert!(c.contains(&ItemId(7)));
        let mut dedup = c.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 15);
    }

    #[test]
    fn candidates_are_deterministic_per_example() {
        let s = CandidateSampler::new(100, 15);
        assert_eq!(
            s.candidates(ItemId(7), 42, 3),
            s.candidates(ItemId(7), 42, 3)
        );
        assert_ne!(
            s.candidates(ItemId(7), 42, 3),
            s.candidates(ItemId(7), 42, 4)
        );
    }

    #[test]
    fn positive_position_is_spread_out() {
        let s = CandidateSampler::new(50, 5);
        let mut positions = std::collections::HashSet::new();
        for i in 0..50 {
            let c = s.candidates(ItemId(1), 7, i);
            positions.insert(c.iter().position(|&x| x == ItemId(1)).unwrap());
        }
        assert!(positions.len() >= 4, "positive should land in many slots");
    }

    #[test]
    fn negative_never_equals_positive() {
        let s = CandidateSampler::new(3, 2);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_ne!(s.negative(ItemId(2), &mut rng), ItemId(2));
        }
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn too_few_items_panics() {
        CandidateSampler::new(3, 10);
    }
}
