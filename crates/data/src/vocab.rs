//! Word-level vocabulary shared by item titles, the pretraining corpus, and
//! the MiniLM tokenizer.

use std::collections::HashMap;

/// Special tokens, always occupying the first vocabulary slots.
pub const PAD: &str = "[pad]";
/// Mask token predicted by the MLM head.
pub const MASK: &str = "[mask]";
/// Separator between prompt sections.
pub const SEP: &str = "[sep]";
/// Unknown word.
pub const UNK: &str = "[unk]";

const SPECIALS: [&str; 4] = [PAD, MASK, SEP, UNK];

/// A frozen word ↔ id mapping.
///
/// ```
/// use delrec_data::Vocab;
///
/// let vocab = Vocab::build(["crimson", "starship"]);
/// let ids = vocab.encode("crimson starship");
/// assert_eq!(vocab.decode(&ids), "crimson starship");
/// assert_eq!(vocab.id("unknown-word"), vocab.unk());
/// ```
#[derive(Clone, Debug)]
pub struct Vocab {
    words: Vec<String>,
    index: HashMap<String, u32>,
}

impl Vocab {
    /// Build from a word list; specials are prepended automatically and
    /// duplicates (after the first occurrence) are ignored.
    pub fn build<I: IntoIterator<Item = S>, S: Into<String>>(words: I) -> Self {
        let mut vocab = Vocab {
            words: Vec::new(),
            index: HashMap::new(),
        };
        for s in SPECIALS {
            vocab.insert(s.to_string());
        }
        for w in words {
            vocab.insert(w.into());
        }
        vocab
    }

    fn insert(&mut self, word: String) {
        if !self.index.contains_key(&word) {
            self.index.insert(word.clone(), self.words.len() as u32);
            self.words.push(word);
        }
    }

    /// Vocabulary size including specials.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if only the specials are present.
    pub fn is_empty(&self) -> bool {
        self.words.len() == SPECIALS.len()
    }

    /// Id of a word, falling back to `[unk]`.
    pub fn id(&self, word: &str) -> u32 {
        self.index
            .get(word)
            .copied()
            .unwrap_or_else(|| self.index[UNK])
    }

    /// Id of a word only if known.
    pub fn id_strict(&self, word: &str) -> Option<u32> {
        self.index.get(word).copied()
    }

    /// Word for an id.
    pub fn word(&self, id: u32) -> &str {
        &self.words[id as usize]
    }

    /// Ids of the special tokens.
    pub fn pad(&self) -> u32 {
        self.index[PAD]
    }

    /// Id of the `[mask]` token.
    pub fn mask(&self) -> u32 {
        self.index[MASK]
    }

    /// Id of the `[sep]` token.
    pub fn sep(&self) -> u32 {
        self.index[SEP]
    }

    /// Id of the `[unk]` token.
    pub fn unk(&self) -> u32 {
        self.index[UNK]
    }

    /// Encode a whitespace-separated string.
    pub fn encode(&self, text: &str) -> Vec<u32> {
        text.split_whitespace().map(|w| self.id(w)).collect()
    }

    /// Decode ids back into a string.
    pub fn decode(&self, ids: &[u32]) -> String {
        ids.iter()
            .map(|&i| self.word(i))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_come_first_and_are_stable() {
        let v = Vocab::build(["hello", "world"]);
        assert_eq!(v.word(v.pad()), PAD);
        assert_eq!(v.word(v.mask()), MASK);
        assert!(v.pad() < 4 && v.mask() < 4 && v.sep() < 4 && v.unk() < 4);
    }

    #[test]
    fn duplicates_are_ignored() {
        let v = Vocab::build(["a", "b", "a"]);
        assert_eq!(v.len(), 4 + 2);
    }

    #[test]
    fn unknown_words_map_to_unk() {
        let v = Vocab::build(["a"]);
        assert_eq!(v.id("zzz"), v.unk());
        assert_eq!(v.id_strict("zzz"), None);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let v = Vocab::build(["the", "dark", "tower"]);
        let ids = v.encode("the dark tower");
        assert_eq!(v.decode(&ids), "the dark tower");
    }
}
