//! Dataset signal diagnostics.
//!
//! Calibrating the synthetic generator (see DESIGN.md §deviations) required
//! measuring *how much learnable structure* a generated dataset carries.
//! This module codifies those measurements so profile changes can be
//! validated quantitatively instead of by training models:
//!
//! * [`genre_transition_information`] — mutual information (in bits) between
//!   consecutive items' genres: the **sequential** signal conventional SR
//!   models learn. ~0 for order-free data.
//! * [`title_genre_identifiability`] — how often an item's genre is uniquely
//!   determined by its title words: the **semantic** signal the LM exploits.
//! * [`repeat_rate`] — fraction of next items already present in the recent
//!   history (degenerate datasets are dominated by repeats).

use crate::dataset::Dataset;
use std::collections::HashMap;

/// Mutual information I(G_t ; G_{t+1}) in bits between the genres of
/// consecutive interactions, estimated over all sequences.
pub fn genre_transition_information(dataset: &Dataset) -> f64 {
    let n_genres = dataset.catalog.genres().len();
    let mut joint = vec![0.0f64; n_genres * n_genres];
    let mut total = 0.0f64;
    for seq in &dataset.sequences {
        let items: Vec<_> = seq.items().collect();
        for w in items.windows(2) {
            let a = dataset.catalog.get(w[0]).genre;
            let b = dataset.catalog.get(w[1]).genre;
            joint[a * n_genres + b] += 1.0;
            total += 1.0;
        }
    }
    if total == 0.0 {
        return 0.0;
    }
    for v in &mut joint {
        *v /= total;
    }
    let marginal = |axis: usize| -> Vec<f64> {
        let mut m = vec![0.0f64; n_genres];
        for a in 0..n_genres {
            for b in 0..n_genres {
                m[if axis == 0 { a } else { b }] += joint[a * n_genres + b];
            }
        }
        m
    };
    let (pa, pb) = (marginal(0), marginal(1));
    let mut mi = 0.0f64;
    for a in 0..n_genres {
        for b in 0..n_genres {
            let p = joint[a * n_genres + b];
            if p > 0.0 && pa[a] > 0.0 && pb[b] > 0.0 {
                mi += p * (p / (pa[a] * pb[b])).log2();
            }
        }
    }
    mi
}

/// Fraction of items whose genre is uniquely recoverable from *any one* of
/// its title words (1.0 = every title names its genre unambiguously; ~1/G =
/// titles carry no genre signal).
pub fn title_genre_identifiability(dataset: &Dataset) -> f64 {
    // word → set of genres it appears under.
    let mut word_genres: HashMap<&str, Vec<usize>> = HashMap::new();
    for item in dataset.catalog.items() {
        for w in &item.title_words {
            let genres = word_genres.entry(w.as_str()).or_default();
            if !genres.contains(&item.genre) {
                genres.push(item.genre);
            }
        }
    }
    let identifiable = dataset
        .catalog
        .items()
        .iter()
        .filter(|item| {
            item.title_words
                .iter()
                .any(|w| word_genres[w.as_str()].len() == 1)
        })
        .count();
    identifiable as f64 / dataset.catalog.len().max(1) as f64
}

/// Fraction of interactions whose item already occurred within the previous
/// `window` events of the same user.
pub fn repeat_rate(dataset: &Dataset, window: usize) -> f64 {
    let mut repeats = 0usize;
    let mut total = 0usize;
    for seq in &dataset.sequences {
        let items: Vec<_> = seq.items().collect();
        for t in 1..items.len() {
            let start = t.saturating_sub(window);
            if items[start..t].contains(&items[t]) {
                repeats += 1;
            }
            total += 1;
        }
    }
    repeats as f64 / total.max(1) as f64
}

/// One-line summary of all signals (used by the `diag` binary).
pub fn signal_summary(dataset: &Dataset) -> String {
    format!(
        "genre-transition MI {:.3} bits | title→genre identifiable {:.1}% | repeat rate (w=5) {:.1}%",
        genre_transition_information(dataset),
        title_genre_identifiability(dataset) * 100.0,
        repeat_rate(dataset, 5) * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{DatasetProfile, SyntheticConfig};

    fn dataset(noise: f32, markov: f32) -> Dataset {
        let mut cfg = SyntheticConfig::profile(DatasetProfile::MovieLens100K).scaled(0.08);
        cfg.noise = noise;
        cfg.markov_strength = markov;
        cfg.generate(3)
    }

    #[test]
    fn transition_information_tracks_markov_strength() {
        let structured = genre_transition_information(&dataset(0.5, 4.0));
        let noisy = genre_transition_information(&dataset(3.0, 0.0));
        assert!(
            structured > noisy + 0.2,
            "strong Markov data must carry more transition information: \
             structured {structured:.3} vs noisy {noisy:.3}"
        );
        assert!(noisy >= 0.0, "MI is non-negative");
    }

    #[test]
    fn titles_identify_genres_by_construction() {
        // The domain word banks give every genre unique signature words, so
        // identifiability must be (near-)total for any profile.
        let ds = dataset(0.8, 3.2);
        let ident = title_genre_identifiability(&ds);
        assert!(
            ident > 0.99,
            "titles should identify genres ({ident:.3}) — the LM's semantic signal"
        );
    }

    #[test]
    fn repeat_rate_is_bounded_and_monotone_in_window() {
        // The generator avoids last-3 repeats once a sequence is warm, but
        // sequence starts and min-5 filtering (which can delete intervening
        // items) leave a small residue — the rate must stay low, bounded,
        // and monotone in the window size.
        let ds = dataset(0.8, 3.2);
        let r3 = repeat_rate(&ds, 3);
        let r5 = repeat_rate(&ds, 5);
        assert!((0.0..=1.0).contains(&r3));
        assert!(r3 <= r5, "larger windows catch at least as many repeats");
        assert!(r3 < 0.25, "window-3 repeats should be rare, got {r3}");
    }

    #[test]
    fn summary_mentions_all_three_signals() {
        let s = signal_summary(&dataset(0.8, 3.2));
        assert!(s.contains("MI") && s.contains("identifiable") && s.contains("repeat"));
    }
}
