//! The synthetic dataset generator.

use super::domains::{Domain, SUFFIXES};
use super::user_model::UserModel;
use crate::catalog::ItemCatalog;
use crate::dataset::Dataset;
use crate::interactions::UserSequence;
use crate::item::{Item, ItemId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Everything that shapes a synthetic dataset. Use
/// [`SyntheticConfig::profile`] for paper-calibrated settings, then tweak or
/// [`SyntheticConfig::scaled`] as needed.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Dataset display name.
    pub name: String,
    /// Item domain (decides the title vocabulary).
    pub domain: Domain,
    /// Users to simulate (before min-interaction filtering).
    pub n_users: usize,
    /// Catalog size.
    pub n_items: usize,
    /// Mean interactions per user (sequence lengths are Poisson-ish around
    /// this, floored at 5).
    pub mean_len: f32,
    /// Weight of the genre-level Markov transition from the previous item —
    /// the *sequential* signal conventional SR models learn.
    pub markov_strength: f32,
    /// Weight of stable user genre preference — the *semantic* signal title
    /// text exposes.
    pub pref_strength: f32,
    /// Zipf exponent for item popularity (0 = uniform).
    pub popularity_alpha: f32,
    /// Weight of log-popularity in the choice score.
    pub popularity_weight: f32,
    /// Per-user probability of a mid-history preference drift.
    pub drift_prob: f32,
    /// Gumbel noise temperature (larger = noisier behaviour).
    pub noise: f32,
    /// Example prefix cap (`n − 1` in the paper, i.e. 9).
    pub max_prefix: usize,
}

impl SyntheticConfig {
    /// Scale user and item counts by `factor` (for quick runs).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.n_users = ((self.n_users as f64 * factor) as usize).max(20);
        self.n_items = ((self.n_items as f64 * factor) as usize).max(40);
        self
    }

    /// Generate the dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = self.domain.spec();
        let n_genres = spec.genres.len();

        // --- Items: genre, Zipf popularity, unique 3-word titles. ---
        let mut titles_seen: HashSet<Vec<String>> = HashSet::new();
        let mut items = Vec::with_capacity(self.n_items);
        // Random rank permutation for popularity so genre and popularity are
        // independent.
        let mut ranks: Vec<usize> = (0..self.n_items).collect();
        for i in (1..ranks.len()).rev() {
            let j = rng.random_range(0..=i);
            ranks.swap(i, j);
        }
        for (idx, &rank) in ranks.iter().enumerate() {
            let genre = rng.random_range(0..n_genres);
            let g = &spec.genres[genre];
            let title_words = loop {
                let adj = g.adjectives[rng.random_range(0..g.adjectives.len())];
                let noun = g.nouns[rng.random_range(0..g.nouns.len())];
                let suf = SUFFIXES[rng.random_range(0..SUFFIXES.len())];
                let mut words = vec![adj.to_string(), noun.to_string(), suf.to_string()];
                if titles_seen.contains(&words) {
                    // Disambiguate with a second suffix before retrying.
                    let suf2 = SUFFIXES[rng.random_range(0..SUFFIXES.len())];
                    words.push(suf2.to_string());
                    if titles_seen.contains(&words) {
                        continue;
                    }
                }
                titles_seen.insert(words.clone());
                break words;
            };
            let popularity = (1.0 + rank as f32).powf(-self.popularity_alpha);
            items.push(Item {
                id: ItemId(idx as u32),
                title_words,
                genre,
                popularity,
            });
        }
        let genres = spec.genres.iter().map(|g| g.name.to_string()).collect();
        let catalog = ItemCatalog::new(items, genres);

        // --- Genre-level Markov transitions: each genre strongly leads to
        // itself and one designated successor. ---
        let transition = genre_transitions(n_genres, &mut rng);

        // --- Per-user sequences. ---
        let log_pop: Vec<f32> = catalog.items().iter().map(|i| i.popularity.ln()).collect();
        let mut raw_sequences: Vec<Vec<ItemId>> = Vec::with_capacity(self.n_users);
        for _ in 0..self.n_users {
            let len = poissonish(self.mean_len, &mut rng).max(5);
            let user =
                UserModel::sample(n_genres, self.pref_strength, self.drift_prob, len, &mut rng);
            let mut seq: Vec<ItemId> = Vec::with_capacity(len);
            for t in 0..len {
                let pref = user.pref_at(t);
                let last_genre = seq.last().map(|&i| catalog.get(i).genre);
                let mut best = (f32::NEG_INFINITY, 0usize);
                for (idx, item) in catalog.items().iter().enumerate() {
                    // Skip very recent repeats.
                    if seq.len() >= 3 && seq[seq.len() - 3..].iter().any(|&s| s.index() == idx) {
                        continue;
                    }
                    let mut score = self.pref_strength_scale() * pref[item.genre]
                        + self.popularity_weight * log_pop[idx];
                    if let Some(lg) = last_genre {
                        score += self.markov_strength * transition[lg][item.genre];
                    }
                    score += self.noise * gumbel(&mut rng);
                    if score > best.0 {
                        best = (score, idx);
                    }
                }
                seq.push(ItemId(best.1 as u32));
            }
            raw_sequences.push(seq);
        }

        // --- Global timestamps: randomly interleave users so the 8:1:1
        // chronological split cuts across everyone. ---
        let mut schedule: Vec<usize> = raw_sequences
            .iter()
            .enumerate()
            .flat_map(|(u, s)| std::iter::repeat_n(u, s.len()))
            .collect();
        for i in (1..schedule.len()).rev() {
            let j = rng.random_range(0..=i);
            schedule.swap(i, j);
        }
        let mut cursors = vec![0usize; raw_sequences.len()];
        let mut sequences: Vec<UserSequence> = raw_sequences
            .iter()
            .enumerate()
            .map(|(u, _)| UserSequence {
                user: u as u32,
                events: Vec::new(),
            })
            .collect();
        for (ts, &u) in schedule.iter().enumerate() {
            let item = raw_sequences[u][cursors[u]];
            cursors[u] += 1;
            sequences[u].events.push((item, ts as u64));
        }

        Dataset::build(self.name.clone(), catalog, sequences, self.max_prefix)
    }

    /// The preference term is already scaled by `pref_strength` inside the
    /// user model's favourite weights; keep the score-side multiplier at 1.
    fn pref_strength_scale(&self) -> f32 {
        1.0
    }
}

/// Row-stochastic-ish genre transition scores in `[0, 1]`: self-transition
/// 0.55, one successor genre 0.8, everything else small.
fn genre_transitions<R: Rng>(n: usize, rng: &mut R) -> Vec<Vec<f32>> {
    let mut t = vec![vec![0.0f32; n]; n];
    // A random permutation defines each genre's successor.
    let mut succ: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        succ.swap(i, j);
    }
    for g in 0..n {
        for (g2, cell) in t[g].iter_mut().enumerate() {
            *cell = if g2 == succ[g] {
                0.8
            } else if g2 == g {
                0.55
            } else {
                rng.random::<f32>() * 0.15
            };
        }
    }
    t
}

/// Cheap Poisson-like sampler: sum of `mean` Bernoulli(≈1) steps via
/// exponential inter-arrivals (Knuth's method, capped for tail safety).
fn poissonish<R: Rng>(mean: f32, rng: &mut R) -> usize {
    let l = (-mean).exp();
    if l <= 0.0 {
        // Large mean: normal approximation.
        let z = crate::synthetic::generator::gumbel(rng) - crate::synthetic::generator::gumbel(rng);
        return (mean + z * mean.sqrt() * 0.76).round().max(1.0) as usize;
    }
    let mut k = 0usize;
    let mut p = 1.0f32;
    loop {
        p *= rng.random::<f32>();
        if p <= l || k > (mean as usize) * 4 + 20 {
            return k;
        }
        k += 1;
    }
}

/// Standard Gumbel(0,1) sample (for Gumbel-max categorical sampling).
fn gumbel<R: Rng>(rng: &mut R) -> f32 {
    let u: f32 = rng.random::<f32>().max(1e-9);
    -(-u.ln()).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Split;
    use crate::synthetic::DatasetProfile;

    fn tiny() -> SyntheticConfig {
        SyntheticConfig::profile(DatasetProfile::MovieLens100K).scaled(0.1)
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = tiny();
        let a = cfg.generate(7);
        let b = cfg.generate(7);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(
            a.examples(Split::Test).first().map(|e| e.target),
            b.examples(Split::Test).first().map(|e| e.target)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = tiny();
        let a = cfg.generate(7);
        let b = cfg.generate(8);
        assert_ne!(
            a.examples(Split::Train).first().map(|e| e.target),
            b.examples(Split::Train).first().map(|e| e.target)
        );
    }

    #[test]
    fn titles_are_unique() {
        let ds = tiny().generate(3);
        let mut titles: Vec<String> = ds.catalog.items().iter().map(|i| i.title()).collect();
        let n = titles.len();
        titles.sort();
        titles.dedup();
        assert_eq!(titles.len(), n, "duplicate titles generated");
    }

    #[test]
    fn sequences_respect_min_length() {
        let ds = tiny().generate(3);
        assert!(ds.sequences.iter().all(|s| s.len() >= 5));
        assert!(!ds.sequences.is_empty());
    }

    #[test]
    fn sequential_signal_exists() {
        // The genre of consecutive items should correlate: the successor
        // genre must appear far more often than under independence.
        let ds = tiny().generate(11);
        let n_genres = ds.catalog.genres().len();
        let mut trans = vec![0usize; n_genres * n_genres];
        let mut total = 0usize;
        for s in &ds.sequences {
            let items: Vec<_> = s.items().collect();
            for w in items.windows(2) {
                let a = ds.catalog.get(w[0]).genre;
                let b = ds.catalog.get(w[1]).genre;
                trans[a * n_genres + b] += 1;
                total += 1;
            }
        }
        // The strongest conditional transition P(b | a) must clearly exceed
        // the uniform 1/n_genres baseline.
        assert!(total > 0);
        let mut best = 0.0f64;
        for a in 0..n_genres {
            let row: usize = trans[a * n_genres..(a + 1) * n_genres].iter().sum();
            if row == 0 {
                continue;
            }
            for b in 0..n_genres {
                best = best.max(trans[a * n_genres + b] as f64 / row as f64);
            }
        }
        assert!(
            best > 2.0 / n_genres as f64,
            "no sequential structure detected (max conditional {best:.3})"
        );
    }

    #[test]
    fn poissonish_mean_is_roughly_right() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|_| poissonish(8.0, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 8.0).abs() < 0.5, "poissonish mean {mean}");
    }
}
