//! Latent user preference model with optional mid-history drift.

use rand::Rng;

/// A synthetic user's latent taste.
///
/// Preference is a weight per genre. With some probability the user *drifts*:
/// from `drift_at` onward their preference vector changes (e.g. the paper's
/// case-study user moving from drama/classics to action/sci-fi).
#[derive(Clone, Debug)]
pub struct UserModel {
    /// Genre weights before drift.
    pub base_pref: Vec<f32>,
    /// Event index at which drift takes effect, if any.
    pub drift_at: Option<usize>,
    /// Genre weights after drift (equal to `base_pref` when no drift).
    pub drifted_pref: Vec<f32>,
}

impl UserModel {
    /// Sample a user: two favourite genres with strong weight, a long tail of
    /// weak interest, and a `drift_prob` chance of switching favourites at a
    /// point 30–70% through a `seq_len`-event history.
    pub fn sample<R: Rng>(
        n_genres: usize,
        pref_strength: f32,
        drift_prob: f32,
        seq_len: usize,
        rng: &mut R,
    ) -> Self {
        let base_pref = favourite_pair(n_genres, pref_strength, rng);
        let (drift_at, drifted_pref) = if rng.random::<f32>() < drift_prob && seq_len >= 6 {
            let lo = (seq_len as f32 * 0.3) as usize;
            let hi = ((seq_len as f32 * 0.7) as usize).max(lo + 1);
            (
                Some(rng.random_range(lo..hi)),
                favourite_pair(n_genres, pref_strength, rng),
            )
        } else {
            (None, base_pref.clone())
        };
        UserModel {
            base_pref,
            drift_at,
            drifted_pref,
        }
    }

    /// Preference vector in effect at event index `t`.
    pub fn pref_at(&self, t: usize) -> &[f32] {
        match self.drift_at {
            Some(d) if t >= d => &self.drifted_pref,
            _ => &self.base_pref,
        }
    }
}

/// Weight vector with two favourites (`strength` and `0.6·strength`) over a
/// weak uniform floor.
fn favourite_pair<R: Rng>(n_genres: usize, strength: f32, rng: &mut R) -> Vec<f32> {
    assert!(n_genres >= 2);
    let mut pref: Vec<f32> = (0..n_genres).map(|_| rng.random::<f32>() * 0.2).collect();
    let first = rng.random_range(0..n_genres);
    let mut second = rng.random_range(0..n_genres);
    while second == first {
        second = rng.random_range(0..n_genres);
    }
    pref[first] += strength;
    pref[second] += 0.6 * strength;
    pref
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn favourites_dominate() {
        let mut rng = StdRng::seed_from_u64(3);
        let u = UserModel::sample(8, 2.0, 0.0, 20, &mut rng);
        let mut sorted = u.base_pref.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert!(sorted[0] >= 2.0);
        assert!(sorted[1] >= 1.2);
        assert!(sorted[2] < 0.3, "tail weights stay small");
    }

    #[test]
    fn no_drift_keeps_one_pref() {
        let mut rng = StdRng::seed_from_u64(4);
        let u = UserModel::sample(6, 1.5, 0.0, 30, &mut rng);
        assert!(u.drift_at.is_none());
        assert_eq!(u.pref_at(0), u.pref_at(29));
    }

    #[test]
    fn drift_switches_pref_at_the_right_point() {
        let mut rng = StdRng::seed_from_u64(5);
        // drift_prob = 1 forces drift.
        let u = UserModel::sample(6, 1.5, 1.0, 30, &mut rng);
        let d = u.drift_at.expect("must drift");
        assert!(
            (9..21).contains(&d),
            "drift point {d} outside 30–70% window"
        );
        assert_eq!(u.pref_at(d.saturating_sub(1)), u.base_pref.as_slice());
        assert_eq!(u.pref_at(d), u.drifted_pref.as_slice());
    }

    #[test]
    fn drift_rate_matches_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let drifted = (0..500)
            .filter(|_| {
                UserModel::sample(6, 1.5, 0.4, 30, &mut rng)
                    .drift_at
                    .is_some()
            })
            .count();
        let rate = drifted as f32 / 500.0;
        assert!((rate - 0.4).abs() < 0.08, "observed drift rate {rate}");
    }
}
