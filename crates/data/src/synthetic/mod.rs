//! Synthetic dataset generation.
//!
//! The paper evaluates on MovieLens-100K, Steam, Amazon Beauty, Amazon Home &
//! Kitchen, and (for the sparsity study) KuaiRec. None are available offline,
//! so this module generates datasets with the same *structure*:
//!
//! * items carry textual titles whose words correlate with a latent genre
//!   (the semantic signal an LLM exploits);
//! * user behaviour mixes a personal genre preference, a genre-level Markov
//!   transition from the previous item (the sequential signal conventional SR
//!   models exploit), popularity skew, and noise;
//! * a fraction of users *drift* — their preference shifts mid-history, the
//!   phenomenon the paper's case study (§V-G) highlights;
//! * five [`DatasetProfile`]s are calibrated so the relative size and
//!   sparsity ordering of the paper's Table I is preserved at CPU scale.

mod domains;
mod generator;
mod profiles;
mod user_model;
pub mod validate;

pub use domains::{Domain, DomainSpec, GenreSpec};
pub use generator::SyntheticConfig;
pub use profiles::DatasetProfile;
pub use user_model::UserModel;
