//! Word banks: one domain per benchmark dataset, genres with signature
//! vocabulary so that titles carry learnable semantic signal.

/// One latent genre and its title vocabulary.
#[derive(Clone, Copy, Debug)]
pub struct GenreSpec {
    /// Genre name (also a corpus word, e.g. "sci-fi" → `scifi`).
    pub name: &'static str,
    /// Signature nouns; a title's second word comes from here.
    pub nouns: &'static [&'static str],
    /// Signature adjectives; a title's first word comes from here.
    pub adjectives: &'static [&'static str],
}

/// A dataset domain: its display name and genre table.
#[derive(Clone, Copy, Debug)]
pub struct DomainSpec {
    /// Domain name, e.g. `"movies"`.
    pub name: &'static str,
    /// Latent genres.
    pub genres: &'static [GenreSpec],
}

/// The five item domains matching the paper's datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Domain {
    /// MovieLens-style movies.
    Movies,
    /// Steam-style video games.
    Games,
    /// Amazon Beauty products.
    Beauty,
    /// Amazon Home & Kitchen products.
    Home,
    /// KuaiRec-style short videos.
    Video,
}

/// Neutral title suffixes shared across genres (carry no genre signal).
pub const SUFFIXES: &[&str] = &[
    "one", "two", "three", "four", "five", "six", "seven", "eight", "nine", "ten", "plus", "prime",
    "max", "mini", "ultra", "classic", "deluxe", "select", "original", "special", "reborn",
    "returns", "forever", "legacy",
];

macro_rules! genre {
    ($name:literal, [$($noun:literal),*], [$($adj:literal),*]) => {
        GenreSpec { name: $name, nouns: &[$($noun),*], adjectives: &[$($adj),*] }
    };
}

const MOVIES: &[GenreSpec] = &[
    genre!(
        "drama",
        ["story", "letters", "memoir", "sonata", "promise"],
        ["quiet", "tender", "broken", "honest", "golden"]
    ),
    genre!(
        "action",
        ["strike", "pursuit", "vendetta", "siege", "showdown"],
        ["relentless", "armored", "explosive", "rogue", "iron"]
    ),
    genre!(
        "scifi",
        ["starship", "nebula", "android", "portal", "colony"],
        ["quantum", "stellar", "cybernetic", "orbital", "galactic"]
    ),
    genre!(
        "comedy",
        ["mixup", "wedding", "roadtrip", "reunion", "caper"],
        ["awkward", "hilarious", "clumsy", "zany", "cheeky"]
    ),
    genre!(
        "horror",
        ["haunting", "ritual", "basement", "seance", "harvest"],
        ["cursed", "midnight", "dreadful", "silent", "pale"]
    ),
    genre!(
        "romance",
        ["courtship", "serenade", "valentine", "embrace", "affair"],
        ["sweet", "eternal", "blushing", "moonlit", "devoted"]
    ),
    genre!(
        "thriller",
        ["conspiracy", "witness", "alibi", "hostage", "cipher"],
        ["taut", "shadowy", "ruthless", "covert", "breathless"]
    ),
    genre!(
        "western",
        ["frontier", "outlaw", "canyon", "saloon", "stampede"],
        ["dusty", "lonesome", "wild", "sunburnt", "restless"]
    ),
];

const GAMES: &[GenreSpec] = &[
    genre!(
        "shooter",
        ["warzone", "payload", "crossfire", "bullet", "squad"],
        ["tactical", "ballistic", "elite", "hardline", "overkill"]
    ),
    genre!(
        "rpg",
        ["quest", "dungeon", "grimoire", "covenant", "relic"],
        ["arcane", "forgotten", "ancient", "mythic", "fabled"]
    ),
    genre!(
        "strategy",
        ["empire", "campaign", "dominion", "stronghold", "gambit"],
        ["grand", "total", "supreme", "imperial", "sovereign"]
    ),
    genre!(
        "racing",
        ["circuit", "drift", "overdrive", "grandprix", "turbo"],
        ["nitro", "blazing", "redline", "apex", "furious"]
    ),
    genre!(
        "puzzle",
        ["labyrinth", "cascade", "enigma", "tessella", "knot"],
        ["clever", "twisted", "minimal", "curious", "elegant"]
    ),
    genre!(
        "sandbox",
        ["workshop", "terraform", "voxel", "frontier-town", "habitat"],
        ["boundless", "creative", "procedural", "open", "endless"]
    ),
    genre!(
        "sports",
        ["league", "matchday", "championship", "arena", "roster"],
        ["pro", "ultimate", "allstar", "varsity", "official"]
    ),
    genre!(
        "indie",
        ["journey", "garden", "lighthouse", "postcard", "daydream"],
        ["tiny", "handmade", "wistful", "pastel", "gentle"]
    ),
];

const BEAUTY: &[GenreSpec] = &[
    genre!(
        "skincare",
        ["serum", "moisturizer", "cleanser", "toner", "mask"],
        ["hydrating", "radiant", "soothing", "renewing", "dewy"]
    ),
    genre!(
        "makeup",
        ["lipstick", "palette", "mascara", "foundation", "blush"],
        ["matte", "velvet", "shimmer", "bold", "satin"]
    ),
    genre!(
        "haircare",
        ["shampoo", "conditioner", "pomade", "scalp-oil", "keratin"],
        ["nourishing", "silky", "volumizing", "repairing", "glossy"]
    ),
    genre!(
        "fragrance",
        ["perfume", "cologne", "eau", "musk", "amber"],
        ["floral", "woody", "citrus", "oriental", "fresh"]
    ),
    genre!(
        "nails",
        ["lacquer", "gel-kit", "topcoat", "cuticle-oil", "file-set"],
        ["chip-proof", "glitter", "nude", "neon", "pearl"]
    ),
    genre!(
        "tools",
        ["brush-set", "sponge", "curler", "tweezer", "mirror"],
        ["ergonomic", "vegan", "dual-ended", "travel", "pro-grade"]
    ),
];

const HOME: &[GenreSpec] = &[
    genre!(
        "cookware",
        ["skillet", "dutch-oven", "saucepan", "wok", "griddle"],
        ["cast-iron", "nonstick", "copper", "ceramic", "tri-ply"]
    ),
    genre!(
        "appliances",
        ["blender", "toaster", "airfryer", "kettle", "mixer"],
        ["smart", "compact", "turbo-heat", "stainless", "digital"]
    ),
    genre!(
        "bedding",
        ["duvet", "pillow", "sheet-set", "quilt", "mattress-pad"],
        ["plush", "breathable", "sateen", "down-filled", "cooling"]
    ),
    genre!(
        "storage",
        ["organizer", "bin-set", "shelf", "rack", "caddy"],
        ["stackable", "collapsible", "woven", "modular", "slimline"]
    ),
    genre!(
        "decor",
        ["lamp", "vase", "wall-art", "candle", "throw"],
        ["rustic", "scandi", "gilded", "boho", "mid-century"]
    ),
    genre!(
        "cleaning",
        ["mop", "vacuum", "scrubber", "duster", "spray-kit"],
        [
            "cordless",
            "heavy-duty",
            "microfiber",
            "self-wringing",
            "anti-static"
        ]
    ),
    genre!(
        "dining",
        ["flatware", "dinner-set", "goblet", "platter", "placemat"],
        [
            "porcelain",
            "hammered",
            "matte-black",
            "artisan",
            "stoneware"
        ]
    ),
    genre!(
        "garden",
        ["planter", "trellis", "pruner", "hose-reel", "birdbath"],
        [
            "weatherproof",
            "galvanized",
            "raised",
            "self-watering",
            "terracotta"
        ]
    ),
];

const VIDEO: &[GenreSpec] = &[
    genre!(
        "cooking",
        ["recipe", "streetfood", "bakealong", "mukbang", "pantry"],
        ["sizzling", "homestyle", "five-minute", "crispy", "budget"]
    ),
    genre!(
        "dance",
        ["choreo", "freestyle", "duet", "shuffle", "crew"],
        ["viral", "synced", "smooth", "energetic", "trending"]
    ),
    genre!(
        "gaming-clips",
        ["speedrun", "clutch", "montage", "ranked", "loadout"],
        ["insane", "one-shot", "flawless", "sweaty", "lucky"]
    ),
    genre!(
        "pets",
        ["kitten", "puppy", "parrot", "hamster", "aquarium"],
        ["fluffy", "mischievous", "sleepy", "talking", "rescued"]
    ),
    genre!(
        "travel",
        ["vlog", "hike", "roadside", "nightmarket", "homestay"],
        ["hidden", "scenic", "offbeat", "coastal", "alpine"]
    ),
    genre!(
        "diy",
        ["makeover", "woodwork", "upcycle", "repair", "hack"],
        ["easy", "satisfying", "thrifty", "step-by-step", "genius"]
    ),
];

impl Domain {
    /// Static specification of this domain.
    pub fn spec(self) -> DomainSpec {
        match self {
            Domain::Movies => DomainSpec {
                name: "movies",
                genres: MOVIES,
            },
            Domain::Games => DomainSpec {
                name: "games",
                genres: GAMES,
            },
            Domain::Beauty => DomainSpec {
                name: "beauty",
                genres: BEAUTY,
            },
            Domain::Home => DomainSpec {
                name: "home",
                genres: HOME,
            },
            Domain::Video => DomainSpec {
                name: "video",
                genres: VIDEO,
            },
        }
    }

    /// Number of genres.
    pub fn num_genres(self) -> usize {
        self.spec().genres.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    const ALL: [Domain; 5] = [
        Domain::Movies,
        Domain::Games,
        Domain::Beauty,
        Domain::Home,
        Domain::Video,
    ];

    #[test]
    fn every_domain_has_enough_genres_and_words() {
        for d in ALL {
            let spec = d.spec();
            assert!(spec.genres.len() >= 6, "{} has too few genres", spec.name);
            for g in spec.genres {
                assert_eq!(g.nouns.len(), 5, "{}:{} nouns", spec.name, g.name);
                assert_eq!(g.adjectives.len(), 5, "{}:{} adjectives", spec.name, g.name);
            }
        }
    }

    #[test]
    fn signature_words_are_unique_within_a_domain() {
        // Genre signal requires a word to identify a single genre.
        for d in ALL {
            let spec = d.spec();
            let mut seen = HashSet::new();
            for g in spec.genres {
                for w in g.nouns.iter().chain(g.adjectives) {
                    assert!(
                        seen.insert(*w),
                        "word {w:?} is shared between genres of {}",
                        spec.name
                    );
                }
            }
        }
    }

    #[test]
    fn suffixes_do_not_collide_with_signature_words() {
        for d in ALL {
            let spec = d.spec();
            for g in spec.genres {
                for w in g.nouns.iter().chain(g.adjectives) {
                    assert!(!SUFFIXES.contains(w));
                }
            }
        }
    }
}
