//! Dataset profiles calibrated to the paper's Table I.
//!
//! Absolute sizes are scaled down to single-core CPU budgets; what the
//! profiles preserve is (a) the *relative* size ordering, (b) the *sparsity*
//! ordering (KuaiRec 83.7% < ML-100K 93.7% < Steam 99.4% < Beauty ≈ Home &
//! Kitchen 99.99%), and (c) interactions-per-user character (dense
//! movie/video watching vs. sparse shopping baskets).

use super::domains::Domain;
use super::generator::SyntheticConfig;

/// The five benchmark datasets of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetProfile {
    /// MovieLens-100K: small, dense movie ratings.
    MovieLens100K,
    /// Steam: mid-size game reviews.
    Steam,
    /// Amazon Beauty: large, very sparse.
    Beauty,
    /// Amazon Home & Kitchen: the largest and sparsest.
    HomeKitchen,
    /// KuaiRec: short-video views, the *densest* dataset (sparsity study).
    KuaiRec,
}

impl DatasetProfile {
    /// All profiles used in Table II (everything except KuaiRec).
    pub const TABLE2: [DatasetProfile; 4] = [
        DatasetProfile::MovieLens100K,
        DatasetProfile::Steam,
        DatasetProfile::Beauty,
        DatasetProfile::HomeKitchen,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetProfile::MovieLens100K => "MovieLens-100K",
            DatasetProfile::Steam => "Steam",
            DatasetProfile::Beauty => "Beauty",
            DatasetProfile::HomeKitchen => "Home & Kitchen",
            DatasetProfile::KuaiRec => "KuaiRec",
        }
    }

    /// The paper's published sparsity for reference output.
    pub fn paper_sparsity(self) -> f64 {
        match self {
            DatasetProfile::MovieLens100K => 0.9370,
            DatasetProfile::Steam => 0.9936,
            DatasetProfile::Beauty => 0.9999,
            DatasetProfile::HomeKitchen => 0.9999,
            DatasetProfile::KuaiRec => 0.8372,
        }
    }
}

impl SyntheticConfig {
    /// Paper-calibrated configuration for a benchmark profile.
    pub fn profile(p: DatasetProfile) -> SyntheticConfig {
        let base = SyntheticConfig {
            name: format!("{} (synthetic)", p.name()),
            domain: Domain::Movies,
            n_users: 0,
            n_items: 0,
            mean_len: 0.0,
            markov_strength: 3.2,
            pref_strength: 3.2,
            popularity_alpha: 0.5,
            popularity_weight: 0.8,
            drift_prob: 0.25,
            noise: 0.8,
            max_prefix: 9,
        };
        match p {
            DatasetProfile::MovieLens100K => SyntheticConfig {
                domain: Domain::Movies,
                n_users: 400,
                n_items: 350,
                mean_len: 28.0,
                ..base
            },
            DatasetProfile::Steam => SyntheticConfig {
                domain: Domain::Games,
                n_users: 900,
                n_items: 600,
                mean_len: 9.0,
                ..base
            },
            DatasetProfile::Beauty => SyntheticConfig {
                domain: Domain::Beauty,
                n_users: 1600,
                n_items: 1200,
                mean_len: 6.5,
                // Shopping behaviour: noisier, popularity-driven.
                noise: 1.2,
                popularity_weight: 0.6,
                ..base
            },
            DatasetProfile::HomeKitchen => SyntheticConfig {
                domain: Domain::Home,
                n_users: 2400,
                n_items: 1800,
                mean_len: 6.0,
                noise: 1.25,
                popularity_weight: 0.6,
                ..base
            },
            DatasetProfile::KuaiRec => SyntheticConfig {
                domain: Domain::Video,
                n_users: 260,
                n_items: 150,
                mean_len: 25.0,
                // Dense feeds: strong sequential autocorrelation.
                markov_strength: 3.6,
                ..base
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(DatasetProfile::MovieLens100K.name(), "MovieLens-100K");
        assert_eq!(DatasetProfile::HomeKitchen.name(), "Home & Kitchen");
    }

    #[test]
    fn sparsity_ordering_is_preserved_at_small_scale() {
        // Generate each profile at reduced scale and verify the sparsity
        // ordering: KuaiRec < ML-100K < Steam < {Beauty, Home & Kitchen}.
        let sparsity = |p: DatasetProfile, f: f64| {
            SyntheticConfig::profile(p)
                .scaled(f)
                .generate(5)
                .stats()
                .sparsity
        };
        let kuai = sparsity(DatasetProfile::KuaiRec, 0.5);
        let ml = sparsity(DatasetProfile::MovieLens100K, 0.3);
        let steam = sparsity(DatasetProfile::Steam, 0.2);
        let beauty = sparsity(DatasetProfile::Beauty, 0.15);
        assert!(kuai < ml, "KuaiRec {kuai:.3} !< ML {ml:.3}");
        assert!(ml < steam, "ML {ml:.3} !< Steam {steam:.3}");
        assert!(steam < beauty, "Steam {steam:.3} !< Beauty {beauty:.3}");
    }

    #[test]
    fn size_ordering_is_preserved() {
        let inter = |p: DatasetProfile| {
            SyntheticConfig::profile(p)
                .scaled(0.2)
                .generate(5)
                .stats()
                .interactions
        };
        // Home & Kitchen is the largest Table II dataset by interactions.
        assert!(inter(DatasetProfile::HomeKitchen) > inter(DatasetProfile::Steam));
    }
}
