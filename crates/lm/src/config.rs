//! MiniLM architecture configuration.

/// Size and regularization of a [`crate::MiniLm`].
#[derive(Clone, Debug, PartialEq)]
pub struct MiniLmConfig {
    /// Token vocabulary size (from the shared [`delrec_data::Vocab`]).
    pub vocab_size: usize,
    /// Model width.
    pub d_model: usize,
    /// Encoder blocks.
    pub num_layers: usize,
    /// Attention heads per block.
    pub num_heads: usize,
    /// Feed-forward hidden width.
    pub ffn_dim: usize,
    /// Maximum input length (prompt tokens incl. soft prompts and mask).
    pub max_len: usize,
    /// Dropout rate during training.
    pub dropout: f32,
    /// Decoder-only (causal) attention instead of bidirectional. The paper
    /// notes DELRec "can also use open-source Decoder-Only structured LLMs"
    /// (§V-A2); with causal attention the mask slot at the end of the prompt
    /// becomes next-token prediction and the rest of the pipeline is
    /// unchanged.
    pub causal: bool,
}

impl MiniLmConfig {
    /// The Flan-T5-XL stand-in: the larger backbone used by default.
    pub fn xl(vocab_size: usize) -> Self {
        MiniLmConfig {
            vocab_size,
            d_model: 32,
            num_layers: 2,
            num_heads: 2,
            ffn_dim: 64,
            max_len: 256,
            dropout: 0.1,
            causal: false,
        }
    }

    /// The Flan-T5-Large stand-in: smaller, for the "w Flan-T5-Large"
    /// ablation (Table IV) — strictly lower capacity than [`Self::xl`].
    pub fn large(vocab_size: usize) -> Self {
        MiniLmConfig {
            vocab_size,
            d_model: 16,
            num_layers: 1,
            num_heads: 2,
            ffn_dim: 32,
            max_len: 256,
            dropout: 0.1,
            causal: false,
        }
    }

    /// A decoder-only (Llama-style) variant of the XL preset — same size,
    /// causal attention.
    pub fn causal_xl(vocab_size: usize) -> Self {
        MiniLmConfig {
            causal: true,
            ..Self::xl(vocab_size)
        }
    }

    /// Approximate parameter count (embeddings + blocks + head bias).
    pub fn approx_params(&self) -> usize {
        let emb = self.vocab_size * self.d_model + self.max_len * self.d_model;
        let per_block = 4 * self.d_model * self.d_model // q,k,v,o
            + 2 * self.d_model * self.ffn_dim
            + self.ffn_dim
            + self.d_model
            + 4 * self.d_model; // layer norms
        emb + self.num_layers * per_block + self.vocab_size + 2 * self.d_model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xl_is_strictly_larger_than_large() {
        let xl = MiniLmConfig::xl(1000);
        let large = MiniLmConfig::large(1000);
        assert!(xl.approx_params() > large.approx_params());
        assert!(xl.d_model > large.d_model);
        assert!(xl.num_layers >= large.num_layers);
    }

    #[test]
    fn heads_divide_width() {
        for cfg in [MiniLmConfig::xl(100), MiniLmConfig::large(100)] {
            assert_eq!(cfg.d_model % cfg.num_heads, 0);
        }
    }
}
