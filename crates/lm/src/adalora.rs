//! AdaLoRA (Zhang et al., 2023): LoRA adapters in SVD-like form
//! `ΔW = P · diag(e) · Q` with importance-scored rank reallocation.
//!
//! The paper fine-tunes its LLM in Stage 2 with AdaLoRA (§III-C, Eq. 3). The
//! key difference from plain LoRA is that the per-triplet singular values `e`
//! are pruned by an exponential-moving-average sensitivity score, so the
//! rank budget concentrates on the projections that matter.

use delrec_tensor::{init, matmul_raw, Ctx, ParamId, ParamStore, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// AdaLoRA hyperparameters.
#[derive(Clone, Debug)]
pub struct AdaLoraConfig {
    /// Initial rank per adapted matrix.
    pub init_rank: usize,
    /// Global rank budget after pruning (total non-zero singular values
    /// across all adapters).
    pub target_total_rank: usize,
    /// Scale applied to the delta (LoRA's `α / r`).
    pub scale: f32,
    /// EMA coefficient for sensitivity scores.
    pub beta: f32,
}

impl Default for AdaLoraConfig {
    fn default() -> Self {
        AdaLoraConfig {
            init_rank: 4,
            target_total_rank: 0, // set by `attach` to half of the initial total
            scale: 2.0,
            beta: 0.85,
        }
    }
}

#[derive(Clone)]
struct Adapter {
    target: ParamId,
    p: ParamId,
    e: ParamId,
    q: ParamId,
}

/// A set of AdaLoRA adapters over a [`ParamStore`].
#[derive(Clone)]
pub struct AdaLora {
    cfg: AdaLoraConfig,
    adapters: Vec<Adapter>,
    /// EMA sensitivity per adapter per rank entry.
    importance: Vec<Vec<f32>>,
    /// Entries already pruned (frozen at zero).
    pruned: Vec<Vec<bool>>,
}

impl AdaLora {
    /// Register adapters for each `(base weight, d_in, d_out)` target. `P`
    /// gets a small random init and `e` starts at zero, so `ΔW = 0` initially
    /// (training starts from the pretrained behaviour).
    pub fn attach(
        store: &mut ParamStore,
        targets: &[(ParamId, usize, usize)],
        mut cfg: AdaLoraConfig,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        if cfg.target_total_rank == 0 {
            cfg.target_total_rank = (targets.len() * cfg.init_rank).div_ceil(2);
        }
        let mut adapters = Vec::with_capacity(targets.len());
        for (i, &(target, d_in, d_out)) in targets.iter().enumerate() {
            let r = cfg.init_rank;
            // P/Q use LoRA-style 1/sqrt(r) scaling so that once the singular
            // values e move off zero the delta is commensurate with the base
            // weights; e = 0 keeps the pretrained behaviour at step 0.
            let std = 1.0 / (r as f32).sqrt();
            let p = store.add(
                format!("adalora.{i}.p"),
                init::normal([d_in, r], std, &mut rng),
            );
            let e = store.add(format!("adalora.{i}.e"), Tensor::zeros([r]));
            let q = store.add(
                format!("adalora.{i}.q"),
                init::normal([r, d_out], std, &mut rng),
            );
            adapters.push(Adapter { target, p, e, q });
        }
        let importance = vec![vec![0.0; cfg.init_rank]; adapters.len()];
        let pruned = vec![vec![false; cfg.init_rank]; adapters.len()];
        AdaLora {
            cfg,
            adapters,
            importance,
            pruned,
        }
    }

    /// The base weights being adapted, in adapter order.
    pub fn targets(&self) -> Vec<ParamId> {
        self.adapters.iter().map(|a| a.target).collect()
    }

    /// Number of adapters.
    pub fn len(&self) -> usize {
        self.adapters.len()
    }

    /// True when no adapters are attached.
    pub fn is_empty(&self) -> bool {
        self.adapters.is_empty()
    }

    /// Build `ΔW = scale · P · diag(e) · Q` for adapter `idx` on the tape.
    pub fn delta(&self, ctx: &Ctx<'_>, idx: usize) -> Var {
        let a = &self.adapters[idx];
        let tape = ctx.tape;
        let p = ctx.p(a.p);
        let e = ctx.p(a.e);
        let q = ctx.p(a.q);
        // P [d_in, r] ⊙ e [r] broadcasts e across rows: column j scaled by e_j.
        let pe = tape.mul(p, e);
        let d = tape.matmul(pe, q);
        tape.scale(d, self.cfg.scale)
    }

    /// Dense `ΔW` for adapter `idx`, computed without a tape. Mirrors
    /// [`AdaLora::delta`] step for step — same suffix broadcast of `e`, same
    /// [`matmul_raw`] kernel, same final scale — so `W + ΔW` built from it is
    /// bitwise identical to the tape path's effective projection. Used by the
    /// grad-free inference engine.
    pub fn delta_dense(&self, store: &ParamStore, idx: usize) -> Tensor {
        let a = &self.adapters[idx];
        let (p, e, q) = (store.get(a.p), store.get(a.e), store.get(a.q));
        let (d_in, r) = (p.shape().dim(0), p.shape().dim(1));
        let d_out = q.shape().dim(1);
        let mut pe = vec![0.0f32; d_in * r];
        for (i, (o, &x)) in pe.iter_mut().zip(p.data()).enumerate() {
            *o = x * e.data()[i % r];
        }
        let mut out = vec![0.0f32; d_in * d_out];
        matmul_raw(&pe, q.data(), &mut out, d_in, r, d_out);
        for o in &mut out {
            *o *= self.cfg.scale;
        }
        Tensor::new([d_in, d_out], out)
    }

    /// Mark adapter parameters trainable/frozen (soft-prompt stages flip
    /// these alongside the backbone).
    pub fn set_trainable(&self, store: &mut ParamStore, trainable: bool) {
        store.set_trainable_prefix("adalora.", trainable);
    }

    /// Update EMA sensitivity scores from this step's `(param, grad)` pairs:
    /// the AdaLoRA importance of singular value `e_j` is `|e_j · ∂L/∂e_j|`.
    pub fn update_importance(&mut self, store: &ParamStore, updates: &[(ParamId, Tensor)]) {
        for (pid, grad) in updates {
            if let Some(ai) = self.adapters.iter().position(|a| a.e == *pid) {
                let values = store.get(self.adapters[ai].e);
                for j in 0..grad.numel() {
                    let s = (values.data()[j] * grad.data()[j]).abs();
                    let imp = &mut self.importance[ai][j];
                    *imp = self.cfg.beta * *imp + (1.0 - self.cfg.beta) * s;
                }
            }
        }
    }

    /// Prune lowest-importance singular values globally until only
    /// `target_total_rank` remain non-zero. Pruned entries are zeroed and
    /// stay zeroed (enforced each call).
    pub fn prune_to_budget(&mut self, store: &mut ParamStore) {
        // Re-zero previously pruned entries (optimizer may have nudged them).
        for (ai, flags) in self.pruned.iter().enumerate() {
            let e = store.get_mut(self.adapters[ai].e);
            for (j, &dead) in flags.iter().enumerate() {
                if dead {
                    e.data_mut()[j] = 0.0;
                }
            }
        }
        let mut alive: Vec<(usize, usize, f32)> = Vec::new();
        for (ai, flags) in self.pruned.iter().enumerate() {
            for (j, &dead) in flags.iter().enumerate() {
                if !dead {
                    alive.push((ai, j, self.importance[ai][j]));
                }
            }
        }
        if alive.len() <= self.cfg.target_total_rank {
            return;
        }
        alive.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));
        let to_kill = alive.len() - self.cfg.target_total_rank;
        for &(ai, j, _) in alive.iter().take(to_kill) {
            self.pruned[ai][j] = true;
            store.get_mut(self.adapters[ai].e).data_mut()[j] = 0.0;
        }
    }

    /// Currently non-pruned rank across all adapters.
    pub fn active_rank(&self) -> usize {
        self.pruned
            .iter()
            .map(|f| f.iter().filter(|&&d| !d).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delrec_tensor::Tape;

    fn setup() -> (ParamStore, AdaLora, Vec<ParamId>) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(9);
        let w1 = store.add("w1", init::xavier(8, 4, &mut rng));
        let w2 = store.add("w2", init::xavier(8, 4, &mut rng));
        let cfg = AdaLoraConfig {
            init_rank: 3,
            target_total_rank: 2,
            ..Default::default()
        };
        let ada = AdaLora::attach(&mut store, &[(w1, 8, 4), (w2, 8, 4)], cfg, 1);
        (store, ada, vec![w1, w2])
    }

    #[test]
    fn delta_is_zero_at_init() {
        let (store, ada, _) = setup();
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &store, false);
        let d = ada.delta(&ctx, 0);
        assert_eq!(tape.get(d).l2_norm(), 0.0, "e starts at zero ⇒ ΔW = 0");
    }

    #[test]
    fn delta_becomes_nonzero_when_e_changes() {
        let (mut store, ada, _) = setup();
        let e_id = store.id_of("adalora.0.e").unwrap();
        store.get_mut(e_id).data_mut()[0] = 1.0;
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &store, false);
        let d = ada.delta(&ctx, 0);
        assert!(tape.get(d).l2_norm() > 0.0);
    }

    #[test]
    fn pruning_respects_global_budget_and_importance() {
        let (mut store, mut ada, _) = setup();
        // Give entries distinct importance: adapter0 entries high, adapter1 low.
        for j in 0..3 {
            ada.importance[0][j] = 10.0 + j as f32;
            ada.importance[1][j] = 0.1 * (j as f32 + 1.0);
        }
        // Make all e entries non-zero so pruning is observable.
        for name in ["adalora.0.e", "adalora.1.e"] {
            let id = store.id_of(name).unwrap();
            for v in store.get_mut(id).data_mut() {
                *v = 0.5;
            }
        }
        ada.prune_to_budget(&mut store);
        assert_eq!(ada.active_rank(), 2);
        // Survivors must be the two most important entries (both in adapter 0).
        assert!(!ada.pruned[0][1] && !ada.pruned[0][2]);
        let e1 = store.get(store.id_of("adalora.1.e").unwrap());
        assert!(
            e1.data().iter().all(|&v| v == 0.0),
            "adapter 1 fully pruned"
        );
    }

    #[test]
    fn pruned_entries_stay_zero_after_optimizer_noise() {
        let (mut store, mut ada, _) = setup();
        ada.importance[0] = vec![0.0, 5.0, 5.0];
        ada.importance[1] = vec![5.0, 0.01, 5.0];
        ada.prune_to_budget(&mut store);
        // Simulate optimizer nudging a pruned entry.
        for (ai, flags) in ada.pruned.clone().iter().enumerate() {
            if let Some(j) = flags.iter().position(|&d| d) {
                let e = store.id_of(&format!("adalora.{ai}.e")).unwrap();
                store.get_mut(e).data_mut()[j] = 0.7;
            }
        }
        ada.prune_to_budget(&mut store);
        for (ai, flags) in ada.pruned.iter().enumerate() {
            let e = store.get(store.id_of(&format!("adalora.{ai}.e")).unwrap());
            for (j, &dead) in flags.iter().enumerate() {
                if dead {
                    assert_eq!(e.data()[j], 0.0);
                }
            }
        }
    }

    #[test]
    fn importance_ema_tracks_e_times_grad() {
        let (mut store, mut ada, _) = setup();
        let e_id = store.id_of("adalora.0.e").unwrap();
        store.get_mut(e_id).data_mut()[1] = 2.0;
        let grad = Tensor::from_vec(vec![0.0, 3.0, 0.0]);
        ada.update_importance(&store, &[(e_id, grad)]);
        assert!(ada.importance[0][1] > 0.0);
        assert_eq!(ada.importance[0][0], 0.0);
    }
}
