//! The MiniLM bidirectional transformer encoder with a tied MLM head.

use crate::adalora::AdaLora;
use crate::config::MiniLmConfig;
use delrec_tensor::{init, Ctx, ParamId, ParamStore, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// One position of an LM input: either a vocabulary word or a soft-prompt
/// slot (row index into a caller-provided soft-prompt table).
///
/// This is the mechanism of the paper's Eq. 1: a prompt is a mixed stream of
/// hard tokens `hp_i` and soft prompts `sp_j`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LmToken {
    /// A hard token: index into the shared vocabulary.
    Vocab(u32),
    /// A soft token: row of the soft-prompt embedding table.
    Soft(usize),
}

#[derive(Clone)]
pub(crate) struct Block {
    pub(crate) wq: Vec<ParamId>,
    pub(crate) wk: Vec<ParamId>,
    pub(crate) wv: Vec<ParamId>,
    pub(crate) wo: ParamId,
    pub(crate) ln1_g: ParamId,
    pub(crate) ln1_b: ParamId,
    pub(crate) w1: ParamId,
    pub(crate) b1: ParamId,
    pub(crate) w2: ParamId,
    pub(crate) b2: ParamId,
    pub(crate) ln2_g: ParamId,
    pub(crate) ln2_b: ParamId,
}

/// A from-scratch masked language model. Cloning copies all parameters —
/// used to stamp out per-baseline copies of one pretrained backbone.
///
/// All parameters are registered under the `lm.` prefix so DELRec's stages
/// can freeze/unfreeze the whole backbone with one call.
#[derive(Clone)]
pub struct MiniLm {
    /// Architecture.
    pub cfg: MiniLmConfig,
    pub(crate) store: ParamStore,
    pub(crate) tok_emb: ParamId,
    pub(crate) pos_emb: ParamId,
    pub(crate) blocks: Vec<Block>,
    pub(crate) ln_f_g: ParamId,
    pub(crate) ln_f_b: ParamId,
    pub(crate) head_bias: ParamId,
    pub(crate) adapters: Option<AdaLora>,
    /// Adapted projection lookup: base param id → adapter index.
    pub(crate) adapter_of: HashMap<ParamId, usize>,
    /// Lazily built packed weight panels for the grad-free forward, keyed on
    /// the store version. Cloning a MiniLm resets the slot (see
    /// [`crate::infer`]) — each clone repacks from its own store.
    pub(crate) pack_cache: crate::infer::PackCache,
    /// Route the grad-free forward through the fused packed-GEMM path
    /// (default) instead of the per-head `matmul_raw` kernels.
    pub(crate) use_fused: bool,
}

impl MiniLm {
    /// Initialize a fresh (untrained) MiniLM.
    pub fn new(cfg: MiniLmConfig, seed: u64) -> Self {
        assert_eq!(cfg.d_model % cfg.num_heads, 0, "heads must divide d_model");
        let mut rng = StdRng::seed_from_u64(seed);
        let (d, dh) = (cfg.d_model, cfg.d_model / cfg.num_heads);
        let mut store = ParamStore::new();
        let tok_emb = store.add(
            "lm.tok_emb",
            init::normal([cfg.vocab_size, d], 0.05, &mut rng),
        );
        let pos_emb = store.add("lm.pos_emb", init::normal([cfg.max_len, d], 0.05, &mut rng));
        let mut blocks = Vec::new();
        for b in 0..cfg.num_layers {
            let mut wq = Vec::new();
            let mut wk = Vec::new();
            let mut wv = Vec::new();
            for h in 0..cfg.num_heads {
                wq.push(store.add(format!("lm.b{b}.h{h}.wq"), init::xavier(d, dh, &mut rng)));
                wk.push(store.add(format!("lm.b{b}.h{h}.wk"), init::xavier(d, dh, &mut rng)));
                wv.push(store.add(format!("lm.b{b}.h{h}.wv"), init::xavier(d, dh, &mut rng)));
            }
            blocks.push(Block {
                wq,
                wk,
                wv,
                wo: store.add(format!("lm.b{b}.wo"), init::xavier(d, d, &mut rng)),
                ln1_g: store.add(format!("lm.b{b}.ln1.g"), Tensor::full([d], 1.0)),
                ln1_b: store.add(format!("lm.b{b}.ln1.b"), Tensor::zeros([d])),
                w1: store.add(
                    format!("lm.b{b}.ffn.w1"),
                    init::xavier(d, cfg.ffn_dim, &mut rng),
                ),
                b1: store.add(format!("lm.b{b}.ffn.b1"), Tensor::zeros([cfg.ffn_dim])),
                w2: store.add(
                    format!("lm.b{b}.ffn.w2"),
                    init::xavier(cfg.ffn_dim, d, &mut rng),
                ),
                b2: store.add(format!("lm.b{b}.ffn.b2"), Tensor::zeros([d])),
                ln2_g: store.add(format!("lm.b{b}.ln2.g"), Tensor::full([d], 1.0)),
                ln2_b: store.add(format!("lm.b{b}.ln2.b"), Tensor::zeros([d])),
            });
        }
        let ln_f_g = store.add("lm.lnf.g", Tensor::full([d], 1.0));
        let ln_f_b = store.add("lm.lnf.b", Tensor::zeros([d]));
        let head_bias = store.add("lm.head_bias", Tensor::zeros([cfg.vocab_size]));
        MiniLm {
            cfg,
            store,
            tok_emb,
            pos_emb,
            blocks,
            ln_f_g,
            ln_f_b,
            head_bias,
            adapters: None,
            adapter_of: HashMap::new(),
            pack_cache: Default::default(),
            use_fused: true,
        }
    }

    /// Toggle the fused packed-GEMM projection path of the grad-free
    /// forward. `true` (the default) fuses q/k/v into one blocked GEMM per
    /// layer against cached weight panels; `false` restores the per-head
    /// `matmul_raw` kernels. Both produce bitwise-identical output — the
    /// toggle exists as the reference baseline for equivalence tests and
    /// before/after benchmarks.
    pub fn set_fused_projections(&mut self, fused: bool) {
        self.use_fused = fused;
    }

    /// Whether the grad-free forward uses the fused packed-GEMM path.
    pub fn fused_projections(&self) -> bool {
        self.use_fused
    }

    /// The backing parameter store (soft prompts and adapters live here too).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable store access (optimizers, soft-prompt registration).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Freeze or unfreeze every backbone parameter (`lm.` prefix). Adapters
    /// and soft prompts are unaffected.
    pub fn set_backbone_trainable(&mut self, trainable: bool) {
        self.store.set_trainable_prefix("lm.", trainable);
    }

    /// Attach AdaLoRA adapters to every attention projection. Subsequent
    /// forward passes use `W + ΔW`. Returns the adapter handle for
    /// importance-based rank pruning.
    pub fn attach_adalora(&mut self, cfg: crate::adalora::AdaLoraConfig, seed: u64) {
        assert!(self.adapters.is_none(), "adapters already attached");
        let d = self.cfg.d_model;
        let dh = d / self.cfg.num_heads;
        let mut targets = Vec::new();
        for block in &self.blocks {
            for &p in block.wq.iter().chain(&block.wk).chain(&block.wv) {
                targets.push((p, d, dh));
            }
            // AdaLoRA also adapts the output projection and FFN matrices
            // (the AdaLoRA paper targets W_o / W_f1 / W_f2 alongside QKV).
            targets.push((block.wo, d, d));
            targets.push((block.w1, d, self.cfg.ffn_dim));
            targets.push((block.w2, self.cfg.ffn_dim, d));
        }
        let adalora = AdaLora::attach(&mut self.store, &targets, cfg, seed);
        for (i, t) in adalora.targets().iter().enumerate() {
            self.adapter_of.insert(*t, i);
        }
        self.adapters = Some(adalora);
    }

    /// The attached adapters, if any.
    pub fn adalora(&self) -> Option<&AdaLora> {
        self.adapters.as_ref()
    }

    /// Mutable adapter access (for pruning schedules).
    pub fn adalora_mut(&mut self) -> Option<&mut AdaLora> {
        self.adapters.as_mut()
    }

    /// Feed one optimizer step's gradients into the AdaLoRA sensitivity
    /// EMAs. Call with the *pre-update* parameter values (i.e. before
    /// `Optimizer::apply`). No-op without adapters.
    pub fn adalora_observe(&mut self, updates: &[(ParamId, Tensor)]) {
        if let Some(ada) = self.adapters.as_mut() {
            ada.update_importance(&self.store, updates);
        }
    }

    /// Prune the AdaLoRA rank budget by importance. No-op without adapters.
    pub fn prune_adalora(&mut self) {
        if let Some(ada) = self.adapters.as_mut() {
            ada.prune_to_budget(&mut self.store);
        }
    }

    /// Effective projection: base weight plus AdaLoRA delta when attached.
    fn proj(&self, ctx: &Ctx<'_>, base: ParamId) -> Var {
        let w = ctx.p(base);
        match (&self.adapters, self.adapter_of.get(&base)) {
            (Some(ada), Some(&idx)) => {
                let delta = ada.delta(ctx, idx);
                ctx.tape.add(w, delta)
            }
            _ => w,
        }
    }

    /// Batched input embeddings `[B·t_max, d]` over right-padded sequences:
    /// hard tokens from the tied table, soft tokens from `soft_table`, plus
    /// learned positions (paper Eq. 2 — soft prompts live directly in
    /// embedding space). Rows past a sequence's length stay exactly zero.
    fn embed_batch(
        &self,
        ctx: &Ctx<'_>,
        seqs: &[Vec<LmToken>],
        soft_table: Option<Var>,
        t_max: usize,
    ) -> Var {
        let tape = ctx.tape;
        let rows = seqs.len() * t_max;
        let mut hard = Vec::new();
        let mut soft = Vec::new();
        let mut pos = Vec::new();
        for (b, tokens) in seqs.iter().enumerate() {
            for (t, tok) in tokens.iter().enumerate() {
                let dst = b * t_max + t;
                match *tok {
                    LmToken::Vocab(w) => hard.push((w as usize, dst)),
                    LmToken::Soft(s) => soft.push((s, dst)),
                }
                pos.push((t, dst));
            }
        }
        let mut x = tape.scatter_rows(ctx.p(self.tok_emb), &hard, rows);
        if !soft.is_empty() {
            let table = soft_table.expect("input has soft tokens but no soft table given");
            let s = tape.scatter_rows(table, &soft, rows);
            x = tape.add(x, s);
        }
        let p = tape.scatter_rows(ctx.p(self.pos_emb), &pos, rows);
        tape.add(x, p)
    }

    /// Hidden states `[T, d]` after the full encoder stack. Thin wrapper over
    /// [`MiniLm::encode_batch`] with a batch of one.
    pub fn encode(
        &self,
        ctx: &Ctx<'_>,
        tokens: &[LmToken],
        soft_table: Option<Var>,
        rng: &mut StdRng,
    ) -> Var {
        let (h, _) = self.encode_batch(ctx, &[tokens.to_vec()], soft_table, rng);
        h
    }

    /// Batched hidden states over right-padded sequences.
    ///
    /// Returns `([B·t_max, d], t_max)` where `t_max` is the longest input
    /// length; sequence `b`'s position `t` lives at row `b·t_max + t`.
    /// Row-wise layers (projections, layer norm, FFN) run over the whole
    /// flattened batch at once; attention is the only cross-row op, and its
    /// [`delrec_tensor::Tape::softmax_masked`] valid-prefix masking gives
    /// padded key positions exactly zero weight, so values in padded rows
    /// never leak into valid rows. Padded rows themselves carry finite
    /// garbage and must be ignored by the caller (e.g. gathered around).
    pub fn encode_batch(
        &self,
        ctx: &Ctx<'_>,
        seqs: &[Vec<LmToken>],
        soft_table: Option<Var>,
        rng: &mut StdRng,
    ) -> (Var, usize) {
        let _span = delrec_obs::span!("lm.encode_tape");
        let tape = ctx.tape;
        let bsz = seqs.len();
        assert!(bsz > 0, "empty batch");
        let mut t_max = 0;
        for tokens in seqs {
            assert!(!tokens.is_empty(), "empty input");
            assert!(
                tokens.len() <= self.cfg.max_len,
                "input length {} exceeds max_len {}",
                tokens.len(),
                self.cfg.max_len
            );
            t_max = t_max.max(tokens.len());
        }
        let rows = bsz * t_max;
        // Per-(sequence, query-position) count of attendable key positions:
        // the sequence's valid prefix, additionally clipped to `t + 1` for
        // the decoder-only variant. Padded query rows get their sequence's
        // count too — their output is garbage either way, but the count must
        // stay in softmax_masked's 1..=t_max range.
        let valid: Vec<usize> = seqs
            .iter()
            .flat_map(|tokens| {
                let len = tokens.len();
                (0..t_max).map(move |t| {
                    if self.cfg.causal {
                        (t + 1).min(len)
                    } else {
                        len
                    }
                })
            })
            .collect();
        let mut h = self.embed_batch(ctx, seqs, soft_table, t_max);
        h = tape.dropout(h, self.cfg.dropout, ctx.train, rng);
        let dh = self.cfg.d_model / self.cfg.num_heads;
        let scale = 1.0 / (dh as f32).sqrt();
        for block in &self.blocks {
            let xin = tape.layer_norm(h, ctx.p(block.ln1_g), ctx.p(block.ln1_b));
            let mut outs_t = Vec::new();
            for hd in 0..self.cfg.num_heads {
                let q = tape.matmul(xin, self.proj(ctx, block.wq[hd]));
                let k = tape.matmul(xin, self.proj(ctx, block.wk[hd]));
                let v = tape.matmul(xin, self.proj(ctx, block.wv[hd]));
                let q3 = tape.reshape(q, [bsz, t_max, dh]);
                let k3 = tape.reshape(k, [bsz, t_max, dh]);
                let v3 = tape.reshape(v, [bsz, t_max, dh]);
                let kt = tape.transpose(k3);
                let scores = tape.matmul(q3, kt);
                let scores = tape.scale(scores, scale);
                let attn = tape.softmax_masked(scores, &valid);
                let attn = tape.dropout(attn, self.cfg.dropout, ctx.train, rng);
                let out = tape.matmul(attn, v3);
                let out = tape.reshape(out, [rows, dh]);
                outs_t.push(tape.transpose(out));
            }
            let concat_t = tape.concat_rows(&outs_t);
            let attn_out = tape.transpose(concat_t);
            let attn_out = tape.matmul(attn_out, ctx.p(block.wo));
            let attn_out = tape.dropout(attn_out, self.cfg.dropout, ctx.train, rng);
            h = tape.add(h, attn_out);

            let xin2 = tape.layer_norm(h, ctx.p(block.ln2_g), ctx.p(block.ln2_b));
            let f = tape.matmul(xin2, ctx.p(block.w1));
            let f = tape.add(f, ctx.p(block.b1));
            let f = tape.gelu(f);
            let f = tape.matmul(f, ctx.p(block.w2));
            let f = tape.add(f, ctx.p(block.b2));
            let f = tape.dropout(f, self.cfg.dropout, ctx.train, rng);
            h = tape.add(h, f);
        }
        let h = tape.layer_norm(h, ctx.p(self.ln_f_g), ctx.p(self.ln_f_b));
        (h, t_max)
    }

    /// Full-vocabulary logits at every position of every sequence:
    /// `[B, t_max, vocab_size]`. One batched forward pass; positions past a
    /// sequence's length hold garbage and must be masked by the caller.
    pub fn forward_batch(
        &self,
        ctx: &Ctx<'_>,
        seqs: &[Vec<LmToken>],
        soft_table: Option<Var>,
        rng: &mut StdRng,
    ) -> Var {
        let tape = ctx.tape;
        let (h, t_max) = self.encode_batch(ctx, seqs, soft_table, rng);
        let emb_t = tape.transpose(ctx.p(self.tok_emb));
        let logits = tape.matmul(h, emb_t);
        let logits = tape.add(logits, ctx.p(self.head_bias));
        tape.reshape(logits, [seqs.len(), t_max, self.cfg.vocab_size])
    }

    /// MLM-head logits at several positions in one forward pass:
    /// `[positions.len(), vocab_size]`. Used by pretraining, which masks
    /// multiple tokens per packed document.
    pub fn mask_logits_multi(
        &self,
        ctx: &Ctx<'_>,
        tokens: &[LmToken],
        soft_table: Option<Var>,
        positions: &[usize],
        rng: &mut StdRng,
    ) -> Var {
        assert!(!positions.is_empty(), "no mask positions");
        let tape = ctx.tape;
        let h = self.encode(ctx, tokens, soft_table, rng);
        let rows = tape.gather_rows(h, positions);
        let emb_t = tape.transpose(ctx.p(self.tok_emb));
        let logits = tape.matmul(rows, emb_t);
        tape.add(logits, ctx.p(self.head_bias))
    }

    /// MLM-head logits (`[vocab_size]`) at `mask_pos` — the LM-head "output
    /// scores of all tokens" that the verbalizer turns into item scores.
    /// Thin wrapper over [`MiniLm::mask_logits_batch`] with a batch of one.
    pub fn mask_logits(
        &self,
        ctx: &Ctx<'_>,
        tokens: &[LmToken],
        soft_table: Option<Var>,
        mask_pos: usize,
        rng: &mut StdRng,
    ) -> Var {
        let logits = self.mask_logits_batch(ctx, &[tokens.to_vec()], soft_table, &[mask_pos], rng);
        ctx.tape.reshape(logits, [self.cfg.vocab_size])
    }

    /// Batched mask-position logits: one `[B, vocab_size]` tensor holding,
    /// for each sequence, the MLM-head scores at that sequence's mask slot.
    /// The whole batch shares one encoder pass over right-padded inputs.
    pub fn mask_logits_batch(
        &self,
        ctx: &Ctx<'_>,
        seqs: &[Vec<LmToken>],
        soft_table: Option<Var>,
        mask_pos: &[usize],
        rng: &mut StdRng,
    ) -> Var {
        assert_eq!(seqs.len(), mask_pos.len(), "one mask position per sequence");
        let tape = ctx.tape;
        let (h, t_max) = self.encode_batch(ctx, seqs, soft_table, rng);
        let rows: Vec<usize> = mask_pos
            .iter()
            .zip(seqs)
            .enumerate()
            .map(|(b, (&p, tokens))| {
                assert!(p < tokens.len(), "mask position out of range");
                b * t_max + p
            })
            .collect();
        let at_mask = tape.gather_rows(h, &rows);
        let emb_t = tape.transpose(ctx.p(self.tok_emb));
        let logits = tape.matmul(at_mask, emb_t);
        tape.add(logits, ctx.p(self.head_bias))
    }

    /// Plain (non-autograd) mean token embedding of a word sequence — the
    /// "LLM item embedding" used by the paradigm-3 baselines (LLMSEQSIM,
    /// LLM2BERT4Rec).
    pub fn title_embedding(&self, token_ids: &[u32]) -> Vec<f32> {
        assert!(!token_ids.is_empty(), "empty title");
        let emb = self.store.get(self.tok_emb);
        let d = self.cfg.d_model;
        let mut out = vec![0.0f32; d];
        for &t in token_ids {
            let row = emb.row(t as usize);
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        let inv = 1.0 / token_ids.len() as f32;
        for o in &mut out {
            *o *= inv;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delrec_tensor::Tape;

    fn tiny_lm() -> MiniLm {
        let mut cfg = MiniLmConfig::large(50);
        cfg.dropout = 0.0;
        MiniLm::new(cfg, 1)
    }

    fn toks(ids: &[u32]) -> Vec<LmToken> {
        ids.iter().map(|&i| LmToken::Vocab(i)).collect()
    }

    #[test]
    fn mask_logits_shape_and_finiteness() {
        let lm = tiny_lm();
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, lm.store(), false);
        let mut rng = StdRng::seed_from_u64(0);
        let logits = lm.mask_logits(&ctx, &toks(&[5, 6, 1, 7]), None, 2, &mut rng);
        let v = tape.get(logits);
        assert_eq!(v.numel(), 50);
        assert!(v.is_finite());
    }

    #[test]
    fn soft_tokens_change_the_output() {
        let lm = tiny_lm();
        let mut rng = StdRng::seed_from_u64(0);
        let mut run = |soft_row: f32| {
            let tape = Tape::new();
            let ctx = Ctx::new(&tape, lm.store(), false);
            let table = tape.constant(Tensor::full([2, 16], soft_row));
            let tokens = vec![
                LmToken::Soft(0),
                LmToken::Vocab(5),
                LmToken::Soft(1),
                LmToken::Vocab(1),
            ];
            let logits = lm.mask_logits(&ctx, &tokens, Some(table), 3, &mut rng);
            tape.get(logits)
        };
        assert_ne!(run(0.1).data(), run(0.9).data());
    }

    #[test]
    #[should_panic(expected = "soft tokens but no soft table")]
    fn soft_token_without_table_panics() {
        let lm = tiny_lm();
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, lm.store(), false);
        let mut rng = StdRng::seed_from_u64(0);
        lm.mask_logits(
            &ctx,
            &[LmToken::Soft(0), LmToken::Vocab(1)],
            None,
            1,
            &mut rng,
        );
    }

    #[test]
    fn backbone_freeze_excludes_lm_params_from_updates() {
        let mut lm = tiny_lm();
        lm.set_backbone_trainable(false);
        assert_eq!(lm.store().num_trainable_scalars(), 0);
        lm.set_backbone_trainable(true);
        assert!(lm.store().num_trainable_scalars() > 0);
    }

    #[test]
    fn title_embedding_is_mean_of_rows() {
        let lm = tiny_lm();
        let e1 = lm.title_embedding(&[3]);
        let e2 = lm.title_embedding(&[4]);
        let mean = lm.title_embedding(&[3, 4]);
        for i in 0..e1.len() {
            assert!((mean[i] - 0.5 * (e1[i] + e2[i])).abs() < 1e-6);
        }
    }

    #[test]
    fn causal_variant_ignores_future_tokens() {
        let mut cfg = MiniLmConfig::causal_xl(50);
        cfg.dropout = 0.0;
        let lm = MiniLm::new(cfg, 1);
        let rng = StdRng::seed_from_u64(0);
        // Logits at position 1 must not change when a *later* token changes.
        let run = |third: u32| {
            let tape = Tape::new();
            let ctx = Ctx::new(&tape, lm.store(), false);
            let mut r = rng.clone();
            let toks = vec![LmToken::Vocab(5), LmToken::Vocab(1), LmToken::Vocab(third)];
            tape.get(lm.mask_logits(&ctx, &toks, None, 1, &mut r))
        };
        assert_eq!(
            run(7).data(),
            run(9).data(),
            "causal LM must not look ahead"
        );
        // A bidirectional LM of the same seed *does* look ahead.
        let mut bi_cfg = MiniLmConfig::xl(50);
        bi_cfg.dropout = 0.0;
        let bi = MiniLm::new(bi_cfg, 1);
        let run_bi = |third: u32| {
            let tape = Tape::new();
            let ctx = Ctx::new(&tape, bi.store(), false);
            let mut r = rng.clone();
            let toks = vec![LmToken::Vocab(5), LmToken::Vocab(1), LmToken::Vocab(third)];
            tape.get(bi.mask_logits(&ctx, &toks, None, 1, &mut r))
        };
        assert_ne!(run_bi(7).data(), run_bi(9).data());
    }

    #[test]
    fn batched_forward_matches_single_sequences() {
        for causal in [false, true] {
            let mut cfg = if causal {
                MiniLmConfig::causal_xl(50)
            } else {
                MiniLmConfig::large(50)
            };
            cfg.dropout = 0.0;
            let lm = MiniLm::new(cfg, 3);
            let seqs: Vec<Vec<LmToken>> =
                vec![toks(&[5, 6, 1, 7, 2]), toks(&[9]), toks(&[3, 3, 8])];
            let tape = Tape::new();
            let ctx = Ctx::new(&tape, lm.store(), false);
            let mut rng = StdRng::seed_from_u64(0);
            let batched = tape.get(lm.forward_batch(&ctx, &seqs, None, &mut rng));
            let t_max = 5;
            assert_eq!(batched.shape().dim(0), 3);
            assert_eq!(batched.shape().dim(1), t_max);
            for (b, seq) in seqs.iter().enumerate() {
                let positions: Vec<usize> = (0..seq.len()).collect();
                let single = {
                    let tape = Tape::new();
                    let ctx = Ctx::new(&tape, lm.store(), false);
                    let mut rng = StdRng::seed_from_u64(0);
                    tape.get(lm.mask_logits_multi(&ctx, seq, None, &positions, &mut rng))
                };
                for t in 0..seq.len() {
                    for c in 0..50 {
                        let got = batched.data()[(b * t_max + t) * 50 + c];
                        let want = single.data()[t * 50 + c];
                        assert!(
                            (got - want).abs() < 1e-5,
                            "causal={causal} b={b} t={t} c={c}: {got} vs {want}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batched_mask_logits_match_single_calls() {
        let lm = tiny_lm();
        let seqs: Vec<Vec<LmToken>> = vec![toks(&[5, 6, 1, 7]), toks(&[2, 9]), toks(&[4, 4, 4])];
        let mask_pos = [2usize, 0, 1];
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, lm.store(), false);
        let mut rng = StdRng::seed_from_u64(0);
        let batched = tape.get(lm.mask_logits_batch(&ctx, &seqs, None, &mask_pos, &mut rng));
        for (b, (seq, &p)) in seqs.iter().zip(&mask_pos).enumerate() {
            let tape = Tape::new();
            let ctx = Ctx::new(&tape, lm.store(), false);
            let mut rng = StdRng::seed_from_u64(0);
            let single = tape.get(lm.mask_logits(&ctx, seq, None, p, &mut rng));
            for c in 0..50 {
                let (got, want) = (batched.row(b)[c], single.data()[c]);
                assert!((got - want).abs() < 1e-5, "b={b} c={c}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn position_matters() {
        let lm = tiny_lm();
        let mut rng = StdRng::seed_from_u64(0);
        let mut run = |tokens: &[u32]| {
            let tape = Tape::new();
            let ctx = Ctx::new(&tape, lm.store(), false);
            let logits = lm.mask_logits(&ctx, &toks(tokens), None, 0, &mut rng);
            tape.get(logits)
        };
        assert_ne!(run(&[1, 8, 9]).data(), run(&[1, 9, 8]).data());
    }
}
