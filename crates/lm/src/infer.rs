//! Grad-free inference engine for [`MiniLm`]: a tape-free forward pass with
//! an optional shared-prefix K/V cache.
//!
//! Evaluation and serving score thousands of candidate sets without ever
//! taking a gradient, yet the tape path re-records every op — node
//! allocations, parent lists, boxed backward closures — per scoring call.
//! [`MiniLm::mask_logits_infer_batch`] runs the same arithmetic straight on
//! pooled buffers, with two structural savings the tape cannot express:
//!
//! * **Shared-prefix K/V cache** ([`PrefixCache`]): DELRec's Stage-2 prompt
//!   opens with a frozen head — instruction words, the distilled soft
//!   prompts, and the template up to the history section — identical across
//!   every example of an eval run. Its per-layer attention keys/values are
//!   computed once and reused, shrinking per-example attention from
//!   O((P+S)²) to O(S·(P+S)) and skipping the prefix FFN entirely.
//! * **Last-layer query pruning**: only the mask positions feed the output
//!   head, so the final block computes queries, attention, and FFN for one
//!   row per example instead of the whole padded batch.
//!
//! In [`MathMode::Exact`] the output is **bitwise identical** to
//! [`MiniLm::mask_logits_batch`]: every kernel mirrors its tape counterpart
//! (same `matmul_raw` k-grouping, same masked-softmax prefix, same
//! layer-norm epsilon), padded tails contribute exact `+0.0` terms, and
//! row-local ops are computed per row either way. The tests below pin this
//! for every preset, with soft prompts and AdaLoRA adapters attached.
//!
//! **Cache validity**: per-layer prefix K/V are suffix-independent only when
//! the model is causal or has a single layer (a bidirectional layer ≥ 1
//! reads suffix positions into every prefix hidden state), so
//! [`MiniLm::build_prefix_cache`] returns `None` otherwise and callers fall
//! back to the plain tape-free forward. A cache is also keyed on the
//! parameter-store [`version`](delrec_tensor::ParamStore::version) and the
//! [`MathMode`], so any soft-prompt or AdaLoRA update invalidates it.

use crate::transformer::{LmToken, MiniLm};
use delrec_tensor::infer::{layer_norm_rows, InferCtx, MathMode};
use delrec_tensor::{
    gemm_packed, gemm_packed_q8, matmul_raw, matmul_raw_strided, pack_b, pack_b_transposed,
    quantize_pack, transpose_into, PackedB, ParamId, QuantizedPanel, Tensor,
};
use std::borrow::Cow;
use std::sync::{Arc, Mutex};

/// Per-head cached attention tensors: `Kᵀ` (`[d_head, P]`) and `V`
/// (`[P, d_head]`).
type HeadKv = (Vec<f32>, Vec<f32>);

/// Precomputed per-layer, per-head attention keys/values for a frozen prompt
/// prefix shared by every sequence of a batch (and typically a whole eval
/// run).
///
/// Memory layout: `layers[l][h] = (Kᵀ, V)` where `Kᵀ` is `[d_head, P]`
/// (ready to sit as the first `P` columns of the assembled key matrix) and
/// `V` is `[P, d_head]` (the first `P` rows of the value matrix) — about
/// `2·L·d_model·P` floats total.
pub struct PrefixCache {
    tokens: Vec<LmToken>,
    version: u64,
    math: MathMode,
    layers: Vec<Vec<HeadKv>>,
    p: usize,
    has_soft: bool,
}

impl PrefixCache {
    /// Number of cached prefix positions.
    pub fn len(&self) -> usize {
        self.p
    }

    /// True when no positions are cached (never constructed; `build_prefix_cache`
    /// returns `None` instead).
    pub fn is_empty(&self) -> bool {
        self.p == 0
    }

    /// The prefix tokens this cache was built for.
    pub fn tokens(&self) -> &[LmToken] {
        &self.tokens
    }

    /// Whether this cache may be used for the given store version, math mode
    /// and prompt prefix. Any parameter write (soft-prompt or AdaLoRA
    /// update, optimizer step) bumps the store version and invalidates.
    pub fn is_valid_for(&self, store_version: u64, math: MathMode, prefix: &[LmToken]) -> bool {
        self.version == store_version && self.math == math && self.tokens == prefix
    }
}

/// One packed projection panel in either precision: f32
/// ([`MathMode::Exact`]/[`MathMode::Fast`]) or per-channel int8
/// ([`MathMode::Quantized`]). The kernel dispatch lives here so the forward
/// pass reads identically in both modes — outputs are f32 either way.
pub(crate) enum Panel {
    F32(PackedB),
    Q8(QuantizedPanel),
}

impl Panel {
    /// `out[m, n] (+)= a[m, k] · B` through the precision-matched kernel.
    fn gemm(&self, a: &[f32], lda: usize, out: &mut [f32], m: usize, accumulate: bool) {
        match self {
            Panel::F32(p) => gemm_packed(a, lda, p, out, m, accumulate),
            Panel::Q8(p) => gemm_packed_q8(a, lda, p, out, m, accumulate),
        }
    }

    /// Heap bytes of this panel (codes/floats plus q8 scales).
    fn bytes(&self) -> usize {
        match self {
            Panel::F32(p) => p.bytes(),
            Panel::Q8(p) => p.bytes(),
        }
    }

    /// Quantize an f32 panel in place of its layout; a q8 panel passes
    /// through unchanged.
    fn quantized(self) -> Panel {
        match self {
            Panel::F32(p) => Panel::Q8(quantize_pack(&p)),
            q8 => q8,
        }
    }
}

/// Packed weight panels of one block, ready for [`Panel::gemm`].
///
/// `qkv` is the fused `[d, 3·d]` panel — columns `0..d` are the per-head
/// `wq` side by side (head `h` at columns `h·dh..(h+1)·dh`), `d..2d` the
/// `wk`, `2d..3d` the `wv` — so one GEMM per layer replaces the `3 × heads`
/// separate projection calls, and each head's slice of the output is reached
/// by a column offset into the same row. The last block additionally carries
/// a `q`-only `[d, d]` and a `kv` `[d, 2·d]` panel: under last-layer query
/// pruning, queries run over the gathered mask rows while keys/values still
/// cover every row, so the three cannot share one call there.
pub(crate) struct LayerPack {
    qkv: Panel,
    q: Option<Panel>,
    kv: Option<Panel>,
    wo: Panel,
    w1: Panel,
    w2: Panel,
}

impl LayerPack {
    fn bytes(&self) -> usize {
        self.qkv.bytes()
            + self.q.as_ref().map_or(0, Panel::bytes)
            + self.kv.as_ref().map_or(0, Panel::bytes)
            + self.wo.bytes()
            + self.w1.bytes()
            + self.w2.bytes()
    }

    fn quantized(self) -> LayerPack {
        LayerPack {
            qkv: self.qkv.quantized(),
            q: self.q.map(Panel::quantized),
            kv: self.kv.map(Panel::quantized),
            wo: self.wo.quantized(),
            w1: self.w1.quantized(),
            w2: self.w2.quantized(),
        }
    }
}

/// Every packed weight panel of a [`MiniLm`], built once per
/// (parameter-store version, precision): the attention/FFN panels per block
/// plus the transposed tied-embedding head. Attention projections are packed
/// with their AdaLoRA delta folded in (`W + ΔW`), so the per-forward
/// `eff_proj` materialization disappears from the hot path along with the
/// packing itself — and under [`MathMode::Quantized`] the delta is folded
/// *before* quantization, exactly like the f32 pack, because the q8 panels
/// are quantized from that same f32 pack.
pub(crate) struct LmPack {
    version: u64,
    layers: Vec<LayerPack>,
    head: Panel,
}

impl LmPack {
    /// Heap bytes of every panel in the pack (q8 scales included).
    fn bytes(&self) -> usize {
        self.layers.iter().map(LayerPack::bytes).sum::<usize>() + self.head.bytes()
    }
}

/// Lazily built, version-checked cache slots for the model's [`LmPack`]s —
/// the same invalidation discipline as [`PrefixCache`]: any parameter write
/// bumps the store version and the next forward repacks. The f32 and int8
/// packs live in separate slots keyed on (store version, precision), so the
/// two coexist — a serving fleet can flip `MathMode` without thrashing —
/// and invalidate independently.
///
/// `Clone` deliberately resets to empty: [`MiniLm`] is `Clone`, and two
/// clones have independent stores whose version counters advance
/// independently from identical starting values, so a shared pack could
/// validate against the wrong clone's weights.
pub(crate) struct PackCache(Mutex<[Option<Arc<LmPack>>; 2]>);

impl PackCache {
    /// Slot index for a math mode: f32 panels serve `Exact` and `Fast`
    /// (fast math only changes transcendentals, never weights).
    fn slot(math: MathMode) -> usize {
        usize::from(math == MathMode::Quantized)
    }
}

impl Default for PackCache {
    fn default() -> Self {
        PackCache(Mutex::new([None, None]))
    }
}

impl Clone for PackCache {
    fn clone(&self) -> Self {
        Self::default()
    }
}

/// Effective weights of one block, resolved once per forward: attention
/// projections carry their AdaLoRA delta (mirroring the tape path, which
/// adapts only q/k/v — `wo`/`w1`/`w2` use the raw store weights there even
/// though adapters exist for them).
struct EffBlock<'a> {
    wq: Vec<Cow<'a, [f32]>>,
    wk: Vec<Cow<'a, [f32]>>,
    wv: Vec<Cow<'a, [f32]>>,
    wo: &'a [f32],
    ln1_g: &'a [f32],
    ln1_b: &'a [f32],
    w1: &'a [f32],
    b1: &'a [f32],
    w2: &'a [f32],
    b2: &'a [f32],
    ln2_g: &'a [f32],
    ln2_b: &'a [f32],
}

/// Embedding tables plus the batch-level soft flag, so suffix rows mirror
/// the tape's scatter-add order (including the exact `+0.0` a hard token
/// receives from the soft scatter when the batch has any soft token).
struct EmbedTables<'a> {
    tok: &'a [f32],
    pos: &'a [f32],
    soft: Option<&'a Tensor>,
    has_soft: bool,
    d: usize,
}

impl EmbedTables<'_> {
    fn write_row(&self, token: LmToken, t: usize, out: &mut [f32]) {
        let d = self.d;
        for (c, o) in out.iter_mut().enumerate() {
            let mut v = match token {
                LmToken::Vocab(w) => self.tok[w as usize * d + c],
                LmToken::Soft(_) => 0.0,
            };
            if self.has_soft {
                v += match token {
                    LmToken::Soft(s) => self
                        .soft
                        .expect("input has soft tokens but no soft table given")
                        .data()[s * d + c],
                    LmToken::Vocab(_) => 0.0,
                };
            }
            *o = v + self.pos[t * d + c];
        }
    }
}

impl MiniLm {
    /// Effective projection `W (+ ΔW)`, mirroring the tape's `proj`.
    fn eff_proj(&self, id: ParamId) -> Cow<'_, [f32]> {
        match (&self.adapters, self.adapter_of.get(&id)) {
            (Some(ada), Some(&idx)) => {
                let delta = ada.delta_dense(&self.store, idx);
                let mut out = self.store.get(id).data().to_vec();
                for (o, &dv) in out.iter_mut().zip(delta.data()) {
                    *o += dv;
                }
                Cow::Owned(out)
            }
            _ => Cow::Borrowed(self.store.get(id).data()),
        }
    }

    /// Per-block weight views. With `with_head_projections` the per-head
    /// q/k/v effective weights are materialized (the legacy per-head path);
    /// the fused path reads them from the [`LmPack`] instead and skips the
    /// per-forward `eff_proj` work.
    fn eff_blocks(&self, with_head_projections: bool) -> Vec<EffBlock<'_>> {
        let head_proj = |ids: &[ParamId]| -> Vec<Cow<'_, [f32]>> {
            if with_head_projections {
                ids.iter().map(|&id| self.eff_proj(id)).collect()
            } else {
                Vec::new()
            }
        };
        self.blocks
            .iter()
            .map(|b| EffBlock {
                wq: head_proj(&b.wq),
                wk: head_proj(&b.wk),
                wv: head_proj(&b.wv),
                wo: self.store.get(b.wo).data(),
                ln1_g: self.store.get(b.ln1_g).data(),
                ln1_b: self.store.get(b.ln1_b).data(),
                w1: self.store.get(b.w1).data(),
                b1: self.store.get(b.b1).data(),
                w2: self.store.get(b.w2).data(),
                b2: self.store.get(b.b2).data(),
                ln2_g: self.store.get(b.ln2_g).data(),
                ln2_b: self.store.get(b.ln2_b).data(),
            })
            .collect()
    }

    /// Build every packed weight panel from the current store contents. With
    /// `quantized`, the f32 panels (AdaLoRA deltas already folded) are
    /// converted to per-channel int8 as a final pass under the
    /// `pack.quantize` span, and the byte gauges record whichever precision
    /// was built.
    fn build_pack(&self, quantized: bool) -> LmPack {
        let _span = delrec_obs::span!("lm.pack");
        if quantized {
            delrec_obs::counter!("lm.weight_pack.build_q8").incr();
        } else {
            delrec_obs::counter!("lm.weight_pack.build").incr();
        }
        let cfg = &self.cfg;
        let d = cfg.d_model;
        let heads = cfg.num_heads;
        let dh = d / heads;
        let ffn = cfg.ffn_dim;
        let nblocks = self.blocks.len();
        let layers = self
            .blocks
            .iter()
            .enumerate()
            .map(|(l, b)| {
                let wq: Vec<_> = b.wq.iter().map(|&id| self.eff_proj(id)).collect();
                let wk: Vec<_> = b.wk.iter().map(|&id| self.eff_proj(id)).collect();
                let wv: Vec<_> = b.wv.iter().map(|&id| self.eff_proj(id)).collect();
                let mut qkv = vec![0.0f32; d * 3 * d];
                for hd in 0..heads {
                    for r in 0..d {
                        let src = &wq[hd][r * dh..(r + 1) * dh];
                        qkv[r * 3 * d + hd * dh..r * 3 * d + hd * dh + dh].copy_from_slice(src);
                        let src = &wk[hd][r * dh..(r + 1) * dh];
                        qkv[r * 3 * d + d + hd * dh..r * 3 * d + d + hd * dh + dh]
                            .copy_from_slice(src);
                        let src = &wv[hd][r * dh..(r + 1) * dh];
                        qkv[r * 3 * d + 2 * d + hd * dh..r * 3 * d + 2 * d + hd * dh + dh]
                            .copy_from_slice(src);
                    }
                }
                // Split q / kv panels exist only where query pruning can
                // decouple the query rows from the key/value rows.
                let (q, kv) = if l + 1 == nblocks {
                    let mut qb = vec![0.0f32; d * d];
                    let mut kvb = vec![0.0f32; d * 2 * d];
                    for r in 0..d {
                        qb[r * d..(r + 1) * d].copy_from_slice(&qkv[r * 3 * d..r * 3 * d + d]);
                        kvb[r * 2 * d..(r + 1) * 2 * d]
                            .copy_from_slice(&qkv[r * 3 * d + d..(r + 1) * 3 * d]);
                    }
                    (
                        Some(Panel::F32(pack_b(&qb, d, d))),
                        Some(Panel::F32(pack_b(&kvb, d, 2 * d))),
                    )
                } else {
                    (None, None)
                };
                LayerPack {
                    qkv: Panel::F32(pack_b(&qkv, d, 3 * d)),
                    q,
                    kv,
                    wo: Panel::F32(pack_b(self.store.get(b.wo).data(), d, d)),
                    w1: Panel::F32(pack_b(self.store.get(b.w1).data(), d, ffn)),
                    w2: Panel::F32(pack_b(self.store.get(b.w2).data(), ffn, d)),
                }
            })
            .collect::<Vec<_>>();
        // The tied embedding is stored [vocab, d] but multiplies as
        // [d, vocab]; packing the transpose directly retires the per-call
        // `transpose_into` the head used to pay.
        let mut head = Panel::F32(pack_b_transposed(
            self.store.get(self.tok_emb).data(),
            d,
            cfg.vocab_size,
        ));
        let mut layers = layers;
        if quantized {
            let _qspan = delrec_obs::span!("pack.quantize");
            layers = layers.into_iter().map(LayerPack::quantized).collect();
            head = head.quantized();
        }
        let pack = LmPack {
            version: self.store.version(),
            layers,
            head,
        };
        if quantized {
            delrec_obs::gauge!("lm.weight_pack.bytes_q8").set(pack.bytes() as f64);
        } else {
            delrec_obs::gauge!("lm.weight_pack.bytes").set(pack.bytes() as f64);
        }
        pack
    }

    /// The model's packed weight panels for a math mode, rebuilt iff the
    /// parameter-store version moved since that precision's cached pack was
    /// built. `Exact` and `Fast` share the f32 slot; `Quantized` owns the
    /// int8 slot — the two never evict each other.
    fn lm_pack(&self, math: MathMode) -> Arc<LmPack> {
        let quantized = math == MathMode::Quantized;
        let mut slots = self.pack_cache.0.lock().expect("pack cache poisoned");
        let slot = &mut slots[PackCache::slot(math)];
        if let Some(pack) = slot.as_ref() {
            if pack.version == self.store.version() {
                if quantized {
                    delrec_obs::counter!("lm.weight_pack.hit_q8").incr();
                } else {
                    delrec_obs::counter!("lm.weight_pack.hit").incr();
                }
                return Arc::clone(pack);
            }
        }
        let pack = Arc::new(self.build_pack(quantized));
        *slot = Some(Arc::clone(&pack));
        pack
    }

    /// Build a K/V cache for `prefix`, or `None` when caching cannot be
    /// exact: every sequence scored against the cache must start with
    /// exactly these tokens, and the model must be causal or single-layer
    /// (deeper bidirectional prefix states depend on the suffix).
    pub fn build_prefix_cache(
        &self,
        ic: &InferCtx,
        prefix: &[LmToken],
        soft_table: Option<&Tensor>,
    ) -> Option<PrefixCache> {
        if prefix.is_empty() {
            return None;
        }
        if !self.cfg.causal && self.cfg.num_layers > 1 {
            return None;
        }
        assert!(
            prefix.len() < self.cfg.max_len,
            "prefix length {} leaves no room for a suffix under max_len {}",
            prefix.len(),
            self.cfg.max_len
        );
        let mut layers = Vec::with_capacity(self.cfg.num_layers);
        let seqs = [prefix.to_vec()];
        let pack = if self.use_fused {
            Some(self.lm_pack(ic.math()))
        } else {
            None
        };
        let has_soft = prefix.iter().any(|t| matches!(t, LmToken::Soft(_)));
        let h = self.encode_infer(
            ic,
            &seqs,
            soft_table,
            None,
            None,
            Some(&mut layers),
            pack.as_deref(),
            has_soft,
        );
        ic.recycle(h);
        Some(PrefixCache {
            tokens: prefix.to_vec(),
            version: self.store.version(),
            math: ic.math(),
            layers,
            p: prefix.len(),
            has_soft,
        })
    }

    /// Batched mask-position logits `[B, vocab_size]` without a tape: the
    /// grad-free counterpart of [`MiniLm::mask_logits_batch`], bitwise
    /// identical to it in [`MathMode::Exact`]. With a [`PrefixCache`], every
    /// sequence must extend the cached prefix and only the suffix is
    /// embedded and encoded.
    ///
    /// When the current `delrec-par` pool has more than one lane, the batch
    /// is cut into one contiguous example chunk per lane
    /// ([`delrec_par::partition`] — a pure function of `(bsz, lanes)`) and
    /// each chunk is encoded independently into its own disjoint rows of the
    /// logits buffer. This is bitwise-identical to the serial pass at every
    /// lane count because an example's scores never depend on which other
    /// examples share the batch (batch-row independence, pinned by
    /// `tests/batch_row_independence.rs` and `tests/par_determinism.rs`):
    /// attention is truncated to each example's own valid keys, padding rows
    /// feed nothing, and the batch-level soft-scatter flag is computed here
    /// — over the *whole* batch — before chunking.
    pub fn mask_logits_infer_batch(
        &self,
        ic: &InferCtx,
        seqs: &[Vec<LmToken>],
        soft_table: Option<&Tensor>,
        mask_pos: &[usize],
        cache: Option<&PrefixCache>,
    ) -> Tensor {
        let _span = delrec_obs::span!("lm.mask_logits");
        let bsz = seqs.len();
        assert_eq!(bsz, mask_pos.len(), "one mask position per sequence");
        let vsz = self.cfg.vocab_size;
        let pack = if self.use_fused {
            Some(self.lm_pack(ic.math()))
        } else {
            None
        };
        let has_soft = seqs
            .iter()
            .any(|s| s.iter().any(|t| matches!(t, LmToken::Soft(_))));
        let mut logits = ic.alloc(bsz * vsz);
        let pool = delrec_par::current();
        let chunks = delrec_par::partition(bsz, pool.lanes());
        if chunks.len() > 1 {
            let elem_ranges: Vec<_> = chunks.iter().map(|r| r.start * vsz..r.end * vsz).collect();
            pool.for_each_range(&mut logits, &elem_ranges, |ci, out| {
                let r = chunks[ci].clone();
                self.mask_logits_rows(
                    ic,
                    &seqs[r.clone()],
                    soft_table,
                    &mask_pos[r],
                    cache,
                    pack.as_deref(),
                    has_soft,
                    out,
                );
            });
        } else {
            self.mask_logits_rows(
                ic,
                seqs,
                soft_table,
                mask_pos,
                cache,
                pack.as_deref(),
                has_soft,
                &mut logits,
            );
        }
        Tensor::new([bsz, vsz], logits)
    }

    /// Encode + head for one contiguous slice of the batch, writing
    /// `seqs.len() * vocab_size` logits into `out`. The serial path is one
    /// call over the whole batch; the parallel path runs one call per
    /// example chunk, each with its own scratch from the (thread-sharded)
    /// buffer pool. `has_soft` is the *batch-level* soft flag, computed by
    /// the caller before chunking.
    #[allow(clippy::too_many_arguments)]
    fn mask_logits_rows(
        &self,
        ic: &InferCtx,
        seqs: &[Vec<LmToken>],
        soft_table: Option<&Tensor>,
        mask_pos: &[usize],
        cache: Option<&PrefixCache>,
        pack: Option<&LmPack>,
        has_soft: bool,
        out: &mut [f32],
    ) {
        let bsz = seqs.len();
        let d = self.cfg.d_model;
        let vsz = self.cfg.vocab_size;
        debug_assert_eq!(out.len(), bsz * vsz);
        let h = self.encode_infer(
            ic,
            seqs,
            soft_table,
            cache,
            Some(mask_pos),
            None,
            pack,
            has_soft,
        );
        // Final layer norm over the mask rows only — row-local, so identical
        // to the tape's normalize-everything-then-gather.
        let _head = delrec_obs::span!("lm.head");
        let mut hf = ic.alloc(bsz * d);
        layer_norm_rows(
            &h,
            self.store.get(self.ln_f_g).data(),
            self.store.get(self.ln_f_b).data(),
            &mut hf,
        );
        ic.recycle(h);
        match pack {
            // The pre-transposed panel: no per-call [vocab, d] transpose.
            Some(pk) => pk.head.gemm(&hf, d, out, bsz, false),
            None => {
                let tok_emb = self.store.get(self.tok_emb).data();
                let mut emb_t = ic.alloc(d * vsz);
                transpose_into(tok_emb, vsz, d, &mut emb_t);
                out.fill(0.0);
                matmul_raw(&hf, &emb_t, out, bsz, d, vsz);
                ic.recycle(emb_t);
            }
        }
        let head_bias = self.store.get(self.head_bias).data();
        for (i, x) in out.iter_mut().enumerate() {
            *x += head_bias[i % vsz];
        }
        ic.recycle(hf);
    }

    /// Encoder stack without a tape. Returns the pre-final-layer-norm hidden
    /// rows: all `B·s_max` suffix rows, or one row per example when
    /// `mask_pos` enables last-layer query pruning. With `capture`, each
    /// layer's per-head `(Kᵀ, V)` over the (single, unpadded) input is
    /// recorded — the cache-building mode. With `pack`, projections, `wo`,
    /// and the FFN run through the packed blocked GEMM (q/k/v fused into one
    /// call per layer); without it, the legacy per-head `matmul_raw` path
    /// runs. Both are bitwise-identical — the kernels preserve
    /// `matmul_raw`'s per-element accumulation order exactly.
    #[allow(clippy::too_many_arguments)]
    fn encode_infer(
        &self,
        ic: &InferCtx,
        seqs: &[Vec<LmToken>],
        soft_table: Option<&Tensor>,
        cache: Option<&PrefixCache>,
        mask_pos: Option<&[usize]>,
        mut capture: Option<&mut Vec<Vec<HeadKv>>>,
        pack: Option<&LmPack>,
        has_soft: bool,
    ) -> Vec<f32> {
        let _span = delrec_obs::span!("lm.encode");
        let cfg = &self.cfg;
        let bsz = seqs.len();
        assert!(bsz > 0, "empty batch");
        let d = cfg.d_model;
        let heads = cfg.num_heads;
        let dh = d / heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let p = cache.map_or(0, |c| c.p);
        let mut s_max = 0usize;
        for tokens in seqs {
            assert!(
                tokens.len() <= cfg.max_len,
                "input length {} exceeds max_len {}",
                tokens.len(),
                cfg.max_len
            );
            assert!(
                tokens.len() > p,
                "sequence no longer than the cached prefix"
            );
            s_max = s_max.max(tokens.len() - p);
        }
        let rows = bsz * s_max;
        let kmax = p + s_max;
        // `has_soft` is the *batch-level* flag, passed in by the caller so a
        // parallel example chunk embeds exactly like the full serial batch
        // (a hard token receives the soft scatter's exact `+0.0` whenever
        // any example in the batch has a soft token — even one in another
        // chunk).
        debug_assert!(
            has_soft
                || !seqs
                    .iter()
                    .any(|s| s.iter().any(|t| matches!(t, LmToken::Soft(_)))),
            "has_soft must cover every soft token in the batch"
        );
        if let Some(c) = cache {
            debug_assert!(
                seqs.iter().all(|s| s[..p] == c.tokens[..]),
                "prefix cache does not match the sequences"
            );
            // A prefix-only soft batch vs. suffix-only soft batch would
            // differ in the tape's scatter-add of exact +0.0 terms; DELRec's
            // templates put soft tokens in the prefix, so flag divergence.
            debug_assert_eq!(c.has_soft, has_soft, "soft-token layout changed");
        }
        debug_assert!(capture.is_none() || (bsz == 1 && cache.is_none() && mask_pos.is_none()));
        // Suffix-local row index of each mask position (last-layer pruning).
        let mask_rows: Option<Vec<usize>> = mask_pos.map(|mp| {
            assert_eq!(mp.len(), bsz, "one mask position per sequence");
            mp.iter()
                .zip(seqs)
                .enumerate()
                .map(|(b, (&q, tokens))| {
                    assert!(q >= p && q < tokens.len(), "mask position out of range");
                    b * s_max + (q - p)
                })
                .collect()
        });

        // Suffix embeddings; rows past a sequence's end stay exactly zero,
        // like the tape's scatter.
        let emb = EmbedTables {
            tok: self.store.get(self.tok_emb).data(),
            pos: self.store.get(self.pos_emb).data(),
            soft: soft_table,
            has_soft,
            d,
        };
        let mut h = ic.alloc(rows * d);
        {
            let _embed = delrec_obs::span!("lm.embed");
            for (b, tokens) in seqs.iter().enumerate() {
                for (s, &tok) in tokens[p..].iter().enumerate() {
                    let row = b * s_max + s;
                    emb.write_row(tok, p + s, &mut h[row * d..(row + 1) * d]);
                }
            }
        }

        let blocks = self.eff_blocks(pack.is_none());
        let nblocks = blocks.len();
        let capturing = capture.is_some();
        for (l, blk) in blocks.iter().enumerate() {
            let last = l + 1 == nblocks;
            // Queries at the final block: only mask rows feed the output.
            let pruned: Option<&[usize]> = if last { mask_rows.as_deref() } else { None };
            let nq = pruned.map_or(rows, <[usize]>::len);
            let qrows = pruned.map_or(s_max, |_| 1); // query rows per example

            let mut xin = ic.alloc(rows * d);
            layer_norm_rows(&h, blk.ln1_g, blk.ln1_b, &mut xin);
            let q_in_buf: Option<Vec<f32>> = pruned.map(|rows_idx| {
                let mut g = ic.alloc(rows_idx.len() * d);
                for (i, &r) in rows_idx.iter().enumerate() {
                    g[i * d..(i + 1) * d].copy_from_slice(&xin[r * d..(r + 1) * d]);
                }
                g
            });
            let q_in: &[f32] = q_in_buf.as_deref().unwrap_or(&xin);

            let mut attn_cat = ic.alloc(nq * d);
            let mut kt_b = ic.alloc(dh * kmax);
            let mut v_b = ic.alloc(kmax * dh);
            let mut scores = ic.alloc(qrows * kmax);
            let mut out_b = ic.alloc(qrows * dh);
            let mut captured_heads: Vec<HeadKv> = Vec::new();

            // Projections. Fused path: one packed GEMM over the concatenated
            // panel per layer (two under query pruning, where q rows differ
            // from k/v rows), leaving q/k/v as column bands of one wide
            // buffer. Legacy path: the original 3 × heads `matmul_raw` calls
            // into contiguous per-head buffers. Either way each head is
            // addressed below as (buffer, row stride, column offset).
            let mut qkvf: Vec<f32> = Vec::new();
            let mut qf: Vec<f32> = Vec::new();
            let mut kvf: Vec<f32> = Vec::new();
            let mut legacy: Vec<(Vec<f32>, Vec<f32>, Vec<f32>)> = Vec::new();
            {
                let _qkv_span = delrec_obs::span!("lm.qkv");
                match pack {
                    Some(pk) => {
                        let lp = &pk.layers[l];
                        if pruned.is_some() {
                            qf = ic.alloc(nq * d);
                            lp.q.as_ref()
                                .expect("last-layer q pack")
                                .gemm(q_in, d, &mut qf, nq, false);
                            kvf = ic.alloc(rows * 2 * d);
                            lp.kv
                                .as_ref()
                                .expect("last-layer kv pack")
                                .gemm(&xin, d, &mut kvf, rows, false);
                        } else {
                            qkvf = ic.alloc(rows * 3 * d);
                            lp.qkv.gemm(&xin, d, &mut qkvf, rows, false);
                        }
                    }
                    None => {
                        for hd in 0..heads {
                            let mut q = ic.alloc(nq * dh);
                            matmul_raw(q_in, &blk.wq[hd], &mut q, nq, d, dh);
                            let mut k = ic.alloc(rows * dh);
                            matmul_raw(&xin, &blk.wk[hd], &mut k, rows, d, dh);
                            let mut v = ic.alloc(rows * dh);
                            matmul_raw(&xin, &blk.wv[hd], &mut v, rows, d, dh);
                            legacy.push((q, k, v));
                        }
                    }
                }
            }

            for hd in 0..heads {
                let (qb, q_lda, q_off) = match pack {
                    Some(_) if pruned.is_some() => (&qf[..], d, hd * dh),
                    Some(_) => (&qkvf[..], 3 * d, hd * dh),
                    None => (&legacy[hd].0[..], dh, 0),
                };
                let (kb, k_lda, k_off) = match pack {
                    Some(_) if pruned.is_some() => (&kvf[..], 2 * d, hd * dh),
                    Some(_) => (&qkvf[..], 3 * d, d + hd * dh),
                    None => (&legacy[hd].1[..], dh, 0),
                };
                let (vb, v_lda, v_off) = match pack {
                    Some(_) if pruned.is_some() => (&kvf[..], 2 * d, d + hd * dh),
                    Some(_) => (&qkvf[..], 3 * d, 2 * d + hd * dh),
                    None => (&legacy[hd].2[..], dh, 0),
                };
                for b in 0..bsz {
                    let len = seqs[b].len();
                    let scores_span = delrec_obs::span!("lm.attn_scores");
                    // Assemble Kᵀ [dh, kmax]: cached prefix columns, then
                    // the example's suffix keys; V [kmax, dh] likewise.
                    if let Some(c) = cache {
                        let (ckt, cv) = &c.layers[l][hd];
                        for r in 0..dh {
                            kt_b[r * kmax..r * kmax + p].copy_from_slice(&ckt[r * p..(r + 1) * p]);
                        }
                        v_b[..p * dh].copy_from_slice(cv);
                    }
                    for s in 0..s_max {
                        let krow = (b * s_max + s) * k_lda + k_off;
                        for r in 0..dh {
                            kt_b[r * kmax + p + s] = kb[krow + r];
                        }
                    }
                    for s in 0..s_max {
                        let vrow = (b * s_max + s) * v_lda + v_off;
                        v_b[(p + s) * dh..(p + s + 1) * dh].copy_from_slice(&vb[vrow..vrow + dh]);
                    }
                    let q_start = match pruned {
                        Some(_) => b * q_lda + q_off,
                        None => b * s_max * q_lda + q_off,
                    };
                    // Overwrite mode fills exactly the qrows × kmax region it
                    // writes — no caller-side clear of the scores buffer.
                    matmul_raw_strided(
                        &qb[q_start..],
                        q_lda,
                        &kt_b,
                        &mut scores,
                        qrows,
                        dh,
                        kmax,
                        false,
                    );
                    drop(scores_span);
                    let mix_span = delrec_obs::span!("lm.attn_mix");
                    for qi in 0..qrows {
                        let t_global = match mask_pos {
                            Some(mp) if last => mp[b],
                            _ => p + qi,
                        };
                        let valid = if cfg.causal {
                            (t_global + 1).min(len)
                        } else {
                            len
                        };
                        let row = &mut scores[qi * kmax..(qi + 1) * kmax];
                        for x in &mut row[..valid] {
                            *x *= scale;
                        }
                        ic.softmax_row(&mut row[..valid]);
                        // Columns past `valid` are never read again: the
                        // attn·V below truncates to `valid`, and the next
                        // example's score matmul overwrites the full row.
                        //
                        // attn · V truncated to this row's `valid` keys. The
                        // summation association then depends only on `valid`
                        // (example-local), never on the batch's `kmax`:
                        // padded columns would otherwise shift the kernel's
                        // four-wide accumulation grouping and perturb low
                        // bits whenever the batch max length crosses a
                        // four-column boundary — the one place batch
                        // composition could leak into a request's scores.
                        matmul_raw_strided(
                            &row[..valid],
                            valid,
                            &v_b[..valid * dh],
                            &mut out_b[qi * dh..(qi + 1) * dh],
                            1,
                            valid,
                            dh,
                            false,
                        );
                    }
                    drop(mix_span);
                    for qi in 0..qrows {
                        let dst = match pruned {
                            Some(_) => b,
                            None => b * s_max + qi,
                        };
                        attn_cat[dst * d + hd * dh..dst * d + (hd + 1) * dh]
                            .copy_from_slice(&out_b[qi * dh..(qi + 1) * dh]);
                    }
                }
                if capturing {
                    // Capture runs on a single unpadded sequence (rows = P).
                    let mut kt = vec![0.0f32; dh * rows];
                    match pack {
                        Some(_) => {
                            // Strided bands: write Kᵀ and a contiguous V
                            // straight from the fused buffer (one copy).
                            for row in 0..rows {
                                let base = row * 3 * d + d + hd * dh;
                                for r in 0..dh {
                                    kt[r * rows + row] = qkvf[base + r];
                                }
                            }
                            let mut vc = vec![0.0f32; rows * dh];
                            for row in 0..rows {
                                let base = row * 3 * d + 2 * d + hd * dh;
                                vc[row * dh..(row + 1) * dh]
                                    .copy_from_slice(&qkvf[base..base + dh]);
                            }
                            captured_heads.push((kt, vc));
                        }
                        None => {
                            // The head's V buffer is not needed past this
                            // point — move it into the cache, no clone.
                            let (_, k, v) = &mut legacy[hd];
                            transpose_into(k, rows, dh, &mut kt);
                            captured_heads.push((kt, std::mem::take(v)));
                        }
                    }
                }
            }
            if let Some(cap) = capture.as_deref_mut() {
                cap.push(captured_heads);
            }
            for (q, k, v) in legacy.drain(..) {
                ic.recycle(q);
                ic.recycle(k);
                ic.recycle(v);
            }
            if pack.is_some() {
                if pruned.is_some() {
                    ic.recycle(qf);
                    ic.recycle(kvf);
                } else {
                    ic.recycle(qkvf);
                }
            }

            // attn_out = attn_cat · wo (raw weight — the tape path bypasses
            // adapters on the output projection).
            let wo_span = delrec_obs::span!("lm.wo");
            let mut attn_out = ic.alloc(nq * d);
            match pack {
                Some(pk) => pk.layers[l].wo.gemm(&attn_cat, d, &mut attn_out, nq, false),
                None => matmul_raw(&attn_cat, blk.wo, &mut attn_out, nq, d, d),
            }
            // Residual; at the final block this compresses h to mask rows.
            h = match pruned {
                Some(rows_idx) => {
                    let mut h2 = ic.alloc(nq * d);
                    for (i, &r) in rows_idx.iter().enumerate() {
                        for c in 0..d {
                            h2[i * d + c] = h[r * d + c] + attn_out[i * d + c];
                        }
                    }
                    ic.recycle(h);
                    h2
                }
                None => {
                    for (o, &a) in h.iter_mut().zip(attn_out.iter()) {
                        *o += a;
                    }
                    h
                }
            };
            drop(wo_span);
            // FFN over the rows that remain.
            let _ffn_span = delrec_obs::span!("lm.ffn");
            let ffn = cfg.ffn_dim;
            let mut xin2 = ic.alloc(nq * d);
            layer_norm_rows(&h, blk.ln2_g, blk.ln2_b, &mut xin2);
            let mut f = ic.alloc(nq * ffn);
            match pack {
                Some(pk) => pk.layers[l].w1.gemm(&xin2, d, &mut f, nq, false),
                None => matmul_raw(&xin2, blk.w1, &mut f, nq, d, ffn),
            }
            for (i, x) in f.iter_mut().enumerate() {
                *x += blk.b1[i % ffn];
            }
            ic.gelu(&mut f);
            let mut f2 = ic.alloc(nq * d);
            match pack {
                Some(pk) => pk.layers[l].w2.gemm(&f, ffn, &mut f2, nq, false),
                None => matmul_raw(&f, blk.w2, &mut f2, nq, ffn, d),
            }
            for (i, x) in f2.iter_mut().enumerate() {
                *x += blk.b2[i % d];
            }
            for (o, &a) in h.iter_mut().zip(f2.iter()) {
                *o += a;
            }
            ic.recycle(xin);
            if let Some(b) = q_in_buf {
                ic.recycle(b);
            }
            ic.recycle(attn_cat);
            ic.recycle(attn_out);
            ic.recycle(xin2);
            ic.recycle(f);
            ic.recycle(f2);
            ic.recycle(kt_b);
            ic.recycle(v_b);
            ic.recycle(scores);
            ic.recycle(out_b);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adalora::AdaLoraConfig;
    use crate::config::MiniLmConfig;
    use delrec_tensor::{Ctx, Tape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toks(ids: &[u32]) -> Vec<LmToken> {
        ids.iter().map(|&i| LmToken::Vocab(i)).collect()
    }

    fn tape_logits(
        lm: &MiniLm,
        seqs: &[Vec<LmToken>],
        soft: Option<&Tensor>,
        mask_pos: &[usize],
    ) -> Tensor {
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, lm.store(), false);
        let soft_var = soft.map(|t| tape.constant(t.clone()));
        let mut rng = StdRng::seed_from_u64(0);
        tape.get(lm.mask_logits_batch(&ctx, seqs, soft_var, mask_pos, &mut rng))
    }

    #[test]
    fn infer_matches_tape_bitwise_across_presets() {
        for (name, base) in [
            ("large", MiniLmConfig::large(60)),
            ("xl", MiniLmConfig::xl(60)),
            ("causal_xl", MiniLmConfig::causal_xl(60)),
        ] {
            let mut cfg = base;
            cfg.dropout = 0.0;
            let cacheable = cfg.causal || cfg.num_layers == 1;
            let lm = MiniLm::new(cfg, 7);
            // Shared prefix [5, 6, 1]; ragged suffixes; mask at the end.
            let seqs = vec![
                toks(&[5, 6, 1, 7, 2, 9]),
                toks(&[5, 6, 1, 3]),
                toks(&[5, 6, 1, 8, 4]),
            ];
            let mask_pos = [5usize, 3, 4];
            let want = tape_logits(&lm, &seqs, None, &mask_pos);
            let ic = InferCtx::new(MathMode::Exact);
            let got = lm.mask_logits_infer_batch(&ic, &seqs, None, &mask_pos, None);
            assert_eq!(got.data(), want.data(), "{name}: engine without cache");
            let cache = lm.build_prefix_cache(&ic, &seqs[0][..3], None);
            assert_eq!(
                cache.is_some(),
                cacheable,
                "{name}: cache gate must track exactness"
            );
            if let Some(c) = &cache {
                let got = lm.mask_logits_infer_batch(&ic, &seqs, None, &mask_pos, Some(c));
                assert_eq!(got.data(), want.data(), "{name}: engine with prefix cache");
            }
        }
    }

    #[test]
    fn infer_matches_tape_with_soft_prompts_and_adapters() {
        let mut cfg = MiniLmConfig::large(60);
        cfg.dropout = 0.0;
        let d = cfg.d_model;
        let mut lm = MiniLm::new(cfg, 11);
        lm.attach_adalora(AdaLoraConfig::default(), 5);
        // Nudge singular values so adapter deltas are non-zero.
        let mut i = 0;
        while let Some(id) = lm.store().id_of(&format!("adalora.{i}.e")) {
            for v in lm.store_mut().get_mut(id).data_mut() {
                *v = 0.3;
            }
            i += 1;
        }
        assert!(i > 0, "adapters attached");
        let soft = Tensor::new([2, d], (0..2 * d).map(|i| 0.01 * i as f32 - 0.1).collect());
        let prefix = vec![
            LmToken::Vocab(5),
            LmToken::Soft(0),
            LmToken::Soft(1),
            LmToken::Vocab(6),
        ];
        let mut s1 = prefix.clone();
        s1.extend(toks(&[7, 2, 9]));
        let mut s2 = prefix.clone();
        s2.extend(toks(&[3]));
        let seqs = vec![s1, s2];
        let mask_pos = [6usize, 4];
        let want = tape_logits(&lm, &seqs, Some(&soft), &mask_pos);
        let ic = InferCtx::new(MathMode::Exact);
        let got = lm.mask_logits_infer_batch(&ic, &seqs, Some(&soft), &mask_pos, None);
        assert_eq!(got.data(), want.data(), "engine without cache");
        let cache = lm
            .build_prefix_cache(&ic, &prefix, Some(&soft))
            .expect("single-layer model must cache");
        let got = lm.mask_logits_infer_batch(&ic, &seqs, Some(&soft), &mask_pos, Some(&cache));
        assert_eq!(got.data(), want.data(), "engine with prefix cache");
    }

    #[test]
    fn fast_math_stays_close_to_exact() {
        let mut cfg = MiniLmConfig::large(60);
        cfg.dropout = 0.0;
        let lm = MiniLm::new(cfg, 3);
        let seqs = vec![toks(&[5, 6, 1, 7, 2, 9]), toks(&[5, 6, 1, 3])];
        let mask_pos = [5usize, 3];
        let exact = InferCtx::new(MathMode::Exact);
        let fast = InferCtx::new(MathMode::Fast);
        let a = lm.mask_logits_infer_batch(&exact, &seqs, None, &mask_pos, None);
        let b = lm.mask_logits_infer_batch(&fast, &seqs, None, &mask_pos, None);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn prefix_cache_invalidates_on_writes_mode_and_prefix() {
        let mut cfg = MiniLmConfig::large(60);
        cfg.dropout = 0.0;
        let mut lm = MiniLm::new(cfg, 7);
        let prefix = toks(&[5, 6, 1]);
        let ic = InferCtx::new(MathMode::Exact);
        let cache = lm.build_prefix_cache(&ic, &prefix, None).unwrap();
        let v = lm.store().version();
        assert!(cache.is_valid_for(v, MathMode::Exact, &prefix));
        assert!(!cache.is_valid_for(v, MathMode::Fast, &prefix), "math mode");
        assert!(
            !cache.is_valid_for(v, MathMode::Exact, &toks(&[5, 6])),
            "different prefix"
        );
        // Any parameter write bumps the store version.
        let id = lm.store().id_of("lm.tok_emb").unwrap();
        lm.store_mut().get_mut(id).data_mut()[0] += 1.0;
        assert!(
            !cache.is_valid_for(lm.store().version(), MathMode::Exact, &prefix),
            "parameter write must invalidate"
        );
    }
}
