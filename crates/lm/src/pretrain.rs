//! MLM pretraining over the world-knowledge corpus.
//!
//! This is the substitution for Flan-T5's pretraining: after it, title tokens
//! of same-genre items sit close in embedding space, giving the MiniLM the
//! "rich intrinsic details about the items" (paper §IV-A) that conventional
//! ID-based models lack.
//!
//! Inputs are *packed documents* (many sentences joined to roughly prompt
//! length — see `delrec_data::corpus::pack_corpus`), so that the position
//! embeddings covering full-length prompts are all trained. Each step masks
//! ~15% of a document's positions and predicts them from one forward pass.

use crate::transformer::{LmToken, MiniLm};
use delrec_tensor::optim::{clip_grad_norm, Adam, Optimizer};
use delrec_tensor::{Ctx, Tape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pretraining hyperparameters.
#[derive(Clone, Debug)]
pub struct PretrainConfig {
    /// Passes over the document set.
    pub epochs: usize,
    /// Documents per gradient step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Fraction of positions masked per document.
    pub mask_prob: f32,
    /// Cap on documents per epoch (None = all).
    pub max_sentences: Option<usize>,
    /// Shuffle / mask-choice seed.
    pub seed: u64,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig {
            epochs: 3,
            batch_size: 8,
            lr: 3e-3,
            mask_prob: 0.15,
            max_sentences: None,
            seed: 11,
        }
    }
}

/// Run MLM pretraining over (packed or raw) token sequences. Returns mean
/// loss per epoch.
pub fn pretrain_mlm(
    lm: &mut MiniLm,
    corpus: &[Vec<u32>],
    mask_token: u32,
    cfg: &PretrainConfig,
) -> Vec<f32> {
    assert!(!corpus.is_empty(), "empty corpus");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let mut order: Vec<usize> = (0..corpus.len()).collect();
    let mut losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let take = cfg.max_sentences.unwrap_or(order.len()).min(order.len());
        let mut total = 0.0f32;
        let mut batches = 0usize;
        for chunk in order[..take].chunks(cfg.batch_size) {
            let (loss_value, mut updates) = {
                let tape = Tape::new();
                let ctx = Ctx::new(&tape, lm.store(), true);
                let mut rows = Vec::new();
                let mut targets = Vec::new();
                for &di in chunk {
                    let doc = &corpus[di];
                    if doc.len() < 2 {
                        continue;
                    }
                    let n_masks = ((doc.len() as f32 * cfg.mask_prob).round() as usize)
                        .clamp(1, doc.len() / 2);
                    // Distinct random positions.
                    let mut positions: Vec<usize> = Vec::with_capacity(n_masks);
                    while positions.len() < n_masks {
                        let p = rng.random_range(0..doc.len());
                        if !positions.contains(&p) {
                            positions.push(p);
                        }
                    }
                    let tokens: Vec<LmToken> = doc
                        .iter()
                        .enumerate()
                        .map(|(p, &t)| {
                            LmToken::Vocab(if positions.contains(&p) {
                                mask_token
                            } else {
                                t
                            })
                        })
                        .collect();
                    let logits = lm.mask_logits_multi(&ctx, &tokens, None, &positions, &mut rng);
                    // One row per masked position.
                    for (ri, &p) in positions.iter().enumerate() {
                        rows.push(tape.slice_rows(logits, ri, 1));
                        targets.push(doc[p] as usize);
                    }
                }
                if rows.is_empty() {
                    continue;
                }
                let stacked = tape.concat_rows(&rows);
                let loss = tape.cross_entropy(stacked, &targets);
                let loss_value = tape.get(loss).item();
                let mut grads = tape.backward(loss);
                (loss_value, ctx.grads(&mut grads))
            };
            clip_grad_norm(&mut updates, 5.0);
            opt.apply(lm.store_mut(), &updates);
            total += loss_value;
            batches += 1;
        }
        losses.push(total / batches.max(1) as f32);
    }
    losses
}

/// Mean log-probability assigned to the true token at the masked last
/// position of (up to) `limit` documents. A finer-grained pretraining health
/// metric than top-1 accuracy (which is a high bar over large vocabularies).
pub fn mlm_mean_log_prob(lm: &MiniLm, corpus: &[Vec<u32>], mask_token: u32, limit: usize) -> f32 {
    let mut total = 0.0f32;
    let mut n = 0usize;
    let mut rng = StdRng::seed_from_u64(0);
    for sent in corpus.iter().take(limit) {
        if sent.len() < 2 {
            continue;
        }
        let mask_pos = sent.len() - 1;
        let tokens: Vec<LmToken> = sent
            .iter()
            .enumerate()
            .map(|(p, &t)| LmToken::Vocab(if p == mask_pos { mask_token } else { t }))
            .collect();
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, lm.store(), false);
        let logits = lm.mask_logits(&ctx, &tokens, None, mask_pos, &mut rng);
        let logits = tape.get(logits);
        let data = logits.data();
        let max = data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let lse = max + data.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
        total += data[sent[mask_pos] as usize] - lse;
        n += 1;
    }
    total / n.max(1) as f32
}

/// Top-1 mask-filling accuracy over (up to) `limit` documents, masking the
/// last position of each — a quick pretraining health check.
pub fn mlm_accuracy(lm: &MiniLm, corpus: &[Vec<u32>], mask_token: u32, limit: usize) -> f32 {
    let mut hits = 0usize;
    let mut total = 0usize;
    let mut rng = StdRng::seed_from_u64(0);
    for sent in corpus.iter().take(limit) {
        if sent.len() < 2 {
            continue;
        }
        let mask_pos = sent.len() - 1;
        let tokens: Vec<LmToken> = sent
            .iter()
            .enumerate()
            .map(|(p, &t)| LmToken::Vocab(if p == mask_pos { mask_token } else { t }))
            .collect();
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, lm.store(), false);
        let logits = lm.mask_logits(&ctx, &tokens, None, mask_pos, &mut rng);
        if tape.get(logits).argmax() == sent[mask_pos] as usize {
            hits += 1;
        }
        total += 1;
    }
    hits as f32 / total.max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MiniLmConfig;

    /// A tiny synthetic corpus with a deterministic pattern: token 2i is
    /// always followed by 2i+1.
    fn pattern_corpus(pairs: usize) -> Vec<Vec<u32>> {
        let mut corpus = Vec::new();
        for _ in 0..8 {
            for i in 0..pairs {
                corpus.push(vec![4 + 2 * i as u32, 5 + 2 * i as u32]);
            }
        }
        corpus
    }

    #[test]
    fn pretraining_reduces_loss_and_learns_the_pattern() {
        let corpus = pattern_corpus(5);
        let mut cfg = MiniLmConfig::large(20);
        cfg.dropout = 0.0;
        let mut lm = MiniLm::new(cfg, 1);
        let before = mlm_accuracy(&lm, &corpus, 1, 40);
        let losses = pretrain_mlm(
            &mut lm,
            &corpus,
            1,
            &PretrainConfig {
                epochs: 14,
                batch_size: 8,
                lr: 5e-3,
                mask_prob: 0.5,
                ..Default::default()
            },
        );
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "loss should fall: {losses:?}"
        );
        let after = mlm_accuracy(&lm, &corpus, 1, 40);
        assert!(
            after > before.max(0.5),
            "pattern should be learned: before {before}, after {after}"
        );
    }

    #[test]
    fn multi_mask_pretraining_handles_long_documents() {
        // One long repeated-pattern document: positions must all train.
        let doc: Vec<u32> = (0..60).map(|i| 4 + (i % 6) as u32).collect();
        let corpus = vec![doc; 8];
        let mut cfg = MiniLmConfig::large(16);
        cfg.dropout = 0.0;
        let mut lm = MiniLm::new(cfg, 2);
        let losses = pretrain_mlm(
            &mut lm,
            &corpus,
            1,
            &PretrainConfig {
                epochs: 6,
                ..Default::default()
            },
        );
        assert!(losses.iter().all(|l| l.is_finite()));
        assert!(losses.last().unwrap() < losses.first().unwrap());
    }
}
