//! Soft prompts: trainable prompt embeddings (paper §III-B).
//!
//! Soft prompts are "words that exist only for the model": rows of a
//! trainable matrix in the LM's embedding space, spliced into the prompt via
//! [`crate::LmToken::Soft`]. They are randomly initialized (Eq. 2) and move
//! through the language space as the distillation tasks train them.

use delrec_tensor::{init, Ctx, ParamId, ParamStore, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A soft-prompt table: `k` trainable vectors of the LM embedding width.
#[derive(Clone, Copy, Debug)]
pub struct SoftPrompt {
    table: ParamId,
    /// Number of soft prompt tokens `k`.
    pub k: usize,
    /// Embedding width.
    pub dim: usize,
}

impl SoftPrompt {
    /// Name prefix under which soft-prompt parameters are registered.
    pub const PREFIX: &'static str = "soft_prompt.";

    /// Randomly initialize `k` soft prompts in the given store (`f_iniz` of
    /// Eq. 2: same dimension as the LM word embeddings, normal init).
    pub fn init(store: &mut ParamStore, name: &str, k: usize, dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let table = store.add(
            format!("{}{name}", Self::PREFIX),
            init::normal([k, dim], 0.05, &mut rng),
        );
        SoftPrompt { table, k, dim }
    }

    /// Bind the table into a tape.
    pub fn var(&self, ctx: &Ctx<'_>) -> Var {
        ctx.p(self.table)
    }

    /// Freeze/unfreeze the table (Stage 1 trains it; Stage 2 freezes it).
    pub fn set_trainable(&self, store: &mut ParamStore, trainable: bool) {
        store.set_trainable(self.table, trainable);
    }

    /// Current values (for inspection / the Ablation-I "untrained" variant).
    pub fn values<'a>(&self, store: &'a ParamStore) -> &'a Tensor {
        store.get(self.table)
    }

    /// Overwrite the table (e.g. re-randomize for the `w USP` ablation).
    pub fn set_values(&self, store: &mut ParamStore, values: Tensor) {
        assert_eq!(
            values.shape(),
            store.shape_of(self.table),
            "soft prompt shape mismatch"
        );
        *store.get_mut(self.table) = values;
    }

    /// The `k` tokens that splice this table into a prompt, in order.
    pub fn tokens(&self) -> Vec<crate::LmToken> {
        (0..self.k).map(crate::LmToken::Soft).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_registers_k_by_dim() {
        let mut store = ParamStore::new();
        let sp = SoftPrompt::init(&mut store, "stage1", 8, 16, 3);
        assert_eq!(sp.values(&store).shape().dim(0), 8);
        assert_eq!(sp.values(&store).shape().dim(1), 16);
        assert_eq!(sp.tokens().len(), 8);
    }

    #[test]
    fn init_is_random_not_zero() {
        let mut store = ParamStore::new();
        let sp = SoftPrompt::init(&mut store, "s", 4, 8, 3);
        assert!(sp.values(&store).l2_norm() > 0.0);
    }

    #[test]
    fn freeze_controls_trainability() {
        let mut store = ParamStore::new();
        let sp = SoftPrompt::init(&mut store, "s", 4, 8, 3);
        assert_eq!(store.num_trainable_scalars(), 32);
        sp.set_trainable(&mut store, false);
        assert_eq!(store.num_trainable_scalars(), 0);
    }

    #[test]
    fn distinct_seeds_give_distinct_prompts() {
        let mut s1 = ParamStore::new();
        let mut s2 = ParamStore::new();
        let a = SoftPrompt::init(&mut s1, "s", 4, 8, 3);
        let b = SoftPrompt::init(&mut s2, "s", 4, 8, 4);
        assert_ne!(a.values(&s1).data(), b.values(&s2).data());
    }
}
