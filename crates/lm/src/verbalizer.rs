//! The verbalizer: converts LM-head token scores at the mask position into
//! ranking scores over candidate items (paper §IV-B: "a simple verbalizer to
//! effectively convert the output of the LLM head … into ranking scores for
//! all items").
//!
//! A candidate item's score is the mean log-probability its title tokens get
//! at the mask. This keeps multi-word titles comparable regardless of length.

use delrec_tensor::infer::log_sum_exp_mode;
use delrec_tensor::{MathMode, Tape, Tensor, Var};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Memoized candidate-title token lookups, keyed by a caller-computed hash
/// of the candidate item ids.
///
/// Evaluation resolves every candidate's title tokens per example, but
/// candidate sets recur heavily within a run (the leave-one-out sampler
/// draws from a fixed catalog with a fixed seed), so the resolved
/// `Vec<Vec<u32>>` is built once per distinct set and shared via [`Arc`].
/// The map sits behind a [`Mutex`] so `&self` scoring paths — including
/// concurrent serving workers sharing one model — can all consult it; a
/// build race costs one redundant title resolution, never a wrong entry.
///
/// The key is a 64-bit hash of the full candidate id list; the caller is
/// responsible for hashing every id (not a truncation), which makes
/// collisions vanishingly unlikely at eval-run scale but not impossible —
/// use only where a collision costs a wrong score, never for training.
#[derive(Default)]
pub struct TitleCache {
    map: Mutex<HashMap<u64, Arc<Vec<Vec<u32>>>>>,
}

impl TitleCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The titles stored under `key`, building them on first sight. The lock
    /// is not held while `build` runs, so concurrent first sights of one key
    /// may both build; whichever inserts last wins (the values are equal).
    pub fn get_or_build(
        &self,
        key: u64,
        build: impl FnOnce() -> Vec<Vec<u32>>,
    ) -> Arc<Vec<Vec<u32>>> {
        if let Some(hit) = self.map.lock().unwrap().get(&key) {
            delrec_obs::counter!("lm.title_cache.hit").incr();
            return Arc::clone(hit);
        }
        delrec_obs::counter!("lm.title_cache.miss").incr();
        let built = Arc::new(build());
        self.map.lock().unwrap().insert(key, Arc::clone(&built));
        built
    }

    /// Number of distinct candidate sets cached.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.lock().unwrap().is_empty()
    }

    /// Drop all cached sets (e.g. when the item catalog changes).
    pub fn clear(&self) {
        self.map.lock().unwrap().clear();
    }
}

/// Differentiable candidate scores `[m]` from mask logits `[vocab]`.
///
/// Used in training: cross-entropy over these scores is the per-example loss
/// of every DELRec stage.
pub fn candidate_scores(tape: &Tape, logits: Var, candidates: &[Vec<u32>]) -> Var {
    assert!(!candidates.is_empty(), "no candidates");
    let v = tape.get(logits).numel();
    let col = tape.reshape(logits, [v, 1]);
    let log_probs = {
        // log-softmax over the vocabulary, shaped [v, 1] for row gathering.
        let row = tape.reshape(col, [1, v]);
        let ls = tape.log_softmax(row);
        tape.reshape(ls, [v, 1])
    };
    let mut scores = Vec::with_capacity(candidates.len());
    for cand in candidates {
        assert!(!cand.is_empty(), "candidate with empty title");
        let idx: Vec<usize> = cand.iter().map(|&t| t as usize).collect();
        let rows = tape.gather_rows(log_probs, &idx);
        let mean = tape.mean_rows(rows); // [1]
        scores.push(mean);
    }
    let stacked = tape.stack_rows(&scores); // [m, 1]
    tape.reshape(stacked, [candidates.len()])
}

/// Batched differentiable candidate scores: `[B, m]` from mask logits
/// `[B, vocab]`, one row of scores per example.
///
/// Every example must offer the same number of candidates `m` (DELRec's
/// training streams are built that way), so the result feeds a single
/// batched cross-entropy. The log-softmax runs once over all `B` rows, and
/// the per-candidate means collapse into one averaging matmul instead of
/// `B·m` gather/mean/stack nodes.
pub fn candidate_scores_batch(tape: &Tape, logits: Var, candidate_sets: &[&[Vec<u32>]]) -> Var {
    let bsz = candidate_sets.len();
    assert!(bsz > 0, "no examples");
    let m = candidate_sets[0].len();
    assert!(m > 0, "no candidates");
    let v = {
        let shape = tape.shape_of(logits);
        assert_eq!(shape.rank(), 2, "expected [B, vocab] logits");
        assert_eq!(shape.dim(0), bsz, "one candidate set per logits row");
        shape.dim(1)
    };
    let log_probs = tape.log_softmax(logits);
    let flat = tape.reshape(log_probs, [bsz * v, 1]);
    // One gather of every candidate token (offset into its example's row),
    // then a constant [B·m, total_tokens] averaging matrix whose row c holds
    // 1/|title_c| over c's token span.
    let mut idx = Vec::new();
    let mut spans = Vec::with_capacity(bsz * m);
    for (b, cands) in candidate_sets.iter().enumerate() {
        assert_eq!(cands.len(), m, "examples must share the candidate count");
        for cand in *cands {
            assert!(!cand.is_empty(), "candidate with empty title");
            let start = idx.len();
            idx.extend(cand.iter().map(|&t| b * v + t as usize));
            spans.push((start, cand.len()));
        }
    }
    let gathered = tape.gather_rows(flat, &idx);
    let total = idx.len();
    let mut avg = vec![0.0f32; spans.len() * total];
    for (c, &(start, len)) in spans.iter().enumerate() {
        let w = 1.0 / len as f32;
        for t in start..start + len {
            avg[c * total + t] = w;
        }
    }
    let avg = tape.constant(Tensor::new([spans.len(), total], avg));
    let scores = tape.matmul(avg, gathered);
    tape.reshape(scores, [bsz, m])
}

/// Non-autograd ranking: mean log-probability per candidate.
pub fn rank_candidates(logits: &Tensor, candidates: &[Vec<u32>]) -> Vec<f32> {
    rank_row(logits.data(), candidates, MathMode::Exact)
}

/// Non-autograd ranking over a batch: `logits` is `[B, vocab]` (one row per
/// example, e.g. from a batched mask-logits pass) and `candidate_sets[b]`
/// holds example `b`'s candidate titles. Row `b` of the result is exactly
/// [`rank_candidates`] of row `b` — candidate sets may differ in size.
pub fn rank_candidates_batch(logits: &Tensor, candidate_sets: &[&[Vec<u32>]]) -> Vec<Vec<f32>> {
    rank_candidates_batch_mode(logits, candidate_sets, MathMode::Exact)
}

/// [`rank_candidates_batch`] with an explicit [`MathMode`]: the inference
/// engine's scoring path, where `Fast` swaps the normalizer's `exp` for the
/// polynomial kernel. `Exact` is bitwise identical to the default ranker.
pub fn rank_candidates_batch_mode(
    logits: &Tensor,
    candidate_sets: &[&[Vec<u32>]],
    math: MathMode,
) -> Vec<Vec<f32>> {
    let _span = delrec_obs::span!("lm.verbalize");
    assert_eq!(logits.shape().rank(), 2, "expected [B, vocab] logits");
    assert_eq!(
        logits.shape().dim(0),
        candidate_sets.len(),
        "one candidate set per logits row"
    );
    candidate_sets
        .iter()
        .enumerate()
        .map(|(b, cands)| rank_row(logits.row(b), cands, math))
        .collect()
}

fn rank_row(data: &[f32], candidates: &[Vec<u32>], math: MathMode) -> Vec<f32> {
    let lse = log_sum_exp_mode(data, math);
    candidates
        .iter()
        .map(|cand| cand.iter().map(|&t| data[t as usize] - lse).sum::<f32>() / cand.len() as f32)
        .collect()
}

/// Per-token score breakdown for one candidate: `(token, log-probability)`
/// pairs whose mean is the candidate's ranking score. This is the
/// interpretability hook the paper's third-paradigm critique alludes to —
/// a DELRec recommendation decomposes into which title words the model
/// believed in.
pub fn explain_candidate(logits: &Tensor, title: &[u32]) -> Vec<(u32, f32)> {
    let data = logits.data();
    let lse = log_sum_exp_mode(data, MathMode::Exact);
    title.iter().map(|&t| (t, data[t as usize] - lse)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn favours_candidates_with_high_logit_tokens() {
        let mut logits = vec![0.0f32; 10];
        logits[3] = 5.0;
        logits[4] = 5.0;
        let logits = Tensor::from_vec(logits);
        let scores = rank_candidates(&logits, &[vec![3, 4], vec![7, 8]]);
        assert!(scores[0] > scores[1]);
    }

    #[test]
    fn length_normalization_keeps_titles_comparable() {
        // One strong token repeated vs. the same strong token once: equal
        // mean scores.
        let mut logits = vec![0.0f32; 10];
        logits[2] = 3.0;
        let logits = Tensor::from_vec(logits);
        let scores = rank_candidates(&logits, &[vec![2], vec![2, 2]]);
        assert!((scores[0] - scores[1]).abs() < 1e-6);
    }

    #[test]
    fn tape_scores_match_plain_scores() {
        let tape = Tape::new();
        let raw = vec![0.3, -1.0, 2.0, 0.7, -0.2];
        let logits = tape.leaf(Tensor::from_vec(raw.clone()));
        let cands = vec![vec![0u32, 2], vec![1], vec![3, 4]];
        let on_tape = tape.get(candidate_scores(&tape, logits, &cands));
        let plain = rank_candidates(&Tensor::from_vec(raw), &cands);
        for (a, b) in on_tape.data().iter().zip(&plain) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn batched_scores_match_per_example_scores() {
        let tape = Tape::new();
        let raw = vec![
            0.3, -1.0, 2.0, 0.7, -0.2, // example 0
            1.1, 0.4, -0.9, 0.0, 2.5, // example 1
        ];
        let logits = tape.leaf(Tensor::new([2, 5], raw.clone()));
        let sets: Vec<Vec<Vec<u32>>> = vec![
            vec![vec![0, 2], vec![1], vec![3, 4]],
            vec![vec![4], vec![2, 3], vec![0, 1, 2]],
        ];
        let set_refs: Vec<&[Vec<u32>]> = sets.iter().map(|s| s.as_slice()).collect();
        let batched = tape.get(candidate_scores_batch(&tape, logits, &set_refs));
        assert_eq!(batched.shape().dim(0), 2);
        assert_eq!(batched.shape().dim(1), 3);
        for b in 0..2 {
            let row = Tensor::from_vec(raw[b * 5..(b + 1) * 5].to_vec());
            let single = rank_candidates(&row, &sets[b]);
            for (got, want) in batched.row(b).iter().zip(&single) {
                assert!((got - want).abs() < 1e-5, "b={b}: {got} vs {want}");
            }
        }
        // The non-autograd batch ranker agrees too.
        let plain = rank_candidates_batch(&Tensor::new([2, 5], raw), &set_refs);
        for (b, plain_row) in plain.iter().enumerate() {
            for (got, want) in plain_row.iter().zip(batched.row(b)) {
                assert!((got - want).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn batched_scores_backpropagate() {
        let tape = Tape::new();
        let logits = tape.leaf(Tensor::new(
            [2, 4],
            vec![0.1, 0.2, 0.3, 0.4, -0.5, 0.0, 0.5, 1.0],
        ));
        let sets: Vec<Vec<Vec<u32>>> = vec![vec![vec![0], vec![2, 3]], vec![vec![1, 2], vec![3]]];
        let set_refs: Vec<&[Vec<u32>]> = sets.iter().map(|s| s.as_slice()).collect();
        let scores = candidate_scores_batch(&tape, logits, &set_refs);
        let loss = tape.cross_entropy(scores, &[0, 1]);
        let grads = tape.backward(loss);
        let g = grads.get(logits).expect("logits must receive gradient");
        assert!(g.l2_norm() > 0.0);
    }

    #[test]
    fn explanation_mean_equals_candidate_score() {
        let logits = Tensor::from_vec(vec![0.3, -1.0, 2.0, 0.7, -0.2]);
        let title = vec![0u32, 2, 4];
        let parts = explain_candidate(&logits, &title);
        assert_eq!(parts.len(), 3);
        let mean: f32 = parts.iter().map(|(_, s)| s).sum::<f32>() / 3.0;
        let score = rank_candidates(&logits, &[title])[0];
        assert!((mean - score).abs() < 1e-6);
        // Scores are log-probabilities: all negative for a multi-token vocab.
        assert!(parts.iter().all(|&(_, s)| s < 0.0));
    }

    #[test]
    fn mode_ranker_is_exact_by_default_and_close_in_fast() {
        let logits = Tensor::new([1, 6], vec![0.3, -1.0, 2.0, 0.7, -0.2, 1.4]);
        let sets: Vec<Vec<Vec<u32>>> = vec![vec![vec![0, 2], vec![1], vec![3, 4, 5]]];
        let set_refs: Vec<&[Vec<u32>]> = sets.iter().map(|s| s.as_slice()).collect();
        let exact = rank_candidates_batch(&logits, &set_refs);
        let exact_mode = rank_candidates_batch_mode(&logits, &set_refs, MathMode::Exact);
        assert_eq!(exact, exact_mode, "Exact mode must be bitwise identical");
        let fast = rank_candidates_batch_mode(&logits, &set_refs, MathMode::Fast);
        for (a, b) in exact[0].iter().zip(&fast[0]) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn title_cache_builds_once_per_key() {
        let cache = TitleCache::new();
        let mut builds = 0;
        for _ in 0..3 {
            let titles = cache.get_or_build(42, || {
                builds += 1;
                vec![vec![1, 2], vec![3]]
            });
            assert_eq!(titles.len(), 2);
        }
        let other = cache.get_or_build(7, || {
            builds += 1;
            vec![vec![9]]
        });
        assert_eq!(other.len(), 1);
        assert_eq!(builds, 2, "one build per distinct key");
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn gradient_reaches_the_logits() {
        let tape = Tape::new();
        let logits = tape.leaf(Tensor::from_vec(vec![0.1, 0.2, 0.3, 0.4]));
        let cands = vec![vec![0u32], vec![2u32, 3]];
        let scores = candidate_scores(&tape, logits, &cands);
        let row = tape.reshape(scores, [1, 2]);
        let loss = tape.cross_entropy(row, &[0]);
        let grads = tape.backward(loss);
        let g = grads.get(logits).expect("logits must receive gradient");
        assert!(g.l2_norm() > 0.0);
    }
}
