//! Principal component analysis via power iteration with deflation.
//!
//! The LLM2BERT4Rec baseline (paper §II-B) reduces LLM embedding
//! dimensionality with PCA before initializing BERT4Rec's item table — this
//! module is that projector. The paper's point is that such projectors *lose
//! information*; implementing PCA honestly lets Table II demonstrate it.

/// Fit the top-`k` principal components of row-major `data` (`n × d`).
/// Returns the components as `k` unit vectors of length `d`.
pub fn fit_components(data: &[Vec<f32>], k: usize, iterations: usize) -> Vec<Vec<f32>> {
    assert!(!data.is_empty(), "empty data");
    let d = data[0].len();
    assert!(k <= d, "cannot extract {k} components from dimension {d}");
    let n = data.len();
    // Center.
    let mut mean = vec![0.0f32; d];
    for row in data {
        for (m, &v) in mean.iter_mut().zip(row) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n as f32;
    }
    let mut centered: Vec<Vec<f32>> = data
        .iter()
        .map(|row| row.iter().zip(&mean).map(|(&v, &m)| v - m).collect())
        .collect();

    let mut components = Vec::with_capacity(k);
    for ci in 0..k {
        // Power iteration on X^T X without forming it.
        let mut v: Vec<f32> = (0..d)
            .map(|i| if (i + ci) % 2 == 0 { 1.0 } else { -0.5 })
            .collect();
        normalize(&mut v);
        for _ in 0..iterations {
            // w = X^T (X v)
            let mut w = vec![0.0f32; d];
            for row in &centered {
                let dot: f32 = row.iter().zip(&v).map(|(&a, &b)| a * b).sum();
                for (wi, &ri) in w.iter_mut().zip(row) {
                    *wi += dot * ri;
                }
            }
            let norm = normalize(&mut w);
            if norm < 1e-12 {
                break;
            }
            v = w;
        }
        // Deflate: remove the component from the data.
        for row in &mut centered {
            let dot: f32 = row.iter().zip(&v).map(|(&a, &b)| a * b).sum();
            for (ri, &vi) in row.iter_mut().zip(&v) {
                *ri -= dot * vi;
            }
        }
        components.push(v);
    }
    components
}

/// Project each data row onto the fitted components → `n × k`.
pub fn project(data: &[Vec<f32>], components: &[Vec<f32>]) -> Vec<Vec<f32>> {
    data.iter()
        .map(|row| {
            components
                .iter()
                .map(|c| row.iter().zip(c).map(|(&a, &b)| a * b).sum())
                .collect()
        })
        .collect()
}

fn normalize(v: &mut [f32]) -> f32 {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn first_component_finds_dominant_direction() {
        // Data varies strongly along (1, 1)/√2 and weakly along (1, -1)/√2.
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<Vec<f32>> = (0..200)
            .map(|_| {
                let a: f32 = rng.random_range(-3.0..3.0);
                let b: f32 = rng.random_range(-0.1..0.1);
                vec![a + b, a - b]
            })
            .collect();
        let comps = fit_components(&data, 1, 50);
        let c = &comps[0];
        let along = (c[0] + c[1]).abs() / 2f32.sqrt();
        assert!(along > 0.99, "component {c:?} not aligned with (1,1)");
    }

    #[test]
    fn components_are_orthonormal() {
        let mut rng = StdRng::seed_from_u64(2);
        let data: Vec<Vec<f32>> = (0..100)
            .map(|_| (0..5).map(|_| rng.random_range(-1.0..1.0)).collect())
            .collect();
        let comps = fit_components(&data, 3, 60);
        for i in 0..3 {
            let norm: f32 = comps[i].iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-3);
            for j in 0..i {
                let dot: f32 = comps[i].iter().zip(&comps[j]).map(|(&a, &b)| a * b).sum();
                assert!(dot.abs() < 1e-2, "components {i},{j} not orthogonal: {dot}");
            }
        }
    }

    #[test]
    fn projection_shape_and_variance_ordering() {
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<Vec<f32>> = (0..150)
            .map(|_| {
                let a: f32 = rng.random_range(-5.0..5.0);
                let b: f32 = rng.random_range(-1.0..1.0);
                let c: f32 = rng.random_range(-0.2..0.2);
                vec![a, b, c]
            })
            .collect();
        let comps = fit_components(&data, 2, 50);
        let proj = project(&data, &comps);
        assert_eq!(proj.len(), 150);
        assert_eq!(proj[0].len(), 2);
        let var = |k: usize| {
            let mean: f32 = proj.iter().map(|r| r[k]).sum::<f32>() / proj.len() as f32;
            proj.iter().map(|r| (r[k] - mean).powi(2)).sum::<f32>() / proj.len() as f32
        };
        assert!(
            var(0) > var(1),
            "first component must capture more variance"
        );
    }
}
