//! MiniLM — the language-model substrate standing in for Flan-T5.
//!
//! DELRec needs three things from its LLM backbone:
//!
//! 1. **mask filling over a token vocabulary** (the paper frames every task
//!    as masked-language modelling and picks Flan-T5 for exactly that);
//! 2. **prompts as embedding sequences**, so trainable *soft prompts* can be
//!    spliced between hard tokens (Eq. 1–2 of the paper);
//! 3. **pretrained semantic knowledge of item titles** — the "world
//!    knowledge" a real LLM brings.
//!
//! MiniLM provides all three from scratch: a bidirectional transformer
//! encoder with a tied-embedding MLM head ([`transformer`]), token streams
//! that mix vocabulary ids with soft-prompt slots ([`LmToken`]), MLM
//! pretraining over the synthetic world-knowledge corpus ([`pretrain`]), a
//! candidate [`verbalizer`] converting token scores into item ranking
//! scores, and [`adalora`] adapters for parameter-efficient fine-tuning.
//!
//! Two presets mirror the paper's backbones: [`MiniLmConfig::xl`]
//! (Flan-T5-XL stand-in) and [`MiniLmConfig::large`] (Flan-T5-Large
//! stand-in, used by the "w Flan-T5-Large" ablation).

#![warn(missing_docs)]

pub mod adalora;
pub mod config;
pub mod infer;
pub mod pca;
pub mod pretrain;
pub mod soft_prompt;
pub mod transformer;
pub mod verbalizer;

pub use adalora::{AdaLora, AdaLoraConfig};
pub use config::MiniLmConfig;
pub use infer::PrefixCache;
pub use pretrain::{pretrain_mlm, PretrainConfig};
pub use soft_prompt::SoftPrompt;
pub use transformer::{LmToken, MiniLm};
pub use verbalizer::TitleCache;
