//! The quantized weight-pack path (`MathMode::Quantized`): the dual-slot
//! pack cache keys on (store version, pack format), so f32 and int8 packs
//! coexist and invalidate independently; quantized logits stay close to
//! exact; and the quantized kernel is thread-count deterministic.
//!
//! Counters are process-global and other tests may run concurrently in this
//! binary's process, so assertions are on deltas being *at least* the
//! expected amount, never exact totals.

use delrec_lm::{LmToken, MiniLm, MiniLmConfig};
use delrec_obs::MetricValue;
use delrec_par::{with_pool, ThreadPool};
use delrec_tensor::{Ctx, InferCtx, MathMode, Tape, Tensor};

fn toks(ids: &[u32]) -> Vec<LmToken> {
    ids.iter().map(|&w| LmToken::Vocab(w)).collect()
}

fn counter(name: &str) -> u64 {
    delrec_obs::global()
        .snapshot()
        .into_iter()
        .find_map(|(n, v)| match v {
            MetricValue::Counter(c) if n == name => Some(c),
            _ => None,
        })
        .unwrap_or(0)
}

fn test_model() -> (MiniLm, Vec<Vec<LmToken>>, Vec<usize>) {
    let mut cfg = MiniLmConfig::large(60);
    cfg.dropout = 0.0;
    let lm = MiniLm::new(cfg, 23);
    let seqs = vec![
        toks(&[5, 6, 1, 7, 2, 9]),
        toks(&[5, 6, 1, 3]),
        toks(&[5, 6, 1, 8, 4]),
    ];
    let mask_pos = vec![5usize, 3, 4];
    (lm, seqs, mask_pos)
}

fn score(lm: &MiniLm, ic: &InferCtx, seqs: &[Vec<LmToken>], mask_pos: &[usize]) -> Tensor {
    lm.mask_logits_infer_batch(ic, seqs, None, mask_pos, None)
}

/// Exact ↔ Quantized ↔ Exact: each mode builds its own pack slot exactly
/// once, switching back hits the still-cached slot without a rebuild, and
/// exact scores come back bitwise identical to the tape reference.
#[test]
fn mode_switch_rebuilds_the_right_pack_and_exact_stays_on_tape() {
    let (lm, seqs, mask_pos) = test_model();
    let exact = InferCtx::new(MathMode::Exact);
    let quant = InferCtx::new(MathMode::Quantized);

    // Tape reference for the exact scores.
    let tape = Tape::new();
    let ctx = Ctx::new(&tape, lm.store(), false);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    let want = tape.get(lm.mask_logits_batch(&ctx, &seqs, None, &mask_pos, &mut rng));

    let b0 = counter("lm.weight_pack.build");
    let q0 = counter("lm.weight_pack.build_q8");
    let exact_scores = score(&lm, &exact, &seqs, &mask_pos);
    assert!(
        counter("lm.weight_pack.build") > b0,
        "first exact forward must build the f32 pack"
    );
    assert_eq!(
        counter("lm.weight_pack.build_q8"),
        q0,
        "exact forward must not touch the q8 slot"
    );
    assert_eq!(
        exact_scores.data(),
        want.data(),
        "exact engine must mirror the tape bitwise"
    );

    // Switch to quantized: builds the q8 slot, leaves the f32 slot alone.
    let b1 = counter("lm.weight_pack.build");
    let quant_scores = score(&lm, &quant, &seqs, &mask_pos);
    assert!(
        counter("lm.weight_pack.build_q8") > q0,
        "first quantized forward must build the q8 pack"
    );
    assert_eq!(
        counter("lm.weight_pack.build"),
        b1,
        "quantized forward must not rebuild the f32 slot"
    );

    // Switch back: the f32 slot is still valid — a hit, not a rebuild — and
    // the scores reproduce the tape bit for bit again.
    let b2 = counter("lm.weight_pack.build");
    let q2 = counter("lm.weight_pack.build_q8");
    let h2 = counter("lm.weight_pack.hit");
    let back = score(&lm, &exact, &seqs, &mask_pos);
    assert_eq!(counter("lm.weight_pack.build"), b2, "no f32 rebuild");
    assert_eq!(counter("lm.weight_pack.build_q8"), q2, "no q8 rebuild");
    assert!(counter("lm.weight_pack.hit") > h2, "f32 slot must hit");
    assert_eq!(
        back.data(),
        want.data(),
        "exact scores after a quantized round-trip must stay on the tape"
    );

    // And the q8 slot survives too.
    let hq = counter("lm.weight_pack.hit_q8");
    let again = score(&lm, &quant, &seqs, &mask_pos);
    assert!(counter("lm.weight_pack.hit_q8") > hq, "q8 slot must hit");
    assert_eq!(
        again.data(),
        quant_scores.data(),
        "cached q8 pack changes nothing"
    );
}

/// Quantizing the weights perturbs each panel column by at most
/// maxabs/254, so the logits must move — proving the int8 path actually
/// runs — but only slightly.
#[test]
fn quantized_logits_stay_close_to_exact() {
    let (lm, seqs, mask_pos) = test_model();
    let exact_scores = score(&lm, &InferCtx::new(MathMode::Exact), &seqs, &mask_pos);
    let quant_scores = score(&lm, &InferCtx::new(MathMode::Quantized), &seqs, &mask_pos);
    assert_eq!(exact_scores.data().len(), quant_scores.data().len());
    let mut max_abs = 0.0f32;
    for (&e, &q) in exact_scores.data().iter().zip(quant_scores.data()) {
        assert!(q.is_finite(), "quantized logits must stay finite");
        max_abs = max_abs.max((e - q).abs());
    }
    assert!(max_abs > 0.0, "int8 panels must actually change the bits");
    assert!(
        max_abs < 0.5,
        "quantized logits drifted {max_abs} from exact — far beyond the \
         per-weight 1/254 quantization error propagated through one layer"
    );
}

/// A parameter write invalidates *both* pack slots independently.
#[test]
fn version_bump_invalidates_both_slots() {
    let (mut lm, seqs, mask_pos) = test_model();
    let exact = InferCtx::new(MathMode::Exact);
    let quant = InferCtx::new(MathMode::Quantized);
    let before_exact = score(&lm, &exact, &seqs, &mask_pos);
    let before_quant = score(&lm, &quant, &seqs, &mask_pos);

    let id = lm.store().id_of("lm.b0.h0.wq").unwrap();
    lm.store_mut().get_mut(id).data_mut()[0] += 0.5;

    let b = counter("lm.weight_pack.build");
    let q = counter("lm.weight_pack.build_q8");
    let after_exact = score(&lm, &exact, &seqs, &mask_pos);
    let after_quant = score(&lm, &quant, &seqs, &mask_pos);
    assert!(
        counter("lm.weight_pack.build") > b,
        "stale f32 slot repacks"
    );
    assert!(
        counter("lm.weight_pack.build_q8") > q,
        "stale q8 slot repacks"
    );
    assert_ne!(before_exact.data(), after_exact.data());
    assert_ne!(before_quant.data(), after_quant.data());
}

/// Quantized scoring is bitwise identical at every thread count: the q8
/// parallel driver mirrors the f32 one, redistributing disjoint output
/// regions without changing any element's accumulation order.
#[test]
fn quantized_scores_are_thread_count_deterministic() {
    let (lm, seqs, mask_pos) = test_model();
    let ic = InferCtx::new(MathMode::Quantized);
    let serial = ThreadPool::new(1);
    let want = with_pool(&serial, || score(&lm, &ic, &seqs, &mask_pos));
    for lanes in [2usize, 4, 8] {
        let pool = ThreadPool::new(lanes);
        let got = with_pool(&pool, || score(&lm, &ic, &seqs, &mask_pos));
        assert_eq!(
            want.data(),
            got.data(),
            "quantized logits diverged at {lanes} lanes"
        );
    }
}

/// The legacy per-head projection path never touches weight packs, so
/// `Quantized` mode must leave it bitwise identical to `Exact` (the mode
/// only changes panel storage; transcendentals stay exact).
#[test]
fn legacy_per_head_path_ignores_quantized_mode() {
    let (mut lm, seqs, mask_pos) = test_model();
    lm.set_fused_projections(false);
    let exact_scores = score(&lm, &InferCtx::new(MathMode::Exact), &seqs, &mask_pos);
    let quant_scores = score(&lm, &InferCtx::new(MathMode::Quantized), &seqs, &mask_pos);
    assert_eq!(
        exact_scores.data(),
        quant_scores.data(),
        "per-head path has no packs to quantize — modes must agree bitwise"
    );
}
