//! WeightPack invalidation: a parameter-store version bump forces a repack,
//! and the repacked scores are bitwise-identical to a fresh pack — the
//! mirror of `prefix_cache_invalidation.rs` for the packed weight panels.
//!
//! The pack cache is internal (built lazily inside the fused forward), so
//! this test observes it through its two public surfaces: the
//! `lm.weight_pack.build` / `lm.weight_pack.hit` obs counters, and the
//! scores themselves. The fresh-pack reference comes from a `Clone` of the
//! mutated model: cloning deliberately resets the pack slot (two clones have
//! independent stores whose version counters advance from identical values),
//! so the clone packs from scratch while the original must detect staleness
//! on its own.
//!
//! Counters are process-global and other tests may run concurrently in this
//! binary's process, so assertions are on deltas being *at least* the
//! expected amount, never exact totals.

use delrec_lm::{LmToken, MiniLm, MiniLmConfig};
use delrec_obs::MetricValue;
use delrec_tensor::{InferCtx, MathMode, Tensor};

fn toks(ids: &[u32]) -> Vec<LmToken> {
    ids.iter().map(|&w| LmToken::Vocab(w)).collect()
}

fn counter(name: &str) -> u64 {
    delrec_obs::global()
        .snapshot()
        .into_iter()
        .find_map(|(n, v)| match v {
            MetricValue::Counter(c) if n == name => Some(c),
            _ => None,
        })
        .unwrap_or(0)
}

fn score(lm: &MiniLm, ic: &InferCtx, seqs: &[Vec<LmToken>], mask_pos: &[usize]) -> Tensor {
    lm.mask_logits_infer_batch(ic, seqs, None, mask_pos, None)
}

#[test]
fn version_bump_forces_repack_bitwise_identical_to_fresh_pack() {
    let mut cfg = MiniLmConfig::large(60);
    cfg.dropout = 0.0;
    let mut lm = MiniLm::new(cfg, 17);
    assert!(lm.fused_projections(), "fused path must be the default");
    let seqs = vec![
        toks(&[5, 6, 1, 7, 2, 9]),
        toks(&[5, 6, 1, 3]),
        toks(&[5, 6, 1, 8, 4]),
    ];
    let mask_pos = [5usize, 3, 4];
    let ic = InferCtx::new(MathMode::Exact);

    // First forward builds the pack; repeat forwards hit the cached one.
    let b0 = counter("lm.weight_pack.build");
    let h0 = counter("lm.weight_pack.hit");
    let before = score(&lm, &ic, &seqs, &mask_pos);
    assert!(
        counter("lm.weight_pack.build") > b0,
        "first forward must build the pack"
    );
    let b1 = counter("lm.weight_pack.build");
    let again = score(&lm, &ic, &seqs, &mask_pos);
    assert_eq!(before.data(), again.data(), "cached pack changes nothing");
    assert_eq!(
        counter("lm.weight_pack.build"),
        b1,
        "same-version forward must not repack"
    );
    assert!(
        counter("lm.weight_pack.hit") > h0,
        "same-version forward must hit the cached pack"
    );

    // A parameter write bumps the store version: the next forward repacks.
    let id = lm.store().id_of("lm.b0.h0.wq").unwrap();
    lm.store_mut().get_mut(id).data_mut()[0] += 0.5;
    let b2 = counter("lm.weight_pack.build");
    let repacked = score(&lm, &ic, &seqs, &mask_pos);
    assert!(
        counter("lm.weight_pack.build") > b2,
        "stale version must force a repack"
    );
    assert_ne!(
        before.data(),
        repacked.data(),
        "the weight write must actually change the logits — otherwise the \
         invalidation test proves nothing"
    );

    // Fresh-pack reference: a clone starts with an empty pack slot and
    // packs the mutated weights from scratch.
    let fresh = lm.clone();
    let b3 = counter("lm.weight_pack.build");
    let fresh_scores = score(&fresh, &ic, &seqs, &mask_pos);
    assert!(
        counter("lm.weight_pack.build") > b3,
        "a clone must not inherit the original's pack"
    );
    assert_eq!(
        repacked.data(),
        fresh_scores.data(),
        "repack must be bitwise-identical to a fresh pack"
    );

    // And the repack agrees with the non-packed reference path entirely.
    lm.set_fused_projections(false);
    let legacy = score(&lm, &ic, &seqs, &mask_pos);
    assert_eq!(
        repacked.data(),
        legacy.data(),
        "repack must match the per-head reference bitwise"
    );
}
