//! Bitwise pin of the fused packed-GEMM projection path against both its
//! references, with the full feature load attached (soft prompts + AdaLoRA
//! with non-zero deltas, ragged batches, prefix cache where exact):
//!
//! * **vs the tape** — the autograd forward is the always-correct oracle;
//! * **vs the legacy per-head loop** (`set_fused_projections(false)`) — the
//!   pre-fusion engine path, which the blocked kernel must reproduce bit for
//!   bit because it preserves `matmul_raw`'s per-element accumulation order.
//!
//! Covers single-layer (`large`), multi-layer bidirectional (`xl`), and
//! multi-layer causal (`causal_xl`) presets: multi-layer models exercise the
//! fused `[d, 3d]` panel on every block plus the split q/kv panels on the
//! pruned last block; the causal preset exerces per-row `valid` truncation
//! against the fused strided value rows.

use delrec_lm::adalora::AdaLoraConfig;
use delrec_lm::{LmToken, MiniLm, MiniLmConfig};
use delrec_tensor::{Ctx, InferCtx, MathMode, Tape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn toks(ids: &[u32]) -> Vec<LmToken> {
    ids.iter().map(|&i| LmToken::Vocab(i)).collect()
}

/// A MiniLm with adapters attached and singular values nudged so the AdaLoRA
/// deltas are non-zero — the pack must fold `W + ΔW`, not `W`.
fn adapted_lm(mut cfg: MiniLmConfig, seed: u64) -> MiniLm {
    cfg.dropout = 0.0;
    let mut lm = MiniLm::new(cfg, seed);
    lm.attach_adalora(AdaLoraConfig::default(), seed + 1);
    let mut i = 0;
    while let Some(id) = lm.store().id_of(&format!("adalora.{i}.e")) {
        for v in lm.store_mut().get_mut(id).data_mut() {
            *v = 0.3;
        }
        i += 1;
    }
    assert!(i > 0, "adapters attached");
    lm
}

fn tape_logits(
    lm: &MiniLm,
    seqs: &[Vec<LmToken>],
    soft: Option<&Tensor>,
    mask_pos: &[usize],
) -> Tensor {
    let tape = Tape::new();
    let ctx = Ctx::new(&tape, lm.store(), false);
    let soft_var = soft.map(|t| tape.constant(t.clone()));
    let mut rng = StdRng::seed_from_u64(0);
    tape.get(lm.mask_logits_batch(&ctx, seqs, soft_var, mask_pos, &mut rng))
}

#[test]
fn fused_matches_tape_and_per_head_loop_bitwise() {
    for (name, base) in [
        ("large", MiniLmConfig::large(60)),
        ("xl", MiniLmConfig::xl(60)),
        ("causal_xl", MiniLmConfig::causal_xl(60)),
    ] {
        let mut lm = adapted_lm(base, 23);
        let d = lm.cfg.d_model;
        let soft = Tensor::new([2, d], (0..2 * d).map(|i| 0.01 * i as f32 - 0.1).collect());
        // Shared prefix with soft tokens in it (DELRec's template shape),
        // ragged suffixes, mask at each sequence's end.
        let prefix = vec![
            LmToken::Vocab(5),
            LmToken::Soft(0),
            LmToken::Soft(1),
            LmToken::Vocab(6),
        ];
        let mut seqs: Vec<Vec<LmToken>> = Vec::new();
        for suffix in [&[7u32, 2, 9][..], &[3][..], &[8, 4][..]] {
            let mut s = prefix.clone();
            s.extend(toks(suffix));
            seqs.push(s);
        }
        let mask_pos = [6usize, 4, 5];
        let want = tape_logits(&lm, &seqs, Some(&soft), &mask_pos);

        let ic = InferCtx::new(MathMode::Exact);
        assert!(lm.fused_projections(), "fused path must be the default");
        let fused = lm.mask_logits_infer_batch(&ic, &seqs, Some(&soft), &mask_pos, None);
        assert_eq!(fused.data(), want.data(), "{name}: fused vs tape");

        lm.set_fused_projections(false);
        let legacy = lm.mask_logits_infer_batch(&ic, &seqs, Some(&soft), &mask_pos, None);
        assert_eq!(legacy.data(), fused.data(), "{name}: legacy vs fused");
        lm.set_fused_projections(true);

        // Prefix cache built and consumed by the fused path, where exact.
        let cacheable = lm.cfg.causal || lm.cfg.num_layers == 1;
        let cache = lm.build_prefix_cache(&ic, &prefix, Some(&soft));
        assert_eq!(cache.is_some(), cacheable, "{name}: cache gate");
        if let Some(c) = &cache {
            let cached = lm.mask_logits_infer_batch(&ic, &seqs, Some(&soft), &mask_pos, Some(c));
            assert_eq!(cached.data(), want.data(), "{name}: fused + cache vs tape");
        }
    }
}

/// A cache captured by the legacy path must be byte-interchangeable with one
/// captured by the fused path: scoring through either gives the same bits.
#[test]
fn caches_from_both_paths_are_interchangeable() {
    let mut lm = adapted_lm(MiniLmConfig::large(60), 29);
    let prefix = toks(&[5, 6, 1]);
    let seqs = vec![toks(&[5, 6, 1, 7, 2, 9]), toks(&[5, 6, 1, 3])];
    let mask_pos = [5usize, 3];
    let ic = InferCtx::new(MathMode::Exact);

    let fused_cache = lm.build_prefix_cache(&ic, &prefix, None).unwrap();
    lm.set_fused_projections(false);
    let legacy_cache = lm.build_prefix_cache(&ic, &prefix, None).unwrap();
    let legacy_scores = lm.mask_logits_infer_batch(&ic, &seqs, None, &mask_pos, Some(&fused_cache));
    lm.set_fused_projections(true);
    let fused_scores = lm.mask_logits_infer_batch(&ic, &seqs, None, &mask_pos, Some(&legacy_cache));
    assert_eq!(fused_scores.data(), legacy_scores.data());
}
