//! Batch-composition independence of the inference engine: every row of a
//! batched `mask_logits_infer_batch` call must be bitwise identical to
//! scoring that sequence alone (B=1), whatever its batchmates are.
//!
//! This is the property the serving runtime's correctness bar rests on —
//! micro-batch coalescing must never perturb a request's scores. It once
//! failed: `matmul_raw`'s four-wide accumulation made the attn·V summation
//! association depend on the batch's padded key count `kmax`, shifting low
//! bits whenever `kmax` crossed a multiple-of-four boundary relative to a
//! row's valid key count. `encode_infer` now truncates each query row's
//! attn·V product to its example-local valid keys; these tests pin that,
//! isolating each engine feature (prefix cache, soft prompts, AdaLoRA
//! adapters) that could reintroduce batch-shape dependence.

use delrec_lm::{AdaLoraConfig, LmToken, MiniLm, MiniLmConfig};
use delrec_tensor::{InferCtx, MathMode, Tensor};

fn toks(ids: &[u32]) -> Vec<LmToken> {
    ids.iter().map(|&i| LmToken::Vocab(i)).collect()
}

fn diff_report(
    lm: &MiniLm,
    ic: &InferCtx,
    seqs: &[Vec<LmToken>],
    soft: Option<&Tensor>,
    mask_pos: &[usize],
    cache: Option<&delrec_lm::PrefixCache>,
    label: &str,
) -> usize {
    let batched = lm.mask_logits_infer_batch(ic, seqs, soft, mask_pos, cache);
    let vsz = batched.data().len() / seqs.len();
    let mut total = 0;
    for (i, (s, &mp)) in seqs.iter().zip(mask_pos).enumerate() {
        let solo = lm.mask_logits_infer_batch(ic, std::slice::from_ref(s), soft, &[mp], cache);
        let n = batched.data()[i * vsz..(i + 1) * vsz]
            .iter()
            .zip(solo.data())
            .filter(|(a, b)| a != b)
            .count();
        println!("{label} row {i}: {n}/{vsz} differ");
        total += n;
    }
    total
}

#[test]
fn isolate_cache_only() {
    let mut cfg = MiniLmConfig::large(60);
    cfg.dropout = 0.0;
    let lm = MiniLm::new(cfg, 7);
    let prefix = toks(&[5, 6, 1]);
    let mk = |suffix: &[u32]| {
        let mut s = prefix.clone();
        s.extend(toks(suffix));
        s
    };
    let seqs = vec![mk(&[7, 2, 9]), mk(&[3]), mk(&[8, 4, 1, 2])];
    let mask_pos = [5usize, 3, 6];
    let ic = InferCtx::new(MathMode::Exact);
    let cache = lm
        .build_prefix_cache(&ic, &prefix, None)
        .expect("cacheable");
    assert_eq!(
        diff_report(&lm, &ic, &seqs, None, &mask_pos, Some(&cache), "cache-only"),
        0
    );
}

#[test]
fn isolate_soft_only() {
    let mut cfg = MiniLmConfig::large(60);
    cfg.dropout = 0.0;
    let d = cfg.d_model;
    let lm = MiniLm::new(cfg, 11);
    let soft = Tensor::new([2, d], (0..2 * d).map(|i| 0.01 * i as f32 - 0.1).collect());
    let prefix = vec![
        LmToken::Vocab(5),
        LmToken::Soft(0),
        LmToken::Soft(1),
        LmToken::Vocab(6),
    ];
    let mk = |suffix: &[u32]| {
        let mut s = prefix.clone();
        s.extend(toks(suffix));
        s
    };
    let seqs = vec![mk(&[7, 2, 9]), mk(&[3]), mk(&[8, 4, 1, 2])];
    let mask_pos = [6usize, 4, 7];
    let ic = InferCtx::new(MathMode::Exact);
    assert_eq!(
        diff_report(&lm, &ic, &seqs, Some(&soft), &mask_pos, None, "soft-only"),
        0
    );
}

#[test]
fn isolate_adapters_only() {
    let mut cfg = MiniLmConfig::large(60);
    cfg.dropout = 0.0;
    let mut lm = MiniLm::new(cfg, 11);
    lm.attach_adalora(AdaLoraConfig::default(), 5);
    let mut i = 0;
    while let Some(id) = lm.store().id_of(&format!("adalora.{i}.e")) {
        for v in lm.store_mut().get_mut(id).data_mut() {
            *v = 0.3;
        }
        i += 1;
    }
    assert!(i > 0);
    let prefix = toks(&[5, 6, 1]);
    let mk = |suffix: &[u32]| {
        let mut s = prefix.clone();
        s.extend(toks(suffix));
        s
    };
    let seqs = vec![mk(&[7, 2, 9]), mk(&[3]), mk(&[8, 4, 1, 2])];
    let mask_pos = [5usize, 3, 6];
    let ic = InferCtx::new(MathMode::Exact);
    assert_eq!(
        diff_report(&lm, &ic, &seqs, None, &mask_pos, None, "adapters-only"),
        0
    );
}

#[test]
fn batched_rows_match_single_rows_with_cache_soft_and_adapters() {
    let mut cfg = MiniLmConfig::large(60);
    cfg.dropout = 0.0;
    let d = cfg.d_model;
    let mut lm = MiniLm::new(cfg, 11);
    lm.attach_adalora(AdaLoraConfig::default(), 5);
    let mut i = 0;
    while let Some(id) = lm.store().id_of(&format!("adalora.{i}.e")) {
        for v in lm.store_mut().get_mut(id).data_mut() {
            *v = 0.3;
        }
        i += 1;
    }
    assert!(i > 0);
    let soft = Tensor::new([2, d], (0..2 * d).map(|i| 0.01 * i as f32 - 0.1).collect());
    let prefix = vec![
        LmToken::Vocab(5),
        LmToken::Soft(0),
        LmToken::Soft(1),
        LmToken::Vocab(6),
    ];
    let mk = |suffix: &[u32]| {
        let mut s = prefix.clone();
        s.extend(toks(suffix));
        s
    };
    let seqs = vec![mk(&[7, 2, 9]), mk(&[3]), mk(&[8, 4, 1, 2])];
    let mask_pos = [6usize, 4, 7];
    let ic = InferCtx::new(MathMode::Exact);
    let cache = lm
        .build_prefix_cache(&ic, &prefix, Some(&soft))
        .expect("cacheable");
    let batched = lm.mask_logits_infer_batch(&ic, &seqs, Some(&soft), &mask_pos, Some(&cache));
    let vsz = batched.data().len() / seqs.len();
    for (i, (s, &mp)) in seqs.iter().zip(&mask_pos).enumerate() {
        let solo = lm.mask_logits_infer_batch(
            &ic,
            std::slice::from_ref(s),
            Some(&soft),
            &[mp],
            Some(&cache),
        );
        let n_diff = batched.data()[i * vsz..(i + 1) * vsz]
            .iter()
            .zip(solo.data())
            .filter(|(a, b)| a != b)
            .count();
        println!("cache+soft+adapters row {i}: {n_diff}/{vsz} differ");
        assert_eq!(n_diff, 0, "row {i} differs");
    }
}

#[test]
fn batched_rows_match_single_rows_bitwise() {
    let mut cfg = MiniLmConfig::large(60);
    cfg.dropout = 0.0;
    let lm = MiniLm::new(cfg, 7);
    let seqs = vec![
        toks(&[5, 6, 1, 7, 2, 9]),
        toks(&[5, 6, 1, 3]),
        toks(&[5, 6, 1, 8, 4]),
    ];
    let mask_pos = [5usize, 3, 4];
    let ic = InferCtx::new(MathMode::Exact);
    let batched = lm.mask_logits_infer_batch(&ic, &seqs, None, &mask_pos, None);
    let vsz = batched.data().len() / seqs.len();
    for (i, (s, &mp)) in seqs.iter().zip(&mask_pos).enumerate() {
        let solo = lm.mask_logits_infer_batch(&ic, std::slice::from_ref(s), None, &[mp], None);
        let row = &batched.data()[i * vsz..(i + 1) * vsz];
        let n_diff = row.iter().zip(solo.data()).filter(|(a, b)| a != b).count();
        let max_diff = row
            .iter()
            .zip(solo.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        println!("row {i}: {n_diff}/{vsz} elements differ, max {max_diff:e}");
        assert_eq!(n_diff, 0, "row {i} differs");
    }
}
