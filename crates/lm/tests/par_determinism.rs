//! Thread-count invariance of the grad-free batch scoring path.
//!
//! `mask_logits_infer_batch` — the engine under `score_candidates_batch` and
//! the serving runtime — parallelizes over example chunks on the shared
//! `delrec-par` pool. The partition only chooses *which* worker computes
//! which rows; each example's arithmetic is untouched (pinned separately by
//! `batch_row_independence.rs`), so the output must be **bitwise identical**
//! at every thread count, with every engine feature attached at once: soft
//! prompts, AdaLoRA adapters, and the prefix cache.
//!
//! Batches are random and ragged so the chunk boundaries land differently
//! from case to case; thread counts {1, 2, 3, 7, 8} cover fewer-chunks-than-
//! lanes, uneven partitions, and more lanes than examples.

use delrec_lm::{AdaLoraConfig, LmToken, MiniLm, MiniLmConfig};
use delrec_par::{with_pool, ThreadPool};
use delrec_tensor::{InferCtx, MathMode, Tensor};
use proptest::prelude::*;

/// A small MiniLM with non-trivial AdaLoRA deltas, a two-row soft-prompt
/// table, and the shared `[Vocab(5), Soft(0), Soft(1), Vocab(6)]` prefix
/// used across the engine's equivalence tests.
fn build_lm() -> (MiniLm, Tensor, Vec<LmToken>) {
    let mut cfg = MiniLmConfig::large(60);
    cfg.dropout = 0.0;
    let d = cfg.d_model;
    let mut lm = MiniLm::new(cfg, 11);
    lm.attach_adalora(AdaLoraConfig::default(), 5);
    // Nudge singular values so adapter deltas are non-zero.
    let mut i = 0;
    while let Some(id) = lm.store().id_of(&format!("adalora.{i}.e")) {
        for v in lm.store_mut().get_mut(id).data_mut() {
            *v = 0.3;
        }
        i += 1;
    }
    assert!(i > 0, "adapters attached");
    let soft = Tensor::new([2, d], (0..2 * d).map(|i| 0.01 * i as f32 - 0.1).collect());
    let prefix = vec![
        LmToken::Vocab(5),
        LmToken::Soft(0),
        LmToken::Soft(1),
        LmToken::Vocab(6),
    ];
    (lm, soft, prefix)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random ragged batches score to the same bits on a 1-lane pool and on
    /// pools of {2, 3, 7, 8} lanes, with and without the prefix cache.
    #[test]
    fn batch_scoring_is_bitwise_serial_at_every_thread_count(
        suffixes in prop::collection::vec(prop::collection::vec(1u32..50, 1..8), 1..7),
        use_cache in prop_oneof![Just(false), Just(true)],
    ) {
        let (lm, soft, prefix) = build_lm();
        let seqs: Vec<Vec<LmToken>> = suffixes
            .iter()
            .map(|s| {
                let mut t = prefix.clone();
                t.extend(s.iter().map(|&i| LmToken::Vocab(i)));
                t
            })
            .collect();
        let mask_pos: Vec<usize> = seqs.iter().map(|s| s.len() - 1).collect();
        let ic = InferCtx::new(MathMode::Exact);
        let cache = if use_cache {
            Some(
                lm.build_prefix_cache(&ic, &prefix, Some(&soft))
                    .expect("single-layer model must cache"),
            )
        } else {
            None
        };
        let run = |lanes: usize| {
            let pool = ThreadPool::new(lanes);
            with_pool(&pool, || {
                lm.mask_logits_infer_batch(&ic, &seqs, Some(&soft), &mask_pos, cache.as_ref())
            })
        };
        let serial = bits(&run(1));
        for lanes in [2usize, 3, 7, 8] {
            let got = bits(&run(lanes));
            prop_assert_eq!(
                &serial,
                &got,
                "lanes={} batch={} cache={}",
                lanes,
                seqs.len(),
                use_cache
            );
        }
    }
}
