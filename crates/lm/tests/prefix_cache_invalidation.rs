//! PrefixCache invalidation: each staleness trigger forces a rebuild, and
//! the rebuilt cache is bitwise-identical to the uncached path.
//!
//! `PrefixCache::is_valid_for` keys on three things — parameter-store
//! version, math mode, and the prefix tokens themselves. For each trigger
//! this test walks the full caller protocol (validity check → rebuild →
//! score) and asserts the rebuilt cache reproduces the uncached logits
//! bit-for-bit, not approximately: a cache serving stale K/V would still
//! produce plausible-looking scores, so only exact equality pins the
//! invalidation contract.

use delrec_lm::{LmToken, MiniLm, MiniLmConfig, PrefixCache};
use delrec_tensor::{InferCtx, MathMode, Tensor};

fn toks(ids: &[u32]) -> Vec<LmToken> {
    ids.iter().map(|&w| LmToken::Vocab(w)).collect()
}

fn world() -> (MiniLm, Vec<LmToken>, Vec<Vec<LmToken>>, Vec<usize>) {
    let mut cfg = MiniLmConfig::large(60);
    cfg.dropout = 0.0;
    let lm = MiniLm::new(cfg, 17);
    let prefix = toks(&[5, 6, 1]);
    // Ragged suffixes extending the shared prefix, mask at the end of each.
    let seqs = vec![
        toks(&[5, 6, 1, 7, 2, 9]),
        toks(&[5, 6, 1, 3]),
        toks(&[5, 6, 1, 8, 4]),
    ];
    let mask_pos = vec![5usize, 3, 4];
    (lm, prefix, seqs, mask_pos)
}

/// Score with and without `cache` and demand bitwise equality.
fn assert_cached_matches_uncached(
    lm: &MiniLm,
    ic: &InferCtx,
    seqs: &[Vec<LmToken>],
    mask_pos: &[usize],
    cache: &PrefixCache,
    what: &str,
) -> Tensor {
    let plain = lm.mask_logits_infer_batch(ic, seqs, None, mask_pos, None);
    let cached = lm.mask_logits_infer_batch(ic, seqs, None, mask_pos, Some(cache));
    assert_eq!(
        plain.data(),
        cached.data(),
        "{what}: rebuilt cache must be bitwise-identical to uncached"
    );
    plain
}

#[test]
fn param_store_version_bump_forces_rebuild() {
    let (mut lm, prefix, seqs, mask_pos) = world();
    let ic = InferCtx::new(MathMode::Exact);
    let cache = lm.build_prefix_cache(&ic, &prefix, None).unwrap();
    assert!(cache.is_valid_for(lm.store().version(), ic.math(), &prefix));
    let before = assert_cached_matches_uncached(&lm, &ic, &seqs, &mask_pos, &cache, "fresh cache");

    // Any parameter write — here a soft-prompt-style embedding nudge — bumps
    // the store version and must invalidate.
    let id = lm.store().id_of("lm.tok_emb").unwrap();
    lm.store_mut().get_mut(id).data_mut()[0] += 0.5;
    assert!(
        !cache.is_valid_for(lm.store().version(), ic.math(), &prefix),
        "stale version must invalidate"
    );

    let rebuilt = lm.build_prefix_cache(&ic, &prefix, None).unwrap();
    assert!(rebuilt.is_valid_for(lm.store().version(), ic.math(), &prefix));
    let after =
        assert_cached_matches_uncached(&lm, &ic, &seqs, &mask_pos, &rebuilt, "post-write rebuild");
    assert_ne!(
        before.data(),
        after.data(),
        "the parameter write must actually change the logits — otherwise the \
         invalidation test proves nothing"
    );
}

#[test]
fn math_mode_switch_forces_rebuild() {
    let (lm, prefix, seqs, mask_pos) = world();
    let exact = InferCtx::new(MathMode::Exact);
    let cache = lm.build_prefix_cache(&exact, &prefix, None).unwrap();
    assert!(
        !cache.is_valid_for(lm.store().version(), MathMode::Fast, &prefix),
        "an Exact-mode cache must not serve Fast-mode scoring"
    );

    // Rebuild under Fast and compare against the uncached Fast path: fast
    // transcendentals mean Exact-built K/V would differ, so equality here
    // only holds because the cache really was rebuilt under Fast.
    let fast = InferCtx::new(MathMode::Fast);
    let rebuilt = lm.build_prefix_cache(&fast, &prefix, None).unwrap();
    assert!(rebuilt.is_valid_for(lm.store().version(), MathMode::Fast, &prefix));
    assert_cached_matches_uncached(&lm, &fast, &seqs, &mask_pos, &rebuilt, "fast-mode rebuild");
}

#[test]
fn prefix_token_change_forces_rebuild() {
    let (lm, prefix, seqs, mask_pos) = world();
    let ic = InferCtx::new(MathMode::Exact);
    let cache = lm.build_prefix_cache(&ic, &prefix, None).unwrap();

    // A new prompt template (different teacher name, different instruction
    // wording) shows up as different prefix tokens.
    let new_prefix = toks(&[5, 9, 1]);
    assert!(
        !cache.is_valid_for(lm.store().version(), ic.math(), &new_prefix),
        "a cache built for one prefix must not serve another"
    );

    let rebuilt = lm.build_prefix_cache(&ic, &new_prefix, None).unwrap();
    assert!(rebuilt.is_valid_for(lm.store().version(), ic.math(), &new_prefix));
    let new_seqs: Vec<Vec<LmToken>> = seqs
        .iter()
        .map(|s| {
            let mut s = s.clone();
            s[..3].copy_from_slice(&new_prefix);
            s
        })
        .collect();
    assert_cached_matches_uncached(
        &lm,
        &ic,
        &new_seqs,
        &mask_pos,
        &rebuilt,
        "new-prefix rebuild",
    );
}
