//! Stage 1 — *Distill Pattern from Conventional SR Models* (paper §IV-B).
//!
//! Two task streams are built from the training split:
//!
//! * **Temporal Analysis (TA)** — the PMRI strategy: the sequence is split at
//!   α; the first part forms an in-context example, and the model must fill
//!   in the masked second-to-last item given that the last item followed it
//!   (Eq. 4).
//! * **Recommendation Pattern Simulating (RPS)** — the model predicts the
//!   *teacher's* top-1 recommendation given the history and the teacher's
//!   (shuffled) top-h set (Eq. 5).
//!
//! Only the soft prompts train; the LM is frozen (except in the `w UDPSM`
//! ablation). The two losses combine with a dynamic λ (Eq. 6), implemented
//! as descent-rate weighting: the task whose loss falls slower gets more
//! weight next epoch.

use crate::config::StageConfig;
use crate::prompt::{Prompt, PromptBuilder, SoftMode};
use delrec_data::{CandidateSampler, Dataset, ItemId, Split};
use delrec_lm::{verbalizer, MiniLm, SoftPrompt};
use delrec_seqrec::SequentialRecommender;
use delrec_tensor::optim::clip_grad_norm;
use delrec_tensor::{Ctx, Tape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One supervised prompt-completion example: rank `candidates` (title token
/// lists) and hit `target_idx`.
#[derive(Clone, Debug)]
pub struct TrainItem {
    /// The prompt with its mask position.
    pub prompt: Prompt,
    /// Candidate title token ids, in prompt order.
    pub candidates: Vec<Vec<u32>>,
    /// Index of the label within `candidates`.
    pub target_idx: usize,
}

/// Which parts of Stage 1 run (ablations toggle these).
#[derive(Clone, Copy, Debug)]
pub struct Stage1Options {
    /// Include the Temporal Analysis task (`w/o TA` disables).
    pub use_ta: bool,
    /// Include the Recommendation Pattern Simulating task (`w/o RPS`
    /// disables).
    pub use_rps: bool,
    /// Freeze the LM backbone (the paper's default; `w UDPSM` unfreezes).
    pub freeze_backbone: bool,
    /// Pin λ instead of adapting it (design ablation for Eq. 6's dynamic
    /// weighting; `None` = dynamic, the paper's behaviour).
    pub fixed_lambda: Option<f32>,
}

impl Default for Stage1Options {
    fn default() -> Self {
        Stage1Options {
            use_ta: true,
            use_rps: true,
            freeze_backbone: true,
            fixed_lambda: None,
        }
    }
}

/// Distillation diagnostics.
#[derive(Clone, Debug, Default)]
pub struct Stage1Stats {
    /// Mean TA loss per epoch.
    pub ta_losses: Vec<f32>,
    /// Mean RPS loss per epoch.
    pub rps_losses: Vec<f32>,
    /// λ used per epoch (weight of TA in Eq. 6).
    pub lambdas: Vec<f32>,
}

/// Build the Temporal Analysis stream from training examples (skipping
/// sequences too short for the α split).
#[allow(clippy::too_many_arguments)]
pub fn build_ta_items(
    dataset: &Dataset,
    pb: &PromptBuilder<'_>,
    items: &crate::prompt::ItemTokens,
    alpha: usize,
    m: usize,
    soft: SoftMode,
    max_items: usize,
    seed: u64,
) -> Vec<TrainItem> {
    assert!(alpha >= 2, "alpha must leave a non-empty ICL history");
    let sampler = CandidateSampler::new(dataset.num_items(), m);
    let mut out = Vec::new();
    for (i, ex) in dataset.examples(Split::Train).iter().enumerate() {
        if out.len() >= max_items {
            break;
        }
        // Full sequence s = prefix ++ target; need length ≥ α + 2.
        let mut s: Vec<ItemId> = ex.prefix.clone();
        s.push(ex.target);
        let l = s.len();
        if l < alpha + 2 {
            continue;
        }
        let icl_history = &s[..alpha - 1];
        let icl_next = s[alpha - 1];
        let label = s[l - 2];
        let query_next = s[l - 1];
        let query_history = &s[alpha - 1..l - 2];
        let candidates = sampler.candidates(label, seed, i);
        let target_idx = candidates.iter().position(|&c| c == label).unwrap();
        let prompt = pb.temporal_analysis(
            icl_history,
            icl_next,
            query_history,
            query_next,
            &candidates,
            soft,
        );
        out.push(TrainItem {
            prompt,
            candidates: items.titles_of(&candidates),
            target_idx,
        });
    }
    out
}

/// Build the Recommendation Pattern Simulating stream: labels come from the
/// *teacher*, not the ground truth.
#[allow(clippy::too_many_arguments)]
pub fn build_rps_items(
    dataset: &Dataset,
    teacher: &dyn SequentialRecommender,
    pb: &PromptBuilder<'_>,
    items: &crate::prompt::ItemTokens,
    h: usize,
    m: usize,
    soft: SoftMode,
    max_items: usize,
    seed: u64,
) -> Vec<TrainItem> {
    let sampler = CandidateSampler::new(dataset.num_items(), m);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5);
    let mut out = Vec::new();
    for (i, ex) in dataset.examples(Split::Train).iter().enumerate() {
        if out.len() >= max_items {
            break;
        }
        let top_h = teacher.recommend(&ex.prefix, h);
        if top_h.is_empty() {
            continue;
        }
        let label = top_h[0]; // sr_1: the teacher's highest-probability item
                              // Present the top-h set shuffled so the label is not positionally
                              // given away; the model must learn the teacher's ordering.
        let mut shuffled = top_h.clone();
        for j in (1..shuffled.len()).rev() {
            let k = rng.random_range(0..=j);
            shuffled.swap(j, k);
        }
        let candidates = sampler.candidates(label, seed, i);
        let target_idx = candidates.iter().position(|&c| c == label).unwrap();
        let prompt = pb.pattern_simulating(&ex.prefix, &shuffled, &candidates, soft);
        out.push(TrainItem {
            prompt,
            candidates: items.titles_of(&candidates),
            target_idx,
        });
    }
    out
}

/// Forward a batch of [`TrainItem`]s to a cross-entropy loss var.
pub(crate) fn batch_loss(
    lm: &MiniLm,
    ctx: &Ctx<'_>,
    soft_table: Option<delrec_tensor::Var>,
    batch: &[&TrainItem],
    rng: &mut StdRng,
) -> delrec_tensor::Var {
    let tape = ctx.tape;
    // One padded LM forward for the whole minibatch, one batched verbalizer
    // reduction over its [B, V] mask logits, one cross-entropy. All DELRec
    // training streams use fixed-size candidate sets, which the batched
    // verbalizer requires.
    let seqs: Vec<Vec<delrec_lm::LmToken>> = batch
        .iter()
        .map(|item| item.prompt.tokens.clone())
        .collect();
    let mask_pos: Vec<usize> = batch.iter().map(|item| item.prompt.mask_pos).collect();
    let logits = lm.mask_logits_batch(ctx, &seqs, soft_table, &mask_pos, rng);
    let candidate_sets: Vec<&[Vec<u32>]> = batch
        .iter()
        .map(|item| item.candidates.as_slice())
        .collect();
    let scores = verbalizer::candidate_scores_batch(tape, logits, &candidate_sets);
    let targets: Vec<usize> = batch.iter().map(|item| item.target_idx).collect();
    tape.cross_entropy(scores, &targets)
}

/// Run the multi-task distillation (Eq. 6). Trains the soft prompts in
/// place; the LM backbone is frozen unless `opts.freeze_backbone` is false.
pub fn distill(
    lm: &mut MiniLm,
    sp: &SoftPrompt,
    ta_items: &[TrainItem],
    rps_items: &[TrainItem],
    cfg: &StageConfig,
    opts: Stage1Options,
    seed: u64,
) -> Stage1Stats {
    assert!(
        opts.use_ta || opts.use_rps,
        "at least one task must be active"
    );
    let ta_items = if opts.use_ta { ta_items } else { &[] };
    let rps_items = if opts.use_rps { rps_items } else { &[] };
    assert!(
        !ta_items.is_empty() || !rps_items.is_empty(),
        "no distillation examples"
    );

    lm.set_backbone_trainable(!opts.freeze_backbone);
    sp.set_trainable(lm.store_mut(), true);

    let mut opt = cfg.make_optimizer();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = Stage1Stats::default();
    let half = (cfg.batch_size / 2).max(1);

    for epoch in 0..cfg.epochs {
        let _epoch_span = delrec_obs::span!("core.stage1.epoch");
        // Dynamic λ: descent-rate weighting once two epochs of history exist.
        let lambda = dynamic_lambda(&stats.ta_losses, &stats.rps_losses, opts);
        stats.lambdas.push(lambda);
        delrec_obs::gauge!("core.stage1.lambda").set(f64::from(lambda));

        let mut ta_order = shuffled_indices(ta_items.len(), &mut rng);
        let mut rps_order = shuffled_indices(rps_items.len(), &mut rng);
        if let Some(cap) = cfg.max_examples {
            ta_order.truncate(cap);
            rps_order.truncate(cap);
        }
        let steps = (ta_order.len().div_ceil(half)).max(rps_order.len().div_ceil(half));
        let mut ta_sum = 0.0f32;
        let mut ta_n = 0usize;
        let mut rps_sum = 0.0f32;
        let mut rps_n = 0usize;
        for step in 0..steps {
            let ta_batch: Vec<&TrainItem> = slice_cyclic(&ta_order, step, half)
                .iter()
                .map(|&i| &ta_items[i])
                .collect();
            let rps_batch: Vec<&TrainItem> = slice_cyclic(&rps_order, step, half)
                .iter()
                .map(|&i| &rps_items[i])
                .collect();
            let (ta_l, rps_l, mut updates) = {
                let tape = Tape::new();
                let ctx = Ctx::new(&tape, lm.store(), true);
                let soft_table = Some(sp.var(&ctx));
                let mut total = None;
                let mut ta_l = None;
                let mut rps_l = None;
                if !ta_batch.is_empty() {
                    let l = batch_loss(lm, &ctx, soft_table, &ta_batch, &mut rng);
                    ta_l = Some(tape.get(l).item());
                    total = Some(tape.scale(l, lambda));
                }
                if !rps_batch.is_empty() {
                    let l = batch_loss(lm, &ctx, soft_table, &rps_batch, &mut rng);
                    rps_l = Some(tape.get(l).item());
                    let weight = if ta_batch.is_empty() {
                        1.0
                    } else {
                        1.0 - lambda
                    };
                    let scaled = tape.scale(l, weight);
                    total = Some(match total {
                        Some(t) => tape.add(t, scaled),
                        None => scaled,
                    });
                }
                let total = total.expect("a non-empty batch");
                let mut grads = tape.backward(total);
                (ta_l, rps_l, ctx.grads(&mut grads))
            };
            clip_grad_norm(&mut updates, 5.0);
            opt.apply(lm.store_mut(), &updates);
            if let Some(l) = ta_l {
                ta_sum += l;
                ta_n += 1;
            }
            if let Some(l) = rps_l {
                rps_sum += l;
                rps_n += 1;
            }
        }
        stats
            .ta_losses
            .push(if ta_n > 0 { ta_sum / ta_n as f32 } else { 0.0 });
        stats.rps_losses.push(if rps_n > 0 {
            rps_sum / rps_n as f32
        } else {
            0.0
        });
        delrec_obs::gauge!("core.stage1.ta_loss").set(f64::from(*stats.ta_losses.last().unwrap()));
        delrec_obs::gauge!("core.stage1.rps_loss")
            .set(f64::from(*stats.rps_losses.last().unwrap()));
        let _ = epoch;
    }
    // Restore the default freeze state.
    lm.set_backbone_trainable(true);
    stats
}

/// Eq. 6's dynamic weights via descent-rate (DWA-style) weighting.
fn dynamic_lambda(ta_hist: &[f32], rps_hist: &[f32], opts: Stage1Options) -> f32 {
    if !opts.use_ta {
        return 0.0;
    }
    if !opts.use_rps {
        return 1.0;
    }
    if let Some(l) = opts.fixed_lambda {
        return l.clamp(0.0, 1.0);
    }
    if ta_hist.len() < 2 || rps_hist.len() < 2 {
        return 0.5;
    }
    let n = ta_hist.len();
    let r_ta = ta_hist[n - 1] / ta_hist[n - 2].max(1e-6);
    let r_rps = rps_hist[n - 1] / rps_hist[n - 2].max(1e-6);
    const T: f32 = 2.0;
    let (e_ta, e_rps) = ((r_ta / T).exp(), (r_rps / T).exp());
    e_ta / (e_ta + e_rps)
}

fn shuffled_indices(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// `step`-th window of width `width` over `order`, wrapping around (so the
/// shorter task stream keeps contributing until the longer one finishes).
fn slice_cyclic(order: &[usize], step: usize, width: usize) -> Vec<usize> {
    if order.is_empty() {
        return Vec::new();
    }
    (0..width)
        .map(|k| order[(step * width + k) % order.len()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use delrec_data::synthetic::{DatasetProfile, SyntheticConfig};
    use delrec_seqrec::PopularityRecommender;

    fn setup() -> (Dataset, Pipeline) {
        let ds = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
            .scaled(0.08)
            .generate(7);
        let p = Pipeline::build(&ds);
        (ds, p)
    }

    #[test]
    fn ta_items_have_valid_targets_and_masks() {
        let (ds, p) = setup();
        let pb = PromptBuilder::new(&p.vocab, &p.items, "sasrec");
        let items = build_ta_items(&ds, &pb, &p.items, 4, 15, SoftMode::Slots(4), 50, 1);
        assert!(!items.is_empty());
        for it in &items {
            assert_eq!(it.candidates.len(), 15);
            assert!(it.target_idx < 15);
            assert!(it.prompt.mask_pos < it.prompt.tokens.len());
        }
    }

    #[test]
    fn ta_skips_short_sequences() {
        let (ds, p) = setup();
        let pb = PromptBuilder::new(&p.vocab, &p.items, "sasrec");
        // α = 8 needs length ≥ 10; only long-prefix examples qualify.
        let items = build_ta_items(&ds, &pb, &p.items, 8, 15, SoftMode::Slots(4), 1000, 1);
        let eligible = ds
            .examples(Split::Train)
            .iter()
            .filter(|e| e.prefix.len() + 1 >= 10)
            .count();
        assert_eq!(items.len(), eligible.min(1000));
    }

    #[test]
    fn rps_labels_are_the_teachers_top1_not_ground_truth() {
        let (ds, p) = setup();
        let teacher = PopularityRecommender::fit(&ds);
        let pb = PromptBuilder::new(&p.vocab, &p.items, "sasrec");
        let items = build_rps_items(
            &ds,
            &teacher,
            &pb,
            &p.items,
            5,
            15,
            SoftMode::Slots(4),
            20,
            1,
        );
        // Popularity's top-1 is constant; every item's label title must match.
        let top1 = teacher.recommend(&ds.examples(Split::Train)[0].prefix, 1)[0];
        let expected = p.items.title(top1).to_vec();
        for it in &items {
            assert_eq!(it.candidates[it.target_idx], expected);
        }
    }

    #[test]
    fn dynamic_lambda_shifts_toward_the_slower_task() {
        let opts = Stage1Options::default();
        // TA barely improving (ratio ~1), RPS improving fast (ratio 0.5):
        // λ (TA weight) must exceed 0.5.
        let l = dynamic_lambda(&[1.0, 0.99], &[1.0, 0.5], opts);
        assert!(l > 0.5, "λ = {l}");
        // A fixed λ overrides the dynamics.
        assert_eq!(
            dynamic_lambda(
                &[1.0, 0.9],
                &[1.0, 0.5],
                Stage1Options {
                    fixed_lambda: Some(0.3),
                    ..opts
                }
            ),
            0.3
        );
        // Single-task ablations pin λ.
        assert_eq!(
            dynamic_lambda(
                &[],
                &[],
                Stage1Options {
                    use_ta: false,
                    ..opts
                }
            ),
            0.0
        );
        assert_eq!(
            dynamic_lambda(
                &[],
                &[],
                Stage1Options {
                    use_rps: false,
                    ..opts
                }
            ),
            1.0
        );
    }

    #[test]
    fn distill_updates_only_soft_prompts_when_frozen() {
        let (ds, p) = setup();
        let teacher = PopularityRecommender::fit(&ds);
        let mut lm = crate::pipeline::pretrained_lm(
            &ds,
            &p,
            crate::pipeline::LmPreset::Large,
            &delrec_lm::PretrainConfig {
                epochs: 1,
                max_sentences: Some(100),
                ..Default::default()
            },
            2,
        );
        let d_model = lm.cfg.d_model;
        let sp = SoftPrompt::init(lm.store_mut(), "s1", 4, d_model, 3);
        let before_sp = sp.values(lm.store()).clone();
        let before_emb = lm
            .store()
            .get(lm.store().id_of("lm.tok_emb").unwrap())
            .clone();

        let pb = PromptBuilder::new(&p.vocab, &p.items, "sasrec");
        let ta = build_ta_items(&ds, &pb, &p.items, 4, 15, SoftMode::Slots(4), 8, 1);
        let rps = build_rps_items(
            &ds,
            &teacher,
            &pb,
            &p.items,
            3,
            15,
            SoftMode::Slots(4),
            8,
            1,
        );
        let cfg = StageConfig {
            epochs: 1,
            batch_size: 4,
            max_examples: Some(8),
            lr: 5e-3,
            weight_decay: 1e-5,
            optimizer: crate::config::StageOptimizer::Adam,
        };
        let stats = distill(&mut lm, &sp, &ta, &rps, &cfg, Stage1Options::default(), 9);
        assert_eq!(stats.lambdas.len(), 1);
        assert_ne!(
            sp.values(lm.store()).data(),
            before_sp.data(),
            "soft prompts must move"
        );
        let after_emb = lm.store().get(lm.store().id_of("lm.tok_emb").unwrap());
        assert_eq!(
            after_emb.data(),
            before_emb.data(),
            "frozen backbone must not move"
        );
    }
}
