//! DELRec — the paper's primary contribution.
//!
//! *Distilling Sequential Pattern to Enhance LLMs-based Sequential
//! Recommendation* (Zhang et al., ICDE 2025) in two stages:
//!
//! * **Stage 1 — Distill Pattern from Conventional SR Models** ([`stage1`]):
//!   trainable soft prompts are optimized, with the LM frozen, on two
//!   simultaneous tasks — *Temporal Analysis* (predict the most recent item,
//!   with in-context examples) and *Recommendation Pattern Simulating*
//!   (predict the teacher model's top recommendation). Task weights follow a
//!   dynamic λ (Eq. 6).
//! * **Stage 2 — LLMs-based Sequential Recommendation** ([`stage2`]): the
//!   learned soft prompts are frozen and spliced into the recommendation
//!   prompt; the LM is fine-tuned with AdaLoRA + Lion on the ground truth.
//!
//! [`DelRec`] ties the stages together behind one `fit`/rank API. The
//! [`ablation`] module exposes every variant of Tables III and IV, and
//! [`baselines`] reimplements the paper's eleven LLM-based comparison
//! systems at paradigm fidelity.

#![warn(missing_docs)]

pub mod ablation;
pub mod baselines;
pub mod config;
pub mod delrec;
pub mod pipeline;
pub mod prompt;
pub mod recommend;
pub mod stage1;
pub mod stage2;

pub use ablation::Variant;
pub use config::{DelRecConfig, StageConfig, StageOptimizer, TeacherKind};
pub use delrec::DelRec;
pub use pipeline::{build_teacher, pretrained_lm, LmPreset, Pipeline};
pub use prompt::{ItemTokens, Prompt, PromptBuilder, SoftMode};
pub use recommend::{RecommendConfig, Recommender};
