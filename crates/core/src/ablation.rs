//! Ablation variants (paper Tables III and IV).
//!
//! Every variant is expressed as a set of toggles over the two stages, so
//! [`crate::DelRec::fit`] covers all of them with one code path:
//!
//! | Variant | Table | Meaning |
//! |---|---|---|
//! | `Default` | — | full DELRec |
//! | `WithoutSP` / `WithoutDPSM` | III / IV | no soft prompts at all (these two rows coincide in the paper's numbers) |
//! | `WithMCP` | III | soft prompts replaced by a natural-language description of the teacher |
//! | `WithUSP` | III | soft prompts present but *untrained* (random) |
//! | `WithoutLSR` | IV | Stage 1 only; no fine-tuning |
//! | `WithoutTA` | IV | distillation without Temporal Analysis |
//! | `WithoutRPS` | IV | distillation without Recommendation Pattern Simulating |
//! | `UpdateBothDPSM` | IV | Stage 1 also updates the LM ("w UDPSM") |
//! | `UpdateBothLSR` | IV | Stage 2 also updates the soft prompts ("w ULSR") |
//! | `LargeBackbone` | IV | Flan-T5-Large-sized MiniLM ("w Flan-T5-Large") |

/// One ablation configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Full DELRec.
    Default,
    /// `w/o SP`: remove soft prompts and the reference instruction.
    WithoutSP,
    /// `w MCP`: manual textual construction instead of soft prompts.
    WithMCP,
    /// `w USP`: randomly initialized, untrained soft prompts.
    WithUSP,
    /// `w/o DPSM`: skip the entire distillation stage (= `WithoutSP`).
    WithoutDPSM,
    /// `w/o LSR`: skip Stage 2 fine-tuning.
    WithoutLSR,
    /// `w/o TA`: distill without the Temporal Analysis task.
    WithoutTA,
    /// `w/o RPS`: distill without the Recommendation Pattern Simulating task.
    WithoutRPS,
    /// `w UDPSM`: update both soft prompts and LM parameters in Stage 1.
    UpdateBothDPSM,
    /// `w ULSR`: update both soft prompts and LM parameters in Stage 2.
    UpdateBothLSR,
    /// `w Flan-T5-Large`: smaller LM backbone.
    LargeBackbone,
}

impl Variant {
    /// Paper row label.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Default => "Default",
            Variant::WithoutSP => "w/o SP",
            Variant::WithMCP => "w MCP",
            Variant::WithUSP => "w USP",
            Variant::WithoutDPSM => "w/o DPSM",
            Variant::WithoutLSR => "w/o LSR",
            Variant::WithoutTA => "w/o TA",
            Variant::WithoutRPS => "w/o RPS",
            Variant::UpdateBothDPSM => "w UDPSM",
            Variant::UpdateBothLSR => "w ULSR",
            Variant::LargeBackbone => "w Flan-T5-Large",
        }
    }

    /// Rows of Ablation Study I (Table III), excluding Default.
    pub const TABLE3: [Variant; 3] = [Variant::WithoutSP, Variant::WithMCP, Variant::WithUSP];

    /// Rows of Ablation Study II (Table IV), excluding Default.
    pub const TABLE4: [Variant; 7] = [
        Variant::WithoutDPSM,
        Variant::WithoutLSR,
        Variant::WithoutTA,
        Variant::WithoutRPS,
        Variant::UpdateBothDPSM,
        Variant::UpdateBothLSR,
        Variant::LargeBackbone,
    ];

    /// Whether trainable soft-prompt slots exist at all.
    pub fn uses_soft_prompts(self) -> bool {
        !matches!(
            self,
            Variant::WithoutSP | Variant::WithMCP | Variant::WithoutDPSM
        )
    }

    /// Whether Stage 1 distillation runs.
    pub fn runs_distillation(self) -> bool {
        self.uses_soft_prompts() && self != Variant::WithUSP
    }

    /// Whether the TA task is part of distillation.
    pub fn uses_ta(self) -> bool {
        self != Variant::WithoutTA
    }

    /// Whether the RPS task is part of distillation.
    pub fn uses_rps(self) -> bool {
        self != Variant::WithoutRPS
    }

    /// Whether Stage 2 fine-tuning runs.
    pub fn runs_finetuning(self) -> bool {
        self != Variant::WithoutLSR
    }

    /// Whether the LM backbone stays frozen during Stage 1.
    pub fn freezes_backbone_in_stage1(self) -> bool {
        self != Variant::UpdateBothDPSM
    }

    /// Whether the soft prompts stay frozen during Stage 2.
    pub fn freezes_soft_in_stage2(self) -> bool {
        self != Variant::UpdateBothLSR
    }

    /// Whether this variant forces the smaller LM backbone.
    pub fn forces_large_backbone(self) -> bool {
        self == Variant::LargeBackbone
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_everything() {
        let v = Variant::Default;
        assert!(v.uses_soft_prompts());
        assert!(v.runs_distillation());
        assert!(v.uses_ta() && v.uses_rps());
        assert!(v.runs_finetuning());
        assert!(v.freezes_backbone_in_stage1());
        assert!(v.freezes_soft_in_stage2());
    }

    #[test]
    fn soft_prompt_ablations() {
        assert!(!Variant::WithoutSP.uses_soft_prompts());
        assert!(!Variant::WithMCP.uses_soft_prompts());
        assert!(!Variant::WithoutDPSM.uses_soft_prompts());
        assert!(Variant::WithUSP.uses_soft_prompts());
        assert!(!Variant::WithUSP.runs_distillation());
    }

    #[test]
    fn stage_toggles() {
        assert!(!Variant::WithoutLSR.runs_finetuning());
        assert!(!Variant::WithoutRPS.uses_rps());
        assert!(Variant::WithoutRPS.uses_ta());
        assert!(!Variant::WithoutTA.uses_ta());
        assert!(Variant::WithoutTA.uses_rps());
        assert!(!Variant::UpdateBothDPSM.freezes_backbone_in_stage1());
        assert!(!Variant::UpdateBothLSR.freezes_soft_in_stage2());
    }

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(Variant::WithoutDPSM.label(), "w/o DPSM");
        assert_eq!(Variant::UpdateBothLSR.label(), "w ULSR");
        assert_eq!(Variant::LargeBackbone.label(), "w Flan-T5-Large");
    }
}
