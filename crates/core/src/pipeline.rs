//! Shared experiment plumbing: one pretrained LM and one trained teacher per
//! dataset, reused (cloned) across DELRec variants and all LLM-based
//! baselines so that comparisons are apples-to-apples and runtimes stay sane.

use crate::config::TeacherKind;
use crate::prompt::ItemTokens;
use delrec_data::corpus::{build_corpus, build_vocab, pack_corpus};
use delrec_data::{Dataset, Split, Vocab};
use delrec_lm::{pretrain_mlm, MiniLm, MiniLmConfig, PretrainConfig};
use delrec_seqrec::trainer::{train, TrainConfig};
use delrec_seqrec::{Caser, Gru4Rec, SasRec, SequentialRecommender};

/// LM backbone preset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LmPreset {
    /// Flan-T5-XL stand-in (default backbone).
    Xl,
    /// Flan-T5-Large stand-in (ablation / weaker baselines).
    Large,
}

impl LmPreset {
    /// Materialize the architecture config for a vocabulary size.
    pub fn config(self, vocab_size: usize) -> MiniLmConfig {
        match self {
            LmPreset::Xl => MiniLmConfig::xl(vocab_size),
            LmPreset::Large => MiniLmConfig::large(vocab_size),
        }
    }
}

/// Dataset-derived artifacts every LM-based recommender needs.
pub struct Pipeline {
    /// Shared vocabulary over titles, genres, prompt and corpus words.
    pub vocab: Vocab,
    /// Pre-tokenized item titles.
    pub items: ItemTokens,
}

impl Pipeline {
    /// Build vocabulary and item tokens for a dataset.
    pub fn build(dataset: &Dataset) -> Self {
        let vocab = build_vocab(&dataset.catalog);
        let items = ItemTokens::build(&dataset.catalog, &vocab);
        Pipeline { vocab, items }
    }
}

/// Pretrain a MiniLM on the dataset's world-knowledge corpus. Clone the
/// result to hand an identical pretrained backbone to each method.
pub fn pretrained_lm(
    dataset: &Dataset,
    pipeline: &Pipeline,
    preset: LmPreset,
    cfg: &PretrainConfig,
    seed: u64,
) -> MiniLm {
    let sentences = build_corpus(&dataset.catalog, &pipeline.vocab, 12, seed ^ 0x5EED);
    // Pack to prompt length so every position embedding a prompt will touch
    // gets trained (prompts run ~140 tokens; corpus sentences ~8).
    let docs = pack_corpus(&sentences, &pipeline.vocab, 150, seed ^ 0xD0C5);
    let mut lm = MiniLm::new(preset.config(pipeline.vocab.len()), seed);
    pretrain_mlm(&mut lm, &docs, pipeline.vocab.mask(), cfg);
    lm
}

/// Train a conventional teacher of the given kind on the dataset's training
/// split, with the paper's optimizer styles (§V-A3: Adam for SASRec/Caser at
/// lr 1e-3, Adagrad for GRU4Rec at lr 0.01).
pub fn build_teacher(
    dataset: &Dataset,
    kind: TeacherKind,
    epochs: usize,
    max_examples: Option<usize>,
    seed: u64,
) -> Box<dyn SequentialRecommender> {
    let n = dataset.num_items();
    let examples = dataset.examples(Split::Train);
    match kind {
        TeacherKind::SASRec => {
            let mut m = SasRec::new(n, Default::default(), seed);
            let cfg = TrainConfig {
                max_examples,
                seed,
                ..TrainConfig::adam(epochs, 1e-3)
            };
            train(&mut m, examples, &cfg);
            Box::new(m)
        }
        TeacherKind::Caser => {
            let mut m = Caser::new(n, Default::default(), seed);
            let cfg = TrainConfig {
                max_examples,
                seed,
                ..TrainConfig::adam(epochs, 1e-3)
            };
            train(&mut m, examples, &cfg);
            Box::new(m)
        }
        TeacherKind::GRU4Rec => {
            let mut m = Gru4Rec::new(n, Default::default(), seed);
            let cfg = TrainConfig {
                max_examples,
                seed,
                ..TrainConfig::adagrad(epochs, 0.01)
            };
            train(&mut m, examples, &cfg);
            Box::new(m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delrec_data::synthetic::{DatasetProfile, SyntheticConfig};

    fn tiny() -> Dataset {
        SyntheticConfig::profile(DatasetProfile::MovieLens100K)
            .scaled(0.08)
            .generate(6)
    }

    #[test]
    fn pipeline_covers_every_item() {
        let ds = tiny();
        let p = Pipeline::build(&ds);
        assert_eq!(p.items.len(), ds.num_items());
    }

    #[test]
    fn pretraining_improves_mask_filling() {
        let ds = tiny();
        let p = Pipeline::build(&ds);
        let sentences = build_corpus(&ds.catalog, &p.vocab, 12, 1 ^ 0x5EED);
        let corpus = pack_corpus(&sentences, &p.vocab, 150, 1 ^ 0xD0C5);
        let fresh = MiniLm::new(LmPreset::Large.config(p.vocab.len()), 3);
        let acc_fresh = delrec_lm::pretrain::mlm_mean_log_prob(&fresh, &corpus, p.vocab.mask(), 80);
        let lm = pretrained_lm(
            &ds,
            &p,
            LmPreset::Large,
            &PretrainConfig {
                epochs: 8,
                lr: 5e-3,
                ..Default::default()
            },
            3,
        );
        let acc = delrec_lm::pretrain::mlm_mean_log_prob(&lm, &corpus, p.vocab.mask(), 80);
        assert!(
            acc > acc_fresh,
            "pretraining must raise the true-token log-probability: {acc_fresh} → {acc}"
        );
    }

    #[test]
    fn teachers_of_each_kind_train_and_score() {
        let ds = tiny();
        for kind in [
            TeacherKind::SASRec,
            TeacherKind::GRU4Rec,
            TeacherKind::Caser,
        ] {
            let t = build_teacher(&ds, kind, 1, Some(60), 5);
            let ex = &ds.examples(Split::Test)[0];
            let scores = t.scores(&ex.prefix);
            assert_eq!(scores.len(), ds.num_items());
            assert_eq!(t.name(), kind.name());
        }
    }
}
