//! DELRec configuration: the paper's hyperparameters (§V-A3) plus the
//! CPU-scale values actually used by the experiment harness.

use crate::ablation::Variant;
use crate::pipeline::LmPreset;
use delrec_lm::AdaLoraConfig;
use delrec_tensor::MathMode;

/// Which conventional model distills into the soft prompts (the paper
/// reports DELRec (Caser), DELRec (GRU4Rec), DELRec (SASRec)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TeacherKind {
    /// CNN teacher.
    Caser,
    /// RNN teacher.
    GRU4Rec,
    /// Transformer teacher (the strongest; the default backbone).
    SASRec,
}

impl TeacherKind {
    /// Lowercase name used inside prompts ("we will incorporate specific
    /// names of the conventional SR models", §IV-A).
    pub fn name(self) -> &'static str {
        match self {
            TeacherKind::Caser => "caser",
            TeacherKind::GRU4Rec => "gru4rec",
            TeacherKind::SASRec => "sasrec",
        }
    }
}

/// Which optimizer a stage uses.
///
/// The paper uses Lion for both stages. At 3B scale Lion's sign updates with
/// tiny learning rates are the right tool; our MiniLM backbone is ~10^5×
/// smaller and benefits from magnitude-aware updates, so the CPU-scale
/// presets default to Adam (the deviation is recorded in DESIGN.md and
/// EXPERIMENTS.md; `lion()` restores the paper's choice).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageOptimizer {
    /// Lion (paper §V-A3).
    Lion,
    /// Adam (CPU-scale default).
    Adam,
}

/// Hyperparameters of one training stage.
#[derive(Clone, Debug)]
pub struct StageConfig {
    /// Passes over the stage's example set.
    pub epochs: usize,
    /// Examples per optimizer step.
    pub batch_size: usize,
    /// Cap on examples used per task (None = all).
    pub max_examples: Option<usize>,
    /// Lion learning rate (paper: 5e-3 Stage 1, 1e-4 Stage 2).
    pub lr: f32,
    /// Lion weight decay (paper: 1e-5 Stage 1, 1e-6 Stage 2).
    pub weight_decay: f32,
    /// Optimizer family.
    pub optimizer: StageOptimizer,
}

impl StageConfig {
    /// Build the configured optimizer.
    pub fn make_optimizer(&self) -> Box<dyn delrec_tensor::optim::Optimizer> {
        match self.optimizer {
            StageOptimizer::Lion => {
                Box::new(delrec_tensor::optim::Lion::new(self.lr, self.weight_decay))
            }
            StageOptimizer::Adam => Box::new(delrec_tensor::optim::Adam::with_decay(
                self.lr,
                self.weight_decay,
            )),
        }
    }
}

/// Full DELRec configuration.
#[derive(Clone, Debug)]
pub struct DelRecConfig {
    /// Teacher family.
    pub teacher: TeacherKind,
    /// LM backbone preset (XL by default; Large for the ablation).
    pub lm: LmPreset,
    /// Soft-prompt count `k` (paper default 80; scaled down here — Figure 7
    /// sweeps this).
    pub k_soft: usize,
    /// Teacher top-`h` items shown in the RPS prompt (paper default 5;
    /// Figure 8 sweeps this).
    pub h_top: usize,
    /// ICL split point α for Temporal Analysis (paper: 4 for
    /// MovieLens/Beauty, 6 for Steam/Home & Kitchen).
    pub alpha_icl: usize,
    /// Candidate-set size `m` (paper: 15).
    pub m_candidates: usize,
    /// Stage 1 (distillation) training.
    pub stage1: StageConfig,
    /// Stage 2 (fine-tuning) training.
    pub stage2: StageConfig,
    /// AdaLoRA settings for Stage 2.
    pub adalora: AdaLoraConfig,
    /// Prune the AdaLoRA budget every this many optimizer steps.
    pub adalora_prune_every: usize,
    /// Ablation variant (Default for the full method).
    pub variant: Variant,
    /// Pin the multi-task weight λ of Eq. 6 (None = dynamic weighting, the
    /// paper's behaviour; used by the design-ablation harness).
    pub fixed_lambda: Option<f32>,
    /// Numeric mode of the scoring engine a fitted/loaded model starts in
    /// ([`MathMode::Exact`] by default). Training always runs exact; this
    /// only selects the inference path — `Fast` swaps transcendentals for
    /// polynomial kernels, `Quantized` serves int8 weight panels. The eval
    /// harness and server both construct models through this config, so
    /// setting it here plumbs the mode end to end;
    /// `DelRec::set_math_mode` remains the runtime switch.
    pub math: MathMode,
    /// Master seed.
    pub seed: u64,
}

impl DelRecConfig {
    /// CPU-scale defaults: small enough to train in seconds, faithful in
    /// structure. `k_soft` = 16 and `h_top` = 5 at this scale (the paper's
    /// k = 80 plateaus in Figure 7; our smaller LM plateaus earlier —
    /// `repro_fig7` sweeps it).
    pub fn small(teacher: TeacherKind) -> Self {
        DelRecConfig {
            teacher,
            lm: LmPreset::Xl,
            k_soft: 16,
            h_top: 5,
            alpha_icl: 4,
            m_candidates: 15,
            stage1: StageConfig {
                epochs: 3,
                batch_size: 8,
                max_examples: Some(400),
                lr: 1e-2, // soft-prompt-only updates tolerate a high rate
                weight_decay: 1e-5,
                optimizer: StageOptimizer::Adam,
            },
            stage2: StageConfig {
                epochs: 10,
                batch_size: 8,
                max_examples: Some(1200),
                lr: 2e-3, // paper: Lion 1e-4 at 3B scale (see StageOptimizer)
                weight_decay: 1e-6,
                optimizer: StageOptimizer::Adam,
            },
            adalora: AdaLoraConfig {
                init_rank: 4,
                target_total_rank: 0,
                scale: 1.0,
                beta: 0.85,
            },
            adalora_prune_every: 20,
            variant: Variant::Default,
            fixed_lambda: None,
            math: MathMode::Exact,
            seed: 42,
        }
    }

    /// Minimal configuration for smoke tests: trains in well under a second.
    pub fn smoke(teacher: TeacherKind) -> Self {
        let mut cfg = Self::small(teacher);
        cfg.k_soft = 4;
        cfg.h_top = 3;
        cfg.stage1.epochs = 1;
        cfg.stage1.max_examples = Some(24);
        cfg.stage2.epochs = 1;
        cfg.stage2.max_examples = Some(24);
        cfg
    }

    /// Fuller configuration for the recorded experiment runs.
    pub fn full(teacher: TeacherKind) -> Self {
        let mut cfg = Self::small(teacher);
        cfg.stage1.epochs = 4;
        cfg.stage1.max_examples = Some(800);
        cfg.stage2.epochs = 14;
        cfg.stage2.max_examples = Some(2000);
        cfg
    }

    /// The paper's α depends on the dataset (§V-A3): 4 for MovieLens-100K and
    /// Beauty, 6 for Steam and Home & Kitchen.
    pub fn with_alpha_for(mut self, dataset_name: &str) -> Self {
        self.alpha_icl = if dataset_name.contains("Steam") || dataset_name.contains("Home") {
            6
        } else {
            4
        };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn teacher_names_are_prompt_words() {
        // These must exist in the shared vocabulary (corpus::PROMPT_WORDS).
        for t in [
            TeacherKind::Caser,
            TeacherKind::GRU4Rec,
            TeacherKind::SASRec,
        ] {
            assert!(delrec_data::corpus::PROMPT_WORDS.contains(&t.name()));
        }
    }

    #[test]
    fn alpha_follows_the_paper() {
        let cfg = DelRecConfig::small(TeacherKind::SASRec);
        assert_eq!(cfg.clone().with_alpha_for("Steam (synthetic)").alpha_icl, 6);
        assert_eq!(
            cfg.clone()
                .with_alpha_for("Home & Kitchen (synthetic)")
                .alpha_icl,
            6
        );
        assert_eq!(
            cfg.clone()
                .with_alpha_for("MovieLens-100K (synthetic)")
                .alpha_icl,
            4
        );
        assert_eq!(cfg.with_alpha_for("Beauty (synthetic)").alpha_icl, 4);
    }

    #[test]
    fn smoke_is_smaller_than_small() {
        let small = DelRecConfig::small(TeacherKind::SASRec);
        let smoke = DelRecConfig::smoke(TeacherKind::SASRec);
        assert!(smoke.k_soft < small.k_soft);
        assert!(smoke.stage1.max_examples.unwrap() < small.stage1.max_examples.unwrap());
    }
}
