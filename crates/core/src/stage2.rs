//! Stage 2 — *LLMs-based Sequential Recommendation* (paper §IV-C).
//!
//! The learned soft prompts are frozen and inserted into the Figure-6
//! recommendation prompt; the LM is fine-tuned on the ground-truth next item
//! with PEFT (AdaLoRA adapters, Lion optimizer) to "bridge the semantic gap"
//! between the distilled soft prompts and the hard prompt (Eq. 8).

use crate::config::StageConfig;
use crate::prompt::{ItemTokens, PromptBuilder, SoftMode};
use crate::stage1::{batch_loss, TrainItem};
use delrec_data::{CandidateSampler, Dataset, Split};
use delrec_lm::{MiniLm, SoftPrompt};
use delrec_tensor::optim::clip_grad_norm;
use delrec_tensor::{Ctx, Tape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stage 2 behaviour switches (ablations).
#[derive(Clone, Copy, Debug)]
pub struct Stage2Options {
    /// Freeze the soft prompts (paper default; `w ULSR` unfreezes them).
    pub freeze_soft: bool,
    /// Update the backbone alongside the adapters (CPU-scale default; set
    /// false for the paper's strict PEFT regime).
    pub tune_backbone: bool,
}

impl Default for Stage2Options {
    fn default() -> Self {
        Stage2Options {
            freeze_soft: true,
            tune_backbone: true,
        }
    }
}

/// Build the ground-truth fine-tuning stream (Figure-6 prompts over the
/// training split).
pub fn build_lsr_items(
    dataset: &Dataset,
    pb: &PromptBuilder<'_>,
    items: &ItemTokens,
    m: usize,
    soft: SoftMode,
    max_items: usize,
    seed: u64,
) -> Vec<TrainItem> {
    let sampler = CandidateSampler::new(dataset.num_items(), m);
    let mut out = Vec::new();
    for (i, ex) in dataset.examples(Split::Train).iter().enumerate() {
        if out.len() >= max_items {
            break;
        }
        let candidates = sampler.candidates(ex.target, seed, i);
        let target_idx = candidates.iter().position(|&c| c == ex.target).unwrap();
        let prompt = pb.recommendation(&ex.prefix, &candidates, soft);
        out.push(TrainItem {
            prompt,
            candidates: items.titles_of(&candidates),
            target_idx,
        });
    }
    out
}

/// Fine-tune the LM with AdaLoRA on ground truth. The LM must already have
/// adapters attached (see [`MiniLm::attach_adalora`]). Returns mean loss per
/// epoch.
pub fn finetune(
    lm: &mut MiniLm,
    sp: Option<&SoftPrompt>,
    items: &[TrainItem],
    cfg: &StageConfig,
    prune_every: usize,
    opts: Stage2Options,
    seed: u64,
) -> Vec<f32> {
    assert!(!items.is_empty(), "no fine-tuning examples");
    assert!(
        lm.adalora().is_some(),
        "attach AdaLoRA adapters before Stage 2"
    );
    // Freeze policy: AdaLoRA adapters always train; soft prompts per
    // `opts`. At the paper's 3B scale the backbone stays frozen; our MiniLM
    // is ~10^5× smaller and PEFT-only adaptation cannot bridge its much
    // thinner pretraining, so the backbone trains too unless the caller
    // freezes it (`tune_backbone`; see DESIGN.md §deviations).
    lm.set_backbone_trainable(opts.tune_backbone);
    lm.store_mut().set_trainable_prefix("adalora.", true);
    if let Some(sp) = sp {
        sp.set_trainable(lm.store_mut(), !opts.freeze_soft);
    }

    let mut opt = cfg.make_optimizer();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut losses = Vec::with_capacity(cfg.epochs);
    let mut order: Vec<usize> = (0..items.len()).collect();
    let mut step_count = 0usize;
    for _epoch in 0..cfg.epochs {
        let _epoch_span = delrec_obs::span!("core.stage2.epoch");
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let take = cfg.max_examples.unwrap_or(order.len()).min(order.len());
        let mut total = 0.0f32;
        let mut batches = 0usize;
        for chunk in order[..take].chunks(cfg.batch_size) {
            let (loss_value, mut updates) = {
                let tape = Tape::new();
                let ctx = Ctx::new(&tape, lm.store(), true);
                let soft_table = sp.map(|s| s.var(&ctx));
                let batch: Vec<&TrainItem> = chunk.iter().map(|&i| &items[i]).collect();
                let loss = batch_loss(lm, &ctx, soft_table, &batch, &mut rng);
                let loss_value = tape.get(loss).item();
                let mut grads = tape.backward(loss);
                (loss_value, ctx.grads(&mut grads))
            };
            clip_grad_norm(&mut updates, 5.0);
            // Sensitivity uses the pre-update values: observe, then apply.
            lm.adalora_observe(&updates);
            opt.apply(lm.store_mut(), &updates);
            step_count += 1;
            total += loss_value;
            batches += 1;
            if prune_every > 0 && step_count.is_multiple_of(prune_every) {
                lm.prune_adalora();
            }
        }
        losses.push(total / batches.max(1) as f32);
        delrec_obs::gauge!("core.stage2.loss").set(f64::from(*losses.last().unwrap()));
    }
    losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{pretrained_lm, LmPreset, Pipeline};
    use delrec_lm::AdaLoraConfig;

    fn setup() -> (Dataset, Pipeline, MiniLm) {
        let ds = delrec_data::synthetic::SyntheticConfig::profile(
            delrec_data::synthetic::DatasetProfile::MovieLens100K,
        )
        .scaled(0.08)
        .generate(8);
        let p = Pipeline::build(&ds);
        let lm = pretrained_lm(
            &ds,
            &p,
            LmPreset::Large,
            &delrec_lm::PretrainConfig {
                epochs: 1,
                max_sentences: Some(100),
                ..Default::default()
            },
            2,
        );
        (ds, p, lm)
    }

    #[test]
    fn lsr_items_target_ground_truth() {
        let (ds, p, _) = setup();
        let pb = PromptBuilder::new(&p.vocab, &p.items, "sasrec");
        let items = build_lsr_items(&ds, &pb, &p.items, 15, SoftMode::None, 20, 1);
        for (it, ex) in items.iter().zip(ds.examples(Split::Train)) {
            assert_eq!(it.candidates[it.target_idx], p.items.title(ex.target));
        }
    }

    #[test]
    fn finetune_moves_adapters_but_not_base_weights() {
        let (ds, p, mut lm) = setup();
        lm.attach_adalora(AdaLoraConfig::default(), 5);
        let d_model = lm.cfg.d_model;
        let sp = SoftPrompt::init(lm.store_mut(), "s", 4, d_model, 3);
        let pb = PromptBuilder::new(&p.vocab, &p.items, "sasrec");
        let items = build_lsr_items(&ds, &pb, &p.items, 15, SoftMode::Slots(4), 12, 1);
        let base_before = lm
            .store()
            .get(lm.store().id_of("lm.b0.h0.wq").unwrap())
            .clone();
        let sp_before = sp.values(lm.store()).clone();
        let cfg = StageConfig {
            epochs: 1,
            batch_size: 4,
            max_examples: Some(12),
            lr: 2e-3,
            weight_decay: 1e-6,
            optimizer: crate::config::StageOptimizer::Adam,
        };
        let losses = finetune(
            &mut lm,
            Some(&sp),
            &items,
            &cfg,
            0,
            Stage2Options {
                tune_backbone: false, // the paper's strict PEFT regime
                ..Default::default()
            },
            7,
        );
        assert_eq!(losses.len(), 1);
        assert!(losses[0].is_finite());
        let base_after = lm.store().get(lm.store().id_of("lm.b0.h0.wq").unwrap());
        assert_eq!(base_after.data(), base_before.data(), "base weights frozen");
        assert_eq!(
            sp.values(lm.store()).data(),
            sp_before.data(),
            "soft prompts frozen by default"
        );
        let e0 = lm.store().get(lm.store().id_of("adalora.0.e").unwrap());
        assert!(e0.l2_norm() > 0.0, "adapter singular values must train");
    }

    #[test]
    fn ulsr_variant_also_moves_soft_prompts() {
        let (ds, p, mut lm) = setup();
        lm.attach_adalora(AdaLoraConfig::default(), 5);
        let d_model = lm.cfg.d_model;
        let sp = SoftPrompt::init(lm.store_mut(), "s", 4, d_model, 3);
        let pb = PromptBuilder::new(&p.vocab, &p.items, "sasrec");
        let items = build_lsr_items(&ds, &pb, &p.items, 15, SoftMode::Slots(4), 12, 1);
        let sp_before = sp.values(lm.store()).clone();
        let cfg = StageConfig {
            epochs: 1,
            batch_size: 4,
            max_examples: Some(12),
            lr: 2e-3,
            weight_decay: 1e-6,
            optimizer: crate::config::StageOptimizer::Adam,
        };
        finetune(
            &mut lm,
            Some(&sp),
            &items,
            &cfg,
            0,
            Stage2Options {
                freeze_soft: false,
                ..Default::default()
            },
            7,
        );
        assert_ne!(sp.values(lm.store()).data(), sp_before.data());
    }
}
