//! `recommend(user_history) -> top-k` with **no candidate list**: the
//! full-catalog retrieve-then-re-rank pipeline over a fitted [`DelRec`].
//!
//! Stage one retrieves `retrieve_n` candidates by scanning every item with a
//! [`Retriever`] built from the LM's own item embeddings (mean title-token
//! embeddings, the MiniLM stand-in for "LLM item embeddings"); stage two
//! re-ranks the survivors with the fitted DELRec prompt scorer in bounded
//! chunks (prompt context caps how many titles fit per forward). Both stages
//! are bitwise thread-count deterministic, so the composition is too.
//!
//! The retriever is cached per parameter-store version with one slot per
//! index format — the exact discipline of the LM weight-pack cache: the f32
//! slot serves [`MathMode::Exact`] and [`MathMode::Fast`] (the scan is pure
//! GEMM; Fast approximates nothing it uses), the q8 slot serves
//! [`MathMode::Quantized`], and a version bump invalidates a slot without
//! touching the other. `retrieval.index.{build,hit}` counters and the
//! `retrieval.index.bytes` gauge make the cache observable.

use crate::delrec::DelRec;
use delrec_data::ItemId;
use delrec_eval::{score_candidates_chunked, Ranker, ScoreRequest, TopKQuery, TopKRecommender};
use delrec_lm::MiniLm;
use delrec_retrieval::{sort_ranked, IndexFormat, Retriever};
use delrec_tensor::MathMode;
use std::sync::{Arc, Mutex};

/// Pipeline knobs for [`Recommender`].
#[derive(Clone, Debug)]
pub struct RecommendConfig {
    /// Candidates the retrieval stage surfaces for re-ranking. The recall
    /// ceiling of the whole pipeline: a target the scan leaves below this
    /// cut can never be recommended.
    pub retrieve_n: usize,
    /// Candidates per re-ranking prompt (the paper's protocol uses 15-way
    /// candidate sets; chunks reuse that shape so the scorer stays in
    /// distribution).
    pub rerank_chunk: usize,
}

impl Default for RecommendConfig {
    fn default() -> Self {
        RecommendConfig {
            retrieve_n: 100,
            rerank_chunk: 15,
        }
    }
}

/// Version-keyed retriever cache: slot 0 holds f32 panels (Exact/Fast),
/// slot 1 holds q8 panels (Quantized) — mirror of the LM's dual-slot
/// weight-pack cache.
struct RetrieverCache {
    slots: Mutex<[Option<Arc<Retriever>>; 2]>,
}

impl RetrieverCache {
    fn new() -> Self {
        RetrieverCache {
            slots: Mutex::new([None, None]),
        }
    }
}

/// The full-pipeline recommender: a fitted [`DelRec`] plus the cached
/// retrieval stage built from its item embeddings.
pub struct Recommender {
    model: DelRec,
    cfg: RecommendConfig,
    cache: RetrieverCache,
}

/// The pipeline must be shareable across serving threads like [`DelRec`]
/// itself (the cache is a `Mutex` over `Arc`s; the retriever is immutable
/// once built).
#[allow(dead_code)]
fn _assert_recommender_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Recommender>();
}

impl Recommender {
    /// Wrap a fitted model with the default pipeline configuration.
    pub fn new(model: DelRec) -> Self {
        Self::with_config(model, RecommendConfig::default())
    }

    /// Wrap a fitted model with explicit knobs.
    pub fn with_config(model: DelRec, cfg: RecommendConfig) -> Self {
        assert!(cfg.retrieve_n > 0, "retrieve_n must be positive");
        assert!(cfg.rerank_chunk > 0, "rerank_chunk must be positive");
        Recommender {
            model,
            cfg,
            cache: RetrieverCache::new(),
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &DelRec {
        &self.model
    }

    /// Mutable access to the wrapped model (parameter surgery, continued
    /// training). The retriever cache needs no explicit reset: it re-checks
    /// the store version on every [`recommend`](Self::recommend).
    pub fn model_mut(&mut self) -> &mut DelRec {
        &mut self.model
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &RecommendConfig {
        &self.cfg
    }

    /// Switch the re-ranker's numeric mode (see [`DelRec::set_math_mode`]).
    /// The retriever cache keeps one slot per index format, so toggling
    /// between modes never rebuilds a still-valid index.
    pub fn set_math_mode(&mut self, math: MathMode) {
        self.model.set_math_mode(math);
    }

    /// Export the `[n_items, d_model]` item-embedding matrix from the LM:
    /// row `j` is the mean token embedding of item `j`'s title — computed
    /// once per parameter-store version, then packed into the index.
    ///
    /// Each lane fills a disjoint row range; a row is an independent title
    /// forward, so lane count changes scheduling only and the exported
    /// matrix is bitwise identical to a serial per-item loop.
    fn export_embeddings(lm: &MiniLm, items: &crate::prompt::ItemTokens) -> (Vec<f32>, usize) {
        let _span = delrec_obs::span!("retrieval.export");
        let dim = lm.cfg.d_model;
        let n_items = items.len();
        let mut emb = vec![0.0f32; n_items * dim];
        let pool = delrec_par::current();
        let item_ranges = delrec_par::partition(n_items, pool.lanes());
        let row_ranges: Vec<_> = item_ranges
            .iter()
            .map(|r| r.start * dim..r.end * dim)
            .collect();
        pool.for_each_range(&mut emb, &row_ranges, |i, rows| {
            for (row, j) in rows.chunks_exact_mut(dim).zip(item_ranges[i].clone()) {
                let title = items.title(ItemId(j as u32));
                // Untokenizable title: the zero row scores 0 against every
                // query and sorts purely by id — never recommended, never a
                // panic.
                if !title.is_empty() {
                    row.copy_from_slice(&lm.title_embedding(title));
                }
            }
        });
        (emb, dim)
    }

    /// The current retriever: cached when its parameter-store version (and
    /// format slot) still match, rebuilt from freshly exported embeddings
    /// otherwise.
    fn retriever(&self) -> Arc<Retriever> {
        let version = self.model.lm().store().version();
        let (slot, format) = match self.model.math_mode() {
            MathMode::Quantized => (1, IndexFormat::Q8),
            _ => (0, IndexFormat::F32),
        };
        {
            let slots = self.cache.slots.lock().unwrap();
            if let Some(r) = &slots[slot] {
                if r.index().version() == version {
                    delrec_obs::counter!("retrieval.index.hit").incr();
                    return Arc::clone(r);
                }
            }
        }
        // Build outside the lock: export + pack dominate a miss by orders of
        // magnitude, and holding the mutex across them would stall every
        // concurrent recommend — including hits on the *other* slot. Two
        // threads can race past the miss and both build; the double-check
        // below resolves it toward the first insert. Both builds are bitwise
        // identical (same version, same embeddings), so discarding the
        // loser's copy changes nothing but some wasted work under a race
        // that only fires on simultaneous first-touch of a new version.
        let (emb, dim) = Self::export_embeddings(self.model.lm(), self.model.items());
        let built = Arc::new(Retriever::build(emb, dim, version, format));
        let mut slots = self.cache.slots.lock().unwrap();
        if let Some(r) = &slots[slot] {
            if r.index().version() == version {
                return Arc::clone(r);
            }
        }
        slots[slot] = Some(Arc::clone(&built));
        built
    }

    /// Retrieve-only entry (no re-ranking): the scan's best-first top-`n`.
    /// This is the stage the recall@N evaluation measures.
    pub fn retrieve(&self, history: &[ItemId], n: usize) -> Vec<(ItemId, f32)> {
        self.retriever().retrieve(history, n)
    }

    /// The full pipeline: retrieve `max(retrieve_n, k)` candidates from the
    /// whole catalog, re-rank them with the fitted DELRec, return the `k`
    /// best (score descending, ties toward the smaller [`ItemId`]).
    pub fn recommend(&self, history: &[ItemId], k: usize) -> Vec<(ItemId, f32)> {
        assert!(k > 0, "k must be positive");
        let _span = delrec_obs::span!("recommend");
        let retrieved = self.retrieve(history, self.cfg.retrieve_n.max(k));
        let ids: Vec<ItemId> = retrieved.iter().map(|&(id, _)| id).collect();
        let rerank = delrec_obs::span!("rerank");
        let scores = score_candidates_chunked(&self.model, history, &ids, self.cfg.rerank_chunk);
        drop(rerank);
        let mut ranked: Vec<(ItemId, f32)> = ids.into_iter().zip(scores).collect();
        sort_ranked(&mut ranked);
        ranked.truncate(k);
        ranked
    }

    /// Serve a whole batch of histories through one pipeline pass: one
    /// retriever pin, one `[B, d] × [d, n_items]` catalog scan, and one
    /// re-rank batch covering every request's candidate chunks. Row `i` is
    /// bitwise identical to [`recommend`](Self::recommend)`(histories[i],
    /// k)` at every thread count and batch size.
    pub fn recommend_batch(&self, histories: &[&[ItemId]], k: usize) -> Vec<Vec<(ItemId, f32)>> {
        let requests: Vec<TopKQuery<'_>> = histories.iter().map(|&h| (h, k)).collect();
        self.recommend_batch_impl(&requests)
    }

    /// The batched pipeline behind [`recommend_batch`](Self::recommend_batch)
    /// and the [`TopKRecommender::recommend_top_k_batch`] override, with a
    /// per-request `k`.
    ///
    /// Per-row equivalence with the sequential path holds stage by stage:
    /// the batched scan's row `i` is the m=1 scan of history `i` (fixed
    /// accumulation order per output element), per-row top-k is a pure
    /// function of that row, and the flattened re-rank scores each
    /// `(history, chunk)` request identically to the per-request chunk loop
    /// (`score_candidates_batch` row `i` ≡ `score_candidates(request i)`,
    /// pinned since the batched-scoring protocol landed).
    fn recommend_batch_impl(&self, requests: &[TopKQuery<'_>]) -> Vec<Vec<(ItemId, f32)>> {
        for &(_, k) in requests {
            assert!(k > 0, "k must be positive");
        }
        if requests.is_empty() {
            return Vec::new();
        }
        let _span = delrec_obs::span!("recommend.batch");
        let retriever = self.retriever();
        let histories: Vec<&[ItemId]> = requests.iter().map(|&(h, _)| h).collect();
        let ns: Vec<usize> = requests
            .iter()
            .map(|&(_, k)| self.cfg.retrieve_n.max(k))
            .collect();
        let retrieved = retriever.retrieve_batch_each(&histories, &ns);
        let id_lists: Vec<Vec<ItemId>> = retrieved
            .iter()
            .map(|rows| rows.iter().map(|&(id, _)| id).collect())
            .collect();
        // One re-rank batch for the whole request set: every request's
        // rerank_chunk-sized candidate slices, flattened in request order.
        let chunk = self.cfg.rerank_chunk;
        let mut flat: Vec<ScoreRequest<'_>> = Vec::new();
        for (ids, &h) in id_lists.iter().zip(&histories) {
            for group in ids.chunks(chunk) {
                flat.push((h, group));
            }
        }
        let rerank = delrec_obs::span!("rerank");
        let scored = self.model.score_candidates_batch(&flat);
        drop(rerank);
        let mut out = Vec::with_capacity(requests.len());
        let mut row = 0;
        for (ids, &(_, k)) in id_lists.iter().zip(requests) {
            let n_chunks = ids.len().div_ceil(chunk);
            let mut scores = Vec::with_capacity(ids.len());
            for group in &scored[row..row + n_chunks] {
                scores.extend_from_slice(group);
            }
            row += n_chunks;
            let mut ranked: Vec<(ItemId, f32)> = ids.iter().copied().zip(scores).collect();
            sort_ranked(&mut ranked);
            ranked.truncate(k);
            out.push(ranked);
        }
        out
    }
}

impl TopKRecommender for Recommender {
    fn recommend_top_k(&self, prefix: &[ItemId], k: usize) -> Vec<(ItemId, f32)> {
        self.recommend(prefix, k)
    }

    fn recommend_top_k_batch(&self, requests: &[TopKQuery<'_>]) -> Vec<Vec<(ItemId, f32)>> {
        self.recommend_batch_impl(requests)
    }
}

/// The pipeline still serves the classic candidate-scoring protocol by
/// delegating to the wrapped model — one `Server<Recommender>` can answer
/// both request shapes.
impl Ranker for Recommender {
    fn name(&self) -> &str {
        "delrec+retrieval"
    }

    fn score_candidates(&self, prefix: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        self.model.score_candidates(prefix, candidates)
    }

    fn score_candidates_batch(&self, requests: &[ScoreRequest<'_>]) -> Vec<Vec<f32>> {
        self.model.score_candidates_batch(requests)
    }

    fn model_version(&self) -> u64 {
        self.model.model_version()
    }
}
