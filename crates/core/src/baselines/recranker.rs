//! RecRanker (Luo et al., 2023) — paradigm 1.
//!
//! Integrates the conventional model's recommendation *results as text* into
//! the prompt and instruction-tunes the LM to rank. The teacher's top-h list
//! appears verbatim in both training and inference prompts; the only channel
//! for the teacher's behaviour is that text — the information bottleneck the
//! paper's analysis calls out.

use crate::baselines::common::rank_with_prompt;
use crate::config::StageConfig;
use crate::pipeline::Pipeline;
use crate::prompt::{ItemTokens, PromptBuilder};
use crate::stage1::TrainItem;
use crate::stage2::{finetune, Stage2Options};
use delrec_data::{CandidateSampler, Dataset, ItemId, Split, Vocab};
use delrec_eval::Ranker;
use delrec_lm::{AdaLoraConfig, MiniLm};
use delrec_seqrec::SequentialRecommender;
use std::rc::Rc;

/// RecRanker: teacher results as prompt text + instruction tuning.
pub struct RecRanker {
    lm: MiniLm,
    vocab: Vocab,
    items: ItemTokens,
    teacher: Rc<dyn SequentialRecommender>,
    h: usize,
}

impl RecRanker {
    /// Fine-tune on ground truth with teacher hints in the prompt.
    pub fn fit(
        dataset: &Dataset,
        pipeline: &Pipeline,
        teacher: Rc<dyn SequentialRecommender>,
        mut lm: MiniLm,
        stage: &StageConfig,
        h: usize,
        seed: u64,
    ) -> Self {
        lm.attach_adalora(AdaLoraConfig::default(), seed);
        let pb = PromptBuilder::new(&pipeline.vocab, &pipeline.items, teacher.name());
        let sampler = CandidateSampler::new(dataset.num_items(), 15);
        let mut items = Vec::new();
        let cap = stage.max_examples.unwrap_or(usize::MAX);
        for (i, ex) in dataset.examples(Split::Train).iter().enumerate() {
            if items.len() >= cap {
                break;
            }
            let hints = teacher.recommend(&ex.prefix, h);
            let candidates = sampler.candidates(ex.target, seed, i);
            let target_idx = candidates.iter().position(|&c| c == ex.target).unwrap();
            let prompt = pb.recommendation_with_hints(&ex.prefix, &hints, &candidates);
            items.push(TrainItem {
                prompt,
                candidates: pipeline.items.titles_of(&candidates),
                target_idx,
            });
        }
        finetune(
            &mut lm,
            None,
            &items,
            stage,
            0,
            Stage2Options::default(),
            seed ^ 0x22,
        );
        RecRanker {
            lm,
            vocab: pipeline.vocab.clone(),
            items: pipeline.items.clone(),
            teacher,
            h,
        }
    }
}

impl Ranker for RecRanker {
    fn name(&self) -> &str {
        "recranker"
    }

    fn score_candidates(&self, prefix: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        let pb = PromptBuilder::new(&self.vocab, &self.items, self.teacher.name());
        let take = prefix.len().min(9);
        let history = &prefix[prefix.len() - take..];
        let hints = self.teacher.recommend(prefix, self.h);
        let prompt = pb.recommendation_with_hints(history, &hints, candidates);
        rank_with_prompt(&self.lm, &self.items, &prompt, candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{pretrained_lm, LmPreset};
    use delrec_lm::PretrainConfig;
    use delrec_seqrec::PopularityRecommender;

    #[test]
    fn fits_and_ranks_with_teacher_hints() {
        let ds = delrec_data::synthetic::SyntheticConfig::profile(
            delrec_data::synthetic::DatasetProfile::MovieLens100K,
        )
        .scaled(0.08)
        .generate(12);
        let p = Pipeline::build(&ds);
        let lm = pretrained_lm(
            &ds,
            &p,
            LmPreset::Large,
            &PretrainConfig {
                epochs: 1,
                max_sentences: Some(100),
                ..Default::default()
            },
            2,
        );
        let teacher: Rc<dyn SequentialRecommender> = Rc::new(PopularityRecommender::fit(&ds));
        let stage = StageConfig {
            epochs: 1,
            batch_size: 4,
            max_examples: Some(12),
            lr: 2e-3,
            weight_decay: 1e-6,
            optimizer: crate::config::StageOptimizer::Adam,
        };
        let model = RecRanker::fit(&ds, &p, teacher, lm, &stage, 3, 7);
        let scores = model.score_candidates(&[ItemId(0), ItemId(1)], &[ItemId(2), ItemId(3)]);
        assert_eq!(scores.len(), 2);
        assert!(scores.iter().all(|s| s.is_finite()));
    }
}
