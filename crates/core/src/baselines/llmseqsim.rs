//! LLMSEQSIM (Harte et al., RecSys 2023) — paradigm 3.
//!
//! No training at all: item embeddings come from the LM (title embeddings),
//! the session embedding is a recency-weighted mean of the history's item
//! embeddings, and candidates are ranked by cosine similarity.

use crate::pipeline::Pipeline;
use delrec_data::{Dataset, ItemId};
use delrec_eval::Ranker;
use delrec_lm::MiniLm;

use super::common::cosine;

/// Session-similarity recommender over LM title embeddings.
pub struct LlmSeqSim {
    item_emb: Vec<Vec<f32>>,
    /// Exponential recency weight base (1.0 = plain mean).
    pub recency: f32,
}

impl LlmSeqSim {
    /// Precompute every item's LM embedding.
    pub fn build(dataset: &Dataset, pipeline: &Pipeline, lm: &MiniLm) -> Self {
        let item_emb = (0..dataset.num_items())
            .map(|i| lm.title_embedding(pipeline.items.title(ItemId(i as u32))))
            .collect();
        LlmSeqSim {
            item_emb,
            recency: 1.3,
        }
    }

    /// The session embedding: recency-weighted mean of history embeddings.
    fn session_embedding(&self, prefix: &[ItemId]) -> Vec<f32> {
        let d = self.item_emb[0].len();
        let mut out = vec![0.0f32; d];
        let mut total = 0.0f32;
        let n = prefix.len();
        for (pos, &id) in prefix.iter().enumerate() {
            // Most recent item gets the largest weight.
            let w = self.recency.powi(pos as i32 - n as i32 + 1);
            for (o, &v) in out.iter_mut().zip(&self.item_emb[id.index()]) {
                *o += w * v;
            }
            total += w;
        }
        if total > 0.0 {
            for o in &mut out {
                *o /= total;
            }
        }
        out
    }
}

impl Ranker for LlmSeqSim {
    fn name(&self) -> &str {
        "llmseqsim"
    }

    fn score_candidates(&self, prefix: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        let session = self.session_embedding(prefix);
        candidates
            .iter()
            .map(|c| cosine(&session, &self.item_emb[c.index()]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{pretrained_lm, LmPreset};
    use delrec_lm::PretrainConfig;

    #[test]
    fn similar_titles_score_higher_after_pretraining() {
        let ds = delrec_data::synthetic::SyntheticConfig::profile(
            delrec_data::synthetic::DatasetProfile::MovieLens100K,
        )
        .scaled(0.12)
        .generate(16);
        let p = Pipeline::build(&ds);
        let lm = pretrained_lm(
            &ds,
            &p,
            LmPreset::Large,
            &PretrainConfig {
                epochs: 2,
                max_sentences: Some(600),
                ..Default::default()
            },
            2,
        );
        let model = LlmSeqSim::build(&ds, &p, &lm);
        // A history of one genre should, on average, score same-genre
        // candidates above different-genre candidates.
        let genre_of = |i: u32| ds.catalog.get(ItemId(i)).genre;
        let g0 = genre_of(0);
        let same: Vec<ItemId> = ds
            .catalog
            .ids()
            .filter(|&i| ds.catalog.get(i).genre == g0 && i.0 != 0)
            .take(5)
            .collect();
        let diff: Vec<ItemId> = ds
            .catalog
            .ids()
            .filter(|&i| ds.catalog.get(i).genre != g0)
            .take(5)
            .collect();
        let prefix = vec![ItemId(0)];
        let s_same: f32 = model.score_candidates(&prefix, &same).iter().sum::<f32>() / 5.0;
        let s_diff: f32 = model.score_candidates(&prefix, &diff).iter().sum::<f32>() / 5.0;
        assert!(
            s_same > s_diff,
            "genre structure must show in LM embeddings: same {s_same} vs diff {s_diff}"
        );
    }

    #[test]
    fn recency_weighting_prefers_recent_items() {
        let ds = delrec_data::synthetic::SyntheticConfig::profile(
            delrec_data::synthetic::DatasetProfile::MovieLens100K,
        )
        .scaled(0.08)
        .generate(16);
        let p = Pipeline::build(&ds);
        let lm = delrec_lm::MiniLm::new(delrec_lm::MiniLmConfig::large(p.vocab.len()), 4);
        let model = LlmSeqSim::build(&ds, &p, &lm);
        // Session of [a, b] vs [b, a]: candidate == b should score higher
        // when b is most recent.
        let (a, b) = (ItemId(0), ItemId(1));
        let recent_b = model.score_candidates(&[a, b], &[b])[0];
        let recent_a = model.score_candidates(&[b, a], &[b])[0];
        assert!(recent_b > recent_a);
    }
}
