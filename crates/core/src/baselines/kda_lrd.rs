//! KDA_LRD (Yang et al., 2024 over Wang et al., TOIS 2020) — paradigm 3,
//! the paper's strongest LLM-based baseline.
//!
//! KDA (Fourier temporal relations over item ids) is enhanced with LRD:
//! latent relations between items *discovered by the LLM*. Here the latent
//! relation between a history item and a candidate is the cosine similarity
//! of their LM title embeddings; the relation score is blended with KDA's
//! sequential score.

use crate::pipeline::Pipeline;
use delrec_data::{Dataset, ItemId, Split};
use delrec_eval::Ranker;
use delrec_lm::MiniLm;
use delrec_seqrec::kda::{Kda, KdaConfig};
use delrec_seqrec::trainer::{train, TrainConfig};
use delrec_seqrec::SequentialRecommender;

use super::common::{cosine, minmax};

/// KDA with LLM-discovered latent relations.
pub struct KdaLrd {
    kda: Kda,
    item_emb: Vec<Vec<f32>>,
    /// Weight of the latent-relation term.
    pub relation_weight: f32,
}

impl KdaLrd {
    /// Train the KDA backbone and precompute LM item embeddings.
    pub fn fit(
        dataset: &Dataset,
        pipeline: &Pipeline,
        lm: &MiniLm,
        epochs: usize,
        max_examples: Option<usize>,
        seed: u64,
    ) -> Self {
        let mut kda = Kda::new(dataset.num_items(), KdaConfig::default(), seed);
        let tc = TrainConfig {
            max_examples,
            seed,
            ..TrainConfig::adam(epochs, 1e-3)
        };
        train(&mut kda, dataset.examples(Split::Train), &tc);
        let item_emb = (0..dataset.num_items())
            .map(|i| lm.title_embedding(pipeline.items.title(ItemId(i as u32))))
            .collect();
        KdaLrd {
            kda,
            item_emb,
            relation_weight: 0.5,
        }
    }

    /// Latent-relation score of a candidate: mean LM-embedding similarity to
    /// the (recent) history.
    fn relation_score(&self, prefix: &[ItemId], candidate: ItemId) -> f32 {
        let take = prefix.len().min(5);
        let recent = &prefix[prefix.len() - take..];
        if recent.is_empty() {
            return 0.0;
        }
        recent
            .iter()
            .map(|h| cosine(&self.item_emb[h.index()], &self.item_emb[candidate.index()]))
            .sum::<f32>()
            / recent.len() as f32
    }
}

impl Ranker for KdaLrd {
    fn name(&self) -> &str {
        "kda-lrd"
    }

    fn score_candidates(&self, prefix: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        let kda_all = self.kda.scores(prefix);
        let kda_scores: Vec<f32> = candidates.iter().map(|c| kda_all[c.index()]).collect();
        let rel: Vec<f32> = candidates
            .iter()
            .map(|&c| self.relation_score(prefix, c))
            .collect();
        let k = minmax(&kda_scores);
        let r = minmax(&rel);
        k.iter()
            .zip(&r)
            .map(|(&ks, &rs)| (1.0 - self.relation_weight) * ks + self.relation_weight * rs)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{pretrained_lm, LmPreset};
    use delrec_lm::PretrainConfig;

    #[test]
    fn fits_and_blends_scores() {
        let ds = delrec_data::synthetic::SyntheticConfig::profile(
            delrec_data::synthetic::DatasetProfile::MovieLens100K,
        )
        .scaled(0.08)
        .generate(18);
        let p = Pipeline::build(&ds);
        let lm = pretrained_lm(
            &ds,
            &p,
            LmPreset::Large,
            &PretrainConfig {
                epochs: 1,
                max_sentences: Some(100),
                ..Default::default()
            },
            2,
        );
        let mut model = KdaLrd::fit(&ds, &p, &lm, 1, Some(40), 7);
        let cands = vec![ItemId(0), ItemId(1), ItemId(2)];
        let prefix = vec![ItemId(3), ItemId(4)];
        let s = model.score_candidates(&prefix, &cands);
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|v| v.is_finite() && (0.0..=1.0).contains(v)));
        // relation_weight = 0 reduces to pure (normalized) KDA ordering.
        model.relation_weight = 0.0;
        let pure = model.score_candidates(&prefix, &cands);
        let kda_all = model.kda.scores(&prefix);
        let expect = minmax(&cands.iter().map(|c| kda_all[c.index()]).collect::<Vec<_>>());
        assert_eq!(pure, expect);
    }
}
