//! The paper's LLM-based comparison systems (Table II), reimplemented at
//! paradigm fidelity on the shared MiniLM + seqrec substrates.
//!
//! Paradigm 1 — *textual information from conventional SR models in the
//! prompt*: [`recranker`], [`llmseqprompt`], [`llmtrsr`]. The shared failure
//! mode the paper highlights — text cannot fully describe a model's
//! behaviour — is inherent in the construction.
//!
//! Paradigm 2 — *conventional-model embeddings injected through a
//! projector*: [`llara`] (trainable linear projector into the LM's embedding
//! space), [`llm2bert4rec`] (PCA-projected LM embeddings initializing
//! BERT4Rec). The projector's information loss is real, not simulated.
//!
//! Paradigm 3 — *combining embeddings from LLMs and conventional models*:
//! [`llamarec`] (teacher recall + LM verbalizer rerank), [`llmseqsim`]
//! (LM-embedding session similarity), [`kda_lrd`] (KDA plus latent relations
//! discovered from LM title embeddings).
//!
//! Raw LLM rows (Bert-Large / Flan-T5-Large / Flan-T5-XL) are [`zero_shot`].

pub mod common;
pub mod kda_lrd;
pub mod llamarec;
pub mod llara;
pub mod llm2bert4rec;
pub mod llmseqprompt;
pub mod llmseqsim;
pub mod llmtrsr;
pub mod recranker;
pub mod zero_shot;

pub use kda_lrd::KdaLrd;
pub use llamarec::LlamaRec;
pub use llara::Llara;
pub use llm2bert4rec::Llm2Bert4Rec;
pub use llmseqprompt::LlmSeqPrompt;
pub use llmseqsim::LlmSeqSim;
pub use llmtrsr::LlmTrsr;
pub use recranker::RecRanker;
pub use zero_shot::ZeroShotLm;
