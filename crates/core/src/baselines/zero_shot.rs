//! Raw open-source LLM rows of Table II: the LM used directly as a
//! recommender with no adaptation — the paper's Bert-Large, Flan-T5-Large,
//! and Flan-T5-XL baselines.

use crate::baselines::common::rank_with_prompt;
use crate::prompt::{ItemTokens, PromptBuilder, SoftMode};
use delrec_data::{ItemId, Vocab};
use delrec_eval::Ranker;
use delrec_lm::MiniLm;

/// A (possibly pretrained) MiniLM answering recommendation prompts
/// zero-shot. Pass an *unpretrained* LM to reproduce the "Bert-Large" row
/// (no usable world knowledge → near-chance), a pretrained Large/XL LM for
/// the Flan-T5 rows.
pub struct ZeroShotLm {
    name: String,
    lm: MiniLm,
    vocab: Vocab,
    items: ItemTokens,
}

impl ZeroShotLm {
    /// Wrap an LM for zero-shot ranking.
    pub fn new(name: impl Into<String>, lm: MiniLm, vocab: Vocab, items: ItemTokens) -> Self {
        ZeroShotLm {
            name: name.into(),
            lm,
            vocab,
            items,
        }
    }
}

impl Ranker for ZeroShotLm {
    fn name(&self) -> &str {
        &self.name
    }

    fn score_candidates(&self, prefix: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        // The prompt builder needs *a* teacher word for construction, but
        // SoftMode::None never mentions it.
        let pb = PromptBuilder::new(&self.vocab, &self.items, "sasrec");
        let take = prefix.len().min(9);
        let prompt = pb.recommendation(&prefix[prefix.len() - take..], candidates, SoftMode::None);
        rank_with_prompt(&self.lm, &self.items, &prompt, candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{pretrained_lm, LmPreset, Pipeline};
    use delrec_data::synthetic::{DatasetProfile, SyntheticConfig};
    use delrec_data::Split;
    use delrec_eval::{evaluate, EvalConfig};
    use delrec_lm::{MiniLmConfig, PretrainConfig};

    #[test]
    fn pretrained_zero_shot_beats_unpretrained() {
        let ds = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
            .scaled(0.12)
            .generate(10);
        let p = Pipeline::build(&ds);
        let raw = ZeroShotLm::new(
            "bert-large",
            MiniLm::new(MiniLmConfig::large(p.vocab.len()), 1),
            p.vocab.clone(),
            p.items.clone(),
        );
        let lm = pretrained_lm(
            &ds,
            &p,
            LmPreset::Large,
            &PretrainConfig {
                epochs: 2,
                max_sentences: Some(600),
                ..Default::default()
            },
            1,
        );
        let tuned = ZeroShotLm::new("flan-t5-large", lm, p.vocab.clone(), p.items.clone());
        let cfg = EvalConfig {
            max_examples: Some(80),
            ..Default::default()
        };
        let hr_raw = evaluate(&raw, &ds, Split::Test, &cfg).hr(5);
        let hr_tuned = evaluate(&tuned, &ds, Split::Test, &cfg).hr(5);
        // Zero-shot transfer at MiniLM scale is weak (both sit near chance,
        // matching the paper's poor raw-LLM rows); pretraining must at least
        // not *degrade* ranking beyond noise.
        assert!(
            hr_tuned >= hr_raw - 0.05,
            "pretraining degraded zero-shot ranking: raw {hr_raw}, pretrained {hr_tuned}"
        );
    }
}
