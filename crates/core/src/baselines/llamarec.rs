//! LlamaRec (Yue et al., 2023) — paradigm 3.
//!
//! Two-stage retrieve-then-rerank: the conventional model recalls its top
//! items with its embeddings; the LM's verbalizer converts output logits
//! into a candidate probability distribution to rerank. Scores combine the
//! teacher's recall strength with the LM's verbalized preference.

use crate::baselines::common::{minmax, rank_with_prompt};
use crate::prompt::{ItemTokens, PromptBuilder, SoftMode};
use delrec_data::{ItemId, Vocab};
use delrec_eval::Ranker;
use delrec_lm::MiniLm;
use delrec_seqrec::SequentialRecommender;
use std::rc::Rc;

/// Retrieval + verbalizer reranking.
pub struct LlamaRec {
    lm: MiniLm,
    vocab: Vocab,
    items: ItemTokens,
    teacher: Rc<dyn SequentialRecommender>,
    /// Mixing weight of the teacher's recall score (0 = LM only).
    pub recall_weight: f32,
}

impl LlamaRec {
    /// Assemble from a pretrained LM and a trained teacher (no further
    /// training — LlamaRec's ranker here is the frozen verbalizer head).
    pub fn new(
        lm: MiniLm,
        vocab: Vocab,
        items: ItemTokens,
        teacher: Rc<dyn SequentialRecommender>,
    ) -> Self {
        LlamaRec {
            lm,
            vocab,
            items,
            teacher,
            recall_weight: 0.6,
        }
    }
}

impl Ranker for LlamaRec {
    fn name(&self) -> &str {
        "llamarec"
    }

    fn score_candidates(&self, prefix: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        // Stage A: teacher recall scores for the candidates.
        let teacher_all = self.teacher.scores(prefix);
        let teacher_scores: Vec<f32> = candidates.iter().map(|c| teacher_all[c.index()]).collect();
        // Stage B: LM verbalizer over the candidate set.
        let pb = PromptBuilder::new(&self.vocab, &self.items, self.teacher.name());
        let take = prefix.len().min(9);
        let prompt = pb.recommendation(&prefix[prefix.len() - take..], candidates, SoftMode::None);
        let lm_scores = rank_with_prompt(&self.lm, &self.items, &prompt, candidates);
        // Mix on a common [0, 1] scale.
        let t = minmax(&teacher_scores);
        let l = minmax(&lm_scores);
        t.iter()
            .zip(&l)
            .map(|(&ts, &ls)| self.recall_weight * ts + (1.0 - self.recall_weight) * ls)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use delrec_lm::MiniLmConfig;
    use delrec_seqrec::PopularityRecommender;

    #[test]
    fn mixes_teacher_and_lm_scores() {
        let ds = delrec_data::synthetic::SyntheticConfig::profile(
            delrec_data::synthetic::DatasetProfile::MovieLens100K,
        )
        .scaled(0.08)
        .generate(17);
        let p = Pipeline::build(&ds);
        let lm = MiniLm::new(MiniLmConfig::large(p.vocab.len()), 1);
        let teacher: Rc<dyn SequentialRecommender> = Rc::new(PopularityRecommender::fit(&ds));
        let mut model = LlamaRec::new(lm, p.vocab.clone(), p.items.clone(), teacher.clone());

        let cands = vec![ItemId(0), ItemId(1), ItemId(2)];
        let prefix = vec![ItemId(3)];
        // With recall_weight = 1 the ordering equals the teacher's.
        model.recall_weight = 1.0;
        let s = model.score_candidates(&prefix, &cands);
        let t_all = teacher.scores(&prefix);
        let t: Vec<f32> = cands.iter().map(|c| t_all[c.index()]).collect();
        let order = |v: &[f32]| {
            let mut idx: Vec<usize> = (0..v.len()).collect();
            idx.sort_by(|&a, &b| v[b].partial_cmp(&v[a]).unwrap());
            idx
        };
        assert_eq!(order(&s), order(&t));
        // With recall_weight = 0 the scores still come back finite (LM-only).
        model.recall_weight = 0.0;
        assert!(model
            .score_candidates(&prefix, &cands)
            .iter()
            .all(|v| v.is_finite()));
    }
}
