//! LLM-TRSR (Zheng et al., WWW 2024) — paradigm 1.
//!
//! Segments the history and condenses the older part into a *textual
//! summary*, keeping only recent interactions verbatim; the LM is fine-tuned
//! on prompts of (summary, recent items, candidates). Summarization is
//! implemented as the most-frequent title words of the older history — a
//! faithful stand-in for an LLM-generated recurrent summary at this scale,
//! with the same property: it is lossy text.

use crate::baselines::common::{push_title, push_words, rank_with_prompt};
use crate::config::StageConfig;
use crate::pipeline::Pipeline;
use crate::prompt::{ItemTokens, Prompt};
use crate::stage1::TrainItem;
use crate::stage2::{finetune, Stage2Options};
use delrec_data::{CandidateSampler, Dataset, ItemId, Split, Vocab};
use delrec_eval::Ranker;
use delrec_lm::{AdaLoraConfig, LmToken, MiniLm};
use std::collections::HashMap;

/// How many most-recent items stay verbatim; older ones are summarized.
const RECENT_WINDOW: usize = 4;
/// Summary length in words.
const SUMMARY_WORDS: usize = 5;

/// Summary-prompt recommender.
pub struct LlmTrsr {
    lm: MiniLm,
    vocab: Vocab,
    items: ItemTokens,
}

impl LlmTrsr {
    /// Summarize the pre-window history as its most frequent title words.
    fn summary_words(items: &ItemTokens, older: &[ItemId]) -> Vec<u32> {
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for &id in older {
            for &w in items.title(id) {
                *counts.entry(w).or_default() += 1;
            }
        }
        let mut words: Vec<(u32, usize)> = counts.into_iter().collect();
        words.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        words
            .into_iter()
            .take(SUMMARY_WORDS)
            .map(|(w, _)| w)
            .collect()
    }

    fn build_prompt(
        vocab: &Vocab,
        items: &ItemTokens,
        prefix: &[ItemId],
        candidates: &[ItemId],
    ) -> Prompt {
        let take = prefix.len().min(9);
        let history = &prefix[prefix.len() - take..];
        let split = history.len().saturating_sub(RECENT_WINDOW);
        let (older, recent) = history.split_at(split);
        let mut t = Vec::new();
        push_words(
            vocab,
            "predict the next item for the user based on their history",
            &mut t,
        );
        t.push(LmToken::Vocab(vocab.sep()));
        let prefix_len = t.len();
        if !older.is_empty() {
            // The "recurrent summary" of the older history.
            push_words(vocab, "the user history is like", &mut t);
            for w in Self::summary_words(items, older) {
                t.push(LmToken::Vocab(w));
            }
            t.push(LmToken::Vocab(vocab.sep()));
        }
        push_words(vocab, "recent history", &mut t);
        t.push(LmToken::Vocab(vocab.sep()));
        for &id in recent {
            push_title(items, vocab, id, &mut t);
        }
        push_words(vocab, "candidates", &mut t);
        t.push(LmToken::Vocab(vocab.sep()));
        for &id in candidates {
            push_title(items, vocab, id, &mut t);
        }
        push_words(vocab, "answer", &mut t);
        let mask_pos = t.len();
        t.push(LmToken::Vocab(vocab.mask()));
        Prompt {
            tokens: t,
            mask_pos,
            prefix_len,
        }
    }

    /// Fine-tune on summary prompts.
    pub fn fit(
        dataset: &Dataset,
        pipeline: &Pipeline,
        mut lm: MiniLm,
        stage: &StageConfig,
        seed: u64,
    ) -> Self {
        lm.attach_adalora(AdaLoraConfig::default(), seed);
        let sampler = CandidateSampler::new(dataset.num_items(), 15);
        let mut items = Vec::new();
        let cap = stage.max_examples.unwrap_or(usize::MAX);
        for (i, ex) in dataset.examples(Split::Train).iter().enumerate() {
            if items.len() >= cap {
                break;
            }
            let candidates = sampler.candidates(ex.target, seed, i);
            let target_idx = candidates.iter().position(|&c| c == ex.target).unwrap();
            let prompt =
                Self::build_prompt(&pipeline.vocab, &pipeline.items, &ex.prefix, &candidates);
            items.push(TrainItem {
                prompt,
                candidates: pipeline.items.titles_of(&candidates),
                target_idx,
            });
        }
        finetune(
            &mut lm,
            None,
            &items,
            stage,
            0,
            Stage2Options::default(),
            seed ^ 0x33,
        );
        LlmTrsr {
            lm,
            vocab: pipeline.vocab.clone(),
            items: pipeline.items.clone(),
        }
    }
}

impl Ranker for LlmTrsr {
    fn name(&self) -> &str {
        "llm-trsr"
    }

    fn score_candidates(&self, prefix: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        let prompt = Self::build_prompt(&self.vocab, &self.items, prefix, candidates);
        rank_with_prompt(&self.lm, &self.items, &prompt, candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{pretrained_lm, LmPreset};
    use delrec_lm::PretrainConfig;

    fn setup() -> (Dataset, Pipeline) {
        let ds = delrec_data::synthetic::SyntheticConfig::profile(
            delrec_data::synthetic::DatasetProfile::MovieLens100K,
        )
        .scaled(0.08)
        .generate(13);
        let p = Pipeline::build(&ds);
        (ds, p)
    }

    #[test]
    fn summary_picks_most_frequent_words() {
        let (ds, p) = setup();
        // Use several copies of item 0 and one of item 1: item 0's title
        // words must dominate the summary.
        let older = vec![ItemId(0), ItemId(0), ItemId(0), ItemId(1)];
        let summary = LlmTrsr::summary_words(&p.items, &older);
        assert!(!summary.is_empty());
        for &w in p.items.title(ItemId(0)) {
            assert!(summary.contains(&w), "dominant title word missing");
        }
        let _ = ds;
    }

    #[test]
    fn fits_and_ranks() {
        let (ds, p) = setup();
        let lm = pretrained_lm(
            &ds,
            &p,
            LmPreset::Large,
            &PretrainConfig {
                epochs: 1,
                max_sentences: Some(100),
                ..Default::default()
            },
            2,
        );
        let stage = StageConfig {
            epochs: 1,
            batch_size: 4,
            max_examples: Some(12),
            lr: 2e-3,
            weight_decay: 1e-6,
            optimizer: crate::config::StageOptimizer::Adam,
        };
        let model = LlmTrsr::fit(&ds, &p, lm, &stage, 7);
        let long_prefix: Vec<ItemId> = (0..9).map(ItemId).collect();
        let scores = model.score_candidates(&long_prefix, &[ItemId(2), ItemId(3)]);
        assert_eq!(scores.len(), 2);
        assert!(scores.iter().all(|s| s.is_finite()));
    }
}
