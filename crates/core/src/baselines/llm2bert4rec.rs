//! LLM2BERT4Rec (Harte et al., RecSys 2023) — paradigm 2.
//!
//! Initializes BERT4Rec's item-embedding table with the LM's title
//! embeddings, reduced to BERT4Rec's width with **PCA** (the projector whose
//! information loss the paper criticizes), then trains BERT4Rec as usual.

use crate::pipeline::Pipeline;
use delrec_data::{Dataset, ItemId, Split};
use delrec_eval::Ranker;
use delrec_lm::{pca, MiniLm};
use delrec_seqrec::bert4rec::{Bert4Rec, Bert4RecConfig};
use delrec_seqrec::trainer::{train, TrainConfig};
use delrec_seqrec::SequentialRecommender;
use delrec_tensor::Tensor;

/// BERT4Rec warm-started from PCA-projected LM title embeddings.
pub struct Llm2Bert4Rec {
    model: Bert4Rec,
}

impl Llm2Bert4Rec {
    /// Build LM title embeddings, PCA them down to `embed_dim`, initialize
    /// and train BERT4Rec.
    pub fn fit(
        dataset: &Dataset,
        pipeline: &Pipeline,
        lm: &MiniLm,
        epochs: usize,
        max_examples: Option<usize>,
        seed: u64,
    ) -> Self {
        let cfg = Bert4RecConfig::default();
        // LM title embeddings for every item.
        let raw: Vec<Vec<f32>> = (0..dataset.num_items())
            .map(|i| lm.title_embedding(pipeline.items.title(ItemId(i as u32))))
            .collect();
        let k = cfg.embed_dim.min(lm.cfg.d_model);
        let components = pca::fit_components(&raw, k, 40);
        let projected = pca::project(&raw, &components);
        // Pad (if k < embed_dim) and scale to a healthy init magnitude.
        let mut flat = vec![0.0f32; dataset.num_items() * cfg.embed_dim];
        let norm: f32 = projected
            .iter()
            .flat_map(|r| r.iter().map(|v| v * v))
            .sum::<f32>()
            .sqrt()
            .max(1e-6);
        let scale = 0.05 * (dataset.num_items() as f32 * cfg.embed_dim as f32).sqrt() / norm;
        for (i, row) in projected.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                flat[i * cfg.embed_dim + j] = v * scale;
            }
        }
        let mut model = Bert4Rec::new(dataset.num_items(), cfg.clone(), seed);
        model.set_item_embeddings(Tensor::new([dataset.num_items(), cfg.embed_dim], flat));
        let tc = TrainConfig {
            max_examples,
            seed,
            ..TrainConfig::adam(epochs, 1e-3)
        };
        train(&mut model, dataset.examples(Split::Train), &tc);
        Llm2Bert4Rec { model }
    }
}

impl Ranker for Llm2Bert4Rec {
    fn name(&self) -> &str {
        "llm2bert4rec"
    }

    fn score_candidates(&self, prefix: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        let all = self.model.scores(prefix);
        candidates.iter().map(|c| all[c.index()]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{pretrained_lm, LmPreset};
    use delrec_lm::PretrainConfig;

    #[test]
    fn fits_from_pca_initialized_embeddings() {
        let ds = delrec_data::synthetic::SyntheticConfig::profile(
            delrec_data::synthetic::DatasetProfile::MovieLens100K,
        )
        .scaled(0.08)
        .generate(15);
        let p = Pipeline::build(&ds);
        let lm = pretrained_lm(
            &ds,
            &p,
            LmPreset::Large,
            &PretrainConfig {
                epochs: 1,
                max_sentences: Some(100),
                ..Default::default()
            },
            2,
        );
        let model = Llm2Bert4Rec::fit(&ds, &p, &lm, 1, Some(40), 7);
        let scores = model.score_candidates(&[ItemId(0), ItemId(1)], &[ItemId(2), ItemId(3)]);
        assert_eq!(scores.len(), 2);
        assert!(scores.iter().all(|s| s.is_finite()));
    }
}
