//! Shared machinery for the LLM-based baselines.

use crate::prompt::{ItemTokens, Prompt};
use delrec_data::{ItemId, Vocab};
use delrec_lm::{verbalizer, LmToken, MiniLm};
use delrec_tensor::{Ctx, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run one eval-mode forward pass and rank `candidates` with the verbalizer.
pub fn rank_with_prompt(
    lm: &MiniLm,
    items: &ItemTokens,
    prompt: &Prompt,
    candidates: &[ItemId],
) -> Vec<f32> {
    let tape = Tape::new();
    let ctx = Ctx::new(&tape, lm.store(), false);
    let mut rng = StdRng::seed_from_u64(0);
    let logits = lm.mask_logits(&ctx, &prompt.tokens, None, prompt.mask_pos, &mut rng);
    let logits = tape.get(logits);
    verbalizer::rank_candidates(&logits, &items.titles_of(candidates))
}

/// Append an item title plus separator as hard tokens.
pub fn push_title(items: &ItemTokens, vocab: &Vocab, id: ItemId, out: &mut Vec<LmToken>) {
    for &t in items.title(id) {
        out.push(LmToken::Vocab(t));
    }
    out.push(LmToken::Vocab(vocab.sep()));
}

/// Encode known instruction words (panicking on vocabulary misses, like the
/// prompt builder does).
pub fn push_words(vocab: &Vocab, text: &str, out: &mut Vec<LmToken>) {
    for w in text.split_whitespace() {
        let id = vocab
            .id_strict(w)
            .unwrap_or_else(|| panic!("prompt word {w:?} missing from vocab"));
        out.push(LmToken::Vocab(id));
    }
}

/// Cosine similarity of two equal-length vectors (0 when either is zero).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Min-max normalize scores to `[0, 1]` (constant input → all zeros);
/// used when mixing score sources of different scales (paradigm 3).
pub fn minmax(scores: &[f32]) -> Vec<f32> {
    let lo = scores.iter().cloned().fold(f32::INFINITY, f32::min);
    let hi = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if !(hi - lo).is_normal() {
        return vec![0.0; scores.len()];
    }
    scores.iter().map(|&s| (s - lo) / (hi - lo)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn minmax_normalizes_and_handles_constants() {
        assert_eq!(minmax(&[1.0, 3.0, 2.0]), vec![0.0, 1.0, 0.5]);
        assert_eq!(minmax(&[5.0, 5.0]), vec![0.0, 0.0]);
    }
}
