//! LLMSEQPROMPT (Harte et al., RecSys 2023) — paradigm 1.
//!
//! "Injects domain knowledge into the prompts of LLMs": the session (item
//! list) is the prompt, the next item the completion, and the LM is
//! fine-tuned. No conventional-model signal at all — this isolates what
//! prompt fine-tuning alone achieves.

use crate::baselines::common::rank_with_prompt;
use crate::config::StageConfig;
use crate::pipeline::Pipeline;
use crate::prompt::{ItemTokens, PromptBuilder, SoftMode};
use crate::stage2::{build_lsr_items, finetune, Stage2Options};
use delrec_data::{Dataset, ItemId, Vocab};
use delrec_eval::Ranker;
use delrec_lm::{AdaLoraConfig, MiniLm};

/// Fine-tuned prompt-only recommender.
pub struct LlmSeqPrompt {
    lm: MiniLm,
    vocab: Vocab,
    items: ItemTokens,
}

impl LlmSeqPrompt {
    /// Fine-tune a pretrained LM on history→next-item prompts.
    pub fn fit(
        dataset: &Dataset,
        pipeline: &Pipeline,
        mut lm: MiniLm,
        stage: &StageConfig,
        seed: u64,
    ) -> Self {
        lm.attach_adalora(AdaLoraConfig::default(), seed);
        let pb = PromptBuilder::new(&pipeline.vocab, &pipeline.items, "sasrec");
        let items = build_lsr_items(
            dataset,
            &pb,
            &pipeline.items,
            15,
            SoftMode::None,
            stage.max_examples.unwrap_or(usize::MAX),
            seed,
        );
        finetune(
            &mut lm,
            None,
            &items,
            stage,
            0,
            Stage2Options::default(),
            seed ^ 0x11,
        );
        LlmSeqPrompt {
            lm,
            vocab: pipeline.vocab.clone(),
            items: pipeline.items.clone(),
        }
    }
}

impl Ranker for LlmSeqPrompt {
    fn name(&self) -> &str {
        "llmseqprompt"
    }

    fn score_candidates(&self, prefix: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        let pb = PromptBuilder::new(&self.vocab, &self.items, "sasrec");
        let take = prefix.len().min(9);
        let prompt = pb.recommendation(&prefix[prefix.len() - take..], candidates, SoftMode::None);
        rank_with_prompt(&self.lm, &self.items, &prompt, candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{pretrained_lm, LmPreset};
    use delrec_data::synthetic::{DatasetProfile, SyntheticConfig};
    use delrec_lm::PretrainConfig;

    #[test]
    fn fits_and_ranks() {
        let ds = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
            .scaled(0.08)
            .generate(11);
        let p = Pipeline::build(&ds);
        let lm = pretrained_lm(
            &ds,
            &p,
            LmPreset::Large,
            &PretrainConfig {
                epochs: 1,
                max_sentences: Some(100),
                ..Default::default()
            },
            2,
        );
        let stage = StageConfig {
            epochs: 1,
            batch_size: 4,
            max_examples: Some(12),
            lr: 2e-3,
            weight_decay: 1e-6,
            optimizer: crate::config::StageOptimizer::Adam,
        };
        let model = LlmSeqPrompt::fit(&ds, &p, lm, &stage, 7);
        let scores = model.score_candidates(&[ItemId(0), ItemId(1)], &[ItemId(2), ItemId(3)]);
        assert_eq!(scores.len(), 2);
        assert!(scores.iter().all(|s| s.is_finite()));
    }
}
