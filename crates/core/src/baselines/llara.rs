//! LLaRA (Liao et al., 2023) — paradigm 2.
//!
//! Inserts the conventional model's *item embeddings*, mapped through a
//! trainable projector, next to each history item's title in the prompt,
//! then fine-tunes the LM. The projector (a linear map from teacher space to
//! LM embedding space) is exactly the component whose information loss the
//! paper blames for this paradigm's gap to DELRec.

use crate::baselines::common::{push_title, push_words};
use crate::config::StageConfig;
use crate::pipeline::Pipeline;
use crate::prompt::{ItemTokens, Prompt};
use delrec_data::{CandidateSampler, Dataset, ItemId, Split, Vocab};
use delrec_eval::Ranker;
use delrec_lm::{verbalizer, AdaLoraConfig, LmToken, MiniLm};
use delrec_tensor::optim::{clip_grad_norm, Lion, Optimizer};
use delrec_tensor::{init, Ctx, ParamId, Tape, Tensor, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// LLaRA: hybrid prompts of titles + projected teacher embeddings.
pub struct Llara {
    lm: MiniLm,
    vocab: Vocab,
    items: ItemTokens,
    /// Teacher item embeddings, `[num_items, d_teacher]`, frozen.
    teacher_emb: Tensor,
    proj_w: ParamId,
    proj_b: ParamId,
}

impl Llara {
    /// One hybrid prompt: each history item contributes its title *and* a
    /// soft slot holding its projected teacher embedding.
    fn build_prompt(
        vocab: &Vocab,
        items: &ItemTokens,
        history: &[ItemId],
        candidates: &[ItemId],
    ) -> Prompt {
        let mut t = Vec::new();
        push_words(
            vocab,
            "predict the next item for the user based on their history",
            &mut t,
        );
        t.push(LmToken::Vocab(vocab.sep()));
        let prefix_len = t.len();
        for (slot, &id) in history.iter().enumerate() {
            for &w in items.title(id) {
                t.push(LmToken::Vocab(w));
            }
            t.push(LmToken::Soft(slot));
            t.push(LmToken::Vocab(vocab.sep()));
        }
        push_words(vocab, "candidates", &mut t);
        t.push(LmToken::Vocab(vocab.sep()));
        for &id in candidates {
            push_title(items, vocab, id, &mut t);
        }
        push_words(vocab, "answer", &mut t);
        let mask_pos = t.len();
        t.push(LmToken::Vocab(vocab.mask()));
        Prompt {
            tokens: t,
            mask_pos,
            prefix_len,
        }
    }

    /// Projected soft table for a history: `teacher_emb[history] @ W + b`.
    fn soft_table(&self, ctx: &Ctx<'_>, history: &[ItemId]) -> Var {
        let tape = ctx.tape;
        let idx: Vec<usize> = history.iter().map(|i| i.index()).collect();
        let table = tape.constant(self.teacher_emb.clone());
        let rows = tape.gather_rows(table, &idx);
        let projected = tape.matmul(rows, ctx.p(self.proj_w));
        tape.add(projected, ctx.p(self.proj_b))
    }

    /// Fine-tune the projector + AdaLoRA adapters on ground truth.
    pub fn fit(
        dataset: &Dataset,
        pipeline: &Pipeline,
        teacher_embeddings: Vec<Vec<f32>>,
        mut lm: MiniLm,
        stage: &StageConfig,
        seed: u64,
    ) -> Self {
        assert_eq!(teacher_embeddings.len(), dataset.num_items());
        let d_teacher = teacher_embeddings[0].len();
        let d_lm = lm.cfg.d_model;
        let flat: Vec<f32> = teacher_embeddings.iter().flatten().copied().collect();
        let teacher_emb = Tensor::new([dataset.num_items(), d_teacher], flat);

        let mut rng = StdRng::seed_from_u64(seed);
        let proj_w = lm
            .store_mut()
            .add("projector.w", init::xavier(d_teacher, d_lm, &mut rng));
        let proj_b = lm.store_mut().add("projector.b", Tensor::zeros([d_lm]));
        lm.attach_adalora(AdaLoraConfig::default(), seed ^ 0x44);
        lm.set_backbone_trainable(false);

        let mut model = Llara {
            lm,
            vocab: pipeline.vocab.clone(),
            items: pipeline.items.clone(),
            teacher_emb,
            proj_w,
            proj_b,
        };

        // Training set: (history, candidates, target) triples.
        let sampler = CandidateSampler::new(dataset.num_items(), 15);
        let cap = stage.max_examples.unwrap_or(usize::MAX);
        let examples: Vec<(Vec<ItemId>, Vec<ItemId>, usize)> = dataset
            .examples(Split::Train)
            .iter()
            .take(cap)
            .enumerate()
            .map(|(i, ex)| {
                let take = ex.prefix.len().min(9);
                let history = ex.prefix[ex.prefix.len() - take..].to_vec();
                let candidates = sampler.candidates(ex.target, seed, i);
                let target = candidates.iter().position(|&c| c == ex.target).unwrap();
                (history, candidates, target)
            })
            .collect();

        let mut opt = Lion::new(stage.lr, stage.weight_decay);
        let mut order: Vec<usize> = (0..examples.len()).collect();
        for _epoch in 0..stage.epochs {
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(stage.batch_size) {
                let mut updates = {
                    let tape = Tape::new();
                    let ctx = Ctx::new(&tape, model.lm.store(), true);
                    let mut rows = Vec::new();
                    let mut targets = Vec::new();
                    for &ei in chunk {
                        let (history, candidates, target) = &examples[ei];
                        let prompt =
                            Self::build_prompt(&model.vocab, &model.items, history, candidates);
                        let table = model.soft_table(&ctx, history);
                        let logits = model.lm.mask_logits(
                            &ctx,
                            &prompt.tokens,
                            Some(table),
                            prompt.mask_pos,
                            &mut rng,
                        );
                        rows.push(verbalizer::candidate_scores(
                            &tape,
                            logits,
                            &model.items.titles_of(candidates),
                        ));
                        targets.push(*target);
                    }
                    let scores = tape.stack_rows(&rows);
                    let loss = tape.cross_entropy(scores, &targets);
                    let mut grads = tape.backward(loss);
                    ctx.grads(&mut grads)
                };
                clip_grad_norm(&mut updates, 5.0);
                opt.apply(model.lm.store_mut(), &updates);
            }
        }
        model
    }
}

impl Ranker for Llara {
    fn name(&self) -> &str {
        "llara"
    }

    fn score_candidates(&self, prefix: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        let take = prefix.len().min(9);
        let history = &prefix[prefix.len() - take..];
        let prompt = Self::build_prompt(&self.vocab, &self.items, history, candidates);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, self.lm.store(), false);
        let table = self.soft_table(&ctx, history);
        let mut rng = StdRng::seed_from_u64(0);
        let logits =
            self.lm
                .mask_logits(&ctx, &prompt.tokens, Some(table), prompt.mask_pos, &mut rng);
        let logits = tape.get(logits);
        verbalizer::rank_candidates(&logits, &self.items.titles_of(candidates))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{pretrained_lm, LmPreset};
    use delrec_lm::PretrainConfig;

    #[test]
    fn fits_with_projector_and_ranks() {
        let ds = delrec_data::synthetic::SyntheticConfig::profile(
            delrec_data::synthetic::DatasetProfile::MovieLens100K,
        )
        .scaled(0.08)
        .generate(14);
        let p = Pipeline::build(&ds);
        let lm = pretrained_lm(
            &ds,
            &p,
            LmPreset::Large,
            &PretrainConfig {
                epochs: 1,
                max_sentences: Some(100),
                ..Default::default()
            },
            2,
        );
        // Synthetic teacher embeddings of a different dimensionality (8) to
        // force a genuine projection.
        let teacher_emb: Vec<Vec<f32>> = (0..ds.num_items())
            .map(|i| (0..8).map(|j| ((i * 7 + j) % 13) as f32 / 13.0).collect())
            .collect();
        let stage = StageConfig {
            epochs: 1,
            batch_size: 4,
            max_examples: Some(8),
            lr: 2e-3,
            weight_decay: 1e-6,
            optimizer: crate::config::StageOptimizer::Adam,
        };
        let model = Llara::fit(&ds, &p, teacher_emb, lm, &stage, 7);
        // The projector must have trained (non-zero gradient path).
        let w = model.lm.store().get(model.proj_w);
        assert!(w.is_finite());
        let scores = model.score_candidates(&[ItemId(0), ItemId(1)], &[ItemId(2), ItemId(3)]);
        assert_eq!(scores.len(), 2);
        assert!(scores.iter().all(|s| s.is_finite()));
    }
}
