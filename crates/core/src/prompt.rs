//! Prompt construction (paper §IV-A, Figures 4–6).
//!
//! Every prompt is a token stream mixing:
//! * **instruction** words describing the task (and naming the teacher model,
//!   to "harness the pre-existing knowledge of LLMs");
//! * the **processed interaction sequence** — item *titles*, not ids;
//! * the **candidate set** titles;
//! * **soft prompts** (k trainable slots), absent, or a *manual textual
//!   description* (the `w MCP` ablation);
//! * a single **`[mask]`** the model must fill; the verbalizer scores each
//!   candidate's title tokens at this position.

use delrec_data::{ItemCatalog, ItemId, Vocab};
use delrec_lm::LmToken;

/// Pre-tokenized item titles (index = item id).
#[derive(Clone, Debug)]
pub struct ItemTokens {
    titles: Vec<Vec<u32>>,
}

impl ItemTokens {
    /// Tokenize every catalog title under the shared vocabulary.
    pub fn build(catalog: &ItemCatalog, vocab: &Vocab) -> Self {
        let titles = catalog
            .items()
            .iter()
            .map(|item| {
                item.title_words
                    .iter()
                    .map(|w| {
                        vocab
                            .id_strict(w)
                            .unwrap_or_else(|| panic!("title word {w:?} missing from vocab"))
                    })
                    .collect()
            })
            .collect();
        ItemTokens { titles }
    }

    /// Token ids of one item's title.
    pub fn title(&self, id: ItemId) -> &[u32] {
        &self.titles[id.index()]
    }

    /// Titles of several items (for the verbalizer).
    pub fn titles_of(&self, ids: &[ItemId]) -> Vec<Vec<u32>> {
        ids.iter().map(|&i| self.title(i).to_vec()).collect()
    }

    /// Number of items covered.
    pub fn len(&self) -> usize {
        self.titles.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.titles.is_empty()
    }
}

/// How the prompt's soft-prompt section is filled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SoftMode {
    /// No soft prompts and no reference instruction (`w/o SP`).
    None,
    /// `k` soft slots (the DELRec default).
    Slots(usize),
    /// A natural-language description of the teacher's behaviour instead of
    /// learned embeddings (`w MCP`).
    Manual,
}

/// A finished prompt: the token stream and where the mask sits.
#[derive(Clone, Debug, PartialEq)]
pub struct Prompt {
    /// Mixed hard/soft token stream.
    pub tokens: Vec<LmToken>,
    /// Position of the `[mask]` token.
    pub mask_pos: usize,
    /// Length of the example-independent head: instruction words, soft-prompt
    /// slots, and the section header up to where per-example content (the
    /// user history, the in-context example) begins. Prompts built from the
    /// same template share their first `prefix_len` tokens exactly, which is
    /// what the inference engine's prefix K/V cache keys on. Always
    /// `< mask_pos`.
    pub prefix_len: usize,
}

/// Builds the three DELRec prompts over a shared vocabulary.
pub struct PromptBuilder<'a> {
    vocab: &'a Vocab,
    items: &'a ItemTokens,
    teacher_name: &'a str,
}

impl<'a> PromptBuilder<'a> {
    /// New builder. `teacher_name` must be a vocabulary word (e.g. "sasrec").
    pub fn new(vocab: &'a Vocab, items: &'a ItemTokens, teacher_name: &'a str) -> Self {
        assert!(
            vocab.id_strict(teacher_name).is_some(),
            "teacher name {teacher_name:?} is not in the vocabulary"
        );
        PromptBuilder {
            vocab,
            items,
            teacher_name,
        }
    }

    /// Encode instruction words, panicking on any out-of-vocabulary word
    /// (catches template drift at test time rather than silently emitting
    /// `[unk]`).
    fn words(&self, text: &str, out: &mut Vec<LmToken>) {
        for w in text.split_whitespace() {
            let id = self
                .vocab
                .id_strict(w)
                .unwrap_or_else(|| panic!("prompt word {w:?} missing from vocab"));
            out.push(LmToken::Vocab(id));
        }
    }

    fn push_item(&self, id: ItemId, out: &mut Vec<LmToken>) {
        for &t in self.items.title(id) {
            out.push(LmToken::Vocab(t));
        }
        out.push(LmToken::Vocab(self.vocab.sep()));
    }

    fn push_items(&self, ids: &[ItemId], out: &mut Vec<LmToken>) {
        for &id in ids {
            self.push_item(id, out);
        }
    }

    fn push_soft(&self, mode: SoftMode, out: &mut Vec<LmToken>) {
        match mode {
            SoftMode::None => {}
            SoftMode::Slots(k) => {
                out.extend((0..k).map(LmToken::Soft));
                out.push(LmToken::Vocab(self.vocab.sep()));
            }
            SoftMode::Manual => {
                // The `w MCP` ablation: describe the teacher's pattern in
                // natural language (necessarily lossy — that is the point).
                self.words(
                    &format!(
                        "the {} model recommends items similar to the most recent \
                         items of the user history and popular items",
                        self.teacher_name
                    ),
                    out,
                );
                out.push(LmToken::Vocab(self.vocab.sep()));
            }
        }
    }

    fn push_candidates(&self, candidates: &[ItemId], out: &mut Vec<LmToken>) {
        self.words("candidates", out);
        out.push(LmToken::Vocab(self.vocab.sep()));
        self.push_items(candidates, out);
    }

    /// Finish with the mask slot; returns the completed prompt.
    /// `prefix_len` is the template's shared-head boundary recorded by the
    /// caller before any per-example tokens were pushed.
    fn finish(&self, mut tokens: Vec<LmToken>, prefix_len: usize) -> Prompt {
        self.words("answer", &mut tokens);
        let mask_pos = tokens.len();
        tokens.push(LmToken::Vocab(self.vocab.mask()));
        debug_assert!(prefix_len < mask_pos);
        Prompt {
            tokens,
            mask_pos,
            prefix_len,
        }
    }

    /// Figure 4 — *Temporal Analysis* (PMRI). The in-context example shows
    /// that `icl_next` followed `icl_history`; the query gives
    /// `query_history` (whose final item is masked out of the history and is
    /// the label) and reveals `query_next`, the item that came after the
    /// masked one.
    pub fn temporal_analysis(
        &self,
        icl_history: &[ItemId],
        icl_next: ItemId,
        query_history_without_label: &[ItemId],
        query_next: ItemId,
        candidates: &[ItemId],
        soft: SoftMode,
    ) -> Prompt {
        let mut t = Vec::new();
        self.words(
            &format!(
                "analyze the temporal order of the user history as the {} model and \
                 predict the most recent item",
                self.teacher_name
            ),
            &mut t,
        );
        t.push(LmToken::Vocab(self.vocab.sep()));
        // Soft prompts sit directly after the instruction in every template,
        // so their positions are nearly identical across the three tasks.
        self.push_soft(soft, &mut t);
        self.words("example", &mut t);
        t.push(LmToken::Vocab(self.vocab.sep()));
        let prefix_len = t.len();
        self.push_items(icl_history, &mut t);
        self.words("next", &mut t);
        self.push_item(icl_next, &mut t);
        self.words("question", &mut t);
        t.push(LmToken::Vocab(self.vocab.sep()));
        self.push_items(query_history_without_label, &mut t);
        // The masked most-recent item sits here, then the revealed next item.
        t.push(LmToken::Vocab(self.vocab.mask()));
        let mask_pos = t.len() - 1;
        t.push(LmToken::Vocab(self.vocab.sep()));
        self.words("then", &mut t);
        self.push_item(query_next, &mut t);
        self.push_candidates(candidates, &mut t);
        Prompt {
            tokens: t,
            mask_pos,
            prefix_len,
        }
    }

    /// Figure 5 — *Recommendation Pattern Simulating*. `top_h` is the
    /// teacher's top-h set presented in shuffled order; the label (elsewhere)
    /// is the teacher's actual #1.
    pub fn pattern_simulating(
        &self,
        history: &[ItemId],
        top_h_shuffled: &[ItemId],
        candidates: &[ItemId],
        soft: SoftMode,
    ) -> Prompt {
        let mut t = Vec::new();
        self.words(
            &format!(
                "simulate the {} model and predict the item the {} model recommends \
                 next for the user history",
                self.teacher_name, self.teacher_name
            ),
            &mut t,
        );
        t.push(LmToken::Vocab(self.vocab.sep()));
        self.push_soft(soft, &mut t);
        self.words("history", &mut t);
        t.push(LmToken::Vocab(self.vocab.sep()));
        let prefix_len = t.len();
        self.push_items(history, &mut t);
        self.words(
            &format!("top items by the {} model", self.teacher_name),
            &mut t,
        );
        t.push(LmToken::Vocab(self.vocab.sep()));
        self.push_items(top_h_shuffled, &mut t);
        self.push_candidates(candidates, &mut t);
        self.finish(t, prefix_len)
    }

    /// Paradigm-1 baseline prompt (RecRanker-style): the ground-truth task
    /// with the teacher's top items included as *textual* hints.
    pub fn recommendation_with_hints(
        &self,
        history: &[ItemId],
        teacher_hints: &[ItemId],
        candidates: &[ItemId],
    ) -> Prompt {
        let mut t = Vec::new();
        self.words(
            &format!(
                "predict the next item for the user based on their history with the \
                 {} model top items as reference",
                self.teacher_name
            ),
            &mut t,
        );
        t.push(LmToken::Vocab(self.vocab.sep()));
        self.words("history", &mut t);
        t.push(LmToken::Vocab(self.vocab.sep()));
        let prefix_len = t.len();
        self.push_items(history, &mut t);
        self.words(
            &format!("top items by the {} model", self.teacher_name),
            &mut t,
        );
        t.push(LmToken::Vocab(self.vocab.sep()));
        self.push_items(teacher_hints, &mut t);
        self.push_candidates(candidates, &mut t);
        self.finish(t, prefix_len)
    }

    /// Figure 6 — *LLMs-based Sequential Recommendation*: the Stage 2 /
    /// inference prompt. With `SoftMode::None`, the "reference" clause is
    /// dropped too (the `w/o SP` ablation removes both).
    pub fn recommendation(
        &self,
        history: &[ItemId],
        candidates: &[ItemId],
        soft: SoftMode,
    ) -> Prompt {
        let mut t = Vec::new();
        self.words(
            "predict the next item for the user based on their history",
            &mut t,
        );
        if soft != SoftMode::None {
            self.words(
                &format!(
                    "with the {} model pattern as auxiliary reference",
                    self.teacher_name
                ),
                &mut t,
            );
        }
        t.push(LmToken::Vocab(self.vocab.sep()));
        self.push_soft(soft, &mut t);
        self.words("history", &mut t);
        t.push(LmToken::Vocab(self.vocab.sep()));
        let prefix_len = t.len();
        self.push_items(history, &mut t);
        self.push_candidates(candidates, &mut t);
        self.finish(t, prefix_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delrec_data::corpus::build_vocab;
    use delrec_data::synthetic::{DatasetProfile, SyntheticConfig};
    use delrec_data::Dataset;

    fn setup() -> (Dataset, Vocab) {
        let ds = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
            .scaled(0.08)
            .generate(5);
        let vocab = build_vocab(&ds.catalog);
        (ds, vocab)
    }

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&i| ItemId(i)).collect()
    }

    #[test]
    fn recommendation_prompt_has_one_mask_at_recorded_position() {
        let (ds, vocab) = setup();
        let items = ItemTokens::build(&ds.catalog, &vocab);
        let pb = PromptBuilder::new(&vocab, &items, "sasrec");
        let p = pb.recommendation(&ids(&[0, 1, 2]), &ids(&[3, 4, 5]), SoftMode::Slots(4));
        let masks: Vec<usize> = p
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == LmToken::Vocab(vocab.mask()))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(masks, vec![p.mask_pos]);
    }

    #[test]
    fn same_template_prompts_share_exactly_their_prefix() {
        let (ds, vocab) = setup();
        let items = ItemTokens::build(&ds.catalog, &vocab);
        let pb = PromptBuilder::new(&vocab, &items, "sasrec");
        for soft in [SoftMode::None, SoftMode::Slots(4), SoftMode::Manual] {
            let a = pb.recommendation(&ids(&[0, 1, 2]), &ids(&[3, 4, 5]), soft);
            let b = pb.recommendation(&ids(&[6, 7]), &ids(&[8, 9, 0]), soft);
            assert_eq!(a.prefix_len, b.prefix_len, "{soft:?}");
            assert!(a.prefix_len > 0 && a.prefix_len < a.mask_pos);
            assert_eq!(
                a.tokens[..a.prefix_len],
                b.tokens[..b.prefix_len],
                "{soft:?}: shared head must be example-independent"
            );
            assert_ne!(
                a.tokens[a.prefix_len..],
                b.tokens[b.prefix_len..],
                "{soft:?}: per-example content differs"
            );
        }
    }

    #[test]
    fn soft_slots_appear_in_order() {
        let (ds, vocab) = setup();
        let items = ItemTokens::build(&ds.catalog, &vocab);
        let pb = PromptBuilder::new(&vocab, &items, "sasrec");
        let p = pb.recommendation(&ids(&[0]), &ids(&[1, 2]), SoftMode::Slots(3));
        let softs: Vec<usize> = p
            .tokens
            .iter()
            .filter_map(|t| match t {
                LmToken::Soft(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(softs, vec![0, 1, 2]);
    }

    #[test]
    fn none_mode_has_no_soft_tokens_and_no_reference_clause() {
        let (ds, vocab) = setup();
        let items = ItemTokens::build(&ds.catalog, &vocab);
        let pb = PromptBuilder::new(&vocab, &items, "sasrec");
        let with = pb.recommendation(&ids(&[0]), &ids(&[1, 2]), SoftMode::Slots(3));
        let without = pb.recommendation(&ids(&[0]), &ids(&[1, 2]), SoftMode::None);
        assert!(without
            .tokens
            .iter()
            .all(|t| !matches!(t, LmToken::Soft(_))));
        assert!(without.tokens.len() < with.tokens.len());
        let aux = vocab.id_strict("auxiliary").unwrap();
        assert!(!without.tokens.contains(&LmToken::Vocab(aux)));
    }

    #[test]
    fn manual_mode_describes_the_teacher_in_hard_tokens() {
        let (ds, vocab) = setup();
        let items = ItemTokens::build(&ds.catalog, &vocab);
        let pb = PromptBuilder::new(&vocab, &items, "gru4rec");
        let p = pb.recommendation(&ids(&[0]), &ids(&[1, 2]), SoftMode::Manual);
        assert!(p.tokens.iter().all(|t| !matches!(t, LmToken::Soft(_))));
        let teacher = vocab.id_strict("gru4rec").unwrap();
        let count = p
            .tokens
            .iter()
            .filter(|t| **t == LmToken::Vocab(teacher))
            .count();
        assert!(count >= 2, "teacher named in instruction and description");
    }

    #[test]
    fn temporal_analysis_mask_is_mid_prompt_before_the_next_item() {
        let (ds, vocab) = setup();
        let items = ItemTokens::build(&ds.catalog, &vocab);
        let pb = PromptBuilder::new(&vocab, &items, "sasrec");
        let p = pb.temporal_analysis(
            &ids(&[0, 1, 2]),
            ItemId(3),
            &ids(&[3, 4]),
            ItemId(6),
            &ids(&[5, 6, 7]),
            SoftMode::Slots(2),
        );
        assert_eq!(p.tokens[p.mask_pos], LmToken::Vocab(vocab.mask()));
        assert!(p.mask_pos < p.tokens.len() - 5, "mask is not at the end");
    }

    #[test]
    fn pattern_simulating_contains_history_and_top_h() {
        let (ds, vocab) = setup();
        let items = ItemTokens::build(&ds.catalog, &vocab);
        let pb = PromptBuilder::new(&vocab, &items, "caser");
        let p = pb.pattern_simulating(
            &ids(&[0, 1]),
            &ids(&[9, 8]),
            &ids(&[2, 3]),
            SoftMode::Slots(2),
        );
        // Every title token of item 9 must appear in the prompt.
        for &tok in items.title(ItemId(9)) {
            assert!(p.tokens.contains(&LmToken::Vocab(tok)));
        }
        assert_eq!(p.tokens[p.mask_pos], LmToken::Vocab(vocab.mask()));
    }

    #[test]
    fn prompts_fit_the_lm_context_window() {
        let (ds, vocab) = setup();
        let items = ItemTokens::build(&ds.catalog, &vocab);
        let pb = PromptBuilder::new(&vocab, &items, "sasrec");
        // Worst case at paper scale: 9 history + 15 candidates + k=16 soft.
        let hist: Vec<ItemId> = (0..9).map(ItemId).collect();
        let cands: Vec<ItemId> = (10..25).map(ItemId).collect();
        let p = pb.recommendation(&hist, &cands, SoftMode::Slots(16));
        assert!(
            p.tokens.len() <= 256,
            "prompt too long: {} tokens",
            p.tokens.len()
        );
    }
}
