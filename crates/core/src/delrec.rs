//! The end-to-end DELRec model: fit both stages, then rank candidates.

use crate::ablation::Variant;
use crate::config::DelRecConfig;
use crate::pipeline::Pipeline;
use crate::prompt::{ItemTokens, PromptBuilder, SoftMode};
use crate::stage1::{build_rps_items, build_ta_items, distill, Stage1Options, Stage1Stats};
use crate::stage2::{build_lsr_items, finetune, Stage2Options};
use delrec_data::{Dataset, ItemId, Vocab};
use delrec_eval::Ranker;
use delrec_lm::{verbalizer, MiniLm, PrefixCache, SoftPrompt, TitleCache};
use delrec_seqrec::SequentialRecommender;
use delrec_tensor::{Ctx, InferCtx, MathMode, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher;
use std::sync::{Arc, Mutex};

/// Lazily-maintained state of the grad-free scoring engine: the tape-free
/// forward context (buffer pool + math mode) and the current prefix K/V
/// cache, rebuilt whenever the parameter-store version, math mode, or prompt
/// prefix changes.
struct EngineState {
    ctx: InferCtx,
    cache: Option<PrefixCache>,
}

/// Checkout pool of [`EngineState`]s.
///
/// Scoring checks one state out, runs the whole forward on it unlocked, and
/// returns it — so concurrent scorers (serving workers sharing one model)
/// never contend beyond the pop/push, and each effectively owns a per-worker
/// inference context and prefix cache, while a single-threaded caller reuses
/// one warm state forever. The pool is bounded by the number of concurrent
/// scorers, which the server in turn bounds by its worker count.
struct EnginePool {
    states: Mutex<Vec<EngineState>>,
    math: MathMode,
}

impl EnginePool {
    fn new(math: MathMode) -> Self {
        EnginePool {
            states: Mutex::new(Vec::new()),
            math,
        }
    }

    fn checkout(&self) -> EngineState {
        self.states.lock().unwrap().pop().unwrap_or(EngineState {
            ctx: InferCtx::new(self.math),
            cache: None,
        })
    }

    fn checkin(&self, state: EngineState) {
        self.states.lock().unwrap().push(state);
    }
}

/// A fitted DELRec recommender.
///
/// Holds the fine-tuned MiniLM and the distilled soft prompts. The teacher
/// model is *not* needed at inference: its pattern lives in the soft prompts
/// — exactly the paper's deployment story.
pub struct DelRec {
    lm: MiniLm,
    sp: Option<SoftPrompt>,
    vocab: Vocab,
    items: ItemTokens,
    cfg: DelRecConfig,
    /// Stage 1 training diagnostics (empty if distillation was skipped).
    pub stage1_stats: Stage1Stats,
    /// Stage 2 loss curve (empty if fine-tuning was skipped).
    pub stage2_losses: Vec<f32>,
    /// Whether scoring routes through the grad-free inference engine
    /// (default) or the reference autograd tape.
    infer_enabled: bool,
    math: MathMode,
    engine: EnginePool,
    titles: TitleCache,
}

/// Compile-time guarantee that a fitted model can be shared across serving
/// threads without `unsafe`: every interior-mutable piece on the scoring path
/// (engine pool, title cache, buffer pools inside [`InferCtx`]) synchronizes
/// properly. The autograd [`Tape`] is deliberately *not* `Sync` — scoring
/// builds it per call on the stack, so it never crosses threads.
#[allow(dead_code)]
fn _assert_delrec_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DelRec>();
    assert_send_sync::<MiniLm>();
    assert_send_sync::<PrefixCache>();
    assert_send_sync::<TitleCache>();
    assert_send_sync::<InferCtx>();
    assert_send_sync::<delrec_tensor::BufferPool>();
}

impl DelRec {
    /// Fit DELRec (or an ablation variant) given a dataset, a trained
    /// teacher, and a *pretrained* MiniLM backbone.
    pub fn fit(
        dataset: &Dataset,
        pipeline: &Pipeline,
        teacher: &dyn SequentialRecommender,
        mut lm: MiniLm,
        cfg: &DelRecConfig,
    ) -> DelRec {
        let variant = cfg.variant;
        let pb = PromptBuilder::new(&pipeline.vocab, &pipeline.items, teacher.name());

        // --- Soft prompts & Stage 1 ---
        let (sp, stage1_stats) = if variant.uses_soft_prompts() {
            let d_model = lm.cfg.d_model;
            let sp = SoftPrompt::init(
                lm.store_mut(),
                "delrec",
                cfg.k_soft,
                d_model,
                cfg.seed ^ 0x50F7,
            );
            let stats = if variant.runs_distillation() {
                let soft = SoftMode::Slots(cfg.k_soft);
                let cap = cfg.stage1.max_examples.unwrap_or(usize::MAX);
                let ta = build_ta_items(
                    dataset,
                    &pb,
                    &pipeline.items,
                    cfg.alpha_icl,
                    cfg.m_candidates,
                    soft,
                    cap,
                    cfg.seed ^ 0x7A,
                );
                let rps = build_rps_items(
                    dataset,
                    teacher,
                    &pb,
                    &pipeline.items,
                    cfg.h_top,
                    cfg.m_candidates,
                    soft,
                    cap,
                    cfg.seed ^ 0x395,
                );
                distill(
                    &mut lm,
                    &sp,
                    &ta,
                    &rps,
                    &cfg.stage1,
                    Stage1Options {
                        use_ta: variant.uses_ta(),
                        use_rps: variant.uses_rps(),
                        freeze_backbone: variant.freezes_backbone_in_stage1(),
                        fixed_lambda: cfg.fixed_lambda,
                    },
                    cfg.seed ^ 0x51,
                )
            } else {
                // `w USP`: keep the random initialization.
                Stage1Stats::default()
            };
            (Some(sp), stats)
        } else {
            (None, Stage1Stats::default())
        };

        // --- Stage 2 ---
        let stage2_losses = if variant.runs_finetuning() {
            lm.attach_adalora(cfg.adalora.clone(), cfg.seed ^ 0xADA);
            let soft = DelRec::soft_mode_static(&sp, variant, cfg);
            let items = build_lsr_items(
                dataset,
                &pb,
                &pipeline.items,
                cfg.m_candidates,
                soft,
                cfg.stage2.max_examples.unwrap_or(usize::MAX),
                cfg.seed ^ 0x152,
            );
            finetune(
                &mut lm,
                sp.as_ref(),
                &items,
                &cfg.stage2,
                cfg.adalora_prune_every,
                Stage2Options {
                    freeze_soft: variant.freezes_soft_in_stage2(),
                    ..Default::default()
                },
                cfg.seed ^ 0x52,
            )
        } else {
            Vec::new()
        };

        DelRec {
            lm,
            sp,
            vocab: pipeline.vocab.clone(),
            items: pipeline.items.clone(),
            cfg: cfg.clone(),
            stage1_stats,
            stage2_losses,
            infer_enabled: true,
            math: cfg.math,
            engine: EnginePool::new(cfg.math),
            titles: TitleCache::new(),
        }
    }

    fn soft_mode_static(sp: &Option<SoftPrompt>, variant: Variant, cfg: &DelRecConfig) -> SoftMode {
        if variant == Variant::WithMCP {
            SoftMode::Manual
        } else if sp.is_some() {
            SoftMode::Slots(cfg.k_soft)
        } else {
            SoftMode::None
        }
    }

    fn soft_mode(&self) -> SoftMode {
        Self::soft_mode_static(&self.sp, self.cfg.variant, &self.cfg)
    }

    /// Serialize all fitted parameters (LM, soft prompts, adapters).
    pub fn save<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        delrec_tensor::serialize::save_params(self.lm.store(), w)
    }

    /// Restore a fitted model from [`DelRec::save`] output. `cfg` must match
    /// the configuration the model was fitted with (it determines the
    /// parameter layout: backbone size, soft-prompt count, adapters).
    pub fn load<R: std::io::Read>(
        pipeline: &Pipeline,
        cfg: &DelRecConfig,
        r: &mut R,
    ) -> std::io::Result<DelRec> {
        // Reconstruct the parameter layout in the same order as `fit`.
        let mut lm = MiniLm::new(cfg.lm.config(pipeline.vocab.len()), cfg.seed);
        let sp = if cfg.variant.uses_soft_prompts() {
            let d_model = lm.cfg.d_model;
            Some(SoftPrompt::init(
                lm.store_mut(),
                "delrec",
                cfg.k_soft,
                d_model,
                cfg.seed ^ 0x50F7,
            ))
        } else {
            None
        };
        if cfg.variant.runs_finetuning() {
            lm.attach_adalora(cfg.adalora.clone(), cfg.seed ^ 0xADA);
        }
        delrec_tensor::serialize::load_params(lm.store_mut(), r)?;
        Ok(DelRec {
            lm,
            sp,
            vocab: pipeline.vocab.clone(),
            items: pipeline.items.clone(),
            cfg: cfg.clone(),
            stage1_stats: Stage1Stats::default(),
            stage2_losses: Vec::new(),
            infer_enabled: true,
            math: cfg.math,
            engine: EnginePool::new(cfg.math),
            titles: TitleCache::new(),
        })
    }

    /// Route candidate scoring through the grad-free inference engine
    /// (`true`, the default) or through the reference autograd-tape forward
    /// (`false`). In [`MathMode::Exact`] the two produce bitwise-identical
    /// scores; the tape path remains as the always-correct oracle.
    pub fn set_inference_engine(&mut self, enabled: bool) {
        self.infer_enabled = enabled;
    }

    /// Whether scoring currently uses the inference engine.
    pub fn inference_engine_enabled(&self) -> bool {
        self.infer_enabled
    }

    /// Numeric mode for engine scoring: [`MathMode::Exact`] mirrors the tape
    /// bit for bit, [`MathMode::Fast`] swaps `exp`/`tanh` for polynomial
    /// kernels, and [`MathMode::Quantized`] serves per-channel int8 weight
    /// panels (activations stay f32; see `delrec-lm`). Switching drops every
    /// pooled engine state (contexts and prefix K/V caches are keyed on the
    /// mode); the weight-pack cache keeps one slot per pack format, so
    /// toggling between modes never rebuilds a still-valid pack.
    pub fn set_math_mode(&mut self, math: MathMode) {
        self.math = math;
        self.engine = EnginePool::new(math);
    }

    /// Current numeric mode of the engine.
    pub fn math_mode(&self) -> MathMode {
        self.math
    }

    /// Toggle the LM's fused packed-GEMM projection path (`true`, the
    /// default). `false` restores the per-head projection kernels — kept as
    /// the bitwise-identical reference for equivalence tests and
    /// before/after benchmarks (see `MiniLm::set_fused_projections`).
    pub fn set_fused_projections(&mut self, fused: bool) {
        self.lm.set_fused_projections(fused);
    }

    /// Memoized candidate-title lookup, keyed on the full candidate id list.
    fn candidate_titles(&self, candidates: &[ItemId]) -> Arc<Vec<Vec<u32>>> {
        let mut h = DefaultHasher::new();
        h.write_usize(candidates.len());
        for &id in candidates {
            h.write_usize(id.index());
        }
        self.titles
            .get_or_build(h.finish(), || self.items.titles_of(candidates))
    }

    /// Grad-free scoring for a chunk of requests: build the Stage-2 prompts,
    /// refresh the shared-prefix K/V cache if stale, run the tape-free
    /// batched forward, and verbalize.
    fn score_infer(&self, requests: &[delrec_eval::ScoreRequest<'_>]) -> Vec<Vec<f32>> {
        let _span = delrec_obs::span!("core.score");
        let pb = PromptBuilder::new(&self.vocab, &self.items, self.cfg.teacher.name());
        let soft_mode = self.soft_mode();
        let mut seqs = Vec::with_capacity(requests.len());
        let mut mask_pos = Vec::with_capacity(requests.len());
        let mut title_sets = Vec::with_capacity(requests.len());
        let mut prefix_len = 0;
        let prompts_span = delrec_obs::span!("core.prompts");
        for &(prefix, candidates) in requests {
            let take = prefix.len().min(9);
            let history = &prefix[prefix.len() - take..];
            let prompt = pb.recommendation(history, candidates, soft_mode);
            debug_assert!(seqs.is_empty() || prompt.prefix_len == prefix_len);
            prefix_len = prompt.prefix_len;
            seqs.push(prompt.tokens);
            mask_pos.push(prompt.mask_pos);
            title_sets.push(self.candidate_titles(candidates));
        }
        drop(prompts_span);
        let soft_values = self.sp.as_ref().map(|s| s.values(self.lm.store()));
        // Check an engine state out of the pool and run the whole forward on
        // it without holding any lock — concurrent scorers each get their own
        // context and prefix cache.
        let mut eng = self.engine.checkout();
        let shared_prefix = &seqs[0][..prefix_len];
        let version = self.lm.store().version();
        let fresh = eng
            .cache
            .as_ref()
            .is_some_and(|c| c.is_valid_for(version, eng.ctx.math(), shared_prefix));
        if !fresh {
            delrec_obs::counter!("core.prefix_cache.rebuild").incr();
            let _build = delrec_obs::span!("core.prefix_cache.build");
            // `None` here (unsupported config) simply disables prefix reuse;
            // the tape-free forward still runs.
            eng.cache = self
                .lm
                .build_prefix_cache(&eng.ctx, shared_prefix, soft_values);
        } else {
            delrec_obs::counter!("core.prefix_cache.hit").incr();
        }
        let logits = self.lm.mask_logits_infer_batch(
            &eng.ctx,
            &seqs,
            soft_values,
            &mask_pos,
            eng.cache.as_ref(),
        );
        let set_refs: Vec<&[Vec<u32>]> = title_sets.iter().map(|t| t.as_slice()).collect();
        let scores = verbalizer::rank_candidates_batch_mode(&logits, &set_refs, eng.ctx.math());
        self.engine.checkin(eng);
        scores
    }

    /// The underlying language model (for diagnostics: parameter counts,
    /// adapter state).
    pub fn lm(&self) -> &MiniLm {
        &self.lm
    }

    /// The tokenized item catalog this model was fitted on — the
    /// [`Recommender`](crate::Recommender) exports its item embeddings from
    /// these titles.
    pub fn items(&self) -> &ItemTokens {
        &self.items
    }

    /// Mutable access to the underlying LM, for parameter surgery in tests
    /// and continued training. Any parameter write bumps the store version,
    /// which invalidates every version-keyed cache downstream: weight packs,
    /// prefix caches, and the retrieval item index.
    pub fn lm_mut(&mut self) -> &mut MiniLm {
        &mut self.lm
    }

    /// The distilled soft prompts, if this variant has them.
    pub fn soft_prompt(&self) -> Option<&SoftPrompt> {
        self.sp.as_ref()
    }

    /// Explain a candidate's score: `(title word, log-probability)` pairs
    /// whose mean is exactly the score [`Ranker::score_candidates`] assigns.
    /// Exposes which words of the candidate's title the model believed in,
    /// given this history — the interpretability advantage the paper claims
    /// for prompt-based recommendation.
    pub fn explain(
        &self,
        prefix: &[ItemId],
        candidates: &[ItemId],
        which: usize,
    ) -> Vec<(String, f32)> {
        assert!(which < candidates.len(), "candidate index out of range");
        let pb = PromptBuilder::new(&self.vocab, &self.items, self.cfg.teacher.name());
        let take = prefix.len().min(9);
        let history = &prefix[prefix.len() - take..];
        let prompt = pb.recommendation(history, candidates, self.soft_mode());
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, self.lm.store(), false);
        let soft_table = self.sp.as_ref().map(|s| s.var(&ctx));
        let mut rng = StdRng::seed_from_u64(0);
        let logits =
            self.lm
                .mask_logits(&ctx, &prompt.tokens, soft_table, prompt.mask_pos, &mut rng);
        let logits = tape.get(logits);
        verbalizer::explain_candidate(&logits, self.items.title(candidates[which]))
            .into_iter()
            .map(|(tok, s)| (self.vocab.word(tok).to_string(), s))
            .collect()
    }
}

impl Ranker for DelRec {
    fn name(&self) -> &str {
        "delrec"
    }

    /// The `ParamStore` version — bumped by any parameter write, and the
    /// exact key this model's weight packs, prefix caches, and retrieval
    /// index invalidate on. Two `DelRec`s carrying the same parameter bits
    /// may still differ here (e.g. a save→load round-trip replays the same
    /// writes, a refit makes more); equal versions on one store lineage mean
    /// bitwise-equal scores.
    fn model_version(&self) -> u64 {
        self.lm.store().version()
    }

    fn score_candidates(&self, prefix: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        if self.infer_enabled {
            return self
                .score_infer(&[(prefix, candidates)])
                .pop()
                .expect("one score row per request");
        }
        let pb = PromptBuilder::new(&self.vocab, &self.items, self.cfg.teacher.name());
        // Cap history to the paper's n − 1 most recent interactions.
        let take = prefix.len().min(9);
        let history = &prefix[prefix.len() - take..];
        let prompt = pb.recommendation(history, candidates, self.soft_mode());
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, self.lm.store(), false);
        let soft_table = self.sp.as_ref().map(|s| s.var(&ctx));
        let mut rng = StdRng::seed_from_u64(0);
        let logits =
            self.lm
                .mask_logits(&ctx, &prompt.tokens, soft_table, prompt.mask_pos, &mut rng);
        let logits = tape.get(logits);
        verbalizer::rank_candidates(&logits, &self.items.titles_of(candidates))
    }

    fn score_candidates_batch(&self, requests: &[delrec_eval::ScoreRequest<'_>]) -> Vec<Vec<f32>> {
        if requests.is_empty() {
            return Vec::new();
        }
        if self.infer_enabled {
            return self.score_infer(requests);
        }
        let pb = PromptBuilder::new(&self.vocab, &self.items, self.cfg.teacher.name());
        let mut seqs = Vec::with_capacity(requests.len());
        let mut mask_pos = Vec::with_capacity(requests.len());
        let mut title_sets = Vec::with_capacity(requests.len());
        for &(prefix, candidates) in requests {
            let take = prefix.len().min(9);
            let history = &prefix[prefix.len() - take..];
            let prompt = pb.recommendation(history, candidates, self.soft_mode());
            seqs.push(prompt.tokens);
            mask_pos.push(prompt.mask_pos);
            title_sets.push(self.items.titles_of(candidates));
        }
        // One padded forward for every request in the chunk.
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, self.lm.store(), false);
        let soft_table = self.sp.as_ref().map(|s| s.var(&ctx));
        let mut rng = StdRng::seed_from_u64(0);
        let logits = self
            .lm
            .mask_logits_batch(&ctx, &seqs, soft_table, &mask_pos, &mut rng);
        let logits = tape.get(logits);
        let set_refs: Vec<&[Vec<u32>]> = title_sets.iter().map(|t| t.as_slice()).collect();
        verbalizer::rank_candidates_batch(&logits, &set_refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TeacherKind;
    use crate::pipeline::{build_teacher, pretrained_lm, LmPreset};
    use delrec_data::synthetic::{DatasetProfile, SyntheticConfig};
    use delrec_data::Split;
    use delrec_eval::{evaluate, EvalConfig};

    #[test]
    fn end_to_end_smoke_fit_and_rank() {
        let ds = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
            .scaled(0.08)
            .generate(9);
        let pipeline = Pipeline::build(&ds);
        let lm = pretrained_lm(
            &ds,
            &pipeline,
            LmPreset::Large,
            &delrec_lm::PretrainConfig {
                epochs: 1,
                max_sentences: Some(120),
                ..Default::default()
            },
            2,
        );
        let teacher = build_teacher(&ds, TeacherKind::SASRec, 1, Some(60), 5);
        let mut cfg = DelRecConfig::smoke(TeacherKind::SASRec);
        cfg.lm = LmPreset::Large;
        let model = DelRec::fit(&ds, &pipeline, teacher.as_ref(), lm, &cfg);
        assert!(!model.stage1_stats.lambdas.is_empty());
        assert!(!model.stage2_losses.is_empty());

        let report = evaluate(
            &model,
            &ds,
            Split::Test,
            &EvalConfig {
                max_examples: Some(20),
                ..Default::default()
            },
        );
        assert_eq!(report.len(), 20);
        assert_eq!(report.hr(15), 1.0);

        // The chunked (batched-forward) eval path must reproduce the
        // per-example path's metrics exactly.
        let per_example = evaluate(
            &model,
            &ds,
            Split::Test,
            &EvalConfig {
                max_examples: Some(20),
                batch_size: 1,
                ..Default::default()
            },
        );
        for k in [1, 5, 10, 15] {
            assert_eq!(report.hr(k), per_example.hr(k), "HR@{k} differs");
            assert_eq!(report.ndcg(k), per_example.ndcg(k), "NDCG@{k} differs");
        }

        // And batched candidate scores themselves stay within float noise of
        // the single-prompt path.
        let cands: Vec<Vec<ItemId>> = ds
            .examples(Split::Test)
            .iter()
            .take(3)
            .map(|_ex| ds.catalog.ids().take(6).collect())
            .collect();
        let requests: Vec<delrec_eval::ScoreRequest<'_>> = ds
            .examples(Split::Test)
            .iter()
            .take(3)
            .zip(&cands)
            .map(|(ex, c)| (ex.prefix.as_slice(), c.as_slice()))
            .collect();
        let batched = model.score_candidates_batch(&requests);
        for (&(prefix, c), row) in requests.iter().zip(&batched) {
            let single = model.score_candidates(prefix, c);
            for (got, want) in row.iter().zip(&single) {
                assert!((got - want).abs() < 1e-5, "{got} vs {want}");
            }
        }
    }

    #[test]
    fn save_load_roundtrip_reproduces_predictions() {
        let ds = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
            .scaled(0.08)
            .generate(19);
        let pipeline = Pipeline::build(&ds);
        let lm = pretrained_lm(
            &ds,
            &pipeline,
            LmPreset::Large,
            &delrec_lm::PretrainConfig {
                epochs: 1,
                max_sentences: Some(20),
                ..Default::default()
            },
            2,
        );
        let teacher = build_teacher(&ds, TeacherKind::SASRec, 1, Some(30), 5);
        let mut cfg = DelRecConfig::smoke(TeacherKind::SASRec);
        cfg.lm = LmPreset::Large;
        let model = DelRec::fit(&ds, &pipeline, teacher.as_ref(), lm, &cfg);

        let mut blob = Vec::new();
        model.save(&mut blob).expect("serialize");
        let restored = DelRec::load(&pipeline, &cfg, &mut blob.as_slice()).expect("restore");

        let ex = &ds.examples(Split::Test)[0];
        let cands: Vec<_> = ds.catalog.ids().take(6).collect();
        assert_eq!(
            model.score_candidates(&ex.prefix, &cands),
            restored.score_candidates(&ex.prefix, &cands),
            "restored model must predict identically"
        );
    }
}
