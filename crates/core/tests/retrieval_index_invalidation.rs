//! Retrieval-index invalidation: a parameter-store version bump or a math-
//! mode switch forces an `ItemIndex` rebuild whose scores are bitwise
//! identical to a fresh build — the retrieval-stage mirror of
//! `delrec-lm`'s `weight_pack_invalidation.rs`.
//!
//! The cache is internal to [`Recommender`], so the test observes it through
//! its public surfaces: the `retrieval.index.{build,hit}` counters and the
//! retrieved `(item, score)` lists themselves. The fresh-build reference is
//! a second `Recommender` over a save/load round-trip of the mutated model:
//! the restored model has identical parameters but an empty cache, so it
//! must build from scratch.
//!
//! Counters are process-global and tests share the process, so assertions
//! compare deltas as *at least*, never exact totals.

use delrec_core::{
    build_teacher, pretrained_lm, DelRec, DelRecConfig, LmPreset, Pipeline, Recommender,
    TeacherKind,
};
use delrec_data::synthetic::{DatasetProfile, SyntheticConfig};
use delrec_data::{ItemId, Split};
use delrec_obs::MetricValue;
use delrec_tensor::MathMode;

fn counter(name: &str) -> u64 {
    delrec_obs::global()
        .snapshot()
        .into_iter()
        .find_map(|(n, v)| match v {
            MetricValue::Counter(c) if n == name => Some(c),
            _ => None,
        })
        .unwrap_or(0)
}

fn bits(ranked: &[(ItemId, f32)]) -> Vec<(u32, u32)> {
    ranked.iter().map(|&(id, s)| (id.0, s.to_bits())).collect()
}

#[test]
fn version_bump_and_mode_switch_rebuild_bitwise_identical_to_fresh() {
    let ds = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
        .scaled(0.08)
        .generate(23);
    let pipeline = Pipeline::build(&ds);
    let lm = pretrained_lm(
        &ds,
        &pipeline,
        LmPreset::Large,
        &delrec_lm::PretrainConfig {
            epochs: 1,
            max_sentences: Some(20),
            ..Default::default()
        },
        2,
    );
    let teacher = build_teacher(&ds, TeacherKind::SASRec, 1, Some(30), 5);
    let mut cfg = DelRecConfig::smoke(TeacherKind::SASRec);
    cfg.lm = LmPreset::Large;
    let model = DelRec::fit(&ds, &pipeline, teacher.as_ref(), lm, &cfg);
    let mut rec = Recommender::new(model);
    let history: Vec<ItemId> = ds.examples(Split::Test)[0].prefix.clone();
    let n = 20;

    // First retrieve builds the index; a repeat must hit the cached one.
    let b0 = counter("retrieval.index.build");
    let h0 = counter("retrieval.index.hit");
    let before = rec.retrieve(&history, n);
    assert!(
        counter("retrieval.index.build") > b0,
        "first retrieve must build the index"
    );
    let b1 = counter("retrieval.index.build");
    let again = rec.retrieve(&history, n);
    assert_eq!(bits(&before), bits(&again), "cached index changes nothing");
    assert_eq!(
        counter("retrieval.index.build"),
        b1,
        "same-version retrieve must not rebuild"
    );
    assert!(
        counter("retrieval.index.hit") > h0,
        "same-version retrieve must hit the cache"
    );

    // A parameter write to the *embedding table* bumps the store version:
    // the next retrieve must rebuild, and with different scores (otherwise
    // this proves nothing). Shift every token row so every title embedding
    // moves — a single element might belong to a token no title uses.
    {
        let lm = rec.model_mut().lm_mut();
        let id = lm.store().id_of("lm.tok_emb").expect("token embedding");
        for v in lm.store_mut().get_mut(id).data_mut() {
            *v += 0.5;
        }
    }
    let b2 = counter("retrieval.index.build");
    let rebuilt = rec.retrieve(&history, n);
    assert!(
        counter("retrieval.index.build") > b2,
        "stale version must force a rebuild"
    );
    assert_ne!(
        bits(&before),
        bits(&rebuilt),
        "the embedding write must actually change retrieval scores"
    );

    // Fresh-build reference: a save/load round-trip has identical parameters
    // but an empty retriever cache.
    let mut blob = Vec::new();
    rec.model().save(&mut blob).expect("serialize");
    let restored = DelRec::load(&pipeline, &cfg, &mut blob.as_slice()).expect("restore");
    let fresh = Recommender::new(restored);
    let b3 = counter("retrieval.index.build");
    let fresh_scores = fresh.retrieve(&history, n);
    assert!(
        counter("retrieval.index.build") > b3,
        "a fresh recommender must not inherit the cache"
    );
    assert_eq!(
        bits(&rebuilt),
        bits(&fresh_scores),
        "rebuild must be bitwise identical to a fresh build"
    );

    // Math-mode switch: Quantized selects the q8 slot (empty → build); the
    // q8 scan must match a fresh q8 build bitwise.
    rec.set_math_mode(MathMode::Quantized);
    let b4 = counter("retrieval.index.build");
    let q8 = rec.retrieve(&history, n);
    assert!(
        counter("retrieval.index.build") > b4,
        "mode switch to Quantized must build the q8 index"
    );
    let mut fresh_q8 = fresh;
    fresh_q8.set_math_mode(MathMode::Quantized);
    let q8_fresh = fresh_q8.retrieve(&history, n);
    assert_eq!(
        bits(&q8),
        bits(&q8_fresh),
        "q8 rebuild must be bitwise identical to a fresh q8 build"
    );

    // Switching back to Exact must hit the still-valid f32 slot, not rebuild.
    rec.set_math_mode(MathMode::Exact);
    let b5 = counter("retrieval.index.build");
    let back = rec.retrieve(&history, n);
    assert_eq!(
        counter("retrieval.index.build"),
        b5,
        "mode round-trip must reuse the still-valid f32 slot"
    );
    assert_eq!(bits(&rebuilt), bits(&back));
}
