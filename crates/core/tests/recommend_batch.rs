//! The batched-pipeline pin: `Recommender::recommend_batch` (one retriever
//! pin, one batched catalog scan, one flattened re-rank batch) is bitwise
//! identical to looping the sequential `recommend` — over ragged request
//! sets including empty histories, per-request `k`s larger than
//! `retrieve_n`, both index formats, and at `DELREC_THREADS` ∈ {1, 2, 4, 8}.
//!
//! One smoke model is fitted per math mode and shared across all the checks
//! (fitting dominates this test's runtime; the checks themselves are cheap).

use delrec_core::{
    build_teacher, pretrained_lm, DelRec, DelRecConfig, LmPreset, Pipeline, RecommendConfig,
    Recommender, TeacherKind,
};
use delrec_data::synthetic::{DatasetProfile, SyntheticConfig};
use delrec_data::{ItemId, Split};
use delrec_eval::{TopKQuery, TopKRecommender};
use delrec_par::{with_pool, ThreadPool};
use delrec_tensor::MathMode;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bits(ranked: &[(ItemId, f32)]) -> Vec<(u32, u32)> {
    ranked.iter().map(|&(id, s)| (id.0, s.to_bits())).collect()
}

fn smoke_recommender() -> (Recommender, Vec<Vec<ItemId>>) {
    let ds = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
        .scaled(0.08)
        .generate(23);
    let pipeline = Pipeline::build(&ds);
    let lm = pretrained_lm(
        &ds,
        &pipeline,
        LmPreset::Large,
        &delrec_lm::PretrainConfig {
            epochs: 1,
            max_sentences: Some(20),
            ..Default::default()
        },
        2,
    );
    let teacher = build_teacher(&ds, TeacherKind::SASRec, 1, Some(30), 5);
    let mut cfg = DelRecConfig::smoke(TeacherKind::SASRec);
    cfg.lm = LmPreset::Large;
    let model = DelRec::fit(&ds, &pipeline, teacher.as_ref(), lm, &cfg);
    // A small retrieve_n so the k > retrieve_n requests below actually
    // exercise the per-request max(retrieve_n, k) depth widening.
    let rec = Recommender::with_config(
        model,
        RecommendConfig {
            retrieve_n: 8,
            rerank_chunk: 15,
        },
    );
    // Ragged histories: real test prefixes of varying length, a one-item
    // history, and the empty cold start.
    let mut histories: Vec<Vec<ItemId>> = ds.examples(Split::Test)[..4]
        .iter()
        .map(|e| e.prefix.clone())
        .collect();
    histories.push(vec![ItemId(1)]);
    histories.push(Vec::new());
    (rec, histories)
}

#[test]
fn recommend_batch_is_bitwise_sequential_across_threads_and_modes() {
    let (mut rec, histories) = smoke_recommender();
    let refs: Vec<&[ItemId]> = histories.iter().map(|h| h.as_slice()).collect();
    // Per-request depths straddling retrieve_n = 8 (the 20s force the
    // widened retrieval depth path).
    let ks: [usize; 6] = [5, 20, 8, 3, 20, 1];
    let requests: Vec<TopKQuery<'_>> = refs.iter().zip(ks).map(|(&h, k)| (h, k)).collect();

    for mode in [MathMode::Exact, MathMode::Quantized] {
        rec.set_math_mode(mode);
        let serial = ThreadPool::new(1);
        let want: Vec<_> = with_pool(&serial, || {
            requests
                .iter()
                .map(|&(h, k)| bits(&rec.recommend(h, k)))
                .collect()
        });
        for &t in &THREADS {
            let pool = ThreadPool::new(t);
            let got: Vec<_> = with_pool(&pool, || {
                rec.recommend_top_k_batch(&requests)
                    .iter()
                    .map(|row| bits(row))
                    .collect()
            });
            assert_eq!(want, got, "{mode:?} batch diverged at {t} threads");
        }

        // Uniform-k wrapper against the same sequential reference.
        let k = 10;
        let want_uniform: Vec<_> = with_pool(&serial, || {
            refs.iter().map(|&h| bits(&rec.recommend(h, k))).collect()
        });
        let got_uniform: Vec<_> = rec
            .recommend_batch(&refs, k)
            .iter()
            .map(|row| bits(row))
            .collect();
        assert_eq!(want_uniform, got_uniform, "{mode:?} uniform-k diverged");
    }

    // Degenerate shapes.
    assert!(rec.recommend_top_k_batch(&[]).is_empty());
    let solo = rec.recommend_top_k_batch(&[(refs[0], 4)]);
    assert_eq!(solo.len(), 1);
    assert_eq!(bits(&solo[0]), bits(&rec.recommend(refs[0], 4)));
}

#[test]
fn parallel_embedding_export_matches_serial_bitwise() {
    // The export runs inside retriever construction; force a fresh build per
    // thread count via a save/load round-trip (empty cache, identical
    // parameters) and compare full catalog rankings, which are a function of
    // every exported row.
    let (rec, histories) = smoke_recommender();
    let mut blob = Vec::new();
    rec.model().save(&mut blob).expect("serialize");
    let ds_cfg = DelRecConfig::smoke(TeacherKind::SASRec);
    let history = histories[0].as_slice();

    let make_fresh = || {
        let ds = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
            .scaled(0.08)
            .generate(23);
        let pipeline = Pipeline::build(&ds);
        let mut cfg = ds_cfg.clone();
        cfg.lm = LmPreset::Large;
        let restored = DelRec::load(&pipeline, &cfg, &mut blob.as_slice()).expect("restore");
        Recommender::new(restored)
    };

    let serial = ThreadPool::new(1);
    let want = with_pool(&serial, || {
        bits(&make_fresh().retrieve(history, usize::MAX))
    });
    for &t in &THREADS[1..] {
        let pool = ThreadPool::new(t);
        let got = with_pool(&pool, || bits(&make_fresh().retrieve(history, usize::MAX)));
        assert_eq!(want, got, "exported embeddings diverged at {t} threads");
    }
}
