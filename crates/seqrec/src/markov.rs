//! First-order Markov baseline: item-to-item transition counts with a
//! popularity fallback (the FPMC lineage, without factorization).

use crate::model::SequentialRecommender;
use delrec_data::{Dataset, ItemId, Split};
use std::collections::HashMap;

/// Scores the next item by how often it followed the user's last item in the
/// training data, backed off to global popularity.
#[derive(Clone, Debug)]
pub struct MarkovRecommender {
    transitions: HashMap<u32, Vec<(u32, f32)>>,
    popularity: Vec<f32>,
    /// Weight of the popularity back-off relative to transition counts.
    pub backoff: f32,
}

impl MarkovRecommender {
    /// Fit transition counts on the training split.
    pub fn fit(dataset: &Dataset) -> Self {
        let mut counts: HashMap<(u32, u32), f32> = HashMap::new();
        let mut popularity = vec![0.0f32; dataset.num_items()];
        for ex in dataset.examples(Split::Train) {
            popularity[ex.target.index()] += 1.0;
            if let Some(&last) = ex.prefix.last() {
                *counts.entry((last.0, ex.target.0)).or_default() += 1.0;
            }
        }
        let mut transitions: HashMap<u32, Vec<(u32, f32)>> = HashMap::new();
        for ((from, to), c) in counts {
            transitions.entry(from).or_default().push((to, c));
        }
        for v in popularity.iter_mut() {
            *v = (1.0 + *v).ln();
        }
        MarkovRecommender {
            transitions,
            popularity,
            backoff: 0.1,
        }
    }
}

impl SequentialRecommender for MarkovRecommender {
    fn name(&self) -> &str {
        "markov"
    }

    fn scores(&self, prefix: &[ItemId]) -> Vec<f32> {
        let mut scores: Vec<f32> = self.popularity.iter().map(|&p| self.backoff * p).collect();
        if let Some(last) = prefix.last() {
            if let Some(outs) = self.transitions.get(&last.0) {
                for &(to, c) in outs {
                    scores[to as usize] += c;
                }
            }
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delrec_data::synthetic::{DatasetProfile, SyntheticConfig};

    #[test]
    fn last_item_drives_the_prediction() {
        let ds = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
            .scaled(0.1)
            .generate(2);
        let mut m = MarkovRecommender::fit(&ds);
        // Disable the popularity back-off so ties cannot flip the argmax.
        m.backoff = 0.0;
        // Find a last-item with at least one observed transition.
        let (&from, outs) = m
            .transitions
            .iter()
            .max_by_key(|(_, outs)| outs.len())
            .expect("training data has transitions");
        let best_count = outs
            .iter()
            .map(|&(_, c)| c)
            .fold(f32::NEG_INFINITY, f32::max);
        let scores = m.scores(&[ItemId(from)]);
        let top = crate::model::top_k(&scores, 1)[0];
        assert_eq!(
            scores[top.index()],
            best_count,
            "top score must equal the most frequent observed transition"
        );
    }

    #[test]
    fn unseen_last_item_falls_back_to_popularity() {
        let ds = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
            .scaled(0.1)
            .generate(2);
        let mut m = MarkovRecommender::fit(&ds);
        m.transitions.clear();
        let s = m.scores(&[ItemId(0)]);
        let pop_top = crate::model::top_k(&m.popularity, 1);
        assert_eq!(crate::model::top_k(&s, 1), pop_top);
    }
}
