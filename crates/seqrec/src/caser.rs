//! Caser (Tang & Wang, WSDM 2018): the interaction sequence as an `L × d`
//! "image", convolved horizontally (per-window patterns) and vertically
//! (per-dimension aggregation), max-pooled, and projected to item scores.

use crate::model::{NeuralSeqModel, SequentialRecommender};
use delrec_data::ItemId;
use delrec_tensor::{init, Ctx, ParamId, ParamStore, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Caser hyperparameters.
#[derive(Clone, Debug)]
pub struct CaserConfig {
    /// Item-embedding dimension (paper §V-A3 uses 100; scaled here).
    pub embed_dim: usize,
    /// Input window: the last `seq_len` items (left-padded with zeros).
    pub seq_len: usize,
    /// Horizontal filter heights.
    pub heights: Vec<usize>,
    /// Horizontal filters per height (paper: 16 total).
    pub filters_per_height: usize,
    /// Vertical filters.
    pub vertical_filters: usize,
    /// Dropout before the output layer (paper: 0.4).
    pub dropout: f32,
}

impl Default for CaserConfig {
    fn default() -> Self {
        CaserConfig {
            embed_dim: 32,
            seq_len: 9,
            heights: vec![2, 3],
            filters_per_height: 8,
            vertical_filters: 2,
            dropout: 0.4,
        }
    }
}

/// The Caser model.
pub struct Caser {
    store: ParamStore,
    cfg: CaserConfig,
    num_items: usize,
    emb: ParamId,
    /// One `[h·d, n_f]` weight and `[n_f]` bias per filter height.
    h_filters: Vec<(ParamId, ParamId)>,
    /// Vertical filter bank `[L, n_v]`.
    v_filter: ParamId,
    /// Fully-connected layer `[F_total, d]` + bias, tying logits to `emb`.
    w1: ParamId,
    b1: ParamId,
}

impl Caser {
    /// Initialize with seeded weights.
    pub fn new(num_items: usize, cfg: CaserConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = cfg.embed_dim;
        let mut store = ParamStore::new();
        let emb = store.add("caser.emb", init::normal([num_items, d], 0.05, &mut rng));
        let mut h_filters = Vec::new();
        for &h in &cfg.heights {
            let w = store.add(
                format!("caser.hconv{h}.w"),
                init::xavier(h * d, cfg.filters_per_height, &mut rng),
            );
            let b = store.add(
                format!("caser.hconv{h}.b"),
                Tensor::zeros([cfg.filters_per_height]),
            );
            h_filters.push((w, b));
        }
        let v_filter = store.add(
            "caser.vconv.w",
            init::xavier(cfg.seq_len, cfg.vertical_filters, &mut rng),
        );
        let f_total = cfg.heights.len() * cfg.filters_per_height + d * cfg.vertical_filters;
        let w1 = store.add("caser.fc.w", init::xavier(f_total, d, &mut rng));
        let b1 = store.add("caser.fc.b", Tensor::zeros([d]));
        Caser {
            store,
            cfg,
            num_items,
            emb,
            h_filters,
            v_filter,
            w1,
            b1,
        }
    }

    /// The `[L, d]` input matrix: last `L` items, left-padded with zeros.
    fn sequence_matrix(&self, ctx: &Ctx<'_>, prefix: &[ItemId]) -> Var {
        let tape = ctx.tape;
        let l = self.cfg.seq_len;
        let take = prefix.len().min(l);
        let recent: Vec<usize> = prefix[prefix.len() - take..]
            .iter()
            .map(|i| i.index())
            .collect();
        let emb_rows = tape.gather_rows(ctx.p(self.emb), &recent);
        if take == l {
            emb_rows
        } else {
            let pad = tape.constant(Tensor::zeros([l - take, self.cfg.embed_dim]));
            tape.concat_rows(&[pad, emb_rows])
        }
    }
}

impl SequentialRecommender for Caser {
    fn name(&self) -> &str {
        "caser"
    }

    fn scores(&self, prefix: &[ItemId]) -> Vec<f32> {
        self.scores_via_forward(prefix)
    }

    fn item_embeddings(&self) -> Option<Vec<Vec<f32>>> {
        let emb = self.store.get(self.emb);
        Some((0..self.num_items).map(|i| emb.row(i).to_vec()).collect())
    }
}

impl NeuralSeqModel for Caser {
    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn logits(&self, ctx: &Ctx<'_>, prefix: &[ItemId], rng: &mut StdRng) -> Var {
        assert!(!prefix.is_empty(), "empty prefix");
        let tape = ctx.tape;
        let (l, d) = (self.cfg.seq_len, self.cfg.embed_dim);
        let seq = self.sequence_matrix(ctx, prefix);

        // Feature columns collected as [f_i, 1] blocks, concatenated by rows.
        let mut columns: Vec<Var> = Vec::new();

        // Horizontal convolutions: unfold windows of height h, one matmul per
        // filter bank, ReLU, max-over-time pooling.
        for (&h, &(w, b)) in self.cfg.heights.iter().zip(&self.h_filters) {
            let n_windows = l - h + 1;
            let mut unfold_idx = Vec::with_capacity(n_windows * h);
            for start in 0..n_windows {
                unfold_idx.extend(start..start + h);
            }
            let windows = tape.gather_rows(seq, &unfold_idx);
            let windows = tape.reshape(windows, [n_windows, h * d]);
            let conv = tape.matmul(windows, ctx.p(w));
            let conv = tape.add(conv, ctx.p(b));
            let conv = tape.relu(conv);
            let pooled = tape.max_rows(conv); // [n_f]
            columns.push(tape.reshape(pooled, [self.cfg.filters_per_height, 1]));
        }

        // Vertical convolution: weighted sums over time per dimension.
        let seq_t = tape.transpose(seq); // [d, L]
        let v = tape.matmul(seq_t, ctx.p(self.v_filter)); // [d, n_v]
        columns.push(tape.reshape(v, [d * self.cfg.vertical_filters, 1]));

        let z = tape.concat_rows(&columns); // [F, 1]
        let z = tape.transpose(z); // [1, F]
        let o = tape.matmul(z, ctx.p(self.w1));
        let o = tape.add(o, ctx.p(self.b1));
        let o = tape.relu(o);
        let o = tape.dropout(o, self.cfg.dropout, ctx.train, rng);
        let emb_t = tape.transpose(ctx.p(self.emb));
        let logits = tape.matmul(o, emb_t);
        tape.reshape(logits, [self.num_items])
    }

    fn num_items(&self) -> usize {
        self.num_items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delrec_tensor::Tape;

    fn prefix(ids: &[u32]) -> Vec<ItemId> {
        ids.iter().map(|&i| ItemId(i)).collect()
    }

    #[test]
    fn scores_cover_catalog_and_are_finite() {
        let m = Caser::new(25, CaserConfig::default(), 3);
        let s = m.scores(&prefix(&[0, 1, 2, 3]));
        assert_eq!(s.len(), 25);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn short_prefixes_are_left_padded() {
        let m = Caser::new(25, CaserConfig::default(), 3);
        // One item still produces a valid forward pass.
        let s = m.scores(&prefix(&[7]));
        assert_eq!(s.len(), 25);
    }

    #[test]
    fn long_prefixes_use_only_last_l_items() {
        let m = Caser::new(25, CaserConfig::default(), 3);
        let long: Vec<u32> = (0..15).map(|i| i % 20).collect();
        let tail: Vec<u32> = long[15 - 9..].to_vec();
        assert_eq!(m.scores(&prefix(&long)), m.scores(&prefix(&tail)));
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let m = Caser::new(
            12,
            CaserConfig {
                dropout: 0.0,
                ..Default::default()
            },
            5,
        );
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, m.store(), true);
        let mut rng = StdRng::seed_from_u64(0);
        let logits = m.logits(&ctx, &prefix(&[1, 2, 3, 4, 5]), &mut rng);
        let loss = tape.cross_entropy(logits, &[6]);
        let mut grads = tape.backward(loss);
        let updates = ctx.grads(&mut grads);
        // ReLU/max-pool can zero a path, but every parameter must at least be
        // reachable; with random init all receive gradients here.
        assert_eq!(updates.len(), m.store().len());
    }
}
