//! Conventional sequential recommenders — the "teachers" whose behaviour
//! DELRec distills, plus the non-neural sanity baselines.
//!
//! All neural models share the [`delrec_tensor`] autograd substrate and a
//! common [`model::NeuralSeqModel`] interface so one [`trainer`] covers them:
//!
//! * [`gru4rec::Gru4Rec`] — GRU over the interaction sequence (RNN family);
//! * [`caser::Caser`] — horizontal + vertical convolutions (CNN family);
//! * [`sasrec::SasRec`] — causal self-attention (Transformer family);
//! * [`bert4rec::Bert4Rec`] — bidirectional attention with a mask token
//!   (substrate for the LLM2BERT4Rec baseline);
//! * [`kda::Kda`] — relation-aware model with a Fourier temporal-decay
//!   module (backbone of the KDA_LRD baseline);
//! * [`fpmc::Fpmc`] and [`fossil::Fossil`] — the classical Markov-chain
//!   family from the paper's related work (§II-A).
//!
//! Hyperparameter *styles* follow the paper §V-A3 (Adam for SASRec/Caser,
//! Adagrad for GRU4Rec, their respective dropout rates), with dimensions
//! scaled to CPU budgets.

#![warn(missing_docs)]

pub mod bert4rec;
pub mod caser;
pub mod fossil;
pub mod fpmc;
pub mod gru4rec;
pub mod kda;
pub mod markov;
pub mod model;
pub mod popularity;
pub mod sasrec;
pub mod trainer;

pub use caser::Caser;
pub use fossil::Fossil;
pub use fpmc::Fpmc;
pub use gru4rec::Gru4Rec;
pub use kda::Kda;
pub use markov::MarkovRecommender;
pub use model::{top_k, NeuralSeqModel, SequentialRecommender};
pub use popularity::PopularityRecommender;
pub use sasrec::SasRec;
pub use trainer::{train, TrainConfig};
