//! Fossil (He & McAuley, ICDM 2016): FISM-style item-similarity blended with
//! a high-order Markov chain (paper §II-A). The second classical sequential
//! model the related-work section cites.
//!
//! `score(next | history) = (Σ_{j∈history} sim_src_j) · sim_dst_nextᵀ / √|H|
//!  + Σ_{k=1..L} η_k · ⟨markov_src_{last−k}, markov_dst_next⟩ + b_next`
//!
//! The first term is the long-term item-similarity (FISM) component; the
//! second is an order-`L` Markov component with learned per-lag weights η.

use crate::model::{NeuralSeqModel, SequentialRecommender};
use delrec_data::ItemId;
use delrec_tensor::{init, Ctx, ParamId, ParamStore, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fossil hyperparameters.
#[derive(Clone, Debug)]
pub struct FossilConfig {
    /// Latent dimension of both components.
    pub rank: usize,
    /// Markov order `L`.
    pub order: usize,
}

impl Default for FossilConfig {
    fn default() -> Self {
        FossilConfig { rank: 24, order: 3 }
    }
}

/// The Fossil model.
pub struct Fossil {
    store: ParamStore,
    cfg: FossilConfig,
    num_items: usize,
    sim_src: ParamId,
    sim_dst: ParamId,
    markov_src: ParamId,
    markov_dst: ParamId,
    /// Per-lag weights η `[order, 1]` (lag 0 = most recent item).
    eta: ParamId,
    bias: ParamId,
}

impl Fossil {
    /// Initialize with seeded weights.
    pub fn new(num_items: usize, cfg: FossilConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let r = cfg.rank;
        let sim_src = store.add(
            "fossil.sim_src",
            init::normal([num_items, r], 0.05, &mut rng),
        );
        let sim_dst = store.add(
            "fossil.sim_dst",
            init::normal([num_items, r], 0.05, &mut rng),
        );
        let markov_src = store.add(
            "fossil.markov_src",
            init::normal([num_items, r], 0.05, &mut rng),
        );
        let markov_dst = store.add(
            "fossil.markov_dst",
            init::normal([num_items, r], 0.05, &mut rng),
        );
        // Recent lags start more influential, like Fossil's decaying weights.
        let eta_init: Vec<f32> = (0..cfg.order).map(|k| 0.5f32.powi(k as i32)).collect();
        let eta = store.add("fossil.eta", Tensor::new([cfg.order, 1], eta_init));
        let bias = store.add("fossil.bias", Tensor::zeros([num_items]));
        Fossil {
            store,
            cfg,
            num_items,
            sim_src,
            sim_dst,
            markov_src,
            markov_dst,
            eta,
            bias,
        }
    }
}

impl SequentialRecommender for Fossil {
    fn name(&self) -> &str {
        "fossil"
    }

    fn scores(&self, prefix: &[ItemId]) -> Vec<f32> {
        self.scores_via_forward(prefix)
    }

    fn item_embeddings(&self) -> Option<Vec<Vec<f32>>> {
        let emb = self.store.get(self.sim_dst);
        Some((0..self.num_items).map(|i| emb.row(i).to_vec()).collect())
    }
}

impl NeuralSeqModel for Fossil {
    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn logits(&self, ctx: &Ctx<'_>, prefix: &[ItemId], _rng: &mut StdRng) -> Var {
        assert!(!prefix.is_empty(), "empty prefix");
        let tape = ctx.tape;
        let r = self.cfg.rank;
        let all: Vec<usize> = prefix.iter().map(|i| i.index()).collect();

        // Long-term FISM term: normalized sum of history similarity factors.
        let hist = tape.gather_rows(ctx.p(self.sim_src), &all);
        let summed = tape.mean_rows(hist); // mean = sum/|H|; √|H| absorbed
        let summed = tape.scale(summed, (all.len() as f32).sqrt());
        let query_sim = tape.reshape(summed, [1, r]);
        let sim_scores = {
            let dst_t = tape.transpose(ctx.p(self.sim_dst));
            let s = tape.matmul(query_sim, dst_t);
            tape.reshape(s, [self.num_items])
        };

        // Markov term: η-weighted recent-item factors.
        let l = self.cfg.order.min(all.len());
        let recent: Vec<usize> = all[all.len() - l..].iter().rev().copied().collect();
        let lag_rows = tape.gather_rows(ctx.p(self.markov_src), &recent); // [l, r]
        let eta = tape.slice_rows(ctx.p(self.eta), 0, l); // [l, 1]
        let eta_row = tape.transpose(eta); // [1, l]
        let query_mk = tape.matmul(eta_row, lag_rows); // [1, r]
        let mk_scores = {
            let dst_t = tape.transpose(ctx.p(self.markov_dst));
            let s = tape.matmul(query_mk, dst_t);
            tape.reshape(s, [self.num_items])
        };

        let combined = tape.add(sim_scores, mk_scores);
        tape.add(combined, ctx.p(self.bias))
    }

    fn num_items(&self) -> usize {
        self.num_items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{train, TrainConfig};
    use delrec_data::synthetic::{DatasetProfile, SyntheticConfig};
    use delrec_data::Split;
    use delrec_tensor::Tape;

    fn prefix(ids: &[u32]) -> Vec<ItemId> {
        ids.iter().map(|&i| ItemId(i)).collect()
    }

    #[test]
    fn scores_cover_catalog_and_are_order_sensitive() {
        let m = Fossil::new(20, FossilConfig::default(), 1);
        let s = m.scores(&prefix(&[1, 2, 3]));
        assert_eq!(s.len(), 20);
        assert!(s.iter().all(|v| v.is_finite()));
        // η weights make recency matter: reversing the history changes scores.
        assert_ne!(m.scores(&prefix(&[1, 2, 3])), m.scores(&prefix(&[3, 2, 1])));
    }

    #[test]
    fn short_histories_use_available_lags() {
        let m = Fossil::new(
            20,
            FossilConfig {
                order: 3,
                ..Default::default()
            },
            1,
        );
        // A single-item history must still work (1 lag available).
        let s = m.scores(&prefix(&[5]));
        assert_eq!(s.len(), 20);
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let m = Fossil::new(12, FossilConfig::default(), 2);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, m.store(), true);
        let mut rng = StdRng::seed_from_u64(0);
        let logits = m.logits(&ctx, &prefix(&[1, 2, 3, 4]), &mut rng);
        let loss = tape.cross_entropy(logits, &[5]);
        let mut grads = tape.backward(loss);
        let updates = ctx.grads(&mut grads);
        assert_eq!(updates.len(), m.store().len());
    }

    #[test]
    fn training_reduces_loss() {
        let ds = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
            .scaled(0.08)
            .generate(5);
        let mut m = Fossil::new(ds.num_items(), FossilConfig::default(), 3);
        let losses = train(
            &mut m,
            ds.examples(Split::Train),
            &TrainConfig {
                max_examples: Some(400),
                ..TrainConfig::adam(3, 5e-3)
            },
        );
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "{losses:?}"
        );
    }
}
