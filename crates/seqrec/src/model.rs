//! Model interfaces shared by all sequential recommenders.

use delrec_data::ItemId;
use delrec_tensor::{Ctx, ParamStore, Tape, Var};
use rand::rngs::StdRng;

/// Inference interface: score every catalog item given a user's recent
/// history (most recent last). Implemented by neural and counting models
/// alike; DELRec's Stage 1 consumes teachers through this trait.
pub trait SequentialRecommender {
    /// Short model name (also used in prompt text, e.g. `"sasrec"`).
    fn name(&self) -> &str;

    /// Unnormalized preference scores over all items (index = item id).
    fn scores(&self, prefix: &[ItemId]) -> Vec<f32>;

    /// Score a batch of histories at once. The default loops [`Self::scores`];
    /// neural models override it to share one padded forward pass across the
    /// batch (see [`NeuralSeqModel::scores_batch_via_forward`]).
    fn scores_batch(&self, prefixes: &[&[ItemId]]) -> Vec<Vec<f32>> {
        prefixes.iter().map(|p| self.scores(p)).collect()
    }

    /// Convenience: ids of the `k` highest-scoring items, best first.
    fn recommend(&self, prefix: &[ItemId], k: usize) -> Vec<ItemId> {
        top_k(&self.scores(prefix), k)
    }

    /// The model's learned item-embedding table (row = item id), if it has
    /// one. Paradigm-2 LLM baselines (LLaRA) inject these into the LM.
    fn item_embeddings(&self) -> Option<Vec<Vec<f32>>> {
        None
    }
}

/// Training interface for the neural models: expose parameters and build the
/// per-example logits inside a caller-provided autograd context.
pub trait NeuralSeqModel: SequentialRecommender {
    /// The model's parameters.
    fn store(&self) -> &ParamStore;

    /// Mutable parameters (for the optimizer).
    fn store_mut(&mut self) -> &mut ParamStore;

    /// Forward pass: logits over all items (`[num_items]`) for one prefix.
    /// `rng` drives dropout when `ctx.train` is set.
    fn logits(&self, ctx: &Ctx<'_>, prefix: &[ItemId], rng: &mut StdRng) -> Var;

    /// Batched forward pass: `[B, num_items]` logits, one row per prefix.
    ///
    /// The default stacks per-example [`Self::logits`] calls onto the same
    /// tape; models with a padded batch kernel (SASRec, GRU4Rec, BERT4Rec)
    /// override it so the whole batch shares each layer's matmuls. Training
    /// and batched scoring both route through this method.
    fn logits_batch(&self, ctx: &Ctx<'_>, prefixes: &[&[ItemId]], rng: &mut StdRng) -> Var {
        assert!(!prefixes.is_empty(), "empty batch");
        let rows: Vec<Var> = prefixes.iter().map(|p| self.logits(ctx, p, rng)).collect();
        ctx.tape.stack_rows(&rows)
    }

    /// Number of catalog items (logit dimensionality).
    fn num_items(&self) -> usize;

    /// Default [`SequentialRecommender::scores`] implementation for neural
    /// models: one eval-mode forward pass.
    fn scores_via_forward(&self, prefix: &[ItemId]) -> Vec<f32> {
        let _span = delrec_obs::span!("seqrec.scores");
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, self.store(), false);
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        let logits = self.logits(&ctx, prefix, &mut rng);
        tape.get(logits).into_data()
    }

    /// Default [`SequentialRecommender::scores_batch`] implementation for
    /// neural models: one eval-mode [`Self::logits_batch`] pass shared by
    /// every prefix.
    fn scores_batch_via_forward(&self, prefixes: &[&[ItemId]]) -> Vec<Vec<f32>> {
        let _span = delrec_obs::span!("seqrec.scores_batch");
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, self.store(), false);
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        let logits = self.logits_batch(&ctx, prefixes, &mut rng);
        let v = tape.get(logits);
        (0..prefixes.len()).map(|b| v.row(b).to_vec()).collect()
    }
}

/// Indices of the `k` largest scores, best first (stable on ties by index).
pub fn top_k(scores: &[f32], k: usize) -> Vec<ItemId> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    let k = k.min(scores.len());
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx.into_iter().map(|i| ItemId(i as u32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_descending() {
        let scores = vec![0.1, 0.9, 0.5, 0.7];
        let top = top_k(&scores, 3);
        assert_eq!(top, vec![ItemId(1), ItemId(3), ItemId(2)]);
    }

    #[test]
    fn top_k_handles_ties_and_short_lists() {
        let scores = vec![0.5, 0.5];
        assert_eq!(top_k(&scores, 5), vec![ItemId(0), ItemId(1)]);
        assert!(top_k(&[], 3).is_empty());
    }
}
