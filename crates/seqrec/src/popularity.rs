//! Popularity baseline: recommend what everyone interacts with.

use crate::model::SequentialRecommender;
use delrec_data::{Dataset, ItemId, Split};

/// Counts training interactions per item; scores are the (log-damped) counts.
#[derive(Clone, Debug)]
pub struct PopularityRecommender {
    scores: Vec<f32>,
}

impl PopularityRecommender {
    /// Fit on the training split (both prefix items and targets count — every
    /// training interaction is an observation of demand).
    pub fn fit(dataset: &Dataset) -> Self {
        let mut counts = vec![0.0f32; dataset.num_items()];
        for ex in dataset.examples(Split::Train) {
            counts[ex.target.index()] += 1.0;
        }
        let scores = counts.iter().map(|&c| (1.0 + c).ln()).collect();
        PopularityRecommender { scores }
    }
}

impl SequentialRecommender for PopularityRecommender {
    fn name(&self) -> &str {
        "popularity"
    }

    fn scores(&self, _prefix: &[ItemId]) -> Vec<f32> {
        self.scores.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delrec_data::synthetic::{DatasetProfile, SyntheticConfig};

    #[test]
    fn popularity_ignores_history() {
        let ds = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
            .scaled(0.1)
            .generate(1);
        let m = PopularityRecommender::fit(&ds);
        assert_eq!(m.scores(&[ItemId(0)]), m.scores(&[ItemId(1), ItemId(2)]));
        assert_eq!(m.scores(&[]).len(), ds.num_items());
    }

    #[test]
    fn frequent_targets_score_higher() {
        let ds = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
            .scaled(0.1)
            .generate(1);
        let m = PopularityRecommender::fit(&ds);
        let mut counts = vec![0usize; ds.num_items()];
        for ex in ds.examples(Split::Train) {
            counts[ex.target.index()] += 1;
        }
        let most = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        let least = counts.iter().enumerate().min_by_key(|(_, &c)| c).unwrap().0;
        let s = m.scores(&[]);
        assert!(s[most] > s[least]);
    }
}
