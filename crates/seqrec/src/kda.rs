//! KDA-style recommender (Wang et al., TOIS 2020): item-relation scoring
//! with a Fourier-based temporal-evolution module. This is the backbone of
//! the paper's strongest LLM-based baseline, KDA_LRD.
//!
//! Simplified faithfully to its two key ideas: (1) a low-rank *relation*
//! space in which history items attract related targets, and (2) temporal
//! decay expressed as a learnable combination of fixed Fourier basis
//! functions over the recency gap.

use crate::model::{NeuralSeqModel, SequentialRecommender};
use delrec_data::ItemId;
use delrec_tensor::{init, Ctx, ParamId, ParamStore, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// KDA hyperparameters.
#[derive(Clone, Debug)]
pub struct KdaConfig {
    /// Item-embedding dimension.
    pub embed_dim: usize,
    /// Rank of the relation space.
    pub relation_rank: usize,
    /// Number of Fourier basis frequencies.
    pub num_freqs: usize,
    /// Maximum recency gap modelled (history positions beyond it share the
    /// oldest basis row).
    pub max_gap: usize,
}

impl Default for KdaConfig {
    fn default() -> Self {
        KdaConfig {
            embed_dim: 32,
            relation_rank: 16,
            num_freqs: 6,
            max_gap: 9,
        }
    }
}

/// The KDA model.
pub struct Kda {
    store: ParamStore,
    cfg: KdaConfig,
    num_items: usize,
    emb: ParamId,
    /// Maps history items into the relation space (`[d, r]`).
    rel_src: ParamId,
    /// Maps candidate items into the relation space (`[d, r]`).
    rel_dst: ParamId,
    /// Learnable mixing of the Fourier basis (`[num_freqs, 1]`).
    freq_weights: ParamId,
    /// Global item bias (`[num_items]`).
    bias: ParamId,
    /// Fixed cosine basis over recency gaps (`[max_gap, num_freqs]`).
    basis: Tensor,
}

impl Kda {
    /// Initialize with seeded weights and log-spaced basis frequencies.
    pub fn new(num_items: usize, cfg: KdaConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let emb = store.add(
            "kda.emb",
            init::normal([num_items, cfg.embed_dim], 0.05, &mut rng),
        );
        let rel_src = store.add(
            "kda.rel_src",
            init::xavier(cfg.embed_dim, cfg.relation_rank, &mut rng),
        );
        let rel_dst = store.add(
            "kda.rel_dst",
            init::xavier(cfg.embed_dim, cfg.relation_rank, &mut rng),
        );
        // Start with uniform positive weights so recent history matters.
        let freq_weights = store.add(
            "kda.freq_weights",
            Tensor::full([cfg.num_freqs, 1], 1.0 / cfg.num_freqs as f32),
        );
        let bias = store.add("kda.bias", Tensor::zeros([num_items]));
        // basis[gap, f] = cos(ω_f · gap), ω log-spaced in (0, π].
        let mut basis = vec![0.0f32; cfg.max_gap * cfg.num_freqs];
        for gap in 0..cfg.max_gap {
            for f in 0..cfg.num_freqs {
                let omega = std::f32::consts::PI * 2.0f32.powi(-(f as i32)) / 1.0;
                basis[gap * cfg.num_freqs + f] = (omega * gap as f32).cos();
            }
        }
        let basis = Tensor::new([cfg.max_gap, cfg.num_freqs], basis);
        Kda {
            store,
            cfg,
            num_items,
            emb,
            rel_src,
            rel_dst,
            freq_weights,
            bias,
            basis,
        }
    }
}

impl SequentialRecommender for Kda {
    fn name(&self) -> &str {
        "kda"
    }

    fn scores(&self, prefix: &[ItemId]) -> Vec<f32> {
        self.scores_via_forward(prefix)
    }
}

impl NeuralSeqModel for Kda {
    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn logits(&self, ctx: &Ctx<'_>, prefix: &[ItemId], _rng: &mut StdRng) -> Var {
        assert!(!prefix.is_empty(), "empty prefix");
        let tape = ctx.tape;
        let take = prefix.len().min(self.cfg.max_gap);
        let ids: Vec<usize> = prefix[prefix.len() - take..]
            .iter()
            .map(|i| i.index())
            .collect();
        let t = ids.len();
        // Temporal weights: w[j] = basis(gap_j) · freq_weights, where the
        // most recent item has gap 0.
        let gap_rows: Vec<usize> = (0..t).rev().collect();
        let basis_rows = tape.constant(self.basis.clone());
        let basis_t = tape.gather_rows(basis_rows, &gap_rows); // [t, F]
        let w = tape.matmul(basis_t, ctx.p(self.freq_weights)); // [t, 1]
        let w_row = tape.transpose(w); // [1, t]

        let hist = tape.gather_rows(ctx.p(self.emb), &ids); // [t, d]
        let hist_rel = tape.matmul(hist, ctx.p(self.rel_src)); // [t, r]
        let query = tape.matmul(w_row, hist_rel); // [1, r]

        let all_rel = tape.matmul(ctx.p(self.emb), ctx.p(self.rel_dst)); // [V, r]
        let all_rel_t = tape.transpose(all_rel); // [r, V]
        let scores = tape.matmul(query, all_rel_t); // [1, V]
        let scores = tape.reshape(scores, [self.num_items]);
        tape.add(scores, ctx.p(self.bias))
    }

    fn num_items(&self) -> usize {
        self.num_items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delrec_tensor::Tape;

    fn prefix(ids: &[u32]) -> Vec<ItemId> {
        ids.iter().map(|&i| ItemId(i)).collect()
    }

    #[test]
    fn scores_cover_catalog() {
        let m = Kda::new(25, KdaConfig::default(), 1);
        let s = m.scores(&prefix(&[1, 2, 3]));
        assert_eq!(s.len(), 25);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn recency_matters() {
        // Swapping which item is most recent must change the scores because
        // the Fourier temporal weights differ by gap.
        let m = Kda::new(25, KdaConfig::default(), 1);
        assert_ne!(m.scores(&prefix(&[1, 2])), m.scores(&prefix(&[2, 1])));
    }

    #[test]
    fn basis_row_zero_is_all_ones() {
        // cos(ω · 0) = 1 for every frequency.
        let m = Kda::new(5, KdaConfig::default(), 1);
        assert!(m.basis.row(0).iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let m = Kda::new(10, KdaConfig::default(), 2);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, m.store(), true);
        let mut rng = StdRng::seed_from_u64(0);
        let logits = m.logits(&ctx, &prefix(&[1, 2, 3]), &mut rng);
        let loss = tape.cross_entropy(logits, &[4]);
        let mut grads = tape.backward(loss);
        let updates = ctx.grads(&mut grads);
        assert_eq!(updates.len(), m.store().len());
    }
}
