//! GRU4Rec (Hidasi et al., ICLR 2016): a gated recurrent unit over the
//! interaction sequence; the final hidden state scores all items.

use crate::model::{NeuralSeqModel, SequentialRecommender};
use delrec_data::ItemId;
use delrec_tensor::{init, Ctx, ParamId, ParamStore, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// GRU4Rec hyperparameters.
#[derive(Clone, Debug)]
pub struct Gru4RecConfig {
    /// Item-embedding dimension (paper §V-A3 uses 64; scaled here).
    pub embed_dim: usize,
    /// GRU hidden size.
    pub hidden_dim: usize,
    /// Dropout on the output projection (paper: 0.3).
    pub dropout: f32,
}

impl Default for Gru4RecConfig {
    fn default() -> Self {
        Gru4RecConfig {
            embed_dim: 32,
            hidden_dim: 32,
            dropout: 0.3,
        }
    }
}

/// The GRU4Rec model.
pub struct Gru4Rec {
    store: ParamStore,
    cfg: Gru4RecConfig,
    num_items: usize,
    emb: ParamId,
    // Gate weights: update (z), reset (r), candidate (h).
    wz: ParamId,
    uz: ParamId,
    bz: ParamId,
    wr: ParamId,
    ur: ParamId,
    br: ParamId,
    wh: ParamId,
    uh: ParamId,
    bh: ParamId,
    /// Projects the hidden state back to embedding space; logits are tied to
    /// the item embedding table.
    wo: ParamId,
}

impl Gru4Rec {
    /// Initialize with seeded weights.
    pub fn new(num_items: usize, cfg: Gru4RecConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let (d, h) = (cfg.embed_dim, cfg.hidden_dim);
        let mut store = ParamStore::new();
        let emb = store.add("gru4rec.emb", init::normal([num_items, d], 0.05, &mut rng));
        let gate = |store: &mut ParamStore, rng: &mut StdRng, g: &str| {
            (
                store.add(format!("gru4rec.w{g}"), init::xavier(d, h, rng)),
                store.add(format!("gru4rec.u{g}"), init::xavier(h, h, rng)),
                store.add(format!("gru4rec.b{g}"), Tensor::zeros([h])),
            )
        };
        let (wz, uz, bz) = gate(&mut store, &mut rng, "z");
        let (wr, ur, br) = gate(&mut store, &mut rng, "r");
        let (wh, uh, bh) = gate(&mut store, &mut rng, "h");
        let wo = store.add("gru4rec.wo", init::xavier(h, d, &mut rng));
        Gru4Rec {
            store,
            cfg,
            num_items,
            emb,
            wz,
            uz,
            bz,
            wr,
            ur,
            br,
            wh,
            uh,
            bh,
            wo,
        }
    }

    /// Final hidden states (`[B, hidden]`) for a batch of prefixes: one
    /// time-major GRU sweep where every step's gate matmuls cover the whole
    /// batch. Sequences shorter than the longest are frozen once exhausted —
    /// their update is multiplied by a zero row — so row `b` equals the
    /// single-sequence recurrence over `prefixes[b]` exactly.
    fn final_hidden_batch(&self, ctx: &Ctx<'_>, prefixes: &[&[ItemId]]) -> Var {
        let tape = ctx.tape;
        let emb = ctx.p(self.emb);
        let bsz = prefixes.len();
        let hd = self.cfg.hidden_dim;
        let t_max = prefixes.iter().map(|p| p.len()).max().unwrap();
        let mut h = tape.constant(Tensor::zeros([bsz, hd]));
        for t in 0..t_max {
            // Exhausted sequences contribute a dummy row 0 lookup; their
            // update is zeroed below, so the value never matters.
            let ids: Vec<usize> = prefixes
                .iter()
                .map(|p| if t < p.len() { p[t].index() } else { 0 })
                .collect();
            let x = tape.gather_rows(emb, &ids); // [B, d]
            let z = {
                let a = tape.matmul(x, ctx.p(self.wz));
                let b = tape.matmul(h, ctx.p(self.uz));
                let s = tape.add(a, b);
                let s = tape.add(s, ctx.p(self.bz));
                tape.sigmoid(s)
            };
            let r = {
                let a = tape.matmul(x, ctx.p(self.wr));
                let b = tape.matmul(h, ctx.p(self.ur));
                let s = tape.add(a, b);
                let s = tape.add(s, ctx.p(self.br));
                tape.sigmoid(s)
            };
            let hc = {
                let a = tape.matmul(x, ctx.p(self.wh));
                let rh = tape.mul(r, h);
                let b = tape.matmul(rh, ctx.p(self.uh));
                let s = tape.add(a, b);
                let s = tape.add(s, ctx.p(self.bh));
                tape.tanh(s)
            };
            // h ← (1 − z) ⊙ h + z ⊙ hc  ≡  h + z ⊙ (hc − h)
            let diff = tape.sub(hc, h);
            let mut step = tape.mul(z, diff);
            if prefixes.iter().any(|p| t >= p.len()) {
                let mut mask = vec![0.0f32; bsz * hd];
                for (b, p) in prefixes.iter().enumerate() {
                    if t < p.len() {
                        mask[b * hd..(b + 1) * hd].fill(1.0);
                    }
                }
                let mask = tape.constant(Tensor::new([bsz, hd], mask));
                step = tape.mul(step, mask);
            }
            h = tape.add(h, step);
        }
        h
    }
}

impl SequentialRecommender for Gru4Rec {
    fn name(&self) -> &str {
        "gru4rec"
    }

    fn scores(&self, prefix: &[ItemId]) -> Vec<f32> {
        self.scores_via_forward(prefix)
    }

    fn scores_batch(&self, prefixes: &[&[ItemId]]) -> Vec<Vec<f32>> {
        self.scores_batch_via_forward(prefixes)
    }

    fn item_embeddings(&self) -> Option<Vec<Vec<f32>>> {
        let emb = self.store.get(self.emb);
        Some((0..self.num_items).map(|i| emb.row(i).to_vec()).collect())
    }
}

impl NeuralSeqModel for Gru4Rec {
    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn logits(&self, ctx: &Ctx<'_>, prefix: &[ItemId], rng: &mut StdRng) -> Var {
        let logits = self.logits_batch(ctx, &[prefix], rng);
        ctx.tape.reshape(logits, [self.num_items])
    }

    fn logits_batch(&self, ctx: &Ctx<'_>, prefixes: &[&[ItemId]], rng: &mut StdRng) -> Var {
        assert!(!prefixes.is_empty(), "empty batch");
        for p in prefixes {
            assert!(!p.is_empty(), "empty prefix");
        }
        let tape = ctx.tape;
        let h = self.final_hidden_batch(ctx, prefixes); // [B, hidden]
        let o = tape.matmul(h, ctx.p(self.wo));
        let o = tape.dropout(o, self.cfg.dropout, ctx.train, rng);
        let emb_t = tape.transpose(ctx.p(self.emb));
        tape.matmul(o, emb_t) // [B, num_items]
    }

    fn num_items(&self) -> usize {
        self.num_items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delrec_tensor::Tape;

    fn prefix(ids: &[u32]) -> Vec<ItemId> {
        ids.iter().map(|&i| ItemId(i)).collect()
    }

    #[test]
    fn logits_have_item_dimension() {
        let m = Gru4Rec::new(20, Gru4RecConfig::default(), 1);
        let scores = m.scores(&prefix(&[1, 2, 3]));
        assert_eq!(scores.len(), 20);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn scores_depend_on_history_order() {
        let m = Gru4Rec::new(20, Gru4RecConfig::default(), 1);
        let a = m.scores(&prefix(&[1, 2, 3]));
        let b = m.scores(&prefix(&[3, 2, 1]));
        assert_ne!(a, b, "a recurrent model must be order-sensitive");
    }

    #[test]
    fn batched_scores_match_single_scores() {
        let m = Gru4Rec::new(
            20,
            Gru4RecConfig {
                dropout: 0.0,
                ..Default::default()
            },
            1,
        );
        let prefixes: Vec<Vec<ItemId>> = vec![prefix(&[1, 2, 3, 4]), prefix(&[5]), prefix(&[6, 7])];
        let refs: Vec<&[ItemId]> = prefixes.iter().map(|p| p.as_slice()).collect();
        let batched = m.scores_batch(&refs);
        for (b, p) in prefixes.iter().enumerate() {
            let single = m.scores(p);
            for (i, (got, want)) in batched[b].iter().zip(&single).enumerate() {
                assert!((got - want).abs() < 1e-5, "b={b} item={i}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let m = Gru4Rec::new(
            10,
            Gru4RecConfig {
                dropout: 0.0,
                ..Default::default()
            },
            2,
        );
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, m.store(), true);
        let mut rng = StdRng::seed_from_u64(0);
        let logits = m.logits(&ctx, &prefix(&[1, 2]), &mut rng);
        let loss = tape.cross_entropy(logits, &[3]);
        let mut grads = tape.backward(loss);
        let updates = ctx.grads(&mut grads);
        assert_eq!(
            updates.len(),
            m.store().len(),
            "every parameter should receive a gradient"
        );
        assert!(updates.iter().all(|(_, g)| g.is_finite()));
    }
}
