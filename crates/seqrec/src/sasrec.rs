//! SASRec (Kang & McAuley, ICDM 2018): causal self-attention over the
//! interaction sequence; the representation at the last position scores all
//! items. This is the paper's strongest conventional backbone.

use crate::model::{NeuralSeqModel, SequentialRecommender};
use delrec_data::ItemId;
use delrec_tensor::{init, Ctx, ParamId, ParamStore, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// SASRec hyperparameters.
#[derive(Clone, Debug)]
pub struct SasRecConfig {
    /// Item-embedding dimension (paper §V-A3 uses 100; scaled here).
    pub embed_dim: usize,
    /// Maximum sequence length.
    pub seq_len: usize,
    /// Self-attention blocks (paper: 2).
    pub num_blocks: usize,
    /// Attention heads per block.
    pub num_heads: usize,
    /// Dropout rate (paper: 0.5).
    pub dropout: f32,
}

impl Default for SasRecConfig {
    fn default() -> Self {
        SasRecConfig {
            embed_dim: 32,
            seq_len: 9,
            num_blocks: 2,
            num_heads: 2,
            dropout: 0.5,
        }
    }
}

struct Head {
    wq: ParamId,
    wk: ParamId,
    wv: ParamId,
}

struct Block {
    heads: Vec<Head>,
    wo: ParamId,
    ln1_g: ParamId,
    ln1_b: ParamId,
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
    ln2_g: ParamId,
    ln2_b: ParamId,
}

/// The SASRec model.
pub struct SasRec {
    store: ParamStore,
    cfg: SasRecConfig,
    num_items: usize,
    emb: ParamId,
    pos: ParamId,
    blocks: Vec<Block>,
    ln_f_g: ParamId,
    ln_f_b: ParamId,
}

impl SasRec {
    /// Initialize with seeded weights.
    pub fn new(num_items: usize, cfg: SasRecConfig, seed: u64) -> Self {
        assert_eq!(
            cfg.embed_dim % cfg.num_heads,
            0,
            "embed_dim must divide evenly into heads"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let d = cfg.embed_dim;
        let dh = d / cfg.num_heads;
        let mut store = ParamStore::new();
        let emb = store.add("sasrec.emb", init::normal([num_items, d], 0.05, &mut rng));
        let pos = store.add("sasrec.pos", init::normal([cfg.seq_len, d], 0.05, &mut rng));
        let mut blocks = Vec::new();
        for b in 0..cfg.num_blocks {
            let heads = (0..cfg.num_heads)
                .map(|h| Head {
                    wq: store.add(
                        format!("sasrec.b{b}.h{h}.wq"),
                        init::xavier(d, dh, &mut rng),
                    ),
                    wk: store.add(
                        format!("sasrec.b{b}.h{h}.wk"),
                        init::xavier(d, dh, &mut rng),
                    ),
                    wv: store.add(
                        format!("sasrec.b{b}.h{h}.wv"),
                        init::xavier(d, dh, &mut rng),
                    ),
                })
                .collect();
            blocks.push(Block {
                heads,
                wo: store.add(format!("sasrec.b{b}.wo"), init::xavier(d, d, &mut rng)),
                ln1_g: store.add(format!("sasrec.b{b}.ln1.g"), Tensor::full([d], 1.0)),
                ln1_b: store.add(format!("sasrec.b{b}.ln1.b"), Tensor::zeros([d])),
                w1: store.add(format!("sasrec.b{b}.ffn.w1"), init::xavier(d, d, &mut rng)),
                b1: store.add(format!("sasrec.b{b}.ffn.b1"), Tensor::zeros([d])),
                w2: store.add(format!("sasrec.b{b}.ffn.w2"), init::xavier(d, d, &mut rng)),
                b2: store.add(format!("sasrec.b{b}.ffn.b2"), Tensor::zeros([d])),
                ln2_g: store.add(format!("sasrec.b{b}.ln2.g"), Tensor::full([d], 1.0)),
                ln2_b: store.add(format!("sasrec.b{b}.ln2.b"), Tensor::zeros([d])),
            });
        }
        let ln_f_g = store.add("sasrec.lnf.g", Tensor::full([d], 1.0));
        let ln_f_b = store.add("sasrec.lnf.b", Tensor::zeros([d]));
        SasRec {
            store,
            cfg,
            num_items,
            emb,
            pos,
            blocks,
            ln_f_g,
            ln_f_b,
        }
    }

    /// Batched hidden states over right-padded histories: `[B·t_max, d]`
    /// after all blocks, plus each history's trimmed length and `t_max`.
    /// Sequence `b`'s step `t` lives at row `b·t_max + t`; rows past a
    /// sequence's length are garbage kept out of valid rows by the
    /// valid-prefix attention mask.
    fn encode_batch(
        &self,
        ctx: &Ctx<'_>,
        prefixes: &[&[ItemId]],
        rng: &mut StdRng,
    ) -> (Var, Vec<usize>, usize) {
        let tape = ctx.tape;
        let l = self.cfg.seq_len;
        let id_seqs: Vec<Vec<usize>> = prefixes
            .iter()
            .map(|prefix| {
                assert!(!prefix.is_empty(), "empty prefix");
                let take = prefix.len().min(l);
                prefix[prefix.len() - take..]
                    .iter()
                    .map(|i| i.index())
                    .collect()
            })
            .collect();
        let lens: Vec<usize> = id_seqs.iter().map(|s| s.len()).collect();
        let t_max = *lens.iter().max().unwrap();
        let bsz = id_seqs.len();
        let rows = bsz * t_max;
        let d = self.cfg.embed_dim;

        let x = tape.embedding_padded(ctx.p(self.emb), &id_seqs, t_max);
        let x = tape.reshape(x, [rows, d]);
        // Align positions to the *end* of the position table so "most recent"
        // is always the same position regardless of prefix length.
        let pos_seqs: Vec<Vec<usize>> = lens.iter().map(|&t| (l - t..l).collect()).collect();
        let p = tape.embedding_padded(ctx.p(self.pos), &pos_seqs, t_max);
        let p = tape.reshape(p, [rows, d]);
        let mut h = tape.add(x, p);
        h = tape.dropout(h, self.cfg.dropout, ctx.train, rng);

        // Causal + padding mask as a valid-prefix count per query row:
        // position t attends to j ≤ t, clipped to the sequence's length.
        let valid: Vec<usize> = lens
            .iter()
            .flat_map(|&len| (0..t_max).map(move |t| (t + 1).min(len)))
            .collect();
        let dh = d / self.cfg.num_heads;
        let scale = 1.0 / (dh as f32).sqrt();

        for block in &self.blocks {
            let xin = tape.layer_norm(h, ctx.p(block.ln1_g), ctx.p(block.ln1_b));
            // Heads → [dh, B·T] slices concatenated into [d, B·T], then back.
            let mut head_outs_t = Vec::with_capacity(block.heads.len());
            for head in &block.heads {
                let q = tape.matmul(xin, ctx.p(head.wq));
                let k = tape.matmul(xin, ctx.p(head.wk));
                let v = tape.matmul(xin, ctx.p(head.wv));
                let q3 = tape.reshape(q, [bsz, t_max, dh]);
                let k3 = tape.reshape(k, [bsz, t_max, dh]);
                let v3 = tape.reshape(v, [bsz, t_max, dh]);
                let kt = tape.transpose(k3);
                let scores = tape.matmul(q3, kt); // [B, T, T]
                let scores = tape.scale(scores, scale);
                let attn = tape.softmax_masked(scores, &valid);
                let attn = tape.dropout(attn, self.cfg.dropout, ctx.train, rng);
                let out = tape.matmul(attn, v3); // [B, T, dh]
                let out = tape.reshape(out, [rows, dh]);
                head_outs_t.push(tape.transpose(out)); // [dh, B·T]
            }
            let concat_t = tape.concat_rows(&head_outs_t); // [d, B·T]
            let attn_out = tape.transpose(concat_t); // [B·T, d]
            let attn_out = tape.matmul(attn_out, ctx.p(block.wo));
            let attn_out = tape.dropout(attn_out, self.cfg.dropout, ctx.train, rng);
            h = tape.add(h, attn_out);

            let xin2 = tape.layer_norm(h, ctx.p(block.ln2_g), ctx.p(block.ln2_b));
            let f = tape.matmul(xin2, ctx.p(block.w1));
            let f = tape.add(f, ctx.p(block.b1));
            let f = tape.relu(f);
            let f = tape.matmul(f, ctx.p(block.w2));
            let f = tape.add(f, ctx.p(block.b2));
            let f = tape.dropout(f, self.cfg.dropout, ctx.train, rng);
            h = tape.add(h, f);
        }
        let h = tape.layer_norm(h, ctx.p(self.ln_f_g), ctx.p(self.ln_f_b));
        (h, lens, t_max)
    }
}

impl SequentialRecommender for SasRec {
    fn name(&self) -> &str {
        "sasrec"
    }

    fn scores(&self, prefix: &[ItemId]) -> Vec<f32> {
        self.scores_via_forward(prefix)
    }

    fn scores_batch(&self, prefixes: &[&[ItemId]]) -> Vec<Vec<f32>> {
        self.scores_batch_via_forward(prefixes)
    }

    fn item_embeddings(&self) -> Option<Vec<Vec<f32>>> {
        let emb = self.store.get(self.emb);
        Some((0..self.num_items).map(|i| emb.row(i).to_vec()).collect())
    }
}

impl NeuralSeqModel for SasRec {
    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn logits(&self, ctx: &Ctx<'_>, prefix: &[ItemId], rng: &mut StdRng) -> Var {
        let logits = self.logits_batch(ctx, &[prefix], rng);
        ctx.tape.reshape(logits, [self.num_items])
    }

    fn logits_batch(&self, ctx: &Ctx<'_>, prefixes: &[&[ItemId]], rng: &mut StdRng) -> Var {
        assert!(!prefixes.is_empty(), "empty batch");
        let tape = ctx.tape;
        let (h, lens, t_max) = self.encode_batch(ctx, prefixes, rng);
        // Each sequence's representation is its *last valid* row.
        let last_rows: Vec<usize> = lens
            .iter()
            .enumerate()
            .map(|(b, &t)| b * t_max + t - 1)
            .collect();
        let last = tape.gather_rows(h, &last_rows); // [B, d]
        let emb_t = tape.transpose(ctx.p(self.emb));
        tape.matmul(last, emb_t) // [B, num_items]
    }

    fn num_items(&self) -> usize {
        self.num_items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delrec_tensor::Tape;

    fn prefix(ids: &[u32]) -> Vec<ItemId> {
        ids.iter().map(|&i| ItemId(i)).collect()
    }

    fn eval_cfg() -> SasRecConfig {
        SasRecConfig {
            dropout: 0.0,
            ..Default::default()
        }
    }

    #[test]
    fn scores_cover_catalog() {
        let m = SasRec::new(30, eval_cfg(), 1);
        let s = m.scores(&prefix(&[1, 2, 3]));
        assert_eq!(s.len(), 30);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn attention_is_order_sensitive() {
        let m = SasRec::new(30, eval_cfg(), 1);
        assert_ne!(m.scores(&prefix(&[1, 2, 3])), m.scores(&prefix(&[3, 2, 1])));
    }

    #[test]
    fn causality_future_items_do_not_change_shared_prefix_encoding() {
        // The *last-position* logits differ, but an identical prefix of the
        // input must give identical scores when it is the whole input:
        // extending the history changes predictions (sanity direction).
        let m = SasRec::new(30, eval_cfg(), 1);
        assert_ne!(m.scores(&prefix(&[1, 2])), m.scores(&prefix(&[1, 2, 5])));
    }

    #[test]
    fn long_histories_are_truncated_to_seq_len() {
        let m = SasRec::new(40, eval_cfg(), 1);
        let long: Vec<u32> = (0..20).collect();
        let tail: Vec<u32> = long[20 - 9..].to_vec();
        assert_eq!(m.scores(&prefix(&long)), m.scores(&prefix(&tail)));
    }

    #[test]
    fn batched_scores_match_single_scores() {
        let m = SasRec::new(25, eval_cfg(), 3);
        let prefixes: Vec<Vec<ItemId>> = vec![
            prefix(&[1, 2, 3, 4, 5, 6]),
            prefix(&[9]),
            prefix(&[7, 8, 7]),
            prefix(&(0..20).collect::<Vec<u32>>()), // truncated to seq_len
        ];
        let refs: Vec<&[ItemId]> = prefixes.iter().map(|p| p.as_slice()).collect();
        let batched = m.scores_batch(&refs);
        for (b, p) in prefixes.iter().enumerate() {
            let single = m.scores(p);
            for (i, (got, want)) in batched[b].iter().zip(&single).enumerate() {
                assert!((got - want).abs() < 1e-5, "b={b} item={i}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let m = SasRec::new(15, eval_cfg(), 2);
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, m.store(), true);
        let mut rng = StdRng::seed_from_u64(0);
        let logits = m.logits(&ctx, &prefix(&[1, 2, 3, 4]), &mut rng);
        let loss = tape.cross_entropy(logits, &[5]);
        let mut grads = tape.backward(loss);
        let updates = ctx.grads(&mut grads);
        assert_eq!(updates.len(), m.store().len());
        assert!(updates.iter().all(|(_, g)| g.is_finite()));
    }
}
