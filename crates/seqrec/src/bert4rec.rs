//! BERT4Rec (Sun et al., CIKM 2019): bidirectional self-attention with a
//! mask token. Used here both as a standalone conventional model and as the
//! substrate of the paper's LLM2BERT4Rec baseline, whose item embeddings are
//! initialized from (PCA-projected) language-model title embeddings.

use crate::model::{NeuralSeqModel, SequentialRecommender};
use delrec_data::ItemId;
use delrec_tensor::{init, Ctx, ParamId, ParamStore, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// BERT4Rec hyperparameters.
#[derive(Clone, Debug)]
pub struct Bert4RecConfig {
    /// Item-embedding dimension.
    pub embed_dim: usize,
    /// Maximum sequence length *including* the trailing mask slot.
    pub seq_len: usize,
    /// Transformer blocks.
    pub num_blocks: usize,
    /// Attention heads per block.
    pub num_heads: usize,
    /// Dropout rate.
    pub dropout: f32,
}

impl Default for Bert4RecConfig {
    fn default() -> Self {
        Bert4RecConfig {
            embed_dim: 32,
            seq_len: 10,
            num_blocks: 2,
            num_heads: 2,
            dropout: 0.2,
        }
    }
}

struct Block {
    wq: Vec<ParamId>,
    wk: Vec<ParamId>,
    wv: Vec<ParamId>,
    wo: ParamId,
    ln1_g: ParamId,
    ln1_b: ParamId,
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
    ln2_g: ParamId,
    ln2_b: ParamId,
}

/// The BERT4Rec model: next-item prediction as mask filling.
pub struct Bert4Rec {
    store: ParamStore,
    cfg: Bert4RecConfig,
    num_items: usize,
    emb: ParamId,
    mask_emb: ParamId,
    pos: ParamId,
    blocks: Vec<Block>,
    ln_f_g: ParamId,
    ln_f_b: ParamId,
}

impl Bert4Rec {
    /// Initialize with seeded weights.
    pub fn new(num_items: usize, cfg: Bert4RecConfig, seed: u64) -> Self {
        assert_eq!(cfg.embed_dim % cfg.num_heads, 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let d = cfg.embed_dim;
        let dh = d / cfg.num_heads;
        let mut store = ParamStore::new();
        let emb = store.add("bert4rec.emb", init::normal([num_items, d], 0.05, &mut rng));
        let mask_emb = store.add("bert4rec.mask", init::normal([1, d], 0.05, &mut rng));
        let pos = store.add(
            "bert4rec.pos",
            init::normal([cfg.seq_len, d], 0.05, &mut rng),
        );
        let mut blocks = Vec::new();
        for b in 0..cfg.num_blocks {
            let mut wq = Vec::new();
            let mut wk = Vec::new();
            let mut wv = Vec::new();
            for h in 0..cfg.num_heads {
                wq.push(store.add(
                    format!("bert4rec.b{b}.h{h}.wq"),
                    init::xavier(d, dh, &mut rng),
                ));
                wk.push(store.add(
                    format!("bert4rec.b{b}.h{h}.wk"),
                    init::xavier(d, dh, &mut rng),
                ));
                wv.push(store.add(
                    format!("bert4rec.b{b}.h{h}.wv"),
                    init::xavier(d, dh, &mut rng),
                ));
            }
            blocks.push(Block {
                wq,
                wk,
                wv,
                wo: store.add(format!("bert4rec.b{b}.wo"), init::xavier(d, d, &mut rng)),
                ln1_g: store.add(format!("bert4rec.b{b}.ln1.g"), Tensor::full([d], 1.0)),
                ln1_b: store.add(format!("bert4rec.b{b}.ln1.b"), Tensor::zeros([d])),
                w1: store.add(
                    format!("bert4rec.b{b}.ffn.w1"),
                    init::xavier(d, d, &mut rng),
                ),
                b1: store.add(format!("bert4rec.b{b}.ffn.b1"), Tensor::zeros([d])),
                w2: store.add(
                    format!("bert4rec.b{b}.ffn.w2"),
                    init::xavier(d, d, &mut rng),
                ),
                b2: store.add(format!("bert4rec.b{b}.ffn.b2"), Tensor::zeros([d])),
                ln2_g: store.add(format!("bert4rec.b{b}.ln2.g"), Tensor::full([d], 1.0)),
                ln2_b: store.add(format!("bert4rec.b{b}.ln2.b"), Tensor::zeros([d])),
            });
        }
        let ln_f_g = store.add("bert4rec.lnf.g", Tensor::full([d], 1.0));
        let ln_f_b = store.add("bert4rec.lnf.b", Tensor::zeros([d]));
        Bert4Rec {
            store,
            cfg,
            num_items,
            emb,
            mask_emb,
            pos,
            blocks,
            ln_f_g,
            ln_f_b,
        }
    }

    /// Overwrite the item-embedding table (LLM2BERT4Rec initialization).
    /// The matrix must be `[num_items, embed_dim]`.
    pub fn set_item_embeddings(&mut self, matrix: Tensor) {
        assert_eq!(
            matrix.shape(),
            self.store.shape_of(self.emb),
            "embedding init shape mismatch"
        );
        *self.store.get_mut(self.emb) = matrix;
    }
}

impl SequentialRecommender for Bert4Rec {
    fn name(&self) -> &str {
        "bert4rec"
    }

    fn scores(&self, prefix: &[ItemId]) -> Vec<f32> {
        self.scores_via_forward(prefix)
    }

    fn scores_batch(&self, prefixes: &[&[ItemId]]) -> Vec<Vec<f32>> {
        self.scores_batch_via_forward(prefixes)
    }
}

impl NeuralSeqModel for Bert4Rec {
    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn logits(&self, ctx: &Ctx<'_>, prefix: &[ItemId], rng: &mut StdRng) -> Var {
        let logits = self.logits_batch(ctx, &[prefix], rng);
        ctx.tape.reshape(logits, [self.num_items])
    }

    fn logits_batch(&self, ctx: &Ctx<'_>, prefixes: &[&[ItemId]], rng: &mut StdRng) -> Var {
        assert!(!prefixes.is_empty(), "empty batch");
        let tape = ctx.tape;
        let l = self.cfg.seq_len;
        let id_seqs: Vec<Vec<usize>> = prefixes
            .iter()
            .map(|prefix| {
                assert!(!prefix.is_empty(), "empty prefix");
                let take = prefix.len().min(l - 1);
                prefix[prefix.len() - take..]
                    .iter()
                    .map(|i| i.index())
                    .collect()
            })
            .collect();
        // Per-sequence length *including* the trailing mask slot.
        let lens: Vec<usize> = id_seqs.iter().map(|s| s.len() + 1).collect();
        let t_max = *lens.iter().max().unwrap();
        let bsz = id_seqs.len();
        let rows = bsz * t_max;
        let d = self.cfg.embed_dim;

        // History embeddings leave each sequence's mask slot zero; the mask
        // embedding is scattered into exactly that row.
        let hist = tape.embedding_padded(ctx.p(self.emb), &id_seqs, t_max);
        let hist = tape.reshape(hist, [rows, d]);
        let mask_slots: Vec<(usize, usize)> = lens
            .iter()
            .enumerate()
            .map(|(b, &t)| (0, b * t_max + t - 1))
            .collect();
        let mask = tape.scatter_rows(ctx.p(self.mask_emb), &mask_slots, rows);
        let x = tape.add(hist, mask);
        let pos_seqs: Vec<Vec<usize>> = lens.iter().map(|&t| (l - t..l).collect()).collect();
        let p = tape.embedding_padded(ctx.p(self.pos), &pos_seqs, t_max);
        let p = tape.reshape(p, [rows, d]);
        let mut h = tape.add(x, p);
        h = tape.dropout(h, self.cfg.dropout, ctx.train, rng);

        // Bidirectional within each sequence's valid prefix; padded key
        // positions get zero attention weight.
        let valid: Vec<usize> = lens
            .iter()
            .flat_map(|&len| (0..t_max).map(move |_| len))
            .collect();
        let dh = d / self.cfg.num_heads;
        let scale = 1.0 / (dh as f32).sqrt();
        for block in &self.blocks {
            let xin = tape.layer_norm(h, ctx.p(block.ln1_g), ctx.p(block.ln1_b));
            let mut outs_t = Vec::new();
            for hd in 0..self.cfg.num_heads {
                let q = tape.matmul(xin, ctx.p(block.wq[hd]));
                let k = tape.matmul(xin, ctx.p(block.wk[hd]));
                let v = tape.matmul(xin, ctx.p(block.wv[hd]));
                let q3 = tape.reshape(q, [bsz, t_max, dh]);
                let k3 = tape.reshape(k, [bsz, t_max, dh]);
                let v3 = tape.reshape(v, [bsz, t_max, dh]);
                let kt = tape.transpose(k3);
                let scores = tape.matmul(q3, kt);
                let scores = tape.scale(scores, scale);
                let attn = tape.softmax_masked(scores, &valid);
                let attn = tape.dropout(attn, self.cfg.dropout, ctx.train, rng);
                let out = tape.matmul(attn, v3);
                let out = tape.reshape(out, [rows, dh]);
                outs_t.push(tape.transpose(out));
            }
            let concat_t = tape.concat_rows(&outs_t);
            let attn_out = tape.transpose(concat_t);
            let attn_out = tape.matmul(attn_out, ctx.p(block.wo));
            let attn_out = tape.dropout(attn_out, self.cfg.dropout, ctx.train, rng);
            h = tape.add(h, attn_out);

            let xin2 = tape.layer_norm(h, ctx.p(block.ln2_g), ctx.p(block.ln2_b));
            let f = tape.matmul(xin2, ctx.p(block.w1));
            let f = tape.add(f, ctx.p(block.b1));
            let f = tape.gelu(f);
            let f = tape.matmul(f, ctx.p(block.w2));
            let f = tape.add(f, ctx.p(block.b2));
            let f = tape.dropout(f, self.cfg.dropout, ctx.train, rng);
            h = tape.add(h, f);
        }
        let h = tape.layer_norm(h, ctx.p(self.ln_f_g), ctx.p(self.ln_f_b));
        let mask_rows: Vec<usize> = lens
            .iter()
            .enumerate()
            .map(|(b, &t)| b * t_max + t - 1)
            .collect();
        let at_mask = tape.gather_rows(h, &mask_rows); // [B, d]
        let emb_t = tape.transpose(ctx.p(self.emb));
        tape.matmul(at_mask, emb_t) // [B, num_items]
    }

    fn num_items(&self) -> usize {
        self.num_items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prefix(ids: &[u32]) -> Vec<ItemId> {
        ids.iter().map(|&i| ItemId(i)).collect()
    }

    fn eval_cfg() -> Bert4RecConfig {
        Bert4RecConfig {
            dropout: 0.0,
            ..Default::default()
        }
    }

    #[test]
    fn scores_cover_catalog() {
        let m = Bert4Rec::new(20, eval_cfg(), 1);
        let s = m.scores(&prefix(&[0, 5, 7]));
        assert_eq!(s.len(), 20);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn embedding_injection_changes_predictions() {
        let mut m = Bert4Rec::new(20, eval_cfg(), 1);
        let before = m.scores(&prefix(&[0, 5, 7]));
        let mut rng = StdRng::seed_from_u64(99);
        m.set_item_embeddings(init::normal([20, 32], 0.05, &mut rng));
        let after = m.scores(&prefix(&[0, 5, 7]));
        assert_ne!(before, after);
    }

    #[test]
    fn batched_scores_match_single_scores() {
        let m = Bert4Rec::new(20, eval_cfg(), 1);
        let prefixes: Vec<Vec<ItemId>> = vec![
            prefix(&[0, 5, 7, 2]),
            prefix(&[3]),
            prefix(&(0..15).collect::<Vec<u32>>()), // truncated to seq_len − 1
        ];
        let refs: Vec<&[ItemId]> = prefixes.iter().map(|p| p.as_slice()).collect();
        let batched = m.scores_batch(&refs);
        for (b, p) in prefixes.iter().enumerate() {
            let single = m.scores(p);
            for (i, (got, want)) in batched[b].iter().zip(&single).enumerate() {
                assert!((got - want).abs() < 1e-5, "b={b} item={i}: {got} vs {want}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "embedding init shape mismatch")]
    fn wrong_init_shape_panics() {
        let mut m = Bert4Rec::new(20, eval_cfg(), 1);
        m.set_item_embeddings(Tensor::zeros([20, 8]));
    }
}
