//! FPMC (Rendle et al., WWW 2010): Factorizing Personalized Markov Chains —
//! the classical pre-deep-learning sequential recommender the paper's
//! related-work section starts from (§II-A). Included so the Markov-chain
//! model family is represented alongside the RNN/CNN/Transformer teachers.
//!
//! Simplified to the sequence-only setting used everywhere in this
//! reproduction (no user factors, as users are represented by their
//! histories): `score(next | last) = ⟨V_last, W_next⟩ + b_next`, a low-rank
//! factorization of the item-to-item transition matrix.

use crate::model::{NeuralSeqModel, SequentialRecommender};
use delrec_data::ItemId;
use delrec_tensor::{init, Ctx, ParamId, ParamStore, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// FPMC hyperparameters.
#[derive(Clone, Debug)]
pub struct FpmcConfig {
    /// Rank of the transition factorization.
    pub rank: usize,
    /// How many recent items vote (classical FPMC uses the whole last
    /// basket; with unit baskets a short recency window works better).
    pub window: usize,
}

impl Default for FpmcConfig {
    fn default() -> Self {
        FpmcConfig {
            rank: 24,
            window: 2,
        }
    }
}

/// The FPMC model.
pub struct Fpmc {
    store: ParamStore,
    cfg: FpmcConfig,
    num_items: usize,
    /// "From" factors `[num_items, rank]`.
    src: ParamId,
    /// "To" factors `[num_items, rank]`.
    dst: ParamId,
    /// Target-item bias `[num_items]`.
    bias: ParamId,
}

impl Fpmc {
    /// Initialize with seeded weights.
    pub fn new(num_items: usize, cfg: FpmcConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let src = store.add(
            "fpmc.src",
            init::normal([num_items, cfg.rank], 0.05, &mut rng),
        );
        let dst = store.add(
            "fpmc.dst",
            init::normal([num_items, cfg.rank], 0.05, &mut rng),
        );
        let bias = store.add("fpmc.bias", Tensor::zeros([num_items]));
        Fpmc {
            store,
            cfg,
            num_items,
            src,
            dst,
            bias,
        }
    }
}

impl SequentialRecommender for Fpmc {
    fn name(&self) -> &str {
        "fpmc"
    }

    fn scores(&self, prefix: &[ItemId]) -> Vec<f32> {
        self.scores_via_forward(prefix)
    }

    fn item_embeddings(&self) -> Option<Vec<Vec<f32>>> {
        let emb = self.store.get(self.dst);
        Some((0..self.num_items).map(|i| emb.row(i).to_vec()).collect())
    }
}

impl NeuralSeqModel for Fpmc {
    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn logits(&self, ctx: &Ctx<'_>, prefix: &[ItemId], _rng: &mut StdRng) -> Var {
        assert!(!prefix.is_empty(), "empty prefix");
        let tape = ctx.tape;
        let take = prefix.len().min(self.cfg.window);
        let ids: Vec<usize> = prefix[prefix.len() - take..]
            .iter()
            .map(|i| i.index())
            .collect();
        // Mean of the window's "from" factors → transition query.
        let rows = tape.gather_rows(ctx.p(self.src), &ids);
        let query = tape.mean_rows(rows); // [rank]
        let query = tape.reshape(query, [1, self.cfg.rank]);
        let dst_t = tape.transpose(ctx.p(self.dst)); // [rank, V]
        let scores = tape.matmul(query, dst_t); // [1, V]
        let scores = tape.reshape(scores, [self.num_items]);
        tape.add(scores, ctx.p(self.bias))
    }

    fn num_items(&self) -> usize {
        self.num_items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{train, TrainConfig};
    use delrec_data::synthetic::{DatasetProfile, SyntheticConfig};
    use delrec_data::Split;

    fn prefix(ids: &[u32]) -> Vec<ItemId> {
        ids.iter().map(|&i| ItemId(i)).collect()
    }

    #[test]
    fn scores_cover_catalog() {
        let m = Fpmc::new(20, FpmcConfig::default(), 1);
        let s = m.scores(&prefix(&[1, 2, 3]));
        assert_eq!(s.len(), 20);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn only_the_window_matters() {
        let m = Fpmc::new(
            20,
            FpmcConfig {
                window: 2,
                ..Default::default()
            },
            1,
        );
        // Same last-2 window, different earlier history → identical scores.
        assert_eq!(
            m.scores(&prefix(&[9, 4, 5])),
            m.scores(&prefix(&[7, 8, 4, 5]))
        );
        // A different window produces different scores.
        assert_ne!(m.scores(&prefix(&[4, 5])), m.scores(&prefix(&[6, 5])));
    }

    #[test]
    fn training_learns_transitions() {
        let ds = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
            .scaled(0.08)
            .generate(4);
        let mut m = Fpmc::new(ds.num_items(), FpmcConfig::default(), 2);
        let losses = train(
            &mut m,
            ds.examples(Split::Train),
            &TrainConfig {
                max_examples: Some(400),
                ..TrainConfig::adam(3, 5e-3)
            },
        );
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "FPMC loss should fall: {losses:?}"
        );
    }
}
