//! Shared training loop for all neural sequential recommenders.

use crate::model::NeuralSeqModel;
use delrec_data::Example;
use delrec_tensor::optim::{clip_grad_norm, Adagrad, Adam, Lion, Optimizer, Sgd};
use delrec_tensor::{Ctx, Tape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which optimizer the trainer instantiates (paper §V-A3: Adam for
/// SASRec/Caser, Adagrad for GRU4Rec).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OptimizerKind {
    /// Adam with decoupled weight decay.
    Adam {
        /// Decoupled weight-decay coefficient.
        weight_decay: f32,
    },
    /// Adagrad.
    Adagrad,
    /// Lion.
    Lion {
        /// Decoupled weight-decay coefficient.
        weight_decay: f32,
    },
    /// Plain SGD.
    Sgd,
}

/// Training configuration.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Passes over the (possibly capped) training set.
    pub epochs: usize,
    /// Examples per gradient step.
    pub batch_size: usize,
    /// Cap on training examples per epoch (None = all).
    pub max_examples: Option<usize>,
    /// Learning rate.
    pub lr: f32,
    /// Optimizer family.
    pub optimizer: OptimizerKind,
    /// Global gradient-norm clip.
    pub clip: f32,
    /// Shuffling / dropout seed.
    pub seed: u64,
}

impl TrainConfig {
    /// Paper-style Adam recipe (SASRec, Caser): lr 1e-3, batch 128 scaled
    /// down to CPU-friendly sizes.
    pub fn adam(epochs: usize, lr: f32) -> Self {
        TrainConfig {
            epochs,
            batch_size: 16,
            max_examples: None,
            lr,
            optimizer: OptimizerKind::Adam { weight_decay: 0.0 },
            clip: 5.0,
            seed: 17,
        }
    }

    /// Paper-style Adagrad recipe (GRU4Rec): lr 0.01.
    pub fn adagrad(epochs: usize, lr: f32) -> Self {
        TrainConfig {
            optimizer: OptimizerKind::Adagrad,
            ..Self::adam(epochs, lr)
        }
    }
}

fn make_optimizer(cfg: &TrainConfig) -> Box<dyn Optimizer> {
    match cfg.optimizer {
        OptimizerKind::Adam { weight_decay } => Box::new(Adam::with_decay(cfg.lr, weight_decay)),
        OptimizerKind::Adagrad => Box::new(Adagrad::new(cfg.lr)),
        OptimizerKind::Lion { weight_decay } => Box::new(Lion::new(cfg.lr, weight_decay)),
        OptimizerKind::Sgd => Box::new(Sgd::new(cfg.lr)),
    }
}

/// Train `model` with next-item cross-entropy over the full catalog.
/// Returns the mean loss per epoch.
pub fn train<M: NeuralSeqModel>(
    model: &mut M,
    examples: &[Example],
    cfg: &TrainConfig,
) -> Vec<f32> {
    assert!(!examples.is_empty(), "no training examples");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = make_optimizer(cfg);
    let mut order: Vec<usize> = (0..examples.len()).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for _epoch in 0..cfg.epochs {
        // Fisher–Yates shuffle.
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let take = cfg.max_examples.unwrap_or(order.len()).min(order.len());
        let mut total = 0.0f32;
        let mut batches = 0usize;
        for chunk in order[..take].chunks(cfg.batch_size) {
            let (loss_value, mut updates) = {
                let tape = Tape::new();
                let ctx = Ctx::new(&tape, model.store(), true);
                let prefixes: Vec<&[delrec_data::ItemId]> = chunk
                    .iter()
                    .map(|&ei| examples[ei].prefix.as_slice())
                    .collect();
                let targets: Vec<usize> = chunk
                    .iter()
                    .map(|&ei| examples[ei].target.index())
                    .collect();
                // One padded forward for the whole minibatch; the loss is a
                // single cross-entropy over its [B, num_items] logits.
                let logits = model.logits_batch(&ctx, &prefixes, &mut rng);
                let loss = tape.cross_entropy(logits, &targets);
                let loss_value = tape.get(loss).item();
                let mut grads = tape.backward(loss);
                (loss_value, ctx.grads(&mut grads))
            };
            clip_grad_norm(&mut updates, cfg.clip);
            opt.apply(model.store_mut(), &updates);
            total += loss_value;
            batches += 1;
        }
        epoch_losses.push(total / batches.max(1) as f32);
    }
    epoch_losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gru4rec::{Gru4Rec, Gru4RecConfig};
    use crate::model::SequentialRecommender;
    use crate::sasrec::{SasRec, SasRecConfig};
    use delrec_data::synthetic::{DatasetProfile, SyntheticConfig};
    use delrec_data::Split;

    fn tiny_dataset() -> delrec_data::Dataset {
        SyntheticConfig::profile(DatasetProfile::MovieLens100K)
            .scaled(0.08)
            .generate(3)
    }

    #[test]
    fn sasrec_loss_decreases() {
        let ds = tiny_dataset();
        let mut model = SasRec::new(
            ds.num_items(),
            SasRecConfig {
                dropout: 0.1,
                ..Default::default()
            },
            7,
        );
        let cfg = TrainConfig {
            max_examples: Some(300),
            ..TrainConfig::adam(3, 1e-3)
        };
        let losses = train(&mut model, ds.examples(Split::Train), &cfg);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "loss should decrease: {losses:?}"
        );
    }

    #[test]
    fn trained_model_beats_untrained_on_hit_rate() {
        let ds = tiny_dataset();
        let untrained = SasRec::new(
            ds.num_items(),
            SasRecConfig {
                dropout: 0.1,
                ..Default::default()
            },
            7,
        );
        let mut trained = SasRec::new(
            ds.num_items(),
            SasRecConfig {
                dropout: 0.1,
                ..Default::default()
            },
            7,
        );
        let cfg = TrainConfig {
            max_examples: Some(400),
            ..TrainConfig::adam(4, 1e-3)
        };
        train(&mut trained, ds.examples(Split::Train), &cfg);
        let hit10 = |m: &SasRec| {
            let test = ds.examples(Split::Test);
            let hits = test
                .iter()
                .take(60)
                .filter(|e| m.recommend(&e.prefix, 10).contains(&e.target))
                .count();
            hits as f32 / test.len().min(60) as f32
        };
        let (h_trained, h_untrained) = (hit10(&trained), hit10(&untrained));
        assert!(
            h_trained > h_untrained,
            "training should help: trained {h_trained} vs untrained {h_untrained}"
        );
    }

    #[test]
    fn gru4rec_trains_without_nans() {
        let ds = tiny_dataset();
        let mut model = Gru4Rec::new(ds.num_items(), Gru4RecConfig::default(), 7);
        let cfg = TrainConfig {
            max_examples: Some(150),
            ..TrainConfig::adagrad(2, 0.01)
        };
        let losses = train(&mut model, ds.examples(Split::Train), &cfg);
        assert!(losses.iter().all(|l| l.is_finite()), "losses: {losses:?}");
    }
}
