//! Deterministic top-k pins: equal scores order by ascending `ItemId`, and
//! the whole retrieval path — encode → full-catalog scan → top-k — is
//! bitwise identical at every thread count.
//!
//! Thread counts are pinned with `with_pool` (the same mechanism
//! `DELREC_THREADS` feeds) so one process covers {1, 2, 4, 8} lanes without
//! relying on the environment.

use delrec_data::ItemId;
use delrec_par::{with_pool, ThreadPool};
use delrec_retrieval::{top_k, IndexFormat, ItemIndex, Retriever};
use proptest::prelude::*;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect()
}

/// `(id, score-bits)` pairs — the bitwise identity every gate compares.
fn ranked_bits(ranked: &[(ItemId, f32)]) -> Vec<(u32, u32)> {
    ranked.iter().map(|&(id, s)| (id.0, s.to_bits())).collect()
}

/// Reference selection: full sort under the documented total order.
fn brute_force(scores: &[f32], k: usize) -> Vec<(ItemId, f32)> {
    let mut all: Vec<(ItemId, f32)> = scores
        .iter()
        .enumerate()
        .map(|(j, &s)| (ItemId(j as u32), s))
        .collect();
    all.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0 .0.cmp(&b.0 .0)));
    all.truncate(k);
    all
}

#[test]
fn equal_scores_order_by_item_id_unit() {
    // A plateau wider than k: the kept subset must be the smallest ids.
    let mut scores = vec![0.25f32; 64];
    scores[40] = 0.9;
    let got = top_k(&scores, 5);
    assert_eq!(got[0], (ItemId(40), 0.9));
    for (rank, &(id, s)) in got[1..].iter().enumerate() {
        assert_eq!(id, ItemId(rank as u32), "plateau must keep smallest ids");
        assert_eq!(s, 0.25);
    }
}

#[test]
fn full_retrieval_is_bitwise_identical_across_thread_counts() {
    // Catalog big enough that the scan's parallel driver engages
    // (macs = dim · n_items ≥ 128k) and q8 panels get several stripes.
    let (n_items, dim) = (6144, 32);
    let emb = fill(0xC0FFEE, n_items * dim);
    let histories: Vec<Vec<ItemId>> = (0..8)
        .map(|u| {
            (0..10)
                .map(|i| ItemId((u * 613 + i * 97) % n_items as u32))
                .collect()
        })
        .collect();
    for format in [IndexFormat::F32, IndexFormat::Q8] {
        let r = Retriever::build(emb.clone(), dim, 7, format);
        let serial = ThreadPool::new(1);
        let want: Vec<_> = with_pool(&serial, || {
            histories
                .iter()
                .map(|h| ranked_bits(&r.retrieve(h, 100)))
                .collect()
        });
        for &t in &THREADS[1..] {
            let pool = ThreadPool::new(t);
            let got: Vec<_> = with_pool(&pool, || {
                histories
                    .iter()
                    .map(|h| ranked_bits(&r.retrieve(h, 100)))
                    .collect()
            });
            assert_eq!(want, got, "{format:?} retrieval diverged at {t} threads");
        }
    }
}

#[test]
fn scan_scores_match_serial_bitwise_at_every_thread_count() {
    let (n_items, dim) = (4096, 48);
    let idx = ItemIndex::build(fill(42, n_items * dim), dim, 0, IndexFormat::F32);
    let query = {
        let mut q = fill(77, dim);
        delrec_retrieval::l2_normalize_rows(&mut q, dim);
        q
    };
    let serial = ThreadPool::new(1);
    let want: Vec<u32> = with_pool(&serial, || {
        idx.scan(&query).iter().map(|s| s.to_bits()).collect()
    });
    for &t in &THREADS[1..] {
        let pool = ThreadPool::new(t);
        let got: Vec<u32> = with_pool(&pool, || {
            idx.scan(&query).iter().map(|s| s.to_bits()).collect()
        });
        assert_eq!(want, got, "scan bits diverged at {t} threads");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `top_k` equals the full-sort reference for arbitrary score rows with
    /// forced ties (scores snapped to a 16-level grid so plateaus are the
    /// common case, not a fluke).
    #[test]
    fn top_k_matches_brute_force_with_ties(
        n in 1usize..400,
        k in 0usize..50,
        seed in 0u64..1 << 20,
    ) {
        let scores: Vec<f32> = fill(seed, n)
            .into_iter()
            .map(|v| (v * 8.0).round() / 8.0)
            .collect();
        let got = top_k(&scores, k);
        let want = brute_force(&scores, k.min(n));
        prop_assert_eq!(ranked_bits(&got), ranked_bits(&want));
    }

    /// The selected list is invariant under thread count for random
    /// embedding matrices — the proptest twin of the fixed-seed gate above,
    /// on smaller shapes for case throughput.
    #[test]
    fn retrieval_thread_invariance(
        n_items in 16usize..300,
        dim in 1usize..24,
        seed in 0u64..1 << 20,
    ) {
        let emb = fill(seed, n_items * dim);
        let r = Retriever::build(emb, dim, 0, IndexFormat::F32);
        let history = vec![ItemId(0), ItemId((n_items / 2) as u32)];
        let serial = ThreadPool::new(1);
        let want = with_pool(&serial, || ranked_bits(&r.retrieve(&history, 20)));
        for &t in &THREADS[1..] {
            let pool = ThreadPool::new(t);
            let got = with_pool(&pool, || ranked_bits(&r.retrieve(&history, 20)));
            prop_assert_eq!(&want, &got, "diverged at {} threads", t);
        }
    }
}
