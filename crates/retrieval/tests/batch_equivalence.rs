//! The batched-retrieval pin: `retrieve_batch` / `retrieve_batch_each` are
//! bitwise identical to looping the sequential single-query `retrieve` — at
//! every thread count, batch size, retrieval depth (including deeper than
//! the catalog), index format, and over ragged batches including empty
//! histories. Batching is a bandwidth knob, never a numerics knob.

use delrec_data::ItemId;
use delrec_par::{with_pool, ThreadPool};
use delrec_retrieval::{IndexFormat, ItemIndex, Retriever};
use proptest::prelude::*;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect()
}

fn ranked_bits(ranked: &[(ItemId, f32)]) -> Vec<(u32, u32)> {
    ranked.iter().map(|&(id, s)| (id.0, s.to_bits())).collect()
}

/// Ragged histories, deterministically derived from a seed: lengths vary 0
/// (cold start) through 12, ids include out-of-catalog ones (skipped by the
/// encoder).
fn ragged_histories(seed: u64, b: usize, n_items: usize) -> Vec<Vec<ItemId>> {
    (0..b)
        .map(|u| {
            let len = (u + seed as usize) % 13;
            (0..len)
                .map(|i| ItemId(((seed as usize + u * 613 + i * 97) % (n_items + 3)) as u32))
                .collect()
        })
        .collect()
}

#[test]
fn batched_scan_matches_sequential_bitwise_across_threads_and_formats() {
    // Catalog big enough that the scan's parallel driver engages.
    let (n_items, dim) = (4096, 32);
    let emb = fill(0xBA7C4, n_items * dim);
    for format in [IndexFormat::F32, IndexFormat::Q8] {
        let idx = ItemIndex::build(emb.clone(), dim, 0, format);
        for b in [1usize, 3, 32] {
            let queries = fill(b as u64 + 9, b * dim);
            for &t in &THREADS {
                let pool = ThreadPool::new(t);
                with_pool(&pool, || {
                    let batch = idx.scan_batch(&queries, b);
                    for i in 0..b {
                        let single = idx.scan(&queries[i * dim..(i + 1) * dim]);
                        let batch_bits: Vec<u32> = batch[i * n_items..(i + 1) * n_items]
                            .iter()
                            .map(|s| s.to_bits())
                            .collect();
                        let single_bits: Vec<u32> = single.iter().map(|s| s.to_bits()).collect();
                        assert_eq!(
                            batch_bits, single_bits,
                            "{format:?} row {i} of {b} diverged at {t} threads"
                        );
                    }
                });
            }
        }
    }
}

#[test]
fn retrieve_batch_spanning_multiple_scan_blocks_matches_sequential() {
    // 150 histories > the 128-row scan block: the blocked path must stitch
    // rows across block boundaries without touching a bit.
    let (n_items, dim, b) = (512, 16, 150);
    let emb = fill(0xB10C, n_items * dim);
    let r = Retriever::build(emb, dim, 0, IndexFormat::F32);
    let histories = ragged_histories(5, b, n_items);
    let refs: Vec<&[ItemId]> = histories.iter().map(|h| h.as_slice()).collect();
    let batch = r.retrieve_batch(&refs, 20);
    assert_eq!(batch.len(), b);
    for (i, h) in histories.iter().enumerate() {
        assert_eq!(
            ranked_bits(&batch[i]),
            ranked_bits(&r.retrieve(h, 20)),
            "row {i} diverged across the block boundary"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline pin: ragged batches (empty histories included), per-row
    /// depths larger than the catalog, both formats, every thread count.
    #[test]
    fn retrieve_batch_each_is_bitwise_sequential(
        n_items in 16usize..200,
        dim in 1usize..16,
        b in 0usize..12,
        seed in 0u64..1 << 20,
        q8 in prop_oneof![Just(false), Just(true)],
    ) {
        let format = if q8 { IndexFormat::Q8 } else { IndexFormat::F32 };
        let emb = fill(seed, n_items * dim);
        let r = Retriever::build(emb, dim, 0, format);
        let histories = ragged_histories(seed, b, n_items);
        let refs: Vec<&[ItemId]> = histories.iter().map(|h| h.as_slice()).collect();
        // Depths sweep past the catalog size (k > retrieve_n upstream maps
        // to n > n_items here).
        let ns: Vec<usize> = (0..b).map(|i| 1 + (seed as usize + i * 31) % (2 * n_items)).collect();
        let serial = ThreadPool::new(1);
        let want: Vec<_> = with_pool(&serial, || {
            histories
                .iter()
                .zip(&ns)
                .map(|(h, &n)| ranked_bits(&r.retrieve(h, n)))
                .collect()
        });
        for &t in &THREADS {
            let pool = ThreadPool::new(t);
            let got: Vec<_> = with_pool(&pool, || {
                r.retrieve_batch_each(&refs, &ns)
                    .iter()
                    .map(|row| ranked_bits(row))
                    .collect()
            });
            prop_assert_eq!(&want, &got, "{:?} diverged at {} threads", format, t);
        }
    }

    /// Uniform-depth wrapper agrees with the per-depth path.
    #[test]
    fn retrieve_batch_matches_each_with_uniform_depth(
        n_items in 16usize..120,
        b in 1usize..8,
        n in 1usize..40,
        seed in 0u64..1 << 20,
    ) {
        let dim = 8;
        let emb = fill(seed, n_items * dim);
        let r = Retriever::build(emb, dim, 0, IndexFormat::F32);
        let histories = ragged_histories(seed, b, n_items);
        let refs: Vec<&[ItemId]> = histories.iter().map(|h| h.as_slice()).collect();
        let ns = vec![n; b];
        let uniform: Vec<_> = r.retrieve_batch(&refs, n).iter().map(|x| ranked_bits(x)).collect();
        let each: Vec<_> = r.retrieve_batch_each(&refs, &ns).iter().map(|x| ranked_bits(x)).collect();
        prop_assert_eq!(uniform, each);
    }
}
