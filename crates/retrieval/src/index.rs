//! The brute-force item index: every item embedding, L2-normalized and
//! repacked into the GEMM panel layout, so a full-catalog scan is one
//! [`gemm_packed`] call.
//!
//! No approximate-nearest-neighbor structure: at the catalog scales this
//! repo targets (10⁴–10⁶ items × 16–128 dims) a blocked, parallel GEMM scan
//! streams the whole index at memory bandwidth in well under a millisecond,
//! is *exact* (recall of the scan itself is 1.0 by construction), and — the
//! property every kernel here pins — bitwise deterministic across thread
//! counts, which no graph- or tree-based ANN traversal can promise once its
//! visit order floats. DESIGN.md's "Retrieval" section carries the full
//! trade-off discussion.

use delrec_tensor::{
    gemm_packed, gemm_packed_q8, pack_b_transposed, quantize_pack, PackedB, QuantizedPanel,
};

/// How the packed item matrix is stored.
///
/// Mirrors the LM weight-pack formats: [`MathMode::Exact`] and
/// [`MathMode::Fast`] share the f32 panels (the scan is a pure GEMM — there
/// is no transcendental to approximate, so Fast packs nothing different),
/// while [`MathMode::Quantized`] stores per-item int8 codes at ~4x smaller
/// footprint with the scan accumulating in f32.
///
/// [`MathMode::Exact`]: delrec_tensor::MathMode::Exact
/// [`MathMode::Fast`]: delrec_tensor::MathMode::Fast
/// [`MathMode::Quantized`]: delrec_tensor::MathMode::Quantized
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexFormat {
    /// f32 panels ([`PackedB`]).
    F32,
    /// Per-item-channel symmetric int8 panels ([`QuantizedPanel`]).
    Q8,
}

/// Packed panels in one of the two formats, with a shared scoring entry.
enum Panel {
    F32(PackedB),
    Q8(QuantizedPanel),
}

impl Panel {
    fn scan(&self, queries: &[f32], lda: usize, out: &mut [f32], m: usize) {
        match self {
            Panel::F32(p) => gemm_packed(queries, lda, p, out, m, false),
            Panel::Q8(q) => gemm_packed_q8(queries, lda, q, out, m, false),
        }
    }

    fn bytes(&self) -> usize {
        match self {
            Panel::F32(p) => p.bytes(),
            Panel::Q8(q) => q.bytes(),
        }
    }
}

/// L2-normalize each `dim`-length row in place; all-zero rows stay zero.
///
/// Normalizing at build time turns the scan's dot products into cosine
/// similarities against a normalized query, so score magnitudes are
/// comparable across items regardless of title length or embedding norm.
pub fn l2_normalize_rows(rows: &mut [f32], dim: usize) {
    assert!(dim > 0, "embedding dim must be positive");
    debug_assert_eq!(rows.len() % dim, 0);
    for row in rows.chunks_exact_mut(dim) {
        let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm > 0.0 {
            let inv = 1.0 / norm;
            for v in row {
                *v *= inv;
            }
        }
    }
}

/// The full-catalog item index: `n_items` L2-normalized embeddings packed
/// for one blocked GEMM scan, tagged with the parameter-store version the
/// embeddings were exported from.
///
/// The scan inherits the GEMM drivers' parallelism (`delrec-par` splits
/// column panels into disjoint stripes) and their bitwise thread-count
/// determinism: each output score is one fixed left-associated k-order dot
/// product no matter how many lanes computed the row.
pub struct ItemIndex {
    panel: Panel,
    dim: usize,
    n_items: usize,
    version: u64,
}

impl ItemIndex {
    /// Build from a row-major `[n_items, dim]` embedding matrix (consumed:
    /// rows are normalized in place before packing). `version` tags the
    /// parameter-store version the embeddings came from, for cache
    /// invalidation upstream.
    pub fn build(mut embeddings: Vec<f32>, dim: usize, version: u64, format: IndexFormat) -> Self {
        assert!(dim > 0, "embedding dim must be positive");
        assert_eq!(
            embeddings.len() % dim,
            0,
            "embedding matrix length {} not a multiple of dim {dim}",
            embeddings.len()
        );
        let n_items = embeddings.len() / dim;
        assert!(n_items > 0, "cannot index an empty catalog");
        let _span = delrec_obs::span!("retrieval.index.build");
        l2_normalize_rows(&mut embeddings, dim);
        // `[n_items, dim]` row-major is exactly the transposed-source layout
        // `pack_b_transposed` packs into `[dim, n_items]` panels.
        let packed = pack_b_transposed(&embeddings, dim, n_items);
        let panel = match format {
            IndexFormat::F32 => Panel::F32(packed),
            IndexFormat::Q8 => Panel::Q8(quantize_pack(&packed)),
        };
        delrec_obs::counter!("retrieval.index.build").incr();
        delrec_obs::gauge!("retrieval.index.bytes").set(panel.bytes() as f64);
        ItemIndex {
            panel,
            dim,
            n_items,
            version,
        }
    }

    /// Catalog size this index covers.
    pub fn len(&self) -> usize {
        self.n_items
    }

    /// Whether the index is empty (never: `build` rejects empty catalogs).
    pub fn is_empty(&self) -> bool {
        self.n_items == 0
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Parameter-store version the embeddings were exported from.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Storage format of the packed panels.
    pub fn format(&self) -> IndexFormat {
        match self.panel {
            Panel::F32(_) => IndexFormat::F32,
            Panel::Q8(_) => IndexFormat::Q8,
        }
    }

    /// Heap bytes of the packed panels (padding and scales included).
    pub fn bytes(&self) -> usize {
        self.panel.bytes()
    }

    /// Score one query against every item: `out[j] = q · e_j`. `out` must
    /// hold exactly [`len`](Self::len) zeroed floats.
    pub fn scan_into(&self, query: &[f32], out: &mut [f32]) {
        self.scan_batch_into(query, 1, out);
    }

    /// Score `m` queries (row-major `[m, dim]`) against every item into a
    /// zeroed row-major `[m, n_items]` score matrix — **one** blocked GEMM
    /// call, so the packed panels stream from memory once for all `m` rows
    /// instead of once per query.
    ///
    /// Row `i` of the output is bitwise identical to an `m = 1` scan of
    /// query `i`: each output score is one fixed left-associated k-order dot
    /// product, and the kernel's row blocking only chooses which register
    /// tile computes it, never the accumulation order.
    pub fn scan_batch_into(&self, queries: &[f32], m: usize, out: &mut [f32]) {
        assert_eq!(queries.len(), m * self.dim, "query matrix shape");
        assert_eq!(out.len(), m * self.n_items, "score matrix shape");
        if m == 0 {
            return;
        }
        let _span = delrec_obs::span!("retrieval.scan");
        self.panel.scan(queries, self.dim, out, m);
        delrec_obs::counter!("retrieval.scan.items").add((m * self.n_items) as u64);
        delrec_obs::counter!("retrieval.scan.rows").add(m as u64);
        delrec_obs::counter!("retrieval.scan.batches").incr();
    }

    /// Convenience: allocate and fill a score row for one query.
    pub fn scan(&self, query: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.n_items];
        self.scan_into(query, &mut out);
        out
    }

    /// Convenience: allocate and fill a `[m, n_items]` score matrix for `m`
    /// row-major queries (see [`scan_batch_into`](Self::scan_batch_into)).
    pub fn scan_batch(&self, queries: &[f32], m: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * self.n_items];
        self.scan_batch_into(queries, m, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn normalize_makes_unit_rows_and_keeps_zero_rows() {
        let mut rows = vec![3.0, 4.0, 0.0, 0.0, 1.0, 0.0];
        l2_normalize_rows(&mut rows, 2);
        assert!((rows[0] - 0.6).abs() < 1e-6 && (rows[1] - 0.8).abs() < 1e-6);
        assert_eq!(&rows[2..4], &[0.0, 0.0]);
        assert_eq!(&rows[4..6], &[1.0, 0.0]);
    }

    #[test]
    fn scan_matches_explicit_dot_products() {
        let (n, d) = (37, 8);
        let mut emb = fill(11, n * d);
        let idx = ItemIndex::build(emb.clone(), d, 0, IndexFormat::F32);
        l2_normalize_rows(&mut emb, d);
        let q = fill(23, d);
        let scores = idx.scan(&q);
        assert_eq!(scores.len(), n);
        for j in 0..n {
            let want: f32 = (0..d).map(|k| q[k] * emb[j * d + k]).sum();
            assert!((scores[j] - want).abs() < 1e-5, "item {j}");
        }
    }

    #[test]
    fn batch_scan_rows_match_single_query_scans() {
        let (n, d, m) = (19, 6, 4);
        let emb = fill(5, n * d);
        let idx = ItemIndex::build(emb, d, 0, IndexFormat::F32);
        let queries = fill(7, m * d);
        let mut batch = vec![0.0f32; m * n];
        idx.scan_batch_into(&queries, m, &mut batch);
        for i in 0..m {
            let single = idx.scan(&queries[i * d..(i + 1) * d]);
            assert_eq!(&batch[i * n..(i + 1) * n], single.as_slice(), "row {i}");
        }
    }

    #[test]
    fn q8_index_is_smaller_and_close_to_f32() {
        let (n, d) = (64, 32);
        let emb = fill(3, n * d);
        let f = ItemIndex::build(emb.clone(), d, 0, IndexFormat::F32);
        let q = ItemIndex::build(emb, d, 0, IndexFormat::Q8);
        assert!(q.bytes() * 3 < f.bytes(), "{} vs {}", q.bytes(), f.bytes());
        let query = fill(9, d);
        let (sf, sq) = (f.scan(&query), q.scan(&query));
        for j in 0..n {
            // Unit-norm rows bound per-element quantization error by 1/254.
            assert!(
                (sf[j] - sq[j]).abs() < 0.05,
                "item {j}: {} vs {}",
                sf[j],
                sq[j]
            );
        }
    }
}
