//! Full-catalog candidate generation for DELRec.
//!
//! The missing production stage in the paper's protocol: instead of scoring
//! an oracle-provided candidate set, [`Retriever`] scans *every* item — LLM
//! (MiniLM) item embeddings, L2-normalized and repacked into the blocked
//! GEMM panel layout ([`ItemIndex`]) — against a query vector aggregated
//! from the user's history ([`UserEncoder`]), then selects candidates with a
//! deterministic [`top_k`]. DELRec re-ranks the survivors upstream (see
//! `delrec-core`'s `Recommender`).
//!
//! Design invariants, shared with every kernel in this workspace:
//!
//! * **Bitwise thread-count determinism.** The scan is `gemm_packed` (or its
//!   int8 twin), whose parallel drivers only redistribute disjoint output
//!   stripes; the top-k is a serial pass with a total order
//!   ([`f32::total_cmp`], ties toward the smaller `ItemId`). Identical input
//!   → identical candidate lists at `DELREC_THREADS` 1 or 64.
//! * **Exactness.** Brute force, not ANN: the scan's own recall is 1.0, so
//!   end-to-end recall measures the *embeddings*, not an index structure.
//! * **One build per parameter version.** [`ItemIndex`] carries the
//!   parameter-store version it was exported from; callers cache it and
//!   rebuild when the version (or math mode) moves — same contract as the LM
//!   weight-pack cache.

#![warn(missing_docs)]

pub mod encoder;
pub mod index;
pub mod topk;

pub use encoder::{UserEncoder, DEFAULT_DECAY};
pub use index::{l2_normalize_rows, IndexFormat, ItemIndex};
pub use topk::{sort_ranked, top_k};

use delrec_data::ItemId;

/// Index + encoder composed into the retrieval stage: history in,
/// best-first `(item, score)` candidates out.
pub struct Retriever {
    index: ItemIndex,
    encoder: UserEncoder,
}

impl Retriever {
    /// Build both stages from one row-major `[n_items, dim]` embedding
    /// matrix exported at parameter-store version `version`.
    pub fn build(embeddings: Vec<f32>, dim: usize, version: u64, format: IndexFormat) -> Self {
        let encoder = UserEncoder::new(embeddings.clone(), dim);
        let index = ItemIndex::build(embeddings, dim, version, format);
        Retriever { index, encoder }
    }

    /// The packed index (size, version, format, bytes).
    pub fn index(&self) -> &ItemIndex {
        &self.index
    }

    /// The query encoder.
    pub fn encoder(&self) -> &UserEncoder {
        &self.encoder
    }

    /// Retrieve the `n` best-scoring candidates for a user history (oldest
    /// first), best first. Returns the whole catalog ranked when
    /// `n >= catalog size`.
    pub fn retrieve(&self, history: &[ItemId], n: usize) -> Vec<(ItemId, f32)> {
        let query = self.encoder.encode(history);
        let scores = self.index.scan(&query);
        top_k(&scores, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retrieve_ranks_the_history_neighborhood_first() {
        // Three well-separated directions; history in direction 0.
        let emb = vec![
            1.0, 0.0, 0.0, //
            0.9, 0.1, 0.0, //
            0.0, 1.0, 0.0, //
            0.0, 0.0, 1.0, //
        ];
        let r = Retriever::build(emb, 3, 0, IndexFormat::F32);
        let got = r.retrieve(&[ItemId(0)], 2);
        assert_eq!(got[0].0, ItemId(0));
        assert_eq!(got[1].0, ItemId(1));
    }

    #[test]
    fn cold_start_returns_id_order() {
        let emb = vec![0.3f32; 5 * 4];
        let r = Retriever::build(emb, 4, 0, IndexFormat::F32);
        let got = r.retrieve(&[], 3);
        let ids: Vec<u32> = got.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
