//! Full-catalog candidate generation for DELRec.
//!
//! The missing production stage in the paper's protocol: instead of scoring
//! an oracle-provided candidate set, [`Retriever`] scans *every* item — LLM
//! (MiniLM) item embeddings, L2-normalized and repacked into the blocked
//! GEMM panel layout ([`ItemIndex`]) — against a query vector aggregated
//! from the user's history ([`UserEncoder`]), then selects candidates with a
//! deterministic [`top_k`]. DELRec re-ranks the survivors upstream (see
//! `delrec-core`'s `Recommender`).
//!
//! Design invariants, shared with every kernel in this workspace:
//!
//! * **Bitwise thread-count determinism.** The scan is `gemm_packed` (or its
//!   int8 twin), whose parallel drivers only redistribute disjoint output
//!   stripes; the top-k is a serial pass with a total order
//!   ([`f32::total_cmp`], ties toward the smaller `ItemId`). Identical input
//!   → identical candidate lists at `DELREC_THREADS` 1 or 64.
//! * **Exactness.** Brute force, not ANN: the scan's own recall is 1.0, so
//!   end-to-end recall measures the *embeddings*, not an index structure.
//! * **One build per parameter version.** [`ItemIndex`] carries the
//!   parameter-store version it was exported from; callers cache it and
//!   rebuild when the version (or math mode) moves — same contract as the LM
//!   weight-pack cache.

#![warn(missing_docs)]

pub mod encoder;
pub mod index;
pub mod topk;

pub use encoder::{UserEncoder, DEFAULT_DECAY};
pub use index::{l2_normalize_rows, IndexFormat, ItemIndex};
pub use topk::{sort_ranked, top_k, TopKScratch};

use delrec_data::ItemId;

/// Queries per scan block in [`Retriever::retrieve_batch_each`]: bounds the
/// transient `[rows, n_items]` score matrix (128 rows × a 1M-item catalog is
/// 512 MB of f32 — blocks keep it at that ceiling no matter how large a
/// batch callers hand in). Blocking is invisible in the output: each row's
/// scan and selection depend only on that row.
const SCAN_BLOCK_ROWS: usize = 128;

/// Index + encoder composed into the retrieval stage: history in,
/// best-first `(item, score)` candidates out.
pub struct Retriever {
    index: ItemIndex,
    encoder: UserEncoder,
}

impl Retriever {
    /// Build both stages from one row-major `[n_items, dim]` embedding
    /// matrix exported at parameter-store version `version`.
    pub fn build(embeddings: Vec<f32>, dim: usize, version: u64, format: IndexFormat) -> Self {
        let encoder = UserEncoder::new(embeddings.clone(), dim);
        let index = ItemIndex::build(embeddings, dim, version, format);
        Retriever { index, encoder }
    }

    /// The packed index (size, version, format, bytes).
    pub fn index(&self) -> &ItemIndex {
        &self.index
    }

    /// The query encoder.
    pub fn encoder(&self) -> &UserEncoder {
        &self.encoder
    }

    /// Retrieve the `n` best-scoring candidates for a user history (oldest
    /// first), best first. Returns the whole catalog ranked when
    /// `n >= catalog size`.
    pub fn retrieve(&self, history: &[ItemId], n: usize) -> Vec<(ItemId, f32)> {
        let query = self.encoder.encode(history);
        let scores = self.index.scan(&query);
        top_k(&scores, n)
    }

    /// Retrieve candidates for `B` histories through **one** catalog scan:
    /// all queries are encoded into a `[B, dim]` matrix and scored in a
    /// single blocked `[B, dim] × [dim, n_items]` GEMM, so the packed item
    /// panels stream from memory once for the whole batch instead of once
    /// per user. Row `i` of the result is bitwise identical to
    /// `retrieve(histories[i], n)` — at every thread count and batch size —
    /// because each output score's accumulation order and each row's top-k
    /// selection depend only on that row's own query.
    pub fn retrieve_batch(&self, histories: &[&[ItemId]], n: usize) -> Vec<Vec<(ItemId, f32)>> {
        let ns = vec![n; histories.len()];
        self.retrieve_batch_each(histories, &ns)
    }

    /// [`retrieve_batch`](Self::retrieve_batch) with a per-history retrieval
    /// depth (`ns[i]` candidates for `histories[i]`). The scan cost is
    /// independent of the depths — one GEMM covers the batch regardless —
    /// so mixed-depth callers (e.g. a serving batch coalescing requests with
    /// different `k`) still share the panel traversal.
    pub fn retrieve_batch_each(
        &self,
        histories: &[&[ItemId]],
        ns: &[usize],
    ) -> Vec<Vec<(ItemId, f32)>> {
        assert_eq!(histories.len(), ns.len(), "one depth per history");
        let b = histories.len();
        let mut out = Vec::with_capacity(b);
        if b == 0 {
            return out;
        }
        let dim = self.index.dim();
        let n_items = self.index.len();
        let rows = b.min(SCAN_BLOCK_ROWS);
        let mut queries = vec![0.0f32; rows * dim];
        let mut scores = vec![0.0f32; rows * n_items];
        // Heap and scratch buffers live across all rows of the batch.
        let mut scratch = TopKScratch::new();
        let mut start = 0;
        while start < b {
            let end = (start + SCAN_BLOCK_ROWS).min(b);
            let m = end - start;
            for (i, h) in histories[start..end].iter().enumerate() {
                self.encoder
                    .encode_into(h, &mut queries[i * dim..(i + 1) * dim]);
            }
            let block = &mut scores[..m * n_items];
            block.fill(0.0);
            self.index.scan_batch_into(&queries[..m * dim], m, block);
            for (i, &n) in ns[start..end].iter().enumerate() {
                out.push(scratch.top_k(&block[i * n_items..(i + 1) * n_items], n));
            }
            start = end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retrieve_ranks_the_history_neighborhood_first() {
        // Three well-separated directions; history in direction 0.
        let emb = vec![
            1.0, 0.0, 0.0, //
            0.9, 0.1, 0.0, //
            0.0, 1.0, 0.0, //
            0.0, 0.0, 1.0, //
        ];
        let r = Retriever::build(emb, 3, 0, IndexFormat::F32);
        let got = r.retrieve(&[ItemId(0)], 2);
        assert_eq!(got[0].0, ItemId(0));
        assert_eq!(got[1].0, ItemId(1));
    }

    #[test]
    fn cold_start_returns_id_order() {
        let emb = vec![0.3f32; 5 * 4];
        let r = Retriever::build(emb, 4, 0, IndexFormat::F32);
        let got = r.retrieve(&[], 3);
        let ids: Vec<u32> = got.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
