//! Deterministic top-k selection over a full-catalog score row.
//!
//! The ordering is total and explicit: higher score first, and *bitwise
//! equal* scores break toward the smaller [`ItemId`]. Comparison uses
//! [`f32::total_cmp`], so `-0.0 < 0.0` and NaN ordering are pinned rather
//! than left to `partial_cmp`'s mercy — given a bitwise-deterministic score
//! row (which the index scan guarantees at every thread count), the selected
//! list is bitwise identical run to run and lane count to lane count.

use delrec_data::ItemId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// `(score, item)` with the *reversed* retrieval order, so the max-heap's
/// root is the worst element currently kept — a classic bounded top-k heap.
#[derive(Clone, Copy, PartialEq)]
struct Worst(f32, u32);

impl Eq for Worst {}

impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Worst {
    fn cmp(&self, other: &Self) -> Ordering {
        // Lower score = "greater" (worse); on equal bits, higher id = worse.
        other
            .0
            .total_cmp(&self.0)
            .then_with(|| self.1.cmp(&other.1))
    }
}

/// Reusable bounded-heap workspace for top-k selection.
///
/// Each [`top_k`] call used to allocate its heap fresh; on the batched scan
/// path that is a per-row cost × B per flush. A scratch owns the heap's
/// backing buffer and lends it to every [`TopKScratch::top_k`] call, so a
/// whole batch of rows selects through one allocation (the buffer grows to
/// the largest `k + 1` seen and stays there).
///
/// The selected list is a pure function of `(scores, k)` under the total
/// order — scratch reuse can't change a bit of the output, only where the
/// heap's storage lives.
#[derive(Default)]
pub struct TopKScratch {
    buf: Vec<Worst>,
}

impl TopKScratch {
    /// Empty scratch; the first selection sizes the buffer.
    pub fn new() -> Self {
        TopKScratch { buf: Vec::new() }
    }

    /// The `k` best-scoring items of `scores` (item `j`'s score at index
    /// `j`), best first; ties in score order by ascending [`ItemId`].
    /// Returns fewer than `k` entries only when the catalog itself is
    /// smaller than `k`. Identical to the free [`top_k`] — same selection,
    /// same order, same bits — but reuses this scratch's heap buffer.
    pub fn top_k(&mut self, scores: &[f32], k: usize) -> Vec<(ItemId, f32)> {
        let _span = delrec_obs::span!("retrieval.topk");
        let k = k.min(scores.len());
        if k == 0 {
            return Vec::new();
        }
        debug_assert!(self.buf.is_empty(), "scratch buffer returned dirty");
        self.buf.reserve(k + 1);
        // `BinaryHeap::from` on an empty Vec heapifies nothing and keeps the
        // allocation; `into_vec` below hands it back.
        let mut heap = BinaryHeap::from(std::mem::take(&mut self.buf));
        for (j, &s) in scores.iter().enumerate() {
            let cand = Worst(s, j as u32);
            if heap.len() < k {
                heap.push(cand);
            } else if cand < *heap.peek().expect("non-empty at capacity") {
                heap.pop();
                heap.push(cand);
            }
        }
        let mut buf = heap.into_vec();
        let mut out: Vec<(ItemId, f32)> = buf.iter().map(|&Worst(s, j)| (ItemId(j), s)).collect();
        buf.clear();
        self.buf = buf;
        // Heap pop order is worst-first and heap-internal layout is not a
        // contract; sort the k survivors with the same total order, best
        // first.
        sort_ranked(&mut out);
        out
    }
}

/// The `k` best-scoring items of `scores` (item `j`'s score at index `j`),
/// best first; ties in score order by ascending [`ItemId`]. Returns fewer
/// than `k` entries only when the catalog itself is smaller than `k`.
/// One-shot form of [`TopKScratch::top_k`]; batch callers selecting many
/// rows should hold a scratch instead.
pub fn top_k(scores: &[f32], k: usize) -> Vec<(ItemId, f32)> {
    TopKScratch::new().top_k(scores, k)
}

/// Sort `(item, score)` pairs best-first under the retrieval order: score
/// descending via [`f32::total_cmp`], ties toward the smaller [`ItemId`].
/// Shared by [`top_k`] and re-ranking callers that score a candidate subset.
pub fn sort_ranked(ranked: &mut [(ItemId, f32)]) {
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0 .0.cmp(&b.0 .0)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_best_scores_in_order() {
        let scores = [0.1, 0.9, -0.3, 0.5, 0.7];
        let got = top_k(&scores, 3);
        assert_eq!(
            got,
            vec![(ItemId(1), 0.9), (ItemId(4), 0.7), (ItemId(3), 0.5)]
        );
    }

    #[test]
    fn equal_scores_break_toward_smaller_item_id() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let got = top_k(&scores, 2);
        assert_eq!(got, vec![(ItemId(0), 0.5), (ItemId(1), 0.5)]);
        // Including the boundary: the last kept and first dropped are tied,
        // and the *smaller id* is kept.
        let got = top_k(&[0.9, 0.5, 0.5, 0.5], 2);
        assert_eq!(got, vec![(ItemId(0), 0.9), (ItemId(1), 0.5)]);
    }

    #[test]
    fn negative_zero_orders_below_positive_zero() {
        let got = top_k(&[-0.0, 0.0], 2);
        assert_eq!(got[0], (ItemId(1), 0.0));
        assert_eq!(got[1], (ItemId(0), -0.0));
    }

    #[test]
    fn k_larger_than_catalog_returns_everything() {
        let got = top_k(&[0.2, 0.8], 10);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, ItemId(1));
    }

    #[test]
    fn k_zero_and_empty_scores_are_empty() {
        assert!(top_k(&[0.5], 0).is_empty());
        assert!(top_k(&[], 3).is_empty());
    }

    #[test]
    fn scratch_reuse_matches_fresh_selection_across_varied_rows() {
        let rows: [&[f32]; 4] = [
            &[0.1, 0.9, -0.3, 0.5, 0.7],
            &[0.5, 0.5, 0.5, 0.5],
            &[-0.0, 0.0],
            &[0.2],
        ];
        let mut scratch = TopKScratch::new();
        for (i, row) in rows.iter().enumerate() {
            for k in [0, 1, 2, 10] {
                assert_eq!(scratch.top_k(row, k), top_k(row, k), "row {i}, k {k}");
            }
        }
    }
}
