//! The query side of retrieval: turn a user's interaction history into one
//! vector in the item-embedding space.
//!
//! The encoder is the cheapest thing that works and — crucially for the
//! serving path — fully deterministic: a recency-weighted mean of the
//! history items' (normalized) embeddings, accumulated oldest-to-newest in
//! one fixed order, then L2-normalized. This is the DLLM2Rec-style "ship the
//! LLM embeddings to a cheap student" candidate generator: all the semantic
//! lifting lives in the item embeddings; the user side just aggregates them.

use crate::index::l2_normalize_rows;
use delrec_data::ItemId;

/// Default geometric recency decay: the newest interaction weighs 1, the
/// one before `0.8`, then `0.64`, … — recent taste dominates without the
/// older history vanishing entirely.
pub const DEFAULT_DECAY: f32 = 0.8;

/// Encodes a user history as a recency-weighted mean of item embeddings.
///
/// Owns its own normalized copy of the `[n_items, dim]` embedding matrix:
/// the packed [`ItemIndex`](crate::ItemIndex) panels cannot be indexed by
/// row, and the encoder must read individual item rows.
pub struct UserEncoder {
    emb: Vec<f32>,
    dim: usize,
    n_items: usize,
    decay: f32,
}

impl UserEncoder {
    /// Build from a row-major `[n_items, dim]` embedding matrix (consumed;
    /// rows are L2-normalized in place, matching the index side) with the
    /// [`DEFAULT_DECAY`] recency weighting.
    pub fn new(embeddings: Vec<f32>, dim: usize) -> Self {
        Self::with_decay(embeddings, dim, DEFAULT_DECAY)
    }

    /// [`new`](Self::new) with an explicit per-step decay in `(0, 1]`
    /// (`1.0` = plain mean).
    pub fn with_decay(mut embeddings: Vec<f32>, dim: usize, decay: f32) -> Self {
        assert!(dim > 0, "embedding dim must be positive");
        assert_eq!(embeddings.len() % dim, 0, "embedding matrix shape");
        assert!(
            decay > 0.0 && decay <= 1.0,
            "decay must be in (0, 1], got {decay}"
        );
        let n_items = embeddings.len() / dim;
        l2_normalize_rows(&mut embeddings, dim);
        UserEncoder {
            emb: embeddings,
            dim,
            n_items,
            decay,
        }
    }

    /// Embedding dimensionality (the query vector's length).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Encode a history (oldest first) into a unit-norm query vector.
    ///
    /// Out-of-catalog ids are skipped; an empty (or fully skipped) history
    /// yields the zero vector, whose scan scores every item 0.0 and thus
    /// falls back to pure ItemId order in the top-k — deterministic cold
    /// start rather than a panic.
    pub fn encode(&self, history: &[ItemId]) -> Vec<f32> {
        let mut q = vec![0.0f32; self.dim];
        self.encode_into(history, &mut q);
        q
    }

    /// [`encode`](Self::encode) into a caller-provided `dim`-length buffer
    /// (overwritten, not accumulated into) — the batch path encodes `B`
    /// queries into one `[B, dim]` matrix without `B` row allocations. Same
    /// arithmetic in the same order as `encode`, bit for bit.
    pub fn encode_into(&self, history: &[ItemId], out: &mut [f32]) {
        assert_eq!(out.len(), self.dim, "query buffer shape");
        out.fill(0.0);
        // Oldest-to-newest with weight decay^(age): one fixed accumulation
        // order, so the query — and everything downstream — is bitwise
        // reproducible for a given history.
        for (age, &id) in history.iter().rev().enumerate() {
            let j = id.index();
            if j >= self.n_items {
                continue;
            }
            let w = self.decay.powi(age as i32);
            let row = &self.emb[j * self.dim..(j + 1) * self.dim];
            for (acc, &v) in out.iter_mut().zip(row) {
                *acc += w * v;
            }
        }
        l2_normalize_rows(out, self.dim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_item_history_points_at_that_item() {
        let emb = vec![1.0, 0.0, 0.0, 2.0, -3.0, 0.0];
        let enc = UserEncoder::new(emb, 2);
        let q = enc.encode(&[ItemId(1)]);
        assert!((q[0] - 0.0).abs() < 1e-6 && (q[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_history_is_zero_vector() {
        let enc = UserEncoder::new(vec![1.0, 0.0], 2);
        assert_eq!(enc.encode(&[]), vec![0.0, 0.0]);
    }

    #[test]
    fn out_of_catalog_ids_are_skipped() {
        let enc = UserEncoder::new(vec![1.0, 0.0], 2);
        let q = enc.encode(&[ItemId(7), ItemId(0)]);
        assert!((q[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn recency_weighting_prefers_the_newest_item() {
        // Orthogonal items: the query must lean toward the last interaction.
        let emb = vec![1.0, 0.0, 0.0, 1.0];
        let enc = UserEncoder::new(emb, 2);
        let q = enc.encode(&[ItemId(0), ItemId(1)]);
        assert!(q[1] > q[0], "newest item must dominate: {q:?}");
        let norm: f32 = q.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }
}
