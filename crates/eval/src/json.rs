//! A minimal JSON value + writer, so experiment binaries can emit
//! machine-readable results without pulling in a serialization framework
//! (the workspace deliberately avoids serde_json; see DESIGN.md).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Number (always emitted as f64).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (S, Json)>, S: Into<String>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array.
    pub fn arr<I: IntoIterator<Item = Json>>(items: I) -> Json {
        Json::Arr(items.into_iter().collect())
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut buf = String::new();
        write_value(self, &mut buf);
        f.write_str(&buf)
    }
}

fn write_value(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => {
            if n.is_finite() {
                // Integers print without a trailing ".0".
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => escape(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::obj([
            ("name", Json::from("DELRec")),
            ("hr", Json::from(0.37)),
            ("ranks", Json::arr([Json::from(1usize), Json::from(0usize)])),
        ]);
        assert_eq!(
            j.to_string(),
            r#"{"hr":0.37,"name":"DELRec","ranks":[1,0]}"#
        );
    }

    #[test]
    fn escapes_special_characters() {
        let j = Json::from("a\"b\\c\nd");
        assert_eq!(j.to_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn integers_have_no_decimal_point() {
        assert_eq!(Json::from(42usize).to_string(), "42");
        assert_eq!(Json::Num(3.5).to_string(), "3.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }
}
