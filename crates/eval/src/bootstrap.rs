//! Percentile-bootstrap confidence intervals for ranking metrics.
//!
//! The paper reports point estimates plus paired t-tests; bootstrap CIs are
//! the complementary tool for judging whether two *absolute* numbers are
//! meaningfully different under candidate-set resampling noise, which the
//! scale-reduced reproduction makes more prominent.

use crate::metrics::RankingReport;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A two-sided confidence interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate on the full sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
}

impl ConfidenceInterval {
    /// True if `other`'s estimate falls outside this interval (a quick
    /// "visibly different" check, weaker than a paired test).
    pub fn excludes(&self, value: f64) -> bool {
        value < self.lo || value > self.hi
    }
}

/// Percentile bootstrap over per-example metric values.
///
/// `level` is the two-sided coverage (e.g. 0.95); `resamples` draws are
/// deterministic in `seed`.
pub fn bootstrap_ci(values: &[f64], level: f64, resamples: usize, seed: u64) -> ConfidenceInterval {
    assert!(!values.is_empty(), "bootstrap over an empty sample");
    assert!(
        (0.0..1.0).contains(&level) && level > 0.5,
        "level in (0.5, 1)"
    );
    assert!(resamples >= 20, "too few resamples for percentiles");
    let n = values.len();
    let estimate = values.iter().sum::<f64>() / n as f64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut total = 0.0;
        for _ in 0..n {
            total += values[rng.random_range(0..n)];
        }
        means.push(total / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let alpha = (1.0 - level) / 2.0;
    let idx =
        |q: f64| -> usize { ((q * (resamples - 1) as f64).round() as usize).min(resamples - 1) };
    ConfidenceInterval {
        estimate,
        lo: means[idx(alpha)],
        hi: means[idx(1.0 - alpha)],
    }
}

/// Bootstrap CI of HR@k for a ranking report.
pub fn hr_ci(report: &RankingReport, k: usize, level: f64, seed: u64) -> ConfidenceInterval {
    bootstrap_ci(&report.per_example_hr(k), level, 1000, seed)
}

/// Bootstrap CI of NDCG@k for a ranking report.
pub fn ndcg_ci(report: &RankingReport, k: usize, level: f64, seed: u64) -> ConfidenceInterval {
    bootstrap_ci(&report.per_example_ndcg(k), level, 1000, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_brackets_the_estimate() {
        let values: Vec<f64> = (0..200).map(|i| (i % 3) as f64 / 2.0).collect();
        let ci = bootstrap_ci(&values, 0.95, 500, 7);
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        assert!(ci.hi - ci.lo < 0.2, "200 samples should give a tight CI");
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let values: Vec<f64> = (0..100)
            .map(|i| if i % 4 == 0 { 1.0 } else { 0.0 })
            .collect();
        let narrow = bootstrap_ci(&values, 0.80, 1000, 7);
        let wide = bootstrap_ci(&values, 0.99, 1000, 7);
        assert!(wide.hi - wide.lo >= narrow.hi - narrow.lo);
    }

    #[test]
    fn degenerate_sample_collapses_to_a_point() {
        let ci = bootstrap_ci(&[0.5; 50], 0.95, 200, 1);
        assert_eq!((ci.lo, ci.hi), (0.5, 0.5));
        assert!(!ci.excludes(0.5));
        assert!(ci.excludes(0.6));
    }

    #[test]
    fn hr_ci_detects_clearly_different_models() {
        // Model A: positives always rank 0; model B: uniform over 15.
        let a = RankingReport::new(vec![0; 120], 15);
        let b = RankingReport::new((0..120).map(|i| i % 15).collect(), 15);
        let ci_a = hr_ci(&a, 5, 0.95, 3);
        let ci_b = hr_ci(&b, 5, 0.95, 3);
        assert!(ci_a.excludes(ci_b.estimate));
        assert!(ci_b.excludes(ci_a.estimate));
    }

    #[test]
    fn deterministic_in_seed() {
        let values: Vec<f64> = (0..60).map(|i| (i % 5) as f64).collect();
        assert_eq!(
            bootstrap_ci(&values, 0.95, 300, 9),
            bootstrap_ci(&values, 0.95, 300, 9)
        );
    }
}
