//! The candidate-set evaluation protocol (paper §V-A3): for each test
//! example, rank `m = 15` candidates (the ground truth + 14 random items) and
//! record the position of the ground truth.

use crate::metrics::RankingReport;
use delrec_data::{CandidateSampler, Dataset, ItemId, Split};

/// One history + candidate set awaiting scores (a batched-scoring request).
pub type ScoreRequest<'a> = (&'a [ItemId], &'a [ItemId]);

/// One history + requested depth awaiting a full-catalog top-k (a batched
/// top-k request).
pub type TopKQuery<'a> = (&'a [ItemId], usize);

/// Anything that can order a candidate set given a user history.
pub trait Ranker {
    /// Display name.
    fn name(&self) -> &str;

    /// One score per candidate (higher = better).
    fn score_candidates(&self, prefix: &[ItemId], candidates: &[ItemId]) -> Vec<f32>;

    /// Score several `(history, candidates)` requests at once; row `i` holds
    /// the scores for `requests[i]`. The default loops
    /// [`Self::score_candidates`], so every ranker keeps identical semantics;
    /// model-backed rankers override it to share one batched forward pass.
    /// [`evaluate`] drives this method in chunks.
    fn score_candidates_batch(&self, requests: &[ScoreRequest<'_>]) -> Vec<Vec<f32>> {
        requests
            .iter()
            .map(|&(prefix, candidates)| self.score_candidates(prefix, candidates))
            .collect()
    }

    /// A version handle for this model's parameters: any parameter change
    /// must be visible as a different value, and two handles with equal
    /// values must score bitwise-identically. Model-backed rankers report
    /// their parameter-store version (the same key their weight-pack /
    /// prefix-cache / retriever-index invalidation uses); the serving
    /// runtime's hot-swap registry records it per published generation so a
    /// repack (same version, new caches) is distinguishable from a refit.
    /// Stateless test doubles may keep the default `0`.
    fn model_version(&self) -> u64 {
        0
    }
}

/// Anything that can produce a best-first top-k over the *whole catalog*
/// from a user history alone — the full retrieve-then-re-rank pipeline, as
/// opposed to a [`Ranker`], which is handed its candidate set.
///
/// Contract: the returned list is best-first, at most `k` long (shorter only
/// when the catalog is smaller), deduplicated, and deterministic — equal
/// scores order by ascending [`ItemId`], and the list is bitwise identical
/// at every thread count.
pub trait TopKRecommender {
    /// The `k` best items for this history, best first, with their scores.
    fn recommend_top_k(&self, prefix: &[ItemId], k: usize) -> Vec<(ItemId, f32)>;

    /// Serve several `(history, k)` requests at once; row `i` answers
    /// `requests[i]`. The default loops [`Self::recommend_top_k`], so every
    /// recommender keeps identical semantics; pipeline-backed recommenders
    /// override it to share one catalog scan and one re-rank batch across
    /// the whole request set. Overrides must return each row bitwise
    /// identical to the sequential call.
    fn recommend_top_k_batch(&self, requests: &[TopKQuery<'_>]) -> Vec<Vec<(ItemId, f32)>> {
        requests
            .iter()
            .map(|&(prefix, k)| self.recommend_top_k(prefix, k))
            .collect()
    }
}

/// Adapter turning a closure into a [`Ranker`] — used to wrap full-catalog
/// scorers (conventional models) and test doubles.
pub struct FnRanker<F> {
    name: String,
    f: F,
}

impl<F: Fn(&[ItemId], &[ItemId]) -> Vec<f32>> FnRanker<F> {
    /// Wrap a scoring closure.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnRanker {
            name: name.into(),
            f,
        }
    }
}

impl<F: Fn(&[ItemId], &[ItemId]) -> Vec<f32>> Ranker for FnRanker<F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn score_candidates(&self, prefix: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        (self.f)(prefix, candidates)
    }
}

/// Evaluation parameters.
#[derive(Clone, Debug)]
pub struct EvalConfig {
    /// Candidate-set size `m` (paper: 15).
    pub m: usize,
    /// Seed for candidate sampling — shared across models so every model
    /// ranks the *same* candidate sets (required for paired t-tests).
    pub candidate_seed: u64,
    /// Cap on test examples (None = all).
    pub max_examples: Option<usize>,
    /// Examples handed to [`Ranker::score_candidates_batch`] per call. Purely
    /// a throughput knob: metrics are identical for every value because the
    /// protocol scores each example's candidate set independently.
    pub batch_size: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            m: 15,
            candidate_seed: 20_24,
            max_examples: None,
            batch_size: 16,
        }
    }
}

/// Run the protocol over a split and return per-example ranks.
pub fn evaluate<R: Ranker + ?Sized>(
    ranker: &R,
    dataset: &Dataset,
    split: Split,
    cfg: &EvalConfig,
) -> RankingReport {
    evaluate_examples(ranker, dataset.examples(split), dataset.num_items(), cfg)
}

/// Score an arbitrarily large candidate list by splitting it into chunks of
/// `chunk` candidates per call — prompt-based rankers have bounded context,
/// so full-catalog scoring (case studies, top-k over everything) must not
/// put every title into one prompt. Scores from different chunks are
/// comparable for rankers whose scores are calibrated per item (all rankers
/// in this workspace use per-candidate log-probabilities or raw model
/// scores, both of which qualify approximately).
pub fn score_candidates_chunked<R: Ranker + ?Sized>(
    ranker: &R,
    prefix: &[ItemId],
    candidates: &[ItemId],
    chunk: usize,
) -> Vec<f32> {
    assert!(chunk > 0, "chunk must be positive");
    let mut out = Vec::with_capacity(candidates.len());
    for group in candidates.chunks(chunk) {
        out.extend(ranker.score_candidates(prefix, group));
    }
    out
}

/// Evaluate on an explicit example list (used by the cold-start study, which
/// slices the test split by prefix length). Examples are scored through
/// [`Ranker::score_candidates_batch`] in chunks of `cfg.batch_size`; the
/// rank computation is per-example, so the report is independent of how the
/// chunking falls.
pub fn evaluate_examples<R: Ranker + ?Sized>(
    ranker: &R,
    examples: &[delrec_data::Example],
    num_items: usize,
    cfg: &EvalConfig,
) -> RankingReport {
    let _span = delrec_obs::span!("eval.evaluate");
    assert!(cfg.batch_size > 0, "batch_size must be positive");
    let sampler = CandidateSampler::new(num_items, cfg.m);
    let take = cfg
        .max_examples
        .unwrap_or(examples.len())
        .min(examples.len());
    // Same partitioner as the parallel path, so the two walk identical
    // chunks and the reports can only differ if rank_chunk itself could
    // (it can't: each example's rank is computed independently).
    let mut ranks = vec![0usize; take];
    for range in delrec_par::chunk_ranges(take, cfg.batch_size) {
        let out = &mut ranks[range.clone()];
        rank_chunk(
            ranker,
            &examples[range.clone()],
            &sampler,
            cfg,
            range.start,
            out,
        );
    }
    RankingReport::new(ranks, cfg.m)
}

/// Parallel [`evaluate`]: chunks run concurrently on the shared
/// [`delrec_par`] pool. Requires `Sync` on the ranker — model-backed rankers
/// qualify; closure-based test doubles holding `Cell`/`Rc` keep using the
/// serial path.
pub fn evaluate_par<R: Ranker + Sync + ?Sized>(
    ranker: &R,
    dataset: &Dataset,
    split: Split,
    cfg: &EvalConfig,
) -> RankingReport {
    evaluate_examples_par(ranker, dataset.examples(split), dataset.num_items(), cfg)
}

/// Parallel [`evaluate_examples`]. The example list is cut into the *same*
/// `cfg.batch_size` chunks as the serial path ([`delrec_par::chunk_ranges`]);
/// each worker scores whole chunks and writes ranks into that chunk's
/// disjoint slot range, so the report is bitwise-identical to serial at any
/// thread count — candidate sampling is indexed by absolute example position
/// and each example's rank depends only on its own score row.
pub fn evaluate_examples_par<R: Ranker + Sync + ?Sized>(
    ranker: &R,
    examples: &[delrec_data::Example],
    num_items: usize,
    cfg: &EvalConfig,
) -> RankingReport {
    let _span = delrec_obs::span!("eval.evaluate");
    assert!(cfg.batch_size > 0, "batch_size must be positive");
    let sampler = CandidateSampler::new(num_items, cfg.m);
    let take = cfg
        .max_examples
        .unwrap_or(examples.len())
        .min(examples.len());
    let ranges = delrec_par::chunk_ranges(take, cfg.batch_size);
    let mut ranks = vec![0usize; take];
    let pool = delrec_par::current();
    pool.for_each_range(&mut ranks, &ranges, |ci, out| {
        let range = ranges[ci].clone();
        rank_chunk(
            ranker,
            &examples[range.clone()],
            &sampler,
            cfg,
            range.start,
            out,
        );
    });
    RankingReport::new(ranks, cfg.m)
}

/// Score one chunk of examples and write each example's rank into `out`
/// (`out.len() == chunk.len()`). `base` is the chunk's absolute offset in
/// the evaluation order — candidate sampling keys on it, so a chunk's
/// candidate sets are independent of which thread (or call path) runs it.
fn rank_chunk<R: Ranker + ?Sized>(
    ranker: &R,
    chunk: &[delrec_data::Example],
    sampler: &CandidateSampler,
    cfg: &EvalConfig,
    base: usize,
    out: &mut [usize],
) {
    let _chunk_span = delrec_obs::span!("eval.chunk");
    let candidate_sets: Vec<Vec<ItemId>> = chunk
        .iter()
        .enumerate()
        .map(|(k, ex)| sampler.candidates(ex.target, cfg.candidate_seed, base + k))
        .collect();
    let requests: Vec<ScoreRequest<'_>> = chunk
        .iter()
        .zip(&candidate_sets)
        .map(|(ex, cands)| (ex.prefix.as_slice(), cands.as_slice()))
        .collect();
    let score_rows = ranker.score_candidates_batch(&requests);
    assert_eq!(
        score_rows.len(),
        chunk.len(),
        "ranker returned wrong batch size"
    );
    for (slot, ((ex, candidates), scores)) in out
        .iter_mut()
        .zip(chunk.iter().zip(&candidate_sets).zip(&score_rows))
    {
        assert_eq!(
            scores.len(),
            candidates.len(),
            "ranker returned wrong arity"
        );
        let pos = candidates
            .iter()
            .position(|&c| c == ex.target)
            .expect("sampler always includes the positive");
        // Rank = number of candidates scored strictly higher (ties favour
        // earlier candidates to stay deterministic).
        *slot = scores
            .iter()
            .enumerate()
            .filter(|&(j, &s)| s > scores[pos] || (s == scores[pos] && j < pos))
            .count();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delrec_data::synthetic::{DatasetProfile, SyntheticConfig};

    fn tiny() -> Dataset {
        SyntheticConfig::profile(DatasetProfile::MovieLens100K)
            .scaled(0.08)
            .generate(4)
    }

    #[test]
    fn oracle_ranker_gets_perfect_scores() {
        let ds = tiny();
        // The oracle knows the positive: score it 1, everything else 0. It
        // must achieve HR@1 = 1 because the eval never leaks the positive —
        // emulate via a ranker that scores candidates by whether they equal
        // the example target. We reconstruct targets by index order.
        let examples = ds.examples(Split::Test).to_vec();
        let idx = std::cell::Cell::new(0usize);
        let oracle = FnRanker::new("oracle", move |_prefix, cands: &[ItemId]| {
            let target = examples[idx.get()].target;
            idx.set(idx.get() + 1);
            cands
                .iter()
                .map(|&c| if c == target { 1.0 } else { 0.0 })
                .collect()
        });
        let report = evaluate(&oracle, &ds, Split::Test, &EvalConfig::default());
        assert_eq!(report.hr(1), 1.0);
    }

    #[test]
    fn random_ranker_is_near_chance() {
        let ds = tiny();
        // Constant scores → rank decided by tie-break (candidate order),
        // and the positive's slot is uniform by the sampler's shuffle, so
        // HR@1 ≈ 1/15.
        let constant = FnRanker::new("const", |_p, c: &[ItemId]| vec![0.0; c.len()]);
        let report = evaluate(&constant, &ds, Split::Test, &EvalConfig::default());
        assert!(
            report.hr(1) < 0.2,
            "HR@1 {} should be near 1/15",
            report.hr(1)
        );
        assert!(
            (report.hr(5) - 5.0 / 15.0).abs() < 0.15,
            "HR@5 {} should be near 1/3",
            report.hr(5)
        );
        assert_eq!(report.hr(15), 1.0, "positive always within all 15");
    }

    #[test]
    fn same_seed_gives_identical_candidate_sets_across_models() {
        let ds = tiny();
        // Two rankers record the candidate sets they see.
        let collect = |tag: &str| {
            let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
            let seen2 = seen.clone();
            let r = FnRanker::new(tag, move |_p, c: &[ItemId]| {
                seen2.borrow_mut().push(c.to_vec());
                vec![0.0; c.len()]
            });
            evaluate(&r, &ds, Split::Test, &EvalConfig::default());
            let observed = seen.borrow().clone();
            observed
        };
        assert_eq!(collect("a"), collect("b"));
    }

    #[test]
    fn chunked_scoring_matches_per_chunk_calls() {
        let r = FnRanker::new("id", |_p, c: &[ItemId]| {
            c.iter().map(|i| i.0 as f32).collect()
        });
        let cands: Vec<ItemId> = (0..10).map(ItemId).collect();
        let scores = score_candidates_chunked(&r, &[], &cands, 3);
        assert_eq!(scores, (0..10).map(|i| i as f32).collect::<Vec<_>>());
    }

    #[test]
    fn batched_eval_metrics_match_per_example_eval() {
        let ds = tiny();
        // Deterministic, history-sensitive scorer shared by both rankers.
        fn score(p: &[ItemId], c: &[ItemId]) -> Vec<f32> {
            let h: u32 = p
                .iter()
                .fold(17, |acc, i| acc.wrapping_mul(31).wrapping_add(i.0));
            c.iter()
                .map(|&i| (i.0.wrapping_mul(2_654_435_761).wrapping_add(h) % 1000) as f32)
                .collect()
        }
        // A ranker with a real `score_candidates_batch` override, recording
        // the largest batch it receives.
        struct Batched(std::cell::Cell<usize>);
        impl Ranker for Batched {
            fn name(&self) -> &str {
                "batched"
            }
            fn score_candidates(&self, p: &[ItemId], c: &[ItemId]) -> Vec<f32> {
                score(p, c)
            }
            fn score_candidates_batch(&self, reqs: &[ScoreRequest<'_>]) -> Vec<Vec<f32>> {
                self.0.set(self.0.get().max(reqs.len()));
                reqs.iter().map(|&(p, c)| score(p, c)).collect()
            }
        }
        let single = FnRanker::new("single", score);
        let batched = Batched(std::cell::Cell::new(0));
        let per_example = EvalConfig {
            batch_size: 1,
            ..Default::default()
        };
        let chunked = EvalConfig {
            batch_size: 7,
            ..Default::default()
        };
        let a = evaluate(&single, &ds, Split::Test, &per_example);
        let b = evaluate(&batched, &ds, Split::Test, &chunked);
        assert!(batched.0.get() > 1, "batched path never exercised");
        assert_eq!(a.len(), b.len());
        for k in [1, 5, 10, 15] {
            assert_eq!(a.hr(k), b.hr(k), "HR@{k} differs across batch sizes");
            assert_eq!(a.ndcg(k), b.ndcg(k), "NDCG@{k} differs across batch sizes");
        }
        assert_eq!(a.mrr(), b.mrr());
    }

    #[test]
    fn parallel_eval_matches_serial_at_every_thread_count() {
        let ds = tiny();
        // Plain-fn ranker: deterministic, history-sensitive, and `Sync`.
        fn score(p: &[ItemId], c: &[ItemId]) -> Vec<f32> {
            let h: u32 = p
                .iter()
                .fold(17, |acc, i| acc.wrapping_mul(31).wrapping_add(i.0));
            c.iter()
                .map(|&i| (i.0.wrapping_mul(2_654_435_761).wrapping_add(h) % 1000) as f32)
                .collect()
        }
        let ranker = FnRanker::new("sync", score as fn(&[ItemId], &[ItemId]) -> Vec<f32>);
        let cfg = EvalConfig {
            batch_size: 7,
            ..Default::default()
        };
        let serial = evaluate(&ranker, &ds, Split::Test, &cfg);
        for lanes in [1usize, 2, 3, 7, 8] {
            let pool = delrec_par::ThreadPool::new(lanes);
            let par =
                delrec_par::with_pool(&pool, || evaluate_par(&ranker, &ds, Split::Test, &cfg));
            assert_eq!(serial.len(), par.len(), "lanes={lanes}");
            assert_eq!(serial.mrr(), par.mrr(), "lanes={lanes}");
            for k in [1, 5, 10, 15] {
                assert_eq!(serial.hr(k), par.hr(k), "HR@{k} lanes={lanes}");
                assert_eq!(serial.ndcg(k), par.ndcg(k), "NDCG@{k} lanes={lanes}");
            }
        }
    }

    #[test]
    fn max_examples_caps_work() {
        let ds = tiny();
        let constant = FnRanker::new("const", |_p, c: &[ItemId]| vec![0.0; c.len()]);
        let cfg = EvalConfig {
            max_examples: Some(5),
            ..Default::default()
        };
        assert_eq!(evaluate(&constant, &ds, Split::Test, &cfg).len(), 5);
    }
}
