//! Evaluation of the *retrieval* stage and of the full
//! retrieve-then-re-rank pipeline.
//!
//! Two questions, two reports:
//!
//! * [`evaluate_retrieval`] — does the candidate generator surface the right
//!   items at all? Recall@N of the held-out target, plus coverage of the
//!   oracle candidate sets the classic protocol would have been handed (the
//!   `m`-way sets from [`CandidateSampler`], same seed discipline as
//!   [`evaluate`](crate::evaluate), so the numbers are comparable across
//!   models).
//! * [`evaluate_top_k`] — end-to-end HR@k / NDCG@k of a
//!   [`TopKRecommender`]'s `recommend(history) -> top-k` with *no candidate
//!   list*. Unlike [`RankingReport`](crate::RankingReport), the target may be
//!   absent from the returned list entirely (retrieval missed it); a miss
//!   contributes 0 to every metric instead of panicking.

use crate::runner::TopKRecommender;
use delrec_data::{CandidateSampler, Dataset, ItemId, Split};

/// Configuration for [`evaluate_retrieval`].
#[derive(Clone, Debug)]
pub struct RetrievalEvalConfig {
    /// Candidate-list depths to report recall/coverage at, ascending.
    pub ns: Vec<usize>,
    /// Oracle candidate-set size `m` (paper protocol: 15).
    pub m: usize,
    /// Seed for the oracle candidate sets — use the same value the ranking
    /// eval uses so coverage refers to the *identical* sets.
    pub candidate_seed: u64,
    /// Cap on test examples (None = all).
    pub max_examples: Option<usize>,
}

impl Default for RetrievalEvalConfig {
    fn default() -> Self {
        RetrievalEvalConfig {
            ns: vec![50, 100],
            m: 15,
            candidate_seed: 20_24,
            max_examples: None,
        }
    }
}

/// Per-depth recall and oracle coverage of a retrieval stage.
#[derive(Clone, Debug)]
pub struct RetrievalReport {
    ns: Vec<usize>,
    recall: Vec<f64>,
    coverage: Vec<f64>,
    examples: usize,
}

impl RetrievalReport {
    /// Number of evaluated examples.
    pub fn len(&self) -> usize {
        self.examples
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.examples == 0
    }

    /// The depths this report covers.
    pub fn ns(&self) -> &[usize] {
        &self.ns
    }

    /// Recall@n: fraction of examples whose held-out target appears in the
    /// top-`n` retrieved. Panics when `n` was not in the config's `ns`.
    pub fn recall_at(&self, n: usize) -> f64 {
        self.recall[self.pos(n)]
    }

    /// Oracle coverage@n: mean fraction of the `m`-way oracle candidate set
    /// present in the top-`n` retrieved — how much of the classic protocol's
    /// search space the generator reproduces without being told it.
    pub fn coverage_at(&self, n: usize) -> f64 {
        self.coverage[self.pos(n)]
    }

    fn pos(&self, n: usize) -> usize {
        self.ns
            .iter()
            .position(|&x| x == n)
            .unwrap_or_else(|| panic!("depth {n} not evaluated (have {:?})", self.ns))
    }
}

/// Measure a retrieval stage (`retrieve(history, n) -> best-first items`)
/// against a split's held-out targets and oracle candidate sets.
pub fn evaluate_retrieval<F>(
    retrieve: F,
    dataset: &Dataset,
    split: Split,
    cfg: &RetrievalEvalConfig,
) -> RetrievalReport
where
    F: Fn(&[ItemId], usize) -> Vec<ItemId>,
{
    let _span = delrec_obs::span!("eval.retrieval");
    assert!(!cfg.ns.is_empty(), "need at least one depth");
    assert!(
        cfg.ns.windows(2).all(|w| w[0] < w[1]),
        "depths must be ascending"
    );
    let examples = dataset.examples(split);
    let take = cfg
        .max_examples
        .unwrap_or(examples.len())
        .min(examples.len());
    let sampler = CandidateSampler::new(dataset.num_items(), cfg.m);
    let deepest = *cfg.ns.last().expect("non-empty");
    let mut hits = vec![0usize; cfg.ns.len()];
    let mut covered = vec![0.0f64; cfg.ns.len()];
    for (i, ex) in examples[..take].iter().enumerate() {
        // One scan at the deepest n; shallower depths are prefixes of it
        // (the retrieval contract returns a best-first list).
        let retrieved = retrieve(&ex.prefix, deepest);
        let oracle = sampler.candidates(ex.target, cfg.candidate_seed, i);
        for (d, &n) in cfg.ns.iter().enumerate() {
            let top = &retrieved[..n.min(retrieved.len())];
            if top.contains(&ex.target) {
                hits[d] += 1;
            }
            let present = oracle.iter().filter(|c| top.contains(c)).count();
            covered[d] += present as f64 / oracle.len() as f64;
        }
    }
    RetrievalReport {
        ns: cfg.ns.clone(),
        recall: hits.iter().map(|&h| h as f64 / take as f64).collect(),
        coverage: covered.iter().map(|&c| c / take as f64).collect(),
        examples: take,
    }
}

/// End-to-end ranks of a [`TopKRecommender`] over a split: `ranks[i]` is the
/// target's 0-based position in the returned list, or `None` when the
/// pipeline never surfaced it (a retrieval miss).
#[derive(Clone, Debug)]
pub struct TopKReport {
    ranks: Vec<Option<usize>>,
    k: usize,
}

impl TopKReport {
    /// Number of evaluated examples.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// The list depth `k` every example was asked for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Fraction of examples where the pipeline surfaced the target at all.
    pub fn found_rate(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        let found = self.ranks.iter().filter(|r| r.is_some()).count();
        found as f64 / self.ranks.len() as f64
    }

    /// HR@k — a miss (target absent) counts 0, same as rank ≥ k.
    pub fn hr(&self, k: usize) -> f64 {
        assert!(k <= self.k, "HR@{k} needs lists of ≥ {k} (have {})", self.k);
        if self.ranks.is_empty() {
            return 0.0;
        }
        let hits = self
            .ranks
            .iter()
            .filter(|r| r.is_some_and(|r| r < k))
            .count();
        hits as f64 / self.ranks.len() as f64
    }

    /// NDCG@k with a single relevant item: `1 / log2(rank + 2)` when the
    /// target landed inside the top-k, else 0 — the same gain formula as
    /// [`RankingReport::ndcg`](crate::RankingReport::ndcg) so oracle and
    /// pipeline numbers subtract meaningfully.
    pub fn ndcg(&self, k: usize) -> f64 {
        assert!(
            k <= self.k,
            "NDCG@{k} needs lists of ≥ {k} (have {})",
            self.k
        );
        if self.ranks.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .ranks
            .iter()
            .map(|r| match r {
                Some(r) if *r < k => 1.0 / ((*r as f64) + 2.0).log2(),
                _ => 0.0,
            })
            .sum();
        total / self.ranks.len() as f64
    }
}

/// Run a [`TopKRecommender`] end to end over a split: each example's history
/// goes in with **no candidate list**, and the target's position in the
/// returned top-`k` is recorded.
pub fn evaluate_top_k<R: TopKRecommender + ?Sized>(
    rec: &R,
    dataset: &Dataset,
    split: Split,
    k: usize,
    max_examples: Option<usize>,
) -> TopKReport {
    let _span = delrec_obs::span!("eval.top_k");
    assert!(k > 0, "k must be positive");
    let examples = dataset.examples(split);
    let take = max_examples.unwrap_or(examples.len()).min(examples.len());
    let ranks = examples[..take]
        .iter()
        .map(|ex| {
            let top = rec.recommend_top_k(&ex.prefix, k);
            debug_assert!(top.len() <= k);
            top.iter().position(|&(id, _)| id == ex.target)
        })
        .collect();
    TopKReport { ranks, k }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delrec_data::synthetic::{DatasetProfile, SyntheticConfig};

    fn tiny() -> Dataset {
        SyntheticConfig::profile(DatasetProfile::MovieLens100K)
            .scaled(0.08)
            .generate(4)
    }

    /// Retrieval double returning the catalog in id order.
    fn id_order(n_items: usize) -> impl Fn(&[ItemId], usize) -> Vec<ItemId> {
        move |_h: &[ItemId], n: usize| (0..n.min(n_items) as u32).map(ItemId).collect()
    }

    #[test]
    fn full_catalog_retrieval_has_perfect_recall() {
        let ds = tiny();
        let n = ds.num_items();
        let cfg = RetrievalEvalConfig {
            ns: vec![n],
            ..Default::default()
        };
        let report = evaluate_retrieval(id_order(n), &ds, Split::Test, &cfg);
        assert_eq!(report.recall_at(n), 1.0);
        assert_eq!(report.coverage_at(n), 1.0);
        assert_eq!(report.len(), ds.examples(Split::Test).len());
    }

    #[test]
    fn shallow_depths_bound_recall_from_below() {
        let ds = tiny();
        let n = ds.num_items();
        let cfg = RetrievalEvalConfig {
            ns: vec![1, n],
            max_examples: Some(10),
            ..Default::default()
        };
        let report = evaluate_retrieval(id_order(n), &ds, Split::Test, &cfg);
        assert!(report.recall_at(1) <= report.recall_at(n));
        assert!(report.coverage_at(1) <= report.coverage_at(n));
        assert_eq!(report.len(), 10);
    }

    struct Oracle {
        targets: Vec<ItemId>,
        i: std::cell::Cell<usize>,
    }

    impl TopKRecommender for Oracle {
        fn recommend_top_k(&self, _prefix: &[ItemId], k: usize) -> Vec<(ItemId, f32)> {
            let t = self.targets[self.i.get()];
            self.i.set(self.i.get() + 1);
            (0..k as u32)
                .map(|j| if j == 0 { (t, 1.0) } else { (ItemId(j), 0.0) })
                .collect()
        }
    }

    #[test]
    fn oracle_recommender_scores_perfect_hr1() {
        let ds = tiny();
        let oracle = Oracle {
            targets: ds.examples(Split::Test).iter().map(|e| e.target).collect(),
            i: std::cell::Cell::new(0),
        };
        let report = evaluate_top_k(&oracle, &ds, Split::Test, 10, None);
        assert_eq!(report.hr(1), 1.0);
        assert_eq!(report.ndcg(10), 1.0);
        assert_eq!(report.found_rate(), 1.0);
    }

    struct Misser;

    impl TopKRecommender for Misser {
        fn recommend_top_k(&self, _prefix: &[ItemId], k: usize) -> Vec<(ItemId, f32)> {
            // Never returns any real target: ids far outside the catalog.
            (0..k as u32)
                .map(|j| (ItemId(1_000_000 + j), 0.0))
                .collect()
        }
    }

    #[test]
    fn misses_count_zero_not_panic() {
        let ds = tiny();
        let report = evaluate_top_k(&Misser, &ds, Split::Test, 10, Some(5));
        assert_eq!(report.hr(10), 0.0);
        assert_eq!(report.ndcg(10), 0.0);
        assert_eq!(report.found_rate(), 0.0);
        assert_eq!(report.len(), 5);
    }
}
