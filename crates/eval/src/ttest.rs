//! Paired Student t-test, used by Table II's significance stars
//! (`*` = p ≤ 0.01, `**` = p ≤ 0.05 in the paper's notation).

/// Result of a paired t-test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TTestResult {
    /// The t statistic (positive when `a` outperforms `b` on average).
    pub t: f64,
    /// Degrees of freedom (`n − 1`).
    pub df: f64,
    /// Two-sided p-value.
    pub p: f64,
}

impl TTestResult {
    /// The paper's star notation: `"*"` for p ≤ 0.01, `"**"` for p ≤ 0.05,
    /// `""` otherwise.
    pub fn stars(&self) -> &'static str {
        if self.p <= 0.01 {
            "*"
        } else if self.p <= 0.05 {
            "**"
        } else {
            ""
        }
    }

    /// Stars only when the *first* sample actually improved on the second
    /// (`t > 0`) — a significant regression must not be decorated like a win.
    pub fn improvement_stars(&self) -> &'static str {
        if self.t > 0.0 {
            self.stars()
        } else {
            ""
        }
    }
}

/// Paired t-test over two same-length per-example metric vectors.
/// Returns `t = 0, p = 1` when the differences have zero variance.
pub fn paired_t_test(a: &[f64], b: &[f64]) -> TTestResult {
    assert_eq!(a.len(), b.len(), "paired test needs equal-length samples");
    assert!(a.len() >= 2, "need at least two pairs");
    let n = a.len() as f64;
    let diffs: Vec<f64> = a.iter().zip(b).map(|(&x, &y)| x - y).collect();
    let mean = diffs.iter().sum::<f64>() / n;
    let var = diffs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / (n - 1.0);
    let df = n - 1.0;
    if var <= 0.0 {
        let degenerate_p = if mean == 0.0 { 1.0 } else { 0.0 };
        return TTestResult {
            t: if mean == 0.0 {
                0.0
            } else {
                f64::INFINITY * mean.signum()
            },
            df,
            p: degenerate_p,
        };
    }
    let t = mean / (var / n).sqrt();
    let p = two_sided_p(t, df);
    TTestResult { t, df, p }
}

/// Two-sided p-value of a t statistic via the regularized incomplete beta
/// function: `p = I_{df/(df+t²)}(df/2, 1/2)`.
pub fn two_sided_p(t: f64, df: f64) -> f64 {
    let x = df / (df + t * t);
    incomplete_beta(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// Regularized incomplete beta `I_x(a, b)` by Lentz's continued fraction.
fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry relation for faster convergence.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        // Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (Numerical Recipes `betacf`).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 200;
    const EPS: f64 = 1e-12;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Lanczos approximation of `ln Γ(x)`.
fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_9e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for c in COEF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24.
        assert!(ln_gamma(1.0).abs() < 1e-9);
        assert!(ln_gamma(2.0).abs() < 1e-9);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-9);
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn p_value_known_quantiles() {
        // For df=10, t=2.228 is the 97.5% quantile → two-sided p ≈ 0.05.
        let p = two_sided_p(2.228, 10.0);
        assert!((p - 0.05).abs() < 0.002, "p = {p}");
        // t = 0 → p = 1.
        assert!((two_sided_p(0.0, 10.0) - 1.0).abs() < 1e-9);
        // Large t → tiny p.
        assert!(two_sided_p(10.0, 30.0) < 1e-6);
    }

    #[test]
    fn paired_test_detects_consistent_improvement() {
        let a: Vec<f64> = (0..50).map(|i| 0.5 + 0.01 * (i % 3) as f64 + 0.1).collect();
        let b: Vec<f64> = (0..50).map(|i| 0.5 + 0.01 * (i % 3) as f64).collect();
        let r = paired_t_test(&a, &b);
        assert!(r.t > 10.0);
        assert!(r.p < 0.01);
        assert_eq!(r.stars(), "*");
    }

    #[test]
    fn paired_test_on_noise_is_insignificant() {
        // Symmetric alternating differences: mean 0.
        let a: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 1.0 } else { 0.0 })
            .collect();
        let b: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        let r = paired_t_test(&a, &b);
        assert!(r.p > 0.5, "p = {}", r.p);
        assert_eq!(r.stars(), "");
    }

    #[test]
    fn regressions_get_no_improvement_stars() {
        let worse: Vec<f64> = (0..50).map(|_| 0.1).collect();
        let better: Vec<f64> = (0..50).map(|i| 0.2 + 0.001 * (i % 5) as f64).collect();
        let r = paired_t_test(&worse, &better);
        assert!(r.t < 0.0);
        assert_eq!(r.stars(), "*", "the difference is significant…");
        assert_eq!(r.improvement_stars(), "", "…but it is not an improvement");
        let flipped = paired_t_test(&better, &worse);
        assert_eq!(flipped.improvement_stars(), "*");
    }

    #[test]
    fn identical_samples_are_degenerate() {
        let a = vec![0.3, 0.4, 0.5];
        let r = paired_t_test(&a, &a);
        assert_eq!(r.t, 0.0);
        assert_eq!(r.p, 1.0);
    }
}
