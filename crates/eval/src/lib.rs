//! Evaluation: the paper's candidate-set ranking protocol, HR@k / NDCG@k
//! metrics, paired significance tests, and table/JSON reporting.

#![warn(missing_docs)]

pub mod bootstrap;
pub mod json;
pub mod metrics;
pub mod report;
pub mod retrieval;
pub mod runner;
pub mod ttest;

pub use bootstrap::{bootstrap_ci, hr_ci, ndcg_ci, ConfidenceInterval};
pub use metrics::RankingReport;
pub use retrieval::{
    evaluate_retrieval, evaluate_top_k, RetrievalEvalConfig, RetrievalReport, TopKReport,
};
pub use runner::{
    evaluate, evaluate_examples, evaluate_examples_par, evaluate_par, score_candidates_chunked,
    EvalConfig, FnRanker, Ranker, ScoreRequest, TopKQuery, TopKRecommender,
};
pub use ttest::{paired_t_test, TTestResult};
