//! Ranking metrics: top-k Hit Rate and NDCG (paper §V-A4).

/// Per-example ranking outcomes of one evaluation run.
///
/// `ranks[i]` is the 0-based position of the ground-truth item in the
/// model's ordering of the candidate set for test example `i`.
///
/// ```
/// use delrec_eval::RankingReport;
///
/// // Three examples: positives ranked 1st, 3rd, and 12th of 15 candidates.
/// let report = RankingReport::new(vec![0, 2, 11], 15);
/// assert_eq!(report.hr(1), 1.0 / 3.0);
/// assert_eq!(report.hr(5), 2.0 / 3.0);
/// assert!(report.ndcg(10) < report.hr(10));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankingReport {
    /// 0-based rank of the positive per example.
    pub ranks: Vec<usize>,
    /// Candidate-set size used.
    pub m: usize,
}

impl RankingReport {
    /// Build from raw ranks.
    pub fn new(ranks: Vec<usize>, m: usize) -> Self {
        assert!(ranks.iter().all(|&r| r < m), "rank out of candidate range");
        RankingReport { ranks, m }
    }

    /// Number of evaluated examples.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// True when no examples were evaluated.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// HR@k: fraction of examples whose positive ranked in the top `k`.
    pub fn hr(&self, k: usize) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        let hits = self.ranks.iter().filter(|&&r| r < k).count();
        hits as f64 / self.ranks.len() as f64
    }

    /// NDCG@k with a single relevant item: `1 / log2(rank + 2)` if the
    /// positive is in the top `k`, else 0 (the ideal DCG is 1).
    pub fn ndcg(&self, k: usize) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .ranks
            .iter()
            .map(|&r| {
                if r < k {
                    1.0 / ((r as f64) + 2.0).log2()
                } else {
                    0.0
                }
            })
            .sum();
        total / self.ranks.len() as f64
    }

    /// Mean reciprocal rank.
    pub fn mrr(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        let total: f64 = self.ranks.iter().map(|&r| 1.0 / (r as f64 + 1.0)).sum();
        total / self.ranks.len() as f64
    }

    /// Per-example HR@k indicator values (for the paired t-test).
    pub fn per_example_hr(&self, k: usize) -> Vec<f64> {
        self.ranks
            .iter()
            .map(|&r| if r < k { 1.0 } else { 0.0 })
            .collect()
    }

    /// Per-example NDCG@k values (for the paired t-test).
    pub fn per_example_ndcg(&self, k: usize) -> Vec<f64> {
        self.ranks
            .iter()
            .map(|&r| {
                if r < k {
                    1.0 / ((r as f64) + 2.0).log2()
                } else {
                    0.0
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_scores_one() {
        let r = RankingReport::new(vec![0, 0, 0], 15);
        assert_eq!(r.hr(1), 1.0);
        assert_eq!(r.hr(10), 1.0);
        assert!((r.ndcg(10) - 1.0).abs() < 1e-12);
        assert_eq!(r.mrr(), 1.0);
    }

    #[test]
    fn hr_counts_topk_membership() {
        let r = RankingReport::new(vec![0, 4, 9, 14], 15);
        assert_eq!(r.hr(1), 0.25);
        assert_eq!(r.hr(5), 0.5);
        assert_eq!(r.hr(10), 0.75);
        assert_eq!(r.hr(15), 1.0);
    }

    #[test]
    fn ndcg_discounts_by_log_rank() {
        // rank 1 (0-based) → 1/log2(3).
        let r = RankingReport::new(vec![1], 15);
        assert!((r.ndcg(5) - 1.0 / 3f64.log2()).abs() < 1e-12);
        // Outside top-k contributes zero.
        let r2 = RankingReport::new(vec![7], 15);
        assert_eq!(r2.ndcg(5), 0.0);
    }

    #[test]
    fn ndcg_is_monotone_in_rank() {
        for k in [5, 10] {
            let better = RankingReport::new(vec![1], 15).ndcg(k);
            let worse = RankingReport::new(vec![3], 15).ndcg(k);
            assert!(better > worse);
        }
    }

    #[test]
    fn per_example_vectors_match_aggregates() {
        let r = RankingReport::new(vec![0, 4, 9], 15);
        let hr5 = r.per_example_hr(5);
        assert_eq!(hr5, vec![1.0, 1.0, 0.0]);
        let mean: f64 = hr5.iter().sum::<f64>() / 3.0;
        assert!((mean - r.hr(5)).abs() < 1e-12);
        let ndcg10 = r.per_example_ndcg(10);
        let mean2: f64 = ndcg10.iter().sum::<f64>() / 3.0;
        assert!((mean2 - r.ndcg(10)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "rank out of candidate range")]
    fn out_of_range_rank_panics() {
        RankingReport::new(vec![15], 15);
    }
}
