//! Markdown table rendering for experiment outputs, mirroring the paper's
//! table style (best value bold, second-best underlined).

/// A simple markdown table with metric-aware formatting helpers.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match header arity).
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cells: I) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.headers.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }
}

/// Format a metric column: bold the best value, underline the second-best
/// (both to 4 decimals, like the paper's tables). `values[i]` belongs to row
/// `i`; returns the formatted strings in the same order.
pub fn format_metric_column(values: &[f64], suffixes: &[&str]) -> Vec<String> {
    assert_eq!(values.len(), suffixes.len());
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[b]
            .partial_cmp(&values[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let best = idx.first().copied();
    let second = idx.get(1).copied();
    values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let base = format!("{v:.4}{}", suffixes[i]);
            if Some(i) == best {
                format!("**{base}**")
            } else if Some(i) == second {
                format!("_{base}_")
            } else {
                base
            }
        })
        .collect()
}

/// Render a metric series as a compact ASCII bar chart (one row per point) —
/// used by the figure-reproduction binaries so the trend is visible in a
/// terminal without plotting tools.
pub fn ascii_chart(title: &str, points: &[(String, f64)], width: usize) -> String {
    let mut out = format!("{title}\n");
    let max = points
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::MIN, f64::max)
        .max(1e-12);
    let label_w = points.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, value) in points {
        let bars = ((value / max) * width as f64).round().max(0.0) as usize;
        out.push_str(&format!(
            "  {label:<label_w$} | {} {value:.4}\n",
            "█".repeat(bars)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_chart_scales_bars_to_max() {
        let chart = ascii_chart("HR@1 vs k", &[("k=4".into(), 0.1), ("k=8".into(), 0.2)], 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3);
        let bars = |s: &str| s.matches('█').count();
        assert_eq!(bars(lines[2]), 10, "max value fills the width");
        assert_eq!(bars(lines[1]), 5, "half value gets half the bars");
        assert!(lines[1].contains("0.1000"));
    }

    #[test]
    fn markdown_has_header_separator_and_rows() {
        let mut t = Table::new(["model", "HR@1"]);
        t.row(["sasrec", "0.33"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| model | HR@1 |\n|---|---|\n"));
        assert!(md.contains("| sasrec | 0.33 |"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn wrong_arity_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn best_is_bold_second_is_underlined() {
        let cells = format_metric_column(&[0.1, 0.3, 0.2], &["", "*", ""]);
        assert_eq!(cells[1], "**0.3000***");
        assert_eq!(cells[2], "_0.2000_");
        assert_eq!(cells[0], "0.1000");
    }
}
