//! Weight initialization helpers (seeded, reproducible).

use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::Rng;

/// Sample one standard-normal value via Box–Muller (avoids depending on
/// `rand_distr` for a single distribution).
pub fn randn<R: Rng>(rng: &mut R) -> f32 {
    loop {
        let u1: f32 = rng.random();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.random();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
    }
}

/// Tensor with i.i.d. `N(0, std^2)` entries.
pub fn normal<R: Rng>(shape: impl Into<Shape>, std: f32, rng: &mut R) -> Tensor {
    let shape = shape.into();
    let data = (0..shape.numel()).map(|_| randn(rng) * std).collect();
    Tensor::new(shape, data)
}

/// Xavier/Glorot-uniform initialization for a `[fan_in, fan_out]` matrix.
pub fn xavier<R: Rng>(fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let data = (0..fan_in * fan_out)
        .map(|_| rng.random_range(-limit..limit))
        .collect();
    Tensor::new([fan_in, fan_out], data)
}

/// Uniform tensor in `[-limit, limit]`.
pub fn uniform<R: Rng>(shape: impl Into<Shape>, limit: f32, rng: &mut R) -> Tensor {
    let shape = shape.into();
    let data = (0..shape.numel())
        .map(|_| rng.random_range(-limit..limit))
        .collect();
    Tensor::new(shape, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| randn(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn xavier_within_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = xavier(64, 64, &mut rng);
        let limit = (6.0f32 / 128.0).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= limit));
    }

    #[test]
    fn seeded_init_is_reproducible() {
        let a = normal([4, 4], 0.02, &mut StdRng::seed_from_u64(9));
        let b = normal([4, 4], 0.02, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.data(), b.data());
    }
}
