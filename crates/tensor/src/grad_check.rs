//! Finite-difference gradient checking, used by every op's tests.

use crate::shape::Shape;
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Verify analytic gradients against central finite differences.
///
/// `f` rebuilds the (scalar-valued) computation from fresh leaves each call.
/// Panics with a diagnostic if any element disagrees beyond a mixed
/// absolute/relative tolerance.
pub fn check_grad(inputs: &[Vec<f32>], shapes: &[Shape], f: impl Fn(&Tape, &[Var]) -> Var) {
    assert_eq!(inputs.len(), shapes.len());
    let eval = |values: &[Vec<f32>]| -> f32 {
        let tape = Tape::new();
        let vars: Vec<Var> = values
            .iter()
            .zip(shapes)
            .map(|(v, s)| tape.leaf(Tensor::new(s.clone(), v.clone())))
            .collect();
        let out = f(&tape, &vars);
        tape.get(out).item()
    };

    // Analytic gradients.
    let tape = Tape::new();
    let vars: Vec<Var> = inputs
        .iter()
        .zip(shapes)
        .map(|(v, s)| tape.leaf(Tensor::new(s.clone(), v.clone())))
        .collect();
    let loss = f(&tape, &vars);
    let grads = tape.backward(loss);

    let eps = 1e-3f32;
    for (vi, (input, shape)) in inputs.iter().zip(shapes).enumerate() {
        let analytic = grads.get_or_zeros(vars[vi], shape);
        for ei in 0..input.len() {
            let mut plus = inputs.to_vec();
            plus[vi][ei] += eps;
            let mut minus = inputs.to_vec();
            minus[vi][ei] -= eps;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            let a = analytic.data()[ei];
            let tol = 1e-2 * (1.0 + a.abs().max(numeric.abs()));
            assert!(
                (a - numeric).abs() <= tol,
                "gradient mismatch for input {vi} element {ei}: analytic={a}, numeric={numeric}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_for_correct_gradient() {
        check_grad(
            &[vec![1.0, -2.0, 0.5]],
            &[Shape::from([3])],
            |tape, vars| {
                let y = tape.sqr(vars[0]);
                tape.sum_all(y)
            },
        );
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn catches_broken_gradient() {
        // A deliberately wrong "gradient": claim d(sum(2x))/dx by computing
        // sum(2x) forward but differentiating sum(x) (scale outside the tape).
        check_grad(&[vec![1.0, 2.0]], &[Shape::from([2])], |tape, vars| {
            let doubled = tape
                .get(vars[0])
                .data()
                .iter()
                .map(|v| v * 2.0)
                .sum::<f32>();
            let fake = tape.leaf(Tensor::scalar(doubled));
            // Loss value is sum(2x) but graph says loss = sum(x) + const.
            let s = tape.sum_all(vars[0]);
            let diff = tape.get(fake).item() - tape.get(s).item();
            let c = tape.constant(Tensor::scalar(diff));
            tape.add(s, c)
        });
    }
}
