//! Stochastic gradient descent with optional momentum.

use super::Optimizer;
use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;
use std::collections::HashMap;

/// SGD with classical momentum: `v = μv + g; w -= lr·v`.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: HashMap<ParamId, Tensor>,
}

impl Sgd {
    /// Plain SGD (no momentum).
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with momentum coefficient `momentum`.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn apply(&mut self, store: &mut ParamStore, updates: &[(ParamId, Tensor)]) {
        for (id, grad) in updates {
            if !store.is_trainable(*id) {
                continue;
            }
            let step: Vec<f32> = if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(*id)
                    .or_insert_with(|| Tensor::zeros(grad.shape().clone()));
                for (vv, &g) in v.data_mut().iter_mut().zip(grad.data()) {
                    *vv = self.momentum * *vv + g;
                }
                v.data().to_vec()
            } else {
                grad.data().to_vec()
            };
            let w = store.get_mut(*id);
            for (wv, s) in w.data_mut().iter_mut().zip(step) {
                *wv -= self.lr * s;
            }
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_step() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![1.0]));
        let mut opt = Sgd::new(0.1);
        opt.apply(&mut store, &[(w, Tensor::from_vec(vec![2.0]))]);
        assert!((store.get(w).data()[0] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn momentum_accelerates() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![0.0]));
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        // Constant gradient of 1.0; velocity builds up beyond 1.
        for _ in 0..3 {
            opt.apply(&mut store, &[(w, Tensor::from_vec(vec![1.0]))]);
        }
        // steps: 0.1·1, 0.1·1.9, 0.1·2.71 → total 0.561
        assert!((store.get(w).data()[0] + 0.561).abs() < 1e-4);
    }
}
