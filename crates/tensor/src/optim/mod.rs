//! Optimizers.
//!
//! The paper's training recipe uses three of these: Adam for SASRec/Caser,
//! Adagrad for GRU4Rec, and Lion for both DELRec stages.

mod adagrad;
mod adam;
mod lion;
mod sgd;

pub use adagrad::Adagrad;
pub use adam::Adam;
pub use lion::Lion;
pub use sgd::Sgd;

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// A gradient-descent-style optimizer over a [`ParamStore`].
pub trait Optimizer {
    /// Apply one step given `(parameter, gradient)` pairs. Implementations
    /// must skip parameters the store marks as frozen.
    fn apply(&mut self, store: &mut ParamStore, updates: &[(ParamId, Tensor)]);

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Adjust the learning rate (for warmup/decay schedules).
    fn set_lr(&mut self, lr: f32);
}

/// Scale gradients in place so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_grad_norm(updates: &mut [(ParamId, Tensor)], max_norm: f32) -> f32 {
    let total: f32 = updates
        .iter()
        .map(|(_, g)| g.data().iter().map(|v| v * v).sum::<f32>())
        .sum::<f32>()
        .sqrt();
    if total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        for (_, g) in updates.iter_mut() {
            g.scale_assign(scale);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    fn quadratic_converges(mut opt: impl Optimizer, steps: usize, tol: f32) {
        // Minimize f(w) = 0.5 * ||w||^2, gradient = w.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![5.0, -3.0]));
        for _ in 0..steps {
            let g = store.get(w).clone();
            opt.apply(&mut store, &[(w, g)]);
        }
        let norm = store.get(w).l2_norm();
        assert!(norm < tol, "final |w| = {norm} after {steps} steps");
    }

    #[test]
    fn all_optimizers_minimize_quadratic() {
        quadratic_converges(Sgd::new(0.1), 200, 1e-3);
        quadratic_converges(Adam::new(0.05), 400, 1e-2);
        quadratic_converges(Adagrad::new(0.5), 400, 0.5);
        quadratic_converges(Lion::new(0.01, 0.0), 2000, 0.05);
    }

    #[test]
    fn frozen_params_are_not_updated() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![1.0]));
        store.set_trainable(w, false);
        let mut opt = Sgd::new(0.5);
        opt.apply(&mut store, &[(w, Tensor::from_vec(vec![10.0]))]);
        assert_eq!(store.get(w).data(), &[1.0]);
    }

    #[test]
    fn clip_grad_norm_caps_norm() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![0.0, 0.0]));
        let mut updates = vec![(w, Tensor::from_vec(vec![3.0, 4.0]))];
        let pre = clip_grad_norm(&mut updates, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((updates[0].1.l2_norm() - 1.0).abs() < 1e-5);
        // Below the cap nothing changes.
        let mut small = vec![(w, Tensor::from_vec(vec![0.3, 0.4]))];
        clip_grad_norm(&mut small, 1.0);
        assert!((small[0].1.l2_norm() - 0.5).abs() < 1e-6);
    }
}
