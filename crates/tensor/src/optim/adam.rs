//! Adam (Kingma & Ba) — the paper trains SASRec and Caser with it.

use super::Optimizer;
use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;
use std::collections::HashMap;

struct State {
    m: Tensor,
    v: Tensor,
    t: u32,
}

/// Adam with decoupled (AdamW-style) weight decay.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    state: HashMap<ParamId, State>,
}

impl Adam {
    /// Adam with the standard β₁=0.9, β₂=0.999, ε=1e-8, no weight decay.
    pub fn new(lr: f32) -> Self {
        Self::with_decay(lr, 0.0)
    }

    /// Adam with decoupled weight decay.
    pub fn with_decay(lr: f32, weight_decay: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            state: HashMap::new(),
        }
    }
}

impl Optimizer for Adam {
    fn apply(&mut self, store: &mut ParamStore, updates: &[(ParamId, Tensor)]) {
        for (id, grad) in updates {
            if !store.is_trainable(*id) {
                continue;
            }
            let st = self.state.entry(*id).or_insert_with(|| State {
                m: Tensor::zeros(grad.shape().clone()),
                v: Tensor::zeros(grad.shape().clone()),
                t: 0,
            });
            st.t += 1;
            let bc1 = 1.0 - self.beta1.powi(st.t as i32);
            let bc2 = 1.0 - self.beta2.powi(st.t as i32);
            let w = store.get_mut(*id);
            for i in 0..grad.numel() {
                let g = grad.data()[i];
                let m = &mut st.m.data_mut()[i];
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                let v = &mut st.v.data_mut()[i];
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                let mhat = *m / bc1;
                let vhat = *v / bc2;
                let wi = &mut w.data_mut()[i];
                *wi -= self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * *wi);
            }
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_size_is_about_lr() {
        // With bias correction, the very first Adam step ≈ lr in magnitude.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![0.0]));
        let mut opt = Adam::new(0.01);
        opt.apply(&mut store, &[(w, Tensor::from_vec(vec![100.0]))]);
        assert!((store.get(w).data()[0] + 0.01).abs() < 1e-4);
    }

    #[test]
    fn weight_decay_pulls_toward_zero() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![1.0]));
        let mut opt = Adam::with_decay(0.1, 0.5);
        // Zero gradient: only decay acts.
        opt.apply(&mut store, &[(w, Tensor::from_vec(vec![0.0]))]);
        assert!(store.get(w).data()[0] < 1.0);
    }
}
