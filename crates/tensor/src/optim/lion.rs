//! Lion (EvoLved Sign Momentum, Chen et al. 2023) — the optimizer DELRec
//! uses for both Stage 1 (lr 5e-3, wd 1e-5) and Stage 2 (lr 1e-4, wd 1e-6).

use super::Optimizer;
use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;
use std::collections::HashMap;

/// Lion: `update = sign(β₁·m + (1−β₁)·g)`, then `m = β₂·m + (1−β₂)·g`,
/// with decoupled weight decay.
pub struct Lion {
    lr: f32,
    beta1: f32,
    beta2: f32,
    weight_decay: f32,
    momentum: HashMap<ParamId, Tensor>,
}

impl Lion {
    /// Lion with the paper-standard β₁=0.9, β₂=0.99.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Lion {
            lr,
            beta1: 0.9,
            beta2: 0.99,
            weight_decay,
            momentum: HashMap::new(),
        }
    }
}

impl Optimizer for Lion {
    fn apply(&mut self, store: &mut ParamStore, updates: &[(ParamId, Tensor)]) {
        for (id, grad) in updates {
            if !store.is_trainable(*id) {
                continue;
            }
            let m = self
                .momentum
                .entry(*id)
                .or_insert_with(|| Tensor::zeros(grad.shape().clone()));
            let w = store.get_mut(*id);
            for i in 0..grad.numel() {
                let g = grad.data()[i];
                let mi = &mut m.data_mut()[i];
                let interp = self.beta1 * *mi + (1.0 - self.beta1) * g;
                let wi = &mut w.data_mut()[i];
                *wi -= self.lr * (interp.signum_or_zero() + self.weight_decay * *wi);
                *mi = self.beta2 * *mi + (1.0 - self.beta2) * g;
            }
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

trait SignumOrZero {
    fn signum_or_zero(self) -> f32;
}

impl SignumOrZero for f32 {
    /// `signum` that maps 0 (and ±0.0) to 0 rather than ±1.
    fn signum_or_zero(self) -> f32 {
        if self == 0.0 {
            0.0
        } else {
            self.signum()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_magnitude_is_lr_regardless_of_grad_scale() {
        for scale in [0.001f32, 1.0, 1000.0] {
            let mut store = ParamStore::new();
            let w = store.add("w", Tensor::from_vec(vec![0.0]));
            let mut opt = Lion::new(0.01, 0.0);
            opt.apply(&mut store, &[(w, Tensor::from_vec(vec![scale]))]);
            assert!(
                (store.get(w).data()[0] + 0.01).abs() < 1e-6,
                "sign update should ignore gradient magnitude (scale {scale})"
            );
        }
    }

    #[test]
    fn zero_gradient_and_zero_momentum_is_a_noop() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![2.0]));
        let mut opt = Lion::new(0.01, 0.0);
        opt.apply(&mut store, &[(w, Tensor::from_vec(vec![0.0]))]);
        assert_eq!(store.get(w).data(), &[2.0]);
    }

    #[test]
    fn weight_decay_is_decoupled() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![1.0]));
        let mut opt = Lion::new(0.1, 0.5);
        opt.apply(&mut store, &[(w, Tensor::from_vec(vec![0.0]))]);
        // w -= lr * wd * w  →  1 − 0.1·0.5 = 0.95
        assert!((store.get(w).data()[0] - 0.95).abs() < 1e-6);
    }
}
