//! Adagrad — the paper trains GRU4Rec with it.

use super::Optimizer;
use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;
use std::collections::HashMap;

/// Adagrad: per-coordinate learning rates shrinking with accumulated squared
/// gradients.
pub struct Adagrad {
    lr: f32,
    eps: f32,
    accum: HashMap<ParamId, Tensor>,
}

impl Adagrad {
    /// Adagrad with accumulator epsilon 1e-10.
    pub fn new(lr: f32) -> Self {
        Adagrad {
            lr,
            eps: 1e-10,
            accum: HashMap::new(),
        }
    }
}

impl Optimizer for Adagrad {
    fn apply(&mut self, store: &mut ParamStore, updates: &[(ParamId, Tensor)]) {
        for (id, grad) in updates {
            if !store.is_trainable(*id) {
                continue;
            }
            let acc = self
                .accum
                .entry(*id)
                .or_insert_with(|| Tensor::zeros(grad.shape().clone()));
            let w = store.get_mut(*id);
            for i in 0..grad.numel() {
                let g = grad.data()[i];
                let a = &mut acc.data_mut()[i];
                *a += g * g;
                w.data_mut()[i] -= self.lr * g / (a.sqrt() + self.eps);
            }
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_size_shrinks_over_time() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![0.0]));
        let mut opt = Adagrad::new(1.0);
        let g = Tensor::from_vec(vec![1.0]);
        opt.apply(&mut store, &[(w, g.clone())]);
        let step1 = -store.get(w).data()[0];
        let before = store.get(w).data()[0];
        opt.apply(&mut store, &[(w, g)]);
        let step2 = before - store.get(w).data()[0];
        assert!(
            step2 < step1,
            "second step {step2} not smaller than {step1}"
        );
        assert!((step1 - 1.0).abs() < 1e-4, "first step ≈ lr");
    }
}
