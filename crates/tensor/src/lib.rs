//! Dense tensors and reverse-mode automatic differentiation.
//!
//! This crate is the numeric substrate for the whole DELRec workspace: the
//! conventional sequential recommenders (`delrec-seqrec`), the MiniLM language
//! model (`delrec-lm`), and the DELRec framework itself (`delrec-core`) all
//! build their forward passes on [`Tape`] and train through [`Tape::backward`].
//!
//! Design notes:
//!
//! * [`Tensor`] is a dense, row-major `f32` buffer plus a shape. Models here
//!   are small (embedding dims 16–64), so simplicity and cache-friendly
//!   contiguous layouts beat clever stride tricks.
//! * [`Tape`] implements define-by-run autograd: each op appends a node whose
//!   backward closure maps the upstream gradient to per-parent gradients.
//!   Correctness of every op is checked against finite differences in the
//!   test-suite (see [`grad_check`]).
//! * [`params::ParamStore`] owns named trainable tensors; [`params::Ctx`]
//!   binds them into a tape for one forward/backward pass; [`optim`] applies
//!   updates (SGD, Adam, Adagrad, and the Lion optimizer the paper uses).

#![warn(missing_docs)]

pub mod grad_check;
pub mod infer;
pub mod init;
pub mod optim;
pub mod params;
pub mod serialize;
pub mod shape;
pub mod tape;
pub mod tensor;

mod ops;

pub use infer::{fast_exp, fast_gelu, fast_sigmoid, fast_tanh, InferCtx, MathMode};
pub use ops::{
    gemm, gemm_auto, gemm_packed, gemm_packed_q8, matmul_raw, matmul_raw_sparse,
    matmul_raw_strided, pack_b, pack_b_q8, pack_b_transposed, pack_b_transposed_q8, quantize_pack,
    transpose_into, PackedB, QuantizedPanel, AUTO_PACK_MIN_MACS, MR, NR,
};
pub use params::{Ctx, ParamId, ParamStore};
pub use shape::Shape;
pub use tape::{BufferPool, BwdCtx, Gradients, Tape, Var};
pub use tensor::Tensor;
