//! The dense `f32` tensor type.

use crate::shape::Shape;
use std::fmt;

/// A dense, row-major `f32` tensor.
///
/// Cloning copies the buffer; the models in this workspace are small enough
/// that the simplicity is worth it (and the autograd tape relies on owned
/// values).
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Build a tensor from a shape and matching data buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != shape.numel()`.
    pub fn new(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "tensor data length {} does not match shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// All-zeros tensor of the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Tensor of the given shape filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Rank-0 scalar.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// 1-D tensor from a slice.
    pub fn from_vec(data: Vec<f32>) -> Self {
        let n = data.len();
        Tensor {
            shape: Shape::from([n]),
            data,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Borrow the underlying buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the underlying buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// The single value of a rank-0 or one-element tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item() on tensor with shape {}",
            self.shape
        );
        self.data[0]
    }

    /// Reinterpret with a new shape of identical element count.
    pub fn reshaped(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.data.len(),
            "cannot reshape {} elements to {shape}",
            self.data.len()
        );
        self.shape = shape;
        self
    }

    /// Row `r` of a rank-≥1 tensor viewed as `[rows, last]`.
    pub fn row(&self, r: usize) -> &[f32] {
        let d = self.shape.last();
        &self.data[r * d..(r + 1) * d]
    }

    /// Elementwise in-place addition. Shapes must match exactly.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "add_assign shape mismatch {} vs {}",
            self.shape, other.shape
        );
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Elementwise in-place scaling.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Index of the maximum element (first on ties). Empty tensors panic.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Euclidean norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// True if every element is finite (no NaN/inf) — used as a training
    /// sanity check.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.numel() <= 8 {
            write!(f, "{:?}", self.data)
        } else {
            write!(
                f,
                "[{:.4}, {:.4}, …; n={}]",
                self.data[0],
                self.data[1],
                self.numel()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.shape().rank(), 2);
        assert_eq!(t.row(1), &[4., 5., 6.]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.sum(), 21.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn mismatched_data_panics() {
        let _ = Tensor::new([2, 2], vec![1.0; 3]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4.]).reshaped([2, 2]);
        assert_eq!(t.row(0), &[1., 2.]);
        assert_eq!(t.row(1), &[3., 4.]);
    }

    #[test]
    fn argmax_first_on_ties() {
        let t = Tensor::from_vec(vec![1., 5., 5., 2.]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Tensor::from_vec(vec![1., 2.]);
        a.add_assign(&Tensor::from_vec(vec![3., 4.]));
        a.scale_assign(2.0);
        assert_eq!(a.data(), &[8., 12.]);
    }

    #[test]
    fn finite_check() {
        assert!(Tensor::from_vec(vec![1.0, -2.0]).is_finite());
        assert!(!Tensor::from_vec(vec![1.0, f32::NAN]).is_finite());
    }
}
