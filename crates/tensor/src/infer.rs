//! Grad-free inference kernels: pooled scratch buffers, exact mirrors of the
//! tape's forward arithmetic, and fast polynomial transcendentals.
//!
//! [`crate::Tape`] pays for differentiability on every op — a node
//! allocation, parent bookkeeping, and a boxed backward closure — which is
//! pure overhead when no gradient will ever be taken. [`InferCtx`] is the
//! inference-side counterpart: it carries only a [`BufferPool`] and a
//! [`MathMode`], and the free kernels here ([`softmax_row_mode`],
//! [`layer_norm_rows`], [`gelu_slice_mode`], [`log_sum_exp_mode`]) reproduce
//! the corresponding tape ops' arithmetic *bitwise* in [`MathMode::Exact`],
//! so a forward pass built on them is indistinguishable from a tape forward
//! — the property the LM-level equivalence tests pin down.
//!
//! [`MathMode::Fast`] swaps `exp`/`tanh`/`gelu` for the polynomial
//! approximations below. Their error bounds (enforced by the
//! `fast_math_properties` test suite):
//!
//! * [`fast_exp`]: relative error ≤ 2e-5 on `[-20, 20]`, monotone.
//! * [`fast_tanh`], [`fast_gelu`], [`fast_sigmoid`]: absolute error ≤ 1e-4.

use crate::ops::{gelu_fwd, GELU_COEF, LN_EPS, SQRT_2_OVER_PI};
use crate::tape::BufferPool;
use std::sync::Arc;

/// Which transcendental kernels a grad-free forward uses.
///
/// `Exact` delegates to `std` (`f32::exp`, `f32::tanh`, …) and is bitwise
/// identical to the tape's forward math — the default, and the only mode
/// training paths ever see. `Fast` substitutes the polynomial kernels in
/// this module. `Quantized` keeps the exact transcendentals but tells
/// weight-owning layers (see `delrec-lm`'s `WeightPack`) to run their frozen
/// projection weights through int8 panels
/// ([`crate::ops::pack_b_q8`] / [`crate::ops::gemm_packed_q8`]) — activations,
/// norms, and softmax stay f32, so in this crate `Quantized` behaves like
/// `Exact` everywhere.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MathMode {
    /// `std` transcendentals; bitwise identical to the tape forward.
    #[default]
    Exact,
    /// Polynomial `exp`/`tanh`/`gelu` (bounds in the module docs).
    Fast,
    /// Exact transcendentals over int8-quantized frozen weights (per-channel
    /// scales, f32 accumulation). Deterministic, but not bitwise-equal to
    /// `Exact`; eval-level drift is pinned by the LM test suite.
    Quantized,
}

// Degree-6 polynomial for 2^f on f ∈ [0, 1): the Taylor coefficients of
// 2^f = exp(f·ln2), with the last one adjusted so q(1) = 2 exactly — the
// seams between adjacent exponent intervals stay continuous, which keeps
// fast_exp monotone. Max relative error ≈ 1.2e-6.
const EXP2_C1: f64 = std::f64::consts::LN_2;
const EXP2_C2: f64 = 0.240_226_506_959_100_7; // (ln 2)² / 2!
const EXP2_C3: f64 = 0.055_504_108_664_821_58; // (ln 2)³ / 3!
const EXP2_C4: f64 = 0.009_618_129_107_628_477; // (ln 2)⁴ / 4!
const EXP2_C5: f64 = 0.001_333_355_814_642_844; // (ln 2)⁵ / 5!
const EXP2_C6: f64 = 0.000_170_718_893_861_1; // 2 − Σ(above) − 1 (endpoint fix)

/// Polynomial `exp(x)`: range-reduce `x = (i + f)·ln 2`, evaluate `2^f` with
/// a degree-6 Horner polynomial, scale by `2^i` via exponent bits.
///
/// Relative error ≤ 2e-5 (measured ≈ 1.2e-6) and monotone non-decreasing
/// over all of `f32`. Inputs where `f32` `exp` would overflow return `∞`;
/// inputs below the smallest normal's logarithm return `0.0`.
#[inline]
pub fn fast_exp(x: f32) -> f32 {
    if x >= 88.722_84 {
        return f32::INFINITY; // exp(x) ≥ f32::MAX
    }
    if x < -87.336_54 {
        return 0.0; // exp(x) < f32::MIN_POSITIVE
    }
    let z = f64::from(x) * std::f64::consts::LOG2_E;
    let i = z.floor();
    let f = z - i;
    let p = (((((EXP2_C6 * f + EXP2_C5) * f + EXP2_C4) * f + EXP2_C3) * f + EXP2_C2) * f + EXP2_C1)
        * f
        + 1.0;
    // 2^i for i ∈ [-126, 127]: build the f64 exponent field directly.
    let two_i = f64::from_bits((((i as i64) + 1023) << 52) as u64);
    (p * two_i) as f32
}

/// Polynomial `tanh(x)` via `(e − 1)/(e + 1)` with `e = fast_exp(2x)`;
/// saturates to `±1` where `f32` `tanh` does. Absolute error ≤ 1e-4
/// (measured ≈ 1e-6).
#[inline]
pub fn fast_tanh(x: f32) -> f32 {
    if x > 9.02 {
        return 1.0;
    }
    if x < -9.02 {
        return -1.0;
    }
    let e = fast_exp(2.0 * x);
    (e - 1.0) / (e + 1.0)
}

/// Polynomial tanh-approximation GELU: same expression and constants as the
/// tape's `gelu`, with [`fast_tanh`] inside. Absolute error ≤ 1e-4.
#[inline]
pub fn fast_gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + fast_tanh(SQRT_2_OVER_PI * (x + GELU_COEF * x * x * x)))
}

/// Polynomial logistic sigmoid `1/(1 + fast_exp(−x))`. Absolute error ≤ 1e-4.
#[inline]
pub fn fast_sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + fast_exp(-x))
}

/// In-place numerically-stable softmax of one row.
///
/// In [`MathMode::Exact`] this is bitwise identical to the tape's softmax
/// (same max-shift, same summation order, same single `1/sum` multiply).
pub fn softmax_row_mode(row: &mut [f32], math: MathMode) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    match math {
        MathMode::Exact | MathMode::Quantized => {
            for x in row.iter_mut() {
                let e = (*x - max).exp();
                *x = e;
                sum += e;
            }
        }
        MathMode::Fast => {
            for x in row.iter_mut() {
                let e = fast_exp(*x - max);
                *x = e;
                sum += e;
            }
        }
    }
    let inv = 1.0 / sum;
    for x in row.iter_mut() {
        *x *= inv;
    }
}

/// Row-wise layer normalization of `x` (row width = `gamma.len()`) into
/// `out`, bitwise identical to the tape's `layer_norm` forward (same biased
/// variance, same epsilon, same `(x − μ)·istd·γ + β` evaluation order).
/// Transcendental-free, so there is no fast variant.
pub fn layer_norm_rows(x: &[f32], gamma: &[f32], beta: &[f32], out: &mut [f32]) {
    let _span = delrec_obs::span!("tensor.layer_norm");
    let d = gamma.len();
    debug_assert_eq!(beta.len(), d);
    debug_assert_eq!(x.len(), out.len());
    debug_assert_eq!(x.len() % d, 0);
    for (row, out_row) in x.chunks_exact(d).zip(out.chunks_exact_mut(d)) {
        let mean = row.iter().sum::<f32>() / d as f32;
        let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let istd = 1.0 / (var + LN_EPS).sqrt();
        for c in 0..d {
            out_row[c] = (row[c] - mean) * istd * gamma[c] + beta[c];
        }
    }
}

/// In-place GELU over a slice; [`MathMode::Exact`] is bitwise identical to
/// the tape's `gelu` forward.
pub fn gelu_slice_mode(xs: &mut [f32], math: MathMode) {
    let _span = delrec_obs::span!("tensor.gelu");
    match math {
        MathMode::Exact | MathMode::Quantized => {
            for x in xs.iter_mut() {
                *x = gelu_fwd(*x);
            }
        }
        MathMode::Fast => {
            for x in xs.iter_mut() {
                *x = fast_gelu(*x);
            }
        }
    }
}

/// `log Σ exp(data)`, max-shifted. [`MathMode::Exact`] is bitwise identical
/// to the verbalizer's log-sum-exp (same summation order, `ln` from `std`).
pub fn log_sum_exp_mode(data: &[f32], math: MathMode) -> f32 {
    let max = data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let sum: f32 = match math {
        MathMode::Exact | MathMode::Quantized => data.iter().map(|&x| (x - max).exp()).sum(),
        MathMode::Fast => data.iter().map(|&x| fast_exp(x - max)).sum(),
    };
    max + sum.ln()
}

/// Context for grad-free forward passes: a shared [`BufferPool`] plus the
/// [`MathMode`] every kernel call should use. The inference analogue of
/// [`crate::Ctx`], minus the tape.
pub struct InferCtx {
    pool: Arc<BufferPool>,
    math: MathMode,
}

impl InferCtx {
    /// New context with its own private buffer pool.
    pub fn new(math: MathMode) -> Self {
        InferCtx {
            pool: Arc::new(BufferPool::new()),
            math,
        }
    }

    /// New context over a shared pool (e.g. the pool a training loop's tapes
    /// already warmed up).
    pub fn with_pool(pool: Arc<BufferPool>, math: MathMode) -> Self {
        InferCtx { pool, math }
    }

    /// The math mode kernels run in.
    pub fn math(&self) -> MathMode {
        self.math
    }

    /// Switch math mode (callers owning caches keyed on the mode must
    /// invalidate them).
    pub fn set_math(&mut self, math: MathMode) {
        self.math = math;
    }

    /// The backing buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Zeroed scratch buffer of length `n` from the pool.
    pub fn alloc(&self, n: usize) -> Vec<f32> {
        self.pool.take(n)
    }

    /// Pooled copy of `src`.
    pub fn alloc_copy(&self, src: &[f32]) -> Vec<f32> {
        self.pool.take_copy(src)
    }

    /// Return a finished scratch buffer to the pool.
    pub fn recycle(&self, buf: Vec<f32>) {
        self.pool.put(buf);
    }

    /// In-place softmax of one row in this context's math mode.
    pub fn softmax_row(&self, row: &mut [f32]) {
        softmax_row_mode(row, self.math);
    }

    /// In-place GELU in this context's math mode.
    pub fn gelu(&self, xs: &mut [f32]) {
        gelu_slice_mode(xs, self.math);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use crate::tensor::Tensor;

    #[test]
    fn fast_exp_matches_std_closely() {
        for i in -2000..=2000 {
            let x = i as f32 * 0.01; // [-20, 20]
            let want = x.exp();
            let got = fast_exp(x);
            let rel = ((got - want) / want).abs();
            assert!(rel <= 2e-5, "x={x}: {got} vs {want} (rel {rel})");
        }
    }

    #[test]
    fn fast_exp_saturates_like_std() {
        assert_eq!(fast_exp(100.0), f32::INFINITY);
        assert_eq!(fast_exp(-200.0), 0.0);
        assert!(fast_exp(88.0).is_finite());
        assert!(fast_exp(-87.0) > 0.0);
        assert!(fast_exp(f32::NAN).is_nan());
    }

    #[test]
    fn fast_tanh_and_gelu_match_std_closely() {
        for i in -3000..=3000 {
            let x = i as f32 * 0.01; // [-30, 30]
            assert!((fast_tanh(x) - x.tanh()).abs() <= 1e-4, "tanh at {x}");
            let want = 0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + GELU_COEF * x * x * x)).tanh());
            assert!((fast_gelu(x) - want).abs() <= 1e-4, "gelu at {x}");
            let sig = 1.0 / (1.0 + (-x).exp());
            assert!((fast_sigmoid(x) - sig).abs() <= 1e-4, "sigmoid at {x}");
        }
        assert_eq!(fast_tanh(20.0), 1.0);
        assert_eq!(fast_tanh(-20.0), -1.0);
    }

    #[test]
    fn exact_softmax_row_is_bitwise_equal_to_tape_softmax() {
        let raw = vec![0.3f32, -1.2, 2.0, 0.45, -0.8];
        let tape = Tape::new();
        let v = tape.leaf(Tensor::from_vec(raw.clone()));
        let want = tape.get(tape.softmax(v));
        let mut got = raw;
        softmax_row_mode(&mut got, MathMode::Exact);
        assert_eq!(got.as_slice(), want.data());
    }

    #[test]
    fn fast_softmax_row_stays_close_and_normalized() {
        let raw = vec![0.3f32, -1.2, 2.0, 0.45, -0.8];
        let mut exact = raw.clone();
        softmax_row_mode(&mut exact, MathMode::Exact);
        let mut fast = raw;
        softmax_row_mode(&mut fast, MathMode::Fast);
        let sum: f32 = fast.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        for (f, e) in fast.iter().zip(&exact) {
            assert!((f - e).abs() < 1e-4);
        }
    }

    #[test]
    fn quantized_mode_transcendentals_are_bitwise_exact() {
        // Quantized only changes weight storage (in delrec-lm); every kernel
        // in this crate must treat it exactly like Exact.
        let raw = vec![0.3f32, -1.2, 2.0, 0.45, -0.8];
        let mut exact = raw.clone();
        softmax_row_mode(&mut exact, MathMode::Exact);
        let mut quant = raw.clone();
        softmax_row_mode(&mut quant, MathMode::Quantized);
        assert_eq!(
            exact.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            quant.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        let mut ge = raw.clone();
        gelu_slice_mode(&mut ge, MathMode::Exact);
        let mut gq = raw.clone();
        gelu_slice_mode(&mut gq, MathMode::Quantized);
        assert_eq!(ge, gq);
        assert_eq!(
            log_sum_exp_mode(&raw, MathMode::Exact).to_bits(),
            log_sum_exp_mode(&raw, MathMode::Quantized).to_bits()
        );
    }

    #[test]
    fn layer_norm_rows_is_bitwise_equal_to_tape_layer_norm() {
        let raw = vec![0.3f32, -1.2, 2.0, 0.45, -0.8, 0.1, 1.7, -0.33];
        let gamma = vec![1.1f32, 0.9, 1.0, 1.3];
        let beta = vec![0.05f32, -0.1, 0.0, 0.2];
        let tape = Tape::new();
        let x = tape.leaf(Tensor::new([2, 4], raw.clone()));
        let g = tape.leaf(Tensor::from_vec(gamma.clone()));
        let b = tape.leaf(Tensor::from_vec(beta.clone()));
        let want = tape.get(tape.layer_norm(x, g, b));
        let mut got = vec![0.0f32; raw.len()];
        layer_norm_rows(&raw, &gamma, &beta, &mut got);
        assert_eq!(got.as_slice(), want.data());
    }

    #[test]
    fn exact_gelu_is_bitwise_equal_to_tape_gelu() {
        let raw = vec![-3.0f32, -0.5, 0.0, 0.5, 3.0];
        let tape = Tape::new();
        let v = tape.leaf(Tensor::from_vec(raw.clone()));
        let want = tape.get(tape.gelu(v));
        let mut got = raw;
        gelu_slice_mode(&mut got, MathMode::Exact);
        assert_eq!(got.as_slice(), want.data());
    }

    #[test]
    fn infer_ctx_recycles_buffers() {
        let ic = InferCtx::new(MathMode::Exact);
        let mut buf = ic.alloc(64);
        assert_eq!(buf.len(), 64);
        buf.iter_mut().for_each(|v| *v = 5.0);
        ic.recycle(buf);
        let again = ic.alloc(64);
        assert!(again.iter().all(|&v| v == 0.0), "recycled buffer zeroed");
        assert_eq!(ic.pool().len(), 0, "buffer was reused");
    }
}
