//! Minimal binary (de)serialization for parameter stores.
//!
//! Format (little-endian):
//! `magic "DLRC1\n"` · `u32 count` · for each parameter:
//! `u32 name_len` · name bytes · `u32 rank` · `u32 dims…` · `f32 data…`.

use crate::params::ParamStore;
use crate::shape::Shape;
use crate::tensor::Tensor;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 6] = b"DLRC1\n";

/// Serialize every parameter (name, shape, data) to a writer.
pub fn save_params<W: Write>(store: &ParamStore, w: &mut W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(store.len() as u32).to_le_bytes())?;
    for (_, name, tensor) in store.iter() {
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name.as_bytes())?;
        w.write_all(&(tensor.shape().rank() as u32).to_le_bytes())?;
        for i in 0..tensor.shape().rank() {
            w.write_all(&(tensor.shape().dim(i) as u32).to_le_bytes())?;
        }
        for &v in tensor.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Load parameters previously written by [`save_params`] into an existing
/// store. Every serialized name must exist in the store with an identical
/// shape (i.e. the same model architecture must have been constructed first).
pub fn load_params<R: Read>(store: &mut ParamStore, r: &mut R) -> io::Result<()> {
    let mut magic = [0u8; 6];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad magic: not a DELRec parameter file",
        ));
    }
    let count = read_u32(r)? as usize;
    for _ in 0..count {
        let name_len = read_u32(r)? as usize;
        let mut name_buf = vec![0u8; name_len];
        r.read_exact(&mut name_buf)?;
        let name = String::from_utf8(name_buf)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let rank = read_u32(r)? as usize;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u32(r)? as usize);
        }
        let shape = Shape::from(dims.as_slice());
        let mut data = vec![0.0f32; shape.numel()];
        let mut buf = [0u8; 4];
        for v in &mut data {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        let id = store.id_of(&name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown parameter {name:?} in file"),
            )
        })?;
        if store.shape_of(id) != &shape {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "shape mismatch for {name:?}: store has {}, file has {shape}",
                    store.shape_of(id)
                ),
            ));
        }
        *store.get_mut(id) = Tensor::new(shape, data);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ParamStore {
        let mut s = ParamStore::new();
        s.add("w1", Tensor::new([2, 2], vec![1., 2., 3., 4.]));
        s.add("bias", Tensor::from_vec(vec![0.5, -0.5]));
        s
    }

    #[test]
    fn roundtrip_preserves_values() {
        let store = sample_store();
        let mut buf = Vec::new();
        save_params(&store, &mut buf).unwrap();

        let mut fresh = ParamStore::new();
        let w1 = fresh.add("w1", Tensor::zeros([2, 2]));
        let b = fresh.add("bias", Tensor::zeros([2]));
        load_params(&mut fresh, &mut buf.as_slice()).unwrap();
        assert_eq!(fresh.get(w1).data(), &[1., 2., 3., 4.]);
        assert_eq!(fresh.get(b).data(), &[0.5, -0.5]);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut store = sample_store();
        let err = load_params(&mut store, &mut &b"NOTAMODEL"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let store = sample_store();
        let mut buf = Vec::new();
        save_params(&store, &mut buf).unwrap();
        let mut fresh = ParamStore::new();
        fresh.add("w1", Tensor::zeros([4]));
        fresh.add("bias", Tensor::zeros([2]));
        let err = load_params(&mut fresh, &mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"));
    }

    #[test]
    fn unknown_param_is_rejected() {
        let store = sample_store();
        let mut buf = Vec::new();
        save_params(&store, &mut buf).unwrap();
        let mut fresh = ParamStore::new();
        fresh.add("other", Tensor::zeros([2, 2]));
        assert!(load_params(&mut fresh, &mut buf.as_slice()).is_err());
    }
}
