//! Second-generation GEMM: a register-blocked micro-kernel over a packed
//! right-hand operand, bitwise-identical to [`matmul_raw`].
//!
//! [`matmul_raw`] streams each output row across the full width `n` once per
//! 4-wide k-group: every group re-loads and re-stores `n` output floats and
//! re-slices four rows of `B` straight out of the row-major buffer. That is
//! `m·n·⌈k/4⌉` output-buffer round trips, and for the narrow per-head
//! projections of the LM (`n = d_head = 8`) the per-group slicing overhead
//! rivals the arithmetic. This module restructures the same arithmetic:
//!
//! * **B is packed once** ([`pack_b`]) into `NR`-wide column panels, laid out
//!   k-major so the kernel's inner loop reads one contiguous, cache-resident
//!   strip per k-group. Packing is pure data movement — no arithmetic — and
//!   for the LM's frozen inference weights it amortizes to zero across calls
//!   (see `delrec-lm`'s `WeightPack`).
//! * **The micro-kernel holds an `MR`×`NR` output tile in registers** for the
//!   whole k loop: each output float is loaded and stored once instead of
//!   `⌈k/4⌉` times, and each packed `B` strip is reused across `MR` rows of
//!   `A`, which is streamed row-major exactly as before.
//!
//! **Bitwise identity.** Blocking reorders *which outputs* are computed when,
//! never the k-order *within* an output: every `out[i,j]` accumulates its
//! products in [`matmul_raw`]'s exact order — full 4-groups in ascending k,
//! each group evaluated as the same left-associated
//! `acc + (a0·b0 + a1·b1 + a2·b2 + a3·b3)` expression, then the `k % 4`
//! remainder one product at a time. Padded panel lanes (`n % NR`) compute on
//! zeros into dead accumulators that are never written back. The property
//! tests in `tests/gemm_properties.rs` pin `gemm == matmul_raw` to the bit
//! across randomized shapes including every remainder class.

use super::matmul::matmul_raw;

/// Rows of the register-blocked output tile.
pub const MR: usize = 4;
/// Columns of the register-blocked output tile (panel width of [`PackedB`]).
pub const NR: usize = 8;

/// Minimum multiply-accumulates per parallel task: below this the fork/join
/// handshake (queue lock + wake + latch) costs more than the arithmetic it
/// offloads, so smaller products stay serial on the calling thread.
const PAR_MIN_MACS_PER_TASK: usize = 64 * 1024;

/// Minimum multiply-accumulates for an auto-dispatching GEMM to pay for a
/// per-call packing pass: packing allocates and writes `⌈n/NR⌉·k·NR` floats
/// (f32 panels) or codes-plus-scales (q8 panels) before a single MAC runs,
/// and below a few thousand MACs [`matmul_raw`] finishes in less time than
/// that data movement. Mirrors [`PAR_MIN_MACS_PER_TASK`] an order of
/// magnitude down — an allocation plus a copy is far cheaper than a
/// fork/join handshake, but not free.
///
/// This is the *single* named threshold for every pack-or-not decision: the
/// f32 [`gemm_auto`] dispatch consults it directly, and q8 callers reuse it
/// when deciding whether a one-shot product is worth quantize-packing
/// (long-lived panels — LM weight packs, the retrieval item index — pack
/// unconditionally because the cost amortizes over every later call).
pub const AUTO_PACK_MIN_MACS: usize = 8 * 1024;

/// A right-hand GEMM operand repacked into `NR`-wide column panels.
///
/// Panel `p` covers columns `p·NR .. min((p+1)·NR, n)` and stores `k`
/// contiguous rows of `NR` floats each (k-major); columns past `n` in the
/// last panel are zero-padded so the micro-kernel never branches on width.
/// Total size `⌈n/NR⌉·k·NR` floats.
#[derive(Clone, Debug)]
pub struct PackedB {
    data: Vec<f32>,
    k: usize,
    n: usize,
}

impl PackedB {
    /// Inner (shared) dimension `k` this pack was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output width `n` this pack was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Packed size in floats (includes zero padding of the last panel).
    pub fn packed_len(&self) -> usize {
        self.data.len()
    }

    /// Heap bytes of the pack (4 bytes per packed float, padding included).
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

/// Pack a row-major `[k, n]` matrix into `NR`-wide panels for [`gemm_packed`].
pub fn pack_b(b: &[f32], k: usize, n: usize) -> PackedB {
    debug_assert_eq!(b.len(), k * n);
    let panels = n.div_ceil(NR);
    let mut data = vec![0.0f32; panels * k * NR];
    for p in 0..panels {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        let dst = &mut data[p * k * NR..(p + 1) * k * NR];
        for kk in 0..k {
            dst[kk * NR..kk * NR + w].copy_from_slice(&b[kk * n + j0..kk * n + j0 + w]);
        }
    }
    PackedB { data, k, n }
}

/// Pack the *transpose* of a row-major `[n, k]` matrix — the packed
/// equivalent of [`super::matmul::transpose_into`] followed by [`pack_b`],
/// without materializing the `[k, n]` intermediate. Used for the tied
/// embedding head, whose weight lives as `[vocab, d]` but multiplies as
/// `[d, vocab]`.
pub fn pack_b_transposed(src: &[f32], k: usize, n: usize) -> PackedB {
    debug_assert_eq!(src.len(), n * k);
    let panels = n.div_ceil(NR);
    let mut data = vec![0.0f32; panels * k * NR];
    for p in 0..panels {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        let dst = &mut data[p * k * NR..(p + 1) * k * NR];
        for (j, col) in src[j0 * k..(j0 + w) * k].chunks_exact(k).enumerate() {
            for (kk, &v) in col.iter().enumerate() {
                dst[kk * NR + j] = v;
            }
        }
    }
    PackedB { data, k, n }
}

/// A right-hand GEMM operand quantized to int8 with per-output-channel
/// scales, in the same `NR`-wide k-major panel layout as [`PackedB`].
///
/// Column `j` stores codes `q[kk, j] = round(b[kk, j] / scale[j])` clamped
/// to `[-127, 127]`, with `scale[j] = maxabs_j / 127` so the column's
/// largest magnitude maps to ±127 and the dequantization error is at most
/// `maxabs_j / 254` per element. All-zero columns get `scale[j] = 0.0` and
/// all-zero codes — no division, no NaN. Scales are indexed by global column
/// (`scales[j]`; panel `p` owns `scales[p·NR .. (p+1)·NR]`, padded lanes
/// carry `0.0`).
#[derive(Clone, Debug)]
pub struct QuantizedPanel {
    data: Vec<i8>,
    scales: Vec<f32>,
    k: usize,
    n: usize,
}

impl QuantizedPanel {
    /// Inner (shared) dimension `k` this pack was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output width `n` this pack was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Packed size in int8 codes (includes zero padding of the last panel).
    pub fn packed_len(&self) -> usize {
        self.data.len()
    }

    /// Heap bytes of the pack: one byte per code plus the f32 scales.
    pub fn bytes(&self) -> usize {
        self.data.len() + self.scales.len() * std::mem::size_of::<f32>()
    }

    /// Per-column scales, indexed by global column; padded lanes are `0.0`.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }
}

/// Quantize an existing f32 pack, preserving its layout: per-column max-abs
/// over the panels (column `j` is lane `j % NR` of panel `j / NR`), then one
/// rounded, clamped division per element. Both q8 packers go through this,
/// so the code layout is identical to the f32 pack by construction — and
/// callers that already hold a [`PackedB`] (e.g. `delrec-lm`'s weight pack,
/// which folds AdaLoRA deltas into the f32 pack first) can quantize it
/// without re-deriving the panels.
pub fn quantize_pack(bp: &PackedB) -> QuantizedPanel {
    let (k, n) = (bp.k, bp.n);
    let panels = n.div_ceil(NR);
    let mut scales = vec![0.0f32; panels * NR];
    for p in 0..panels {
        let panel = &bp.data[p * k * NR..(p + 1) * k * NR];
        let lane_max = &mut scales[p * NR..(p + 1) * NR];
        for strip in panel.chunks_exact(NR) {
            for (mx, &v) in lane_max.iter_mut().zip(strip) {
                *mx = mx.max(v.abs());
            }
        }
    }
    for s in scales.iter_mut() {
        *s /= 127.0;
    }
    let mut data = vec![0i8; bp.data.len()];
    for p in 0..panels {
        let src = &bp.data[p * k * NR..(p + 1) * k * NR];
        let dst = &mut data[p * k * NR..(p + 1) * k * NR];
        let lane_scale = &scales[p * NR..(p + 1) * NR];
        for (drow, srow) in dst.chunks_exact_mut(NR).zip(src.chunks_exact(NR)) {
            for jn in 0..NR {
                if lane_scale[jn] > 0.0 {
                    drow[jn] = (srow[jn] / lane_scale[jn]).round().clamp(-127.0, 127.0) as i8;
                }
            }
        }
    }
    QuantizedPanel { data, scales, k, n }
}

/// Pack a row-major `[k, n]` matrix into int8 panels for [`gemm_packed_q8`]
/// — the quantized counterpart of [`pack_b`].
pub fn pack_b_q8(b: &[f32], k: usize, n: usize) -> QuantizedPanel {
    quantize_pack(&pack_b(b, k, n))
}

/// Pack the *transpose* of a row-major `[n, k]` matrix into int8 panels —
/// the quantized counterpart of [`pack_b_transposed`], used for the tied
/// embedding head.
pub fn pack_b_transposed_q8(src: &[f32], k: usize, n: usize) -> QuantizedPanel {
    quantize_pack(&pack_b_transposed(src, k, n))
}

/// `out[m, n] (+)= a[m, k] · B` for a packed `B`, with `A` rows `lda` floats
/// apart (`lda ≥ k`; pass `lda = k` for a contiguous `A`).
///
/// With `accumulate` the result adds into `out` exactly like [`matmul_raw`];
/// without it, `out` is overwritten — bitwise-identical to [`matmul_raw`]
/// over a zero-filled `out`, since the register accumulators start at the
/// same `0.0` the fill would have stored.
#[inline]
pub fn gemm_packed(
    a: &[f32],
    lda: usize,
    bp: &PackedB,
    out: &mut [f32],
    m: usize,
    accumulate: bool,
) {
    let (k, n) = (bp.k, bp.n);
    debug_assert!(lda >= k, "row stride {lda} shorter than k {k}");
    debug_assert!(m == 0 || a.len() >= (m - 1) * lda + k);
    debug_assert_eq!(out.len(), m * n);
    // `bp.data` is re-borrowed as a plain slice *parameter*: a `&[f32]`
    // argument carries LLVM's noalias/readonly attributes on the data pointer
    // itself, while a pointer loaded out of `&PackedB` inside the callee does
    // not — and without provable no-aliasing against `out`, the whole micro-
    // kernel compiles to scalar stack code (measured ~2.6x slower).
    if accumulate {
        gemm_dispatch::<true>(a, lda, bp, out, m);
    } else {
        gemm_dispatch::<false>(a, lda, bp, out, m);
    }
}

/// Serial/parallel split for [`gemm_packed`]. Both arms are bitwise-identical:
/// parallelism only changes *which thread* computes which disjoint output
/// rows or column stripes, never the k-order within an output element (see
/// the module docs' bitwise-identity argument — tile heights and panel
/// boundaries don't enter the per-element expression).
#[inline]
fn gemm_dispatch<const ACC: bool>(a: &[f32], lda: usize, bp: &PackedB, out: &mut [f32], m: usize) {
    if gemm_try_parallel::<ACC>(a, lda, bp, out, m) {
        return;
    }
    gemm_panels::<ACC>(a, lda, &bp.data, bp.k, bp.n, out, m);
}

/// Parallel driver: returns `false` (caller runs serial) when the current
/// pool has one lane or the product is too small to amortize a fork.
///
/// * **Row blocks** (tall shapes): the output rows are cut into `MR`-aligned
///   contiguous blocks, each task running the ordinary serial driver on its
///   own `A`-rows × `out`-rows sub-problem — a pure sub-slicing of the
///   serial call.
/// * **Panel blocks** (short, wide shapes — e.g. the `[bsz, vocab]` head):
///   each task computes a stripe of `NR`-wide column panels into a private
///   stripe buffer (reading the prior `out` values first when accumulating),
///   and the caller copies the stripes back serially. Copies preserve bits,
///   so this too is exactly the serial arithmetic.
fn gemm_try_parallel<const ACC: bool>(
    a: &[f32],
    lda: usize,
    bp: &PackedB,
    out: &mut [f32],
    m: usize,
) -> bool {
    let (k, n) = (bp.k, bp.n);
    let macs = m * k * n;
    if macs < 2 * PAR_MIN_MACS_PER_TASK {
        return false;
    }
    let pool = delrec_par::current();
    let lanes = pool.lanes();
    if lanes < 2 {
        return false;
    }
    let task_cap = (macs / PAR_MIN_MACS_PER_TASK).min(lanes);
    let row_tiles = m.div_ceil(MR);
    if row_tiles >= 2 && task_cap >= 2 {
        let tile_ranges = delrec_par::partition(row_tiles, task_cap.min(row_tiles));
        let row_ranges: Vec<_> = tile_ranges
            .iter()
            .map(|r| r.start * MR * n..(r.end * MR).min(m) * n)
            .collect();
        let data = &bp.data;
        pool.for_each_range(out, &row_ranges, |ti, out_chunk| {
            let i0 = tile_ranges[ti].start * MR;
            let rows = out_chunk.len() / n;
            gemm_panels::<ACC>(&a[i0 * lda..], lda, data, k, n, out_chunk, rows);
        });
        return true;
    }
    let panels = n.div_ceil(NR);
    let tasks = task_cap.min(panels);
    if tasks >= 2 {
        let panel_ranges = delrec_par::partition(panels, tasks);
        let data = &bp.data;
        let prior: &[f32] = out;
        let mut stripes: Vec<Vec<f32>> = vec![Vec::new(); tasks];
        pool.for_each_chunk(&mut stripes, 1, |ti, slot| {
            let pr = &panel_ranges[ti];
            let j0 = pr.start * NR;
            let w = (pr.end * NR).min(n) - j0;
            let mut tmp = vec![0.0f32; m * w];
            if ACC {
                for i in 0..m {
                    tmp[i * w..(i + 1) * w].copy_from_slice(&prior[i * n + j0..i * n + j0 + w]);
                }
            }
            gemm_panel_range::<ACC>(a, lda, data, k, n, &mut tmp, m, pr.clone(), w);
            slot[0] = tmp;
        });
        for (ti, pr) in panel_ranges.iter().enumerate() {
            let j0 = pr.start * NR;
            let w = (pr.end * NR).min(n) - j0;
            let tmp = &stripes[ti];
            for i in 0..m {
                out[i * n + j0..i * n + j0 + w].copy_from_slice(&tmp[i * w..(i + 1) * w]);
            }
        }
        return true;
    }
    false
}

/// Panel/tile driver for [`gemm_packed`], monomorphized on `ACC`.
#[inline]
#[allow(clippy::too_many_arguments)]
fn gemm_panels<const ACC: bool>(
    a: &[f32],
    lda: usize,
    data: &[f32],
    k: usize,
    n: usize,
    out: &mut [f32],
    m: usize,
) {
    gemm_panel_range::<ACC>(a, lda, data, k, n, out, m, 0..n.div_ceil(NR), n);
}

/// [`gemm_panels`] restricted to panels `p_range`, writing into an `out`
/// whose rows are `ldo` floats apart and whose column 0 is global column
/// `p_range.start * NR`. The serial path is the full range with `ldo = n`.
#[inline]
#[allow(clippy::too_many_arguments)]
fn gemm_panel_range<const ACC: bool>(
    a: &[f32],
    lda: usize,
    data: &[f32],
    k: usize,
    n: usize,
    out: &mut [f32],
    m: usize,
    p_range: std::ops::Range<usize>,
    ldo: usize,
) {
    let p0 = p_range.start;
    for p in p_range {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        let jo = j0 - p0 * NR; // column offset within `out`
        let panel = &data[p * k * NR..(p + 1) * k * NR];
        let mut i0 = 0;
        while i0 + MR <= m {
            micro_tile::<MR, ACC>(a, lda, panel, out, i0, jo, w, k, ldo);
            i0 += MR;
        }
        // Remainder rows dispatch to compile-time heights so the tile still
        // lives in registers (MR is 4; 1..=3 are the only partial heights).
        match m - i0 {
            0 => {}
            1 => micro_tile::<1, ACC>(a, lda, panel, out, i0, jo, w, k, ldo),
            2 => micro_tile::<2, ACC>(a, lda, panel, out, i0, jo, w, k, ldo),
            _ => micro_tile::<3, ACC>(a, lda, panel, out, i0, jo, w, k, ldo),
        }
    }
}

/// One `MRT`×`NR` output tile against one packed panel. `MRT` and `ACC` are
/// compile-time so the accumulator array promotes to registers: with a
/// runtime row count — or a runtime `accumulate` flag, whose dynamic-length
/// tile load forces the array to be addressable — the tile spills to the
/// stack, every k-step becomes a memory round trip, and the kernel loses to
/// [`matmul_raw`] on wide shapes by ~2.5x.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_tile<const MRT: usize, const ACC: bool>(
    a: &[f32],
    lda: usize,
    panel: &[f32],
    out: &mut [f32],
    i0: usize,
    j0: usize,
    w: usize,
    k: usize,
    ldo: usize,
) {
    // The output tile lives in registers across the whole k loop.
    let mut acc = [[0.0f32; NR]; MRT];
    if ACC {
        for (im, tile) in acc.iter_mut().enumerate() {
            let row = &out[(i0 + im) * ldo + j0..(i0 + im) * ldo + j0 + w];
            tile[..w].copy_from_slice(row);
        }
    }
    let mut kk = 0;
    while kk + 4 <= k {
        let strip = &panel[kk * NR..(kk + 4) * NR];
        let (b0, rest) = strip.split_at(NR);
        let (b1, rest) = rest.split_at(NR);
        let (b2, b3) = rest.split_at(NR);
        for (im, tile) in acc.iter_mut().enumerate() {
            let ar = &a[(i0 + im) * lda + kk..(i0 + im) * lda + kk + 4];
            let (a0, a1, a2, a3) = (ar[0], ar[1], ar[2], ar[3]);
            for jn in 0..NR {
                // Same left-associated group expression as matmul_raw.
                tile[jn] += a0 * b0[jn] + a1 * b1[jn] + a2 * b2[jn] + a3 * b3[jn];
            }
        }
        kk += 4;
    }
    while kk < k {
        let strip = &panel[kk * NR..(kk + 1) * NR];
        for (im, tile) in acc.iter_mut().enumerate() {
            let av = a[(i0 + im) * lda + kk];
            for jn in 0..NR {
                tile[jn] += av * strip[jn];
            }
        }
        kk += 1;
    }
    for (im, tile) in acc.iter().enumerate() {
        let row = &mut out[(i0 + im) * ldo + j0..(i0 + im) * ldo + j0 + w];
        row.copy_from_slice(&tile[..w]);
    }
}

/// `out[m, n] (+)= a[m, k] · dequant(Bq)` for an int8-quantized `B` — the
/// [`QuantizedPanel`] counterpart of [`gemm_packed`].
///
/// The kernel widens each int8 code to f32 in-register and accumulates
/// `Σ_k a[i,k] · widen(q[k,j])` in f32 with exactly [`gemm_packed`]'s
/// k-order (full 4-groups in ascending k, the same left-associated group
/// expression, then the remainder one product at a time). The per-column
/// scale multiplies the *finished* sum once at write-back; with
/// `accumulate`, the prior `out` value is added after that single multiply.
/// One fixed rounding schedule per output element means results are
/// run-to-run and thread-count deterministic — though not bitwise-equal to
/// [`gemm_packed`] over the unquantized weights, which is the whole trade.
#[inline]
pub fn gemm_packed_q8(
    a: &[f32],
    lda: usize,
    bq: &QuantizedPanel,
    out: &mut [f32],
    m: usize,
    accumulate: bool,
) {
    let (k, n) = (bq.k, bq.n);
    debug_assert!(lda >= k, "row stride {lda} shorter than k {k}");
    debug_assert!(m == 0 || a.len() >= (m - 1) * lda + k);
    debug_assert_eq!(out.len(), m * n);
    if accumulate {
        q8_dispatch::<true>(a, lda, bq, out, m);
    } else {
        q8_dispatch::<false>(a, lda, bq, out, m);
    }
}

/// Serial/parallel split for [`gemm_packed_q8`]; same structure and
/// thresholds as [`gemm_dispatch`], so the determinism argument carries
/// over verbatim: parallelism only changes which thread computes which
/// disjoint outputs, never any per-element expression.
#[inline]
fn q8_dispatch<const ACC: bool>(
    a: &[f32],
    lda: usize,
    bq: &QuantizedPanel,
    out: &mut [f32],
    m: usize,
) {
    if q8_try_parallel::<ACC>(a, lda, bq, out, m) {
        return;
    }
    q8_panels::<ACC>(a, lda, &bq.data, &bq.scales, bq.k, bq.n, out, m);
}

/// Parallel driver for [`gemm_packed_q8`]: a line-for-line mirror of
/// [`gemm_try_parallel`] (same MAC threshold, same deterministic
/// [`delrec_par::partition`] row/panel split, same private-stripe copy-back
/// when accumulating), so q8 results are bitwise-identical across thread
/// counts by the same construction the f32 path is.
fn q8_try_parallel<const ACC: bool>(
    a: &[f32],
    lda: usize,
    bq: &QuantizedPanel,
    out: &mut [f32],
    m: usize,
) -> bool {
    let (k, n) = (bq.k, bq.n);
    let macs = m * k * n;
    if macs < 2 * PAR_MIN_MACS_PER_TASK {
        return false;
    }
    let pool = delrec_par::current();
    let lanes = pool.lanes();
    if lanes < 2 {
        return false;
    }
    let task_cap = (macs / PAR_MIN_MACS_PER_TASK).min(lanes);
    let row_tiles = m.div_ceil(MR);
    if row_tiles >= 2 && task_cap >= 2 {
        let tile_ranges = delrec_par::partition(row_tiles, task_cap.min(row_tiles));
        let row_ranges: Vec<_> = tile_ranges
            .iter()
            .map(|r| r.start * MR * n..(r.end * MR).min(m) * n)
            .collect();
        let data = &bq.data;
        let scales = &bq.scales;
        pool.for_each_range(out, &row_ranges, |ti, out_chunk| {
            let i0 = tile_ranges[ti].start * MR;
            let rows = out_chunk.len() / n;
            q8_panels::<ACC>(&a[i0 * lda..], lda, data, scales, k, n, out_chunk, rows);
        });
        return true;
    }
    let panels = n.div_ceil(NR);
    let tasks = task_cap.min(panels);
    if tasks >= 2 {
        let panel_ranges = delrec_par::partition(panels, tasks);
        let data = &bq.data;
        let scales = &bq.scales;
        let prior: &[f32] = out;
        let mut stripes: Vec<Vec<f32>> = vec![Vec::new(); tasks];
        pool.for_each_chunk(&mut stripes, 1, |ti, slot| {
            let pr = &panel_ranges[ti];
            let j0 = pr.start * NR;
            let w = (pr.end * NR).min(n) - j0;
            let mut tmp = vec![0.0f32; m * w];
            if ACC {
                for i in 0..m {
                    tmp[i * w..(i + 1) * w].copy_from_slice(&prior[i * n + j0..i * n + j0 + w]);
                }
            }
            q8_panel_range::<ACC>(a, lda, data, scales, k, n, &mut tmp, m, pr.clone(), w);
            slot[0] = tmp;
        });
        for (ti, pr) in panel_ranges.iter().enumerate() {
            let j0 = pr.start * NR;
            let w = (pr.end * NR).min(n) - j0;
            let tmp = &stripes[ti];
            for i in 0..m {
                out[i * n + j0..i * n + j0 + w].copy_from_slice(&tmp[i * w..(i + 1) * w]);
            }
        }
        return true;
    }
    false
}

/// Panel/tile driver for [`gemm_packed_q8`], monomorphized on `ACC`.
#[inline]
#[allow(clippy::too_many_arguments)]
fn q8_panels<const ACC: bool>(
    a: &[f32],
    lda: usize,
    data: &[i8],
    scales: &[f32],
    k: usize,
    n: usize,
    out: &mut [f32],
    m: usize,
) {
    q8_panel_range::<ACC>(a, lda, data, scales, k, n, out, m, 0..n.div_ceil(NR), n);
}

/// [`q8_panels`] restricted to panels `p_range` — the q8 mirror of
/// [`gemm_panel_range`], with the panel's `NR` scales sliced alongside its
/// codes.
#[inline]
#[allow(clippy::too_many_arguments)]
fn q8_panel_range<const ACC: bool>(
    a: &[f32],
    lda: usize,
    data: &[i8],
    scales: &[f32],
    k: usize,
    n: usize,
    out: &mut [f32],
    m: usize,
    p_range: std::ops::Range<usize>,
    ldo: usize,
) {
    let p0 = p_range.start;
    for p in p_range {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        let jo = j0 - p0 * NR; // column offset within `out`
        let panel = &data[p * k * NR..(p + 1) * k * NR];
        let lane_scale = &scales[p * NR..(p + 1) * NR];
        let mut i0 = 0;
        while i0 + MR <= m {
            micro_tile_q8::<MR, ACC>(a, lda, panel, lane_scale, out, i0, jo, w, k, ldo);
            i0 += MR;
        }
        match m - i0 {
            0 => {}
            1 => micro_tile_q8::<1, ACC>(a, lda, panel, lane_scale, out, i0, jo, w, k, ldo),
            2 => micro_tile_q8::<2, ACC>(a, lda, panel, lane_scale, out, i0, jo, w, k, ldo),
            _ => micro_tile_q8::<3, ACC>(a, lda, panel, lane_scale, out, i0, jo, w, k, ldo),
        }
    }
}

/// One `MRT`×`NR` output tile against one int8 panel. Codes accumulate as
/// widened f32 in registers (same const-generic spill avoidance as
/// [`micro_tile`]); the prior `out` values are *not* pre-loaded into the
/// tile — the per-column scale must multiply only the fresh sum, so the
/// accumulate add happens at write-back as `out += sum · scale`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_tile_q8<const MRT: usize, const ACC: bool>(
    a: &[f32],
    lda: usize,
    panel: &[i8],
    lane_scale: &[f32],
    out: &mut [f32],
    i0: usize,
    j0: usize,
    w: usize,
    k: usize,
    ldo: usize,
) {
    let mut acc = [[0.0f32; NR]; MRT];
    let mut kk = 0;
    while kk + 4 <= k {
        let strip = &panel[kk * NR..(kk + 4) * NR];
        let (b0, rest) = strip.split_at(NR);
        let (b1, rest) = rest.split_at(NR);
        let (b2, b3) = rest.split_at(NR);
        for (im, tile) in acc.iter_mut().enumerate() {
            let ar = &a[(i0 + im) * lda + kk..(i0 + im) * lda + kk + 4];
            let (a0, a1, a2, a3) = (ar[0], ar[1], ar[2], ar[3]);
            for jn in 0..NR {
                // Same left-associated group expression as micro_tile, over
                // in-register widened codes.
                tile[jn] += a0 * f32::from(b0[jn])
                    + a1 * f32::from(b1[jn])
                    + a2 * f32::from(b2[jn])
                    + a3 * f32::from(b3[jn]);
            }
        }
        kk += 4;
    }
    while kk < k {
        let strip = &panel[kk * NR..(kk + 1) * NR];
        for (im, tile) in acc.iter_mut().enumerate() {
            let av = a[(i0 + im) * lda + kk];
            for jn in 0..NR {
                tile[jn] += av * f32::from(strip[jn]);
            }
        }
        kk += 1;
    }
    for (im, tile) in acc.iter().enumerate() {
        let row = &mut out[(i0 + im) * ldo + j0..(i0 + im) * ldo + j0 + w];
        for (o, (&sum, &s)) in row.iter_mut().zip(tile.iter().zip(lane_scale)) {
            if ACC {
                *o += sum * s;
            } else {
                *o = sum * s;
            }
        }
    }
}

/// One-shot blocked GEMM: pack `b`, then `out += a · b`. A drop-in for
/// [`matmul_raw`] (bitwise-identical accumulate semantics) that pays one
/// packing pass per call — use [`pack_b`] + [`gemm_packed`] when `b` is
/// reused across calls.
pub fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    let bp = pack_b(b, k, n);
    gemm_packed(a, k, &bp, out, m, true);
}

/// `out = a · b` over a **zero-filled** `out`, choosing the blocked kernel
/// when the shape amortizes its packing pass and falling back to
/// [`matmul_raw`] otherwise. Both arms are bitwise-identical, so the
/// heuristic is free to change; this is the kernel behind
/// [`crate::Tape::matmul`]'s 2-D forward and backward.
pub fn gemm_auto(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert!(out.iter().all(|&x| x == 0.0), "gemm_auto needs zeroed out");
    // Packing costs an allocation plus k·n writes against m·k·n multiplies:
    // below ~8 rows the pack dominates, below one panel of columns blocking
    // buys nothing, and below AUTO_PACK_MIN_MACS total work the raw kernel
    // finishes before the pack's data movement pays for itself.
    if m >= 8 && n >= NR && m * k * n >= AUTO_PACK_MIN_MACS {
        let bp = pack_b(b, k, n);
        gemm_packed(a, k, &bp, out, m, false);
    } else {
        matmul_raw(a, b, out, m, k, n);
    }
}

/// [`matmul_raw`] with `A` rows `lda` floats apart and explicit accumulate
/// control: the small-shape companion of [`gemm_packed`] for operands built
/// on the fly (attention scores over an assembled `Kᵀ`, attn·V) where `A` is
/// a strided view into a fused projection buffer and packing `B` per call
/// would cost more than it saves.
///
/// `accumulate = false` zero-fills exactly the `m·n` region the kernel
/// writes — no caller-side clears of anything wider — and matches
/// [`matmul_raw`] over a zeroed `out` bitwise.
#[allow(clippy::too_many_arguments)]
pub fn matmul_raw_strided(
    a: &[f32],
    lda: usize,
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    debug_assert!(lda >= k, "row stride {lda} shorter than k {k}");
    debug_assert!(m == 0 || a.len() >= (m - 1) * lda + k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * lda..i * lda + k];
        let out_row = &mut out[i * n..(i + 1) * n];
        if !accumulate {
            out_row.fill(0.0);
        }
        let mut kk = 0;
        while kk + 4 <= k {
            let (a0, a1, a2, a3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
            let (b0, rest) = b[kk * n..].split_at(n);
            let (b1, rest) = rest.split_at(n);
            let (b2, rest) = rest.split_at(n);
            let b3 = &rest[..n];
            for (j, o) in out_row.iter_mut().enumerate() {
                *o += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
            }
            kk += 4;
        }
        for (kk, &av) in a_row.iter().enumerate().skip(kk) {
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmul::transpose_into;

    /// Deterministic pseudo-random fill, different per (seed, index).
    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn gemm_is_bitwise_matmul_raw_across_remainder_classes() {
        // Every combination of full/partial tiles: m around MR, n around NR,
        // k around the 4-group width.
        for &m in &[1usize, 3, 4, 5, 8, 13] {
            for &k in &[1usize, 2, 3, 4, 7, 16] {
                for &n in &[1usize, 5, 8, 9, 16, 19] {
                    let a = fill(m as u64 * 31 + k as u64, m * k);
                    let b = fill(n as u64 * 17 + 7, k * n);
                    let mut want = fill(99, m * n); // non-zero: accumulate path
                    let mut got = want.clone();
                    matmul_raw(&a, &b, &mut want, m, k, n);
                    gemm(&a, &b, &mut got, m, k, n);
                    assert_eq!(
                        want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        "m={m} k={k} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn overwrite_mode_equals_matmul_raw_over_zeroed_out() {
        let (m, k, n) = (6, 10, 11);
        let a = fill(1, m * k);
        let b = fill(2, k * n);
        let mut want = vec![0.0f32; m * n];
        matmul_raw(&a, &b, &mut want, m, k, n);
        let bp = pack_b(&b, k, n);
        let mut got = fill(3, m * n); // garbage: overwrite must not read it
        gemm_packed(&a, k, &bp, &mut got, m, false);
        assert_eq!(
            want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            got.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn strided_a_reads_the_right_columns() {
        // A is the first k columns of a wider [m, lda] buffer.
        let (m, k, n, lda) = (5, 6, 9, 10);
        let wide = fill(4, m * lda);
        let mut narrow = vec![0.0f32; m * k];
        for i in 0..m {
            narrow[i * k..(i + 1) * k].copy_from_slice(&wide[i * lda..i * lda + k]);
        }
        let b = fill(5, k * n);
        let mut want = vec![0.0f32; m * n];
        matmul_raw(&narrow, &b, &mut want, m, k, n);

        let bp = pack_b(&b, k, n);
        let mut got = vec![0.0f32; m * n];
        gemm_packed(&wide, lda, &bp, &mut got, m, false);
        assert_eq!(want, got, "gemm_packed with lda");

        let mut got2 = fill(6, m * n);
        matmul_raw_strided(&wide, lda, &b, &mut got2, m, k, n, false);
        assert_eq!(want, got2, "matmul_raw_strided overwrite with lda");
    }

    #[test]
    fn transposed_pack_matches_transpose_then_pack() {
        let (k, n) = (7, 13);
        let src = fill(8, n * k); // [n, k] row-major
        let mut bt = vec![0.0f32; n * k];
        transpose_into(&src, n, k, &mut bt); // [k, n]
        let via_transpose = pack_b(&bt, k, n);
        let direct = pack_b_transposed(&src, k, n);
        assert_eq!(via_transpose.data, direct.data);
        let a = fill(9, 3 * k);
        let mut want = vec![0.0f32; 3 * n];
        matmul_raw(&a, &bt, &mut want, 3, k, n);
        let mut got = vec![0.0f32; 3 * n];
        gemm_packed(&a, k, &direct, &mut got, 3, false);
        assert_eq!(want, got);
    }

    /// Widen a pack's codes back to a row-major `[k, n]` f32 matrix, run the
    /// reference [`matmul_raw`] over them (the same per-element k-order the
    /// q8 micro-kernel uses), then apply scale-then-prior at each element —
    /// the semantics `gemm_packed_q8` must reproduce bitwise.
    fn q8_reference(a: &[f32], bq: &QuantizedPanel, m: usize, prior: Option<&[f32]>) -> Vec<f32> {
        let (k, n) = (bq.k, bq.n);
        let mut codes = vec![0.0f32; k * n];
        for j in 0..n {
            for kk in 0..k {
                codes[kk * n + j] = f32::from(bq.data[(j / NR) * k * NR + kk * NR + j % NR]);
            }
        }
        let mut sums = vec![0.0f32; m * n];
        matmul_raw(a, &codes, &mut sums, m, k, n);
        sums.iter()
            .enumerate()
            .map(|(idx, &sum)| {
                let scaled = sum * bq.scales[idx % n];
                match prior {
                    Some(p) => p[idx] + scaled,
                    None => scaled,
                }
            })
            .collect()
    }

    #[test]
    fn q8_pack_scales_map_maxabs_to_127() {
        let (k, n) = (9, 13);
        let b = fill(42, k * n);
        let bq = pack_b_q8(&b, k, n);
        for j in 0..n {
            let maxabs = (0..k).map(|kk| b[kk * n + j].abs()).fold(0.0f32, f32::max);
            let s = bq.scales()[j];
            assert!(
                (s - maxabs / 127.0).abs() <= f32::EPSILON * maxabs,
                "column {j}: scale {s} vs maxabs/127 {}",
                maxabs / 127.0
            );
            let code_max = (0..k)
                .map(|kk| bq.data[(j / NR) * k * NR + kk * NR + j % NR].unsigned_abs())
                .max()
                .unwrap();
            assert_eq!(code_max, 127, "column {j}: max |code| must hit 127");
            for kk in 0..k {
                let q = bq.data[(j / NR) * k * NR + kk * NR + j % NR];
                let deq = f32::from(q) * s;
                assert!(
                    (deq - b[kk * n + j]).abs() <= maxabs / 254.0 + f32::EPSILON * maxabs,
                    "column {j} row {kk}: dequant {deq} vs {}",
                    b[kk * n + j]
                );
            }
        }
        // Padded lanes of the last panel: zero scale, zero codes.
        for j in n..n.div_ceil(NR) * NR {
            assert_eq!(bq.scales()[j], 0.0);
        }
    }

    #[test]
    fn q8_zero_columns_produce_exact_zeros_not_nan() {
        let (m, k, n) = (5, 7, 10);
        let mut b = fill(3, k * n);
        for kk in 0..k {
            b[kk * n + 4] = 0.0; // column 4 all zeros
        }
        let bq = pack_b_q8(&b, k, n);
        assert_eq!(bq.scales()[4], 0.0);
        let a = fill(4, m * k);
        let mut out = vec![f32::NAN; m * n];
        gemm_packed_q8(&a, k, &bq, &mut out, m, false);
        for i in 0..m {
            assert_eq!(out[i * n + 4].to_bits(), 0.0f32.to_bits());
        }
        assert!(out.iter().all(|x| !x.is_nan()));
    }

    #[test]
    fn q8_kernel_is_bitwise_reference_across_remainder_classes() {
        for &m in &[1usize, 3, 4, 5, 8, 13] {
            for &k in &[1usize, 2, 3, 4, 7, 16] {
                for &n in &[1usize, 5, 8, 9, 16, 19] {
                    let a = fill(m as u64 * 31 + k as u64, m * k);
                    let b = fill(n as u64 * 17 + 7, k * n);
                    let bq = pack_b_q8(&b, k, n);
                    // Overwrite mode.
                    let want = q8_reference(&a, &bq, m, None);
                    let mut got = fill(99, m * n); // garbage: must not be read
                    gemm_packed_q8(&a, k, &bq, &mut got, m, false);
                    assert_eq!(
                        want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        "overwrite m={m} k={k} n={n}"
                    );
                    // Accumulate mode.
                    let prior = fill(7, m * n);
                    let want = q8_reference(&a, &bq, m, Some(&prior));
                    let mut got = prior.clone();
                    gemm_packed_q8(&a, k, &bq, &mut got, m, true);
                    assert_eq!(
                        want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        "accumulate m={m} k={k} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn q8_transposed_pack_matches_transpose_then_pack() {
        let (k, n) = (7, 13);
        let src = fill(8, n * k); // [n, k] row-major
        let mut bt = vec![0.0f32; n * k];
        transpose_into(&src, n, k, &mut bt); // [k, n]
        let via_transpose = pack_b_q8(&bt, k, n);
        let direct = pack_b_transposed_q8(&src, k, n);
        assert_eq!(via_transpose.data, direct.data);
        assert_eq!(via_transpose.scales, direct.scales);
    }

    /// The q8 mirror of `parallel_gemm_is_bitwise_serial`: shapes crossing
    /// the parallel threshold through both the row-block and panel-block
    /// paths, both accumulate modes, thread counts {1, 2, 4, 8}.
    #[test]
    fn parallel_q8_is_bitwise_serial() {
        for &(m, k, n) in &[(64usize, 64usize, 40usize), (3, 512, 256), (33, 48, 96)] {
            let a = fill(m as u64 ^ 0xabc, m * k);
            let b = fill(n as u64 ^ 0xdef, k * n);
            let bq = pack_b_q8(&b, k, n);
            for accumulate in [false, true] {
                let seed_out = fill(7, m * n);
                let serial = delrec_par::with_pool(&delrec_par::ThreadPool::new(1), || {
                    let mut out = seed_out.clone();
                    gemm_packed_q8(&a, k, &bq, &mut out, m, accumulate);
                    out
                });
                for lanes in [2usize, 4, 8] {
                    let pool = delrec_par::ThreadPool::new(lanes);
                    let got = delrec_par::with_pool(&pool, || {
                        let mut out = seed_out.clone();
                        gemm_packed_q8(&a, k, &bq, &mut out, m, accumulate);
                        out
                    });
                    assert_eq!(
                        serial.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        "m={m} k={k} n={n} acc={accumulate} lanes={lanes}"
                    );
                }
            }
        }
    }

    #[test]
    fn q8_pack_is_at_least_3_5x_smaller_at_serving_k() {
        // The serving panels all have k ≥ 32 (XL preset), where the 4-byte
        // per-column scale overhead leaves 4k/(k+4) ≥ 3.56x.
        let (k, n) = (32, 96);
        let b = fill(12, k * n);
        let ratio = pack_b(&b, k, n).bytes() as f64 / pack_b_q8(&b, k, n).bytes() as f64;
        assert!(ratio >= 3.5, "pack-memory ratio {ratio:.2} < 3.5");
    }

    #[test]
    fn gemm_auto_both_arms_agree() {
        for &(m, k, n) in &[(2usize, 5usize, 4usize), (16, 16, 48)] {
            let a = fill(10 + m as u64, m * k);
            let b = fill(20 + n as u64, k * n);
            let mut want = vec![0.0f32; m * n];
            matmul_raw(&a, &b, &mut want, m, k, n);
            let mut got = vec![0.0f32; m * n];
            gemm_auto(&a, &b, &mut got, m, k, n);
            assert_eq!(
                want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "m={m} k={k} n={n}"
            );
        }
    }

    #[test]
    fn gemm_auto_agrees_at_the_pack_threshold_boundary() {
        // Shapes pinned to straddle AUTO_PACK_MIN_MACS by name, so a future
        // retune of the threshold keeps exercising both dispatch arms right
        // at the boundary instead of silently testing one arm twice.
        let k = 16usize;
        let m_at = AUTO_PACK_MIN_MACS / (k * NR * 2) + 1; // packs (m ≥ 8, n ≥ NR)
        for &(m, n) in &[(m_at, NR * 2), (7, AUTO_PACK_MIN_MACS / k)] {
            assert_eq!(
                (m * k * n >= AUTO_PACK_MIN_MACS) && m >= 8,
                m == m_at,
                "shape ({m},{k},{n}) no longer straddles the threshold"
            );
            let a = fill(31 + m as u64, m * k);
            let b = fill(37 + n as u64, k * n);
            let mut want = vec![0.0f32; m * n];
            matmul_raw(&a, &b, &mut want, m, k, n);
            let mut got = vec![0.0f32; m * n];
            gemm_auto(&a, &b, &mut got, m, k, n);
            assert_eq!(
                want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "m={m} k={k} n={n}"
            );
        }
    }

    #[test]
    fn k_zero_overwrite_clears_out() {
        let bp = pack_b(&[], 0, 5);
        let mut out = fill(11, 3 * 5);
        gemm_packed(&[], 0, &bp, &mut out, 3, false);
        assert!(out.iter().all(|&x| x == 0.0));
    }

    /// Shapes big enough to cross the parallel threshold, covering both the
    /// row-block path (tall) and the panel-block path (short and wide), in
    /// both accumulate modes, at several lane counts.
    #[test]
    fn parallel_gemm_is_bitwise_serial() {
        for &(m, k, n) in &[(64usize, 64usize, 40usize), (3, 512, 256), (33, 48, 96)] {
            let a = fill(m as u64 ^ 0xabc, m * k);
            let b = fill(n as u64 ^ 0xdef, k * n);
            let bp = pack_b(&b, k, n);
            for accumulate in [false, true] {
                let seed_out = fill(7, m * n);
                let serial = delrec_par::with_pool(&delrec_par::ThreadPool::new(1), || {
                    let mut out = seed_out.clone();
                    gemm_packed(&a, k, &bp, &mut out, m, accumulate);
                    out
                });
                for lanes in [2usize, 3, 7, 8] {
                    let pool = delrec_par::ThreadPool::new(lanes);
                    let got = delrec_par::with_pool(&pool, || {
                        let mut out = seed_out.clone();
                        gemm_packed(&a, k, &bp, &mut out, m, accumulate);
                        out
                    });
                    assert_eq!(
                        serial.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        "m={m} k={k} n={n} acc={accumulate} lanes={lanes}"
                    );
                }
            }
        }
    }

    /// The threshold must actually engage the pool for large products (the
    /// bitwise test above would pass vacuously if everything stayed serial).
    #[test]
    fn parallel_path_engages_above_threshold() {
        let tasks = delrec_obs::global().counter("par.pool.tasks");
        let (m, k, n) = (64, 64, 64);
        let a = fill(21, m * k);
        let b = fill(22, k * n);
        let bp = pack_b(&b, k, n);
        let mut out = vec![0.0f32; m * n];
        let pool = delrec_par::ThreadPool::new(4);
        let before = tasks.get();
        delrec_par::with_pool(&pool, || {
            gemm_packed(&a, k, &bp, &mut out, m, false);
        });
        assert!(
            tasks.get() > before,
            "large product should fork to the pool"
        );
    }
}
