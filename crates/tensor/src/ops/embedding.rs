//! Row gathering and scattering: embedding lookups and prompt assembly.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// Gather rows of a `[n, d]` tensor: `out[i] = x[indices[i]]`.
    /// Duplicate indices are allowed; their gradients accumulate.
    pub fn gather_rows(&self, x: Var, indices: &[usize]) -> Var {
        let (n, d, out) = {
            let vx = self.value(x);
            assert_eq!(vx.shape().rank(), 2, "gather_rows expects rank 2");
            let (n, d) = (vx.shape().dim(0), vx.shape().dim(1));
            let mut out = self.alloc(indices.len() * d);
            for (i, &idx) in indices.iter().enumerate() {
                assert!(idx < n, "gather index {idx} out of bounds for {n} rows");
                out[i * d..(i + 1) * d].copy_from_slice(vx.row(idx));
            }
            (n, d, out)
        };
        let m = indices.len();
        let indices = indices.to_vec();
        self.push(
            Tensor::new([m, d], out),
            vec![x.id],
            Some(Box::new(move |ctx| {
                let g = ctx.grad();
                let mut gx = ctx.alloc(n * d);
                for (i, &idx) in indices.iter().enumerate() {
                    for c in 0..d {
                        gx[idx * d + c] += g.data()[i * d + c];
                    }
                }
                vec![Tensor::new([n, d], gx)]
            })),
        )
    }

    /// Batched embedding lookup over right-padded sequences: gathers each
    /// sequence's rows from a `[v, d]` table into a `[B, t_max, d]` tensor,
    /// leaving padded positions exactly zero.
    ///
    /// Equivalent to `B` separate [`Tape::gather_rows`] calls plus padding,
    /// but records a single node, and its backward pass touches only the
    /// valid positions — the one-hot/padded sparsity that used to be chased
    /// with a zero-skip branch inside the dense matmul kernel lives here,
    /// where the zero rows are known structurally instead of tested per
    /// element.
    ///
    /// # Panics
    /// Panics if any sequence is longer than `t_max` or indexes out of range.
    pub fn embedding_padded(&self, table: Var, seqs: &[Vec<usize>], t_max: usize) -> Var {
        let bsz = seqs.len();
        assert!(bsz > 0, "embedding_padded over zero sequences");
        let (v, d, out) = {
            let vt = self.value(table);
            assert_eq!(
                vt.shape().rank(),
                2,
                "embedding_padded expects rank-2 table"
            );
            let (v, d) = (vt.shape().dim(0), vt.shape().dim(1));
            let mut out = self.alloc(bsz * t_max * d);
            for (b, seq) in seqs.iter().enumerate() {
                assert!(
                    seq.len() <= t_max,
                    "sequence {b} has {} tokens but t_max is {t_max}",
                    seq.len()
                );
                for (t, &idx) in seq.iter().enumerate() {
                    assert!(idx < v, "embedding index {idx} out of bounds for {v} rows");
                    let row = (b * t_max + t) * d;
                    out[row..row + d].copy_from_slice(vt.row(idx));
                }
            }
            (v, d, out)
        };
        let seqs: Vec<Vec<usize>> = seqs.to_vec();
        self.push(
            Tensor::new([bsz, t_max, d], out),
            vec![table.id],
            Some(Box::new(move |ctx| {
                let g = ctx.grad();
                let mut gt = ctx.alloc(v * d);
                for (b, seq) in seqs.iter().enumerate() {
                    // Padded positions (t ≥ seq.len()) are skipped wholesale.
                    for (t, &idx) in seq.iter().enumerate() {
                        let row = (b * t_max + t) * d;
                        for c in 0..d {
                            gt[idx * d + c] += g.data()[row + c];
                        }
                    }
                }
                vec![Tensor::new([v, d], gt)]
            })),
        )
    }

    /// Scatter selected rows of `table` (`[v, d]`) into a fresh `[out_rows, d]`
    /// tensor: for each `(src, dst)` pair, `out[dst] = table[src]`. Rows not
    /// mentioned stay zero, so two scatters from different tables can be
    /// summed to interleave hard-token and soft-prompt embeddings.
    pub fn scatter_rows(&self, table: Var, pairs: &[(usize, usize)], out_rows: usize) -> Var {
        let (v, d, out) = {
            let vt = self.value(table);
            assert_eq!(vt.shape().rank(), 2, "scatter_rows expects rank-2 table");
            let (v, d) = (vt.shape().dim(0), vt.shape().dim(1));
            let mut out = self.alloc(out_rows * d);
            for &(src, dst) in pairs {
                assert!(src < v, "scatter source row {src} out of bounds ({v})");
                assert!(
                    dst < out_rows,
                    "scatter dest row {dst} out of bounds ({out_rows})"
                );
                let row = vt.row(src);
                for c in 0..d {
                    out[dst * d + c] += row[c];
                }
            }
            (v, d, out)
        };
        let pairs = pairs.to_vec();
        self.push(
            Tensor::new([out_rows, d], out),
            vec![table.id],
            Some(Box::new(move |ctx| {
                let g = ctx.grad();
                let mut gt = ctx.alloc(v * d);
                for &(src, dst) in &pairs {
                    for c in 0..d {
                        gt[src * d + c] += g.data()[dst * d + c];
                    }
                }
                vec![Tensor::new([v, d], gt)]
            })),
        )
    }

    /// Select one row of a `[n, d]` tensor as a `[d]` vector.
    pub fn select_row(&self, x: Var, row: usize) -> Var {
        let d = self.value(x).shape().last();
        let g = self.gather_rows(x, &[row]);
        self.reshape(g, [d])
    }

    /// Stack `k` vectors of shape `[d]` into a `[k, d]` matrix.
    pub fn stack_rows(&self, rows: &[Var]) -> Var {
        assert!(!rows.is_empty(), "stack_rows of zero vars");
        let (d, out) = {
            let d = self.value(rows[0]).numel();
            let mut out = self.alloc(rows.len() * d);
            for (i, &r) in rows.iter().enumerate() {
                let vr = self.value(r);
                assert_eq!(vr.numel(), d, "stack_rows rows must share length");
                out[i * d..(i + 1) * d].copy_from_slice(vr.data());
            }
            (d, out)
        };
        let k = rows.len();
        let shapes: Vec<_> = rows.iter().map(|&r| self.shape_of(r)).collect();
        self.push(
            Tensor::new([k, d], out),
            rows.iter().map(|r| r.id).collect(),
            Some(Box::new(move |ctx| {
                let g = ctx.grad();
                shapes
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        Tensor::new(s.clone(), ctx.alloc_copy(&g.data()[i * d..(i + 1) * d]))
                    })
                    .collect()
            })),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_grad;
    use crate::shape::Shape;

    #[test]
    fn gather_duplicates_accumulate() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::new([3, 2], vec![1., 2., 3., 4., 5., 6.]));
        let g = tape.gather_rows(x, &[1, 1, 0]);
        assert_eq!(tape.get(g).data(), &[3., 4., 3., 4., 1., 2.]);
        let loss = tape.sum_all(g);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(x).unwrap().data(), &[1., 1., 2., 2., 0., 0.]);
    }

    #[test]
    fn embedding_padded_matches_per_sequence_gathers() {
        let tape = Tape::new();
        let table = tape.leaf(Tensor::new([4, 2], vec![1., 2., 3., 4., 5., 6., 7., 8.]));
        let seqs = vec![vec![2, 0, 1], vec![3]];
        let e = tape.embedding_padded(table, &seqs, 3);
        assert_eq!(tape.shape_of(e), Shape::from([2, 3, 2]));
        let ve = tape.get(e);
        // Batch 0: rows 2, 0, 1 of the table.
        assert_eq!(&ve.data()[..6], &[5., 6., 1., 2., 3., 4.]);
        // Batch 1: row 3 then zero padding.
        assert_eq!(&ve.data()[6..], &[7., 8., 0., 0., 0., 0.]);
        // Gradients accumulate only into looked-up rows.
        let loss = tape.sum_all(e);
        let grads = tape.backward(loss);
        assert_eq!(
            grads.get(table).unwrap().data(),
            &[1., 1., 1., 1., 1., 1., 1., 1.]
        );
    }

    #[test]
    fn grad_check_embedding_padded() {
        check_grad(
            &[vec![0.5, -1.2, 2.0, 0.1, 0.9, -0.4]],
            &[Shape::from([3, 2])],
            |tape, vars| {
                let e = tape.embedding_padded(vars[0], &[vec![2, 2], vec![0]], 2);
                let q = tape.sqr(e);
                tape.sum_all(q)
            },
        );
    }

    #[test]
    fn scatter_fills_and_zeros() {
        let tape = Tape::new();
        let t = tape.leaf(Tensor::new([2, 2], vec![1., 2., 3., 4.]));
        let s = tape.scatter_rows(t, &[(0, 2), (1, 0)], 3);
        assert_eq!(tape.get(s).data(), &[3., 4., 0., 0., 1., 2.]);
    }

    #[test]
    fn scatter_sum_interleaves_two_tables() {
        let tape = Tape::new();
        let hard = tape.leaf(Tensor::new([1, 2], vec![1., 1.]));
        let soft = tape.leaf(Tensor::new([1, 2], vec![7., 7.]));
        let h = tape.scatter_rows(hard, &[(0, 0)], 2);
        let s = tape.scatter_rows(soft, &[(0, 1)], 2);
        let seq = tape.add(h, s);
        assert_eq!(tape.get(seq).data(), &[1., 1., 7., 7.]);
    }

    #[test]
    fn select_row_shape() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]));
        let r = tape.select_row(x, 1);
        assert_eq!(tape.shape_of(r), Shape::from([3]));
        assert_eq!(tape.get(r).data(), &[4., 5., 6.]);
    }

    #[test]
    fn stack_rows_roundtrip() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1., 2.]));
        let b = tape.leaf(Tensor::from_vec(vec![3., 4.]));
        let s = tape.stack_rows(&[a, b]);
        assert_eq!(tape.shape_of(s), Shape::from([2, 2]));
        let loss = tape.sum_all(s);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(a).unwrap().data(), &[1., 1.]);
        assert_eq!(grads.get(b).unwrap().data(), &[1., 1.]);
    }

    #[test]
    fn grad_check_gather_scatter() {
        check_grad(
            &[vec![0.5, -1.2, 2.0, 0.1, 0.9, -0.4]],
            &[Shape::from([3, 2])],
            |tape, vars| {
                let g = tape.gather_rows(vars[0], &[2, 0, 2]);
                let s = tape.scatter_rows(vars[0], &[(1, 0), (0, 1)], 3);
                let q1 = tape.sqr(g);
                let q2 = tape.sqr(s);
                let a = tape.sum_all(q1);
                let b = tape.sum_all(q2);
                tape.add(a, b)
            },
        );
    }
}
