//! Layer normalization.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

pub(crate) const EPS: f32 = 1e-5;

impl Tape {
    /// Layer normalization over the last axis with learned scale `gamma` and
    /// shift `beta` (both `[d]`).
    pub fn layer_norm(&self, x: Var, gamma: Var, beta: Var) -> Var {
        let (rows, d, shape, out, xhat, inv_std) = {
            let (vx, vg, vb) = (self.value(x), self.value(gamma), self.value(beta));
            let d = vx.shape().last();
            assert_eq!(vg.numel(), d, "gamma must be [{d}]");
            assert_eq!(vb.numel(), d, "beta must be [{d}]");
            let rows = vx.shape().rows();
            let mut out = self.alloc(vx.numel());
            // Normalized (pre-affine) values, needed by the backward pass.
            let mut xhat = self.alloc(vx.numel());
            let mut inv_std = self.alloc(rows);
            for r in 0..rows {
                let row = vx.row(r);
                let mean = row.iter().sum::<f32>() / d as f32;
                let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
                let istd = 1.0 / (var + EPS).sqrt();
                inv_std[r] = istd;
                for c in 0..d {
                    let h = (row[c] - mean) * istd;
                    xhat[r * d + c] = h;
                    out[r * d + c] = h * vg.data()[c] + vb.data()[c];
                }
            }
            (rows, d, vx.shape().clone(), out, xhat, inv_std)
        };
        self.push(
            Tensor::new(shape, out),
            vec![x.id, gamma.id, beta.id],
            Some(Box::new(move |ctx| {
                let (vg, g) = (ctx.value(gamma), ctx.grad());
                let mut gx = ctx.alloc(g.numel());
                let mut gg = ctx.alloc(d);
                let mut gb = ctx.alloc(d);
                for r in 0..rows {
                    let gs = &g.data()[r * d..(r + 1) * d];
                    let hs = &xhat[r * d..(r + 1) * d];
                    // Accumulate affine-parameter grads.
                    for c in 0..d {
                        gg[c] += gs[c] * hs[c];
                        gb[c] += gs[c];
                    }
                    // dxhat = g * gamma; then the standard layernorm backward:
                    // dx = (dxhat − mean(dxhat) − xhat * mean(dxhat ⊙ xhat)) * inv_std
                    let mut sum_dh = 0.0f32;
                    let mut sum_dh_h = 0.0f32;
                    for c in 0..d {
                        let dh = gs[c] * vg.data()[c];
                        sum_dh += dh;
                        sum_dh_h += dh * hs[c];
                    }
                    let inv_d = 1.0 / d as f32;
                    for c in 0..d {
                        let dh = gs[c] * vg.data()[c];
                        gx[r * d + c] =
                            (dh - sum_dh * inv_d - hs[c] * sum_dh_h * inv_d) * inv_std[r];
                    }
                }
                vec![
                    Tensor::new(ctx.value(x).shape().clone(), gx),
                    Tensor::from_vec(gg),
                    Tensor::from_vec(gb),
                ]
            })),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_grad;
    use crate::shape::Shape;

    #[test]
    fn normalizes_to_zero_mean_unit_var() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::new([1, 4], vec![1., 2., 3., 4.]));
        let g = tape.leaf(Tensor::from_vec(vec![1.0; 4]));
        let b = tape.leaf(Tensor::from_vec(vec![0.0; 4]));
        let y = tape.get(tape.layer_norm(x, g, b));
        let mean: f32 = y.data().iter().sum::<f32>() / 4.0;
        let var: f32 = y
            .data()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn affine_params_apply() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::new([1, 2], vec![-1., 1.]));
        let g = tape.leaf(Tensor::from_vec(vec![2.0, 2.0]));
        let b = tape.leaf(Tensor::from_vec(vec![10.0, 10.0]));
        let y = tape.get(tape.layer_norm(x, g, b));
        // xhat = [-1, 1] (up to eps), so y ≈ [8, 12].
        assert!((y.data()[0] - 8.0).abs() < 1e-2);
        assert!((y.data()[1] - 12.0).abs() < 1e-2);
    }

    #[test]
    fn grad_check_layer_norm() {
        check_grad(
            &[
                vec![0.5, -1.2, 2.0, 0.1, 0.9, -0.4],
                vec![1.1, 0.9, 1.2],
                vec![0.1, -0.2, 0.3],
            ],
            &[Shape::from([2, 3]), Shape::from([3]), Shape::from([3])],
            |tape, vars| {
                let y = tape.layer_norm(vars[0], vars[1], vars[2]);
                let q = tape.sqr(y);
                tape.sum_all(q)
            },
        );
    }
}
