//! Shape manipulation: reshape, row slices, concatenation, dropout.

use crate::shape::Shape;
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use rand::Rng;

impl Tape {
    /// Reinterpret a value with a new shape of equal element count.
    pub fn reshape(&self, a: Var, shape: impl Into<Shape>) -> Var {
        let (out, new) = {
            let va = self.value(a);
            let new: Shape = shape.into();
            assert_eq!(
                va.shape().numel(),
                new.numel(),
                "reshape {} -> {new} changes element count",
                va.shape()
            );
            (self.alloc_copy(va.data()), new)
        };
        self.push(
            Tensor::new(new, out),
            vec![a.id],
            Some(Box::new(move |ctx| {
                let old = ctx.value(a).shape().clone();
                vec![Tensor::new(old, ctx.alloc_copy(ctx.grad().data()))]
            })),
        )
    }

    /// Rows `start..start+len` of a rank-2 tensor.
    pub fn slice_rows(&self, a: Var, start: usize, len: usize) -> Var {
        let (n, d, out) = {
            let va = self.value(a);
            assert_eq!(va.shape().rank(), 2, "slice_rows expects rank 2");
            let (n, d) = (va.shape().dim(0), va.shape().dim(1));
            assert!(
                start + len <= n,
                "slice {start}..{} out of {n} rows",
                start + len
            );
            (
                n,
                d,
                self.alloc_copy(&va.data()[start * d..(start + len) * d]),
            )
        };
        self.push(
            Tensor::new([len, d], out),
            vec![a.id],
            Some(Box::new(move |ctx| {
                let mut gx = ctx.alloc(n * d);
                gx[start * d..(start + len) * d].copy_from_slice(ctx.grad().data());
                vec![Tensor::new([n, d], gx)]
            })),
        )
    }

    /// Concatenate rank-2 tensors along the row axis.
    pub fn concat_rows(&self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows of zero parts");
        let (d, data, row_counts) = {
            let d = self.value(parts[0]).shape().last();
            let mut row_counts = Vec::with_capacity(parts.len());
            let mut total_rows = 0;
            for &p in parts {
                let vp = self.value(p);
                assert_eq!(vp.shape().rank(), 2, "concat_rows expects rank 2 parts");
                assert_eq!(vp.shape().last(), d, "concat_rows last dims must match");
                row_counts.push(vp.shape().dim(0));
                total_rows += vp.shape().dim(0);
            }
            let mut data = self.alloc(total_rows * d);
            let mut offset = 0;
            for &p in parts {
                let vp = self.value(p);
                data[offset..offset + vp.numel()].copy_from_slice(vp.data());
                offset += vp.numel();
            }
            (d, data, row_counts)
        };
        let total: usize = row_counts.iter().sum();
        self.push(
            Tensor::new([total, d], data),
            parts.iter().map(|p| p.id).collect(),
            Some(Box::new(move |ctx| {
                let g = ctx.grad();
                let mut out = Vec::with_capacity(row_counts.len());
                let mut offset = 0;
                for &rc in &row_counts {
                    out.push(Tensor::new(
                        [rc, d],
                        ctx.alloc_copy(&g.data()[offset * d..(offset + rc) * d]),
                    ));
                    offset += rc;
                }
                out
            })),
        )
    }

    /// Inverted dropout: during training, zero each element with probability
    /// `p` and scale survivors by `1/(1-p)`; identity in eval mode.
    pub fn dropout<R: Rng>(&self, a: Var, p: f32, train: bool, rng: &mut R) -> Var {
        if !train || p <= 0.0 {
            return a;
        }
        assert!(p < 1.0, "dropout probability must be < 1");
        let (shape, out, mask) = {
            let va = self.value(a);
            let keep = 1.0 - p;
            let scale = 1.0 / keep;
            let mut mask = self.alloc(va.numel());
            for m in mask.iter_mut() {
                *m = if rng.random::<f32>() < keep {
                    scale
                } else {
                    0.0
                };
            }
            let mut out = self.alloc(va.numel());
            for ((o, &x), &m) in out.iter_mut().zip(va.data()).zip(&mask) {
                *o = x * m;
            }
            (va.shape().clone(), out, mask)
        };
        self.push(
            Tensor::new(shape, out),
            vec![a.id],
            Some(Box::new(move |ctx| {
                let g = ctx.grad();
                let mut gr = ctx.alloc(g.numel());
                for ((o, &gv), &m) in gr.iter_mut().zip(g.data()).zip(&mask) {
                    *o = gv * m;
                }
                vec![Tensor::new(g.shape().clone(), gr)]
            })),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_grad;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reshape_backward_restores_shape() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]));
        let r = tape.reshape(a, [3, 2]);
        let loss = tape.sum_all(r);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(a).unwrap().shape(), &Shape::from([2, 3]));
    }

    #[test]
    fn slice_rows_values() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::new([3, 2], vec![1., 2., 3., 4., 5., 6.]));
        let s = tape.slice_rows(a, 1, 2);
        assert_eq!(tape.get(s).data(), &[3., 4., 5., 6.]);
    }

    #[test]
    fn concat_then_slice_is_identity() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::new([1, 2], vec![1., 2.]));
        let b = tape.leaf(Tensor::new([2, 2], vec![3., 4., 5., 6.]));
        let c = tape.concat_rows(&[a, b]);
        assert_eq!(tape.get(c).data(), &[1., 2., 3., 4., 5., 6.]);
        let back = tape.slice_rows(c, 0, 1);
        assert_eq!(tape.get(back).data(), tape.get(a).data());
    }

    #[test]
    fn dropout_eval_is_identity() {
        let tape = Tape::new();
        let mut rng = StdRng::seed_from_u64(1);
        let a = tape.leaf(Tensor::from_vec(vec![1., 2., 3.]));
        let d = tape.dropout(a, 0.5, false, &mut rng);
        assert_eq!(d, a);
    }

    #[test]
    fn dropout_train_preserves_expectation_roughly() {
        let tape = Tape::new();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let a = tape.leaf(Tensor::from_vec(vec![1.0; n]));
        let d = tape.dropout(a, 0.3, true, &mut rng);
        let mean = tape.get(d).sum() / n as f32;
        assert!((mean - 1.0).abs() < 0.05, "dropout mean {mean} drifted");
    }

    #[test]
    fn grad_check_slice_concat() {
        check_grad(
            &[vec![0.5, -1.2, 2.0, 0.1], vec![0.9, -0.4]],
            &[Shape::from([2, 2]), Shape::from([1, 2])],
            |tape, vars| {
                let c = tape.concat_rows(&[vars[0], vars[1]]);
                let s = tape.slice_rows(c, 1, 2);
                let q = tape.sqr(s);
                tape.sum_all(q)
            },
        );
    }
}
