//! Reductions: sums, means, and max-pooling.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// Sum of all elements → scalar.
    pub fn sum_all(&self, a: Var) -> Var {
        let s = self.value(a).sum();
        self.push(
            Tensor::scalar(s),
            vec![a.id],
            Some(Box::new(move |ctx| {
                let va = ctx.value(a);
                let mut gr = ctx.alloc(va.numel());
                gr.fill(ctx.grad().item());
                vec![Tensor::new(va.shape().clone(), gr)]
            })),
        )
    }

    /// Mean of all elements → scalar.
    pub fn mean_all(&self, a: Var) -> Var {
        let n = self.value(a).numel() as f32;
        let s = self.sum_all(a);
        self.scale(s, 1.0 / n)
    }

    /// Mean over the row axis: `[n, d] → [d]`.
    pub fn mean_rows(&self, a: Var) -> Var {
        let (n, d, out) = {
            let va = self.value(a);
            assert_eq!(va.shape().rank(), 2, "mean_rows expects rank 2");
            let (n, d) = (va.shape().dim(0), va.shape().dim(1));
            let mut out = self.alloc(d);
            for r in 0..n {
                for (o, &v) in out.iter_mut().zip(va.row(r)) {
                    *o += v;
                }
            }
            let inv = 1.0 / n as f32;
            for o in &mut out {
                *o *= inv;
            }
            (n, d, out)
        };
        self.push(
            Tensor::from_vec(out),
            vec![a.id],
            Some(Box::new(move |ctx| {
                let g = ctx.grad();
                let inv = 1.0 / n as f32;
                let mut gr = ctx.alloc(n * d);
                for r in 0..n {
                    for (c, &gv) in g.data().iter().enumerate() {
                        gr[r * d + c] = gv * inv;
                    }
                }
                vec![Tensor::new([n, d], gr)]
            })),
        )
    }

    /// Column-wise maximum: `[n, d] → [d]` (max-over-time pooling, as used by
    /// Caser's horizontal convolutions). Gradient flows to the first argmax
    /// row per column.
    pub fn max_rows(&self, a: Var) -> Var {
        let (n, d, out, arg) = {
            let va = self.value(a);
            assert_eq!(va.shape().rank(), 2, "max_rows expects rank 2");
            let (n, d) = (va.shape().dim(0), va.shape().dim(1));
            assert!(n > 0, "max_rows over zero rows");
            let mut out = self.alloc_copy(va.row(0));
            let mut arg = vec![0usize; d];
            for r in 1..n {
                for (c, &v) in va.row(r).iter().enumerate() {
                    if v > out[c] {
                        out[c] = v;
                        arg[c] = r;
                    }
                }
            }
            (n, d, out, arg)
        };
        self.push(
            Tensor::from_vec(out),
            vec![a.id],
            Some(Box::new(move |ctx| {
                let mut gr = ctx.alloc(n * d);
                for (c, &gv) in ctx.grad().data().iter().enumerate() {
                    gr[arg[c] * d + c] = gv;
                }
                vec![Tensor::new([n, d], gr)]
            })),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_grad;
    use crate::shape::Shape;

    #[test]
    fn sum_and_mean_values() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1., 2., 3., 4.]));
        assert_eq!(tape.get(tape.sum_all(a)).item(), 10.0);
        assert_eq!(tape.get(tape.mean_all(a)).item(), 2.5);
    }

    #[test]
    fn mean_rows_values() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::new([2, 2], vec![1., 2., 3., 4.]));
        let m = tape.mean_rows(a);
        assert_eq!(tape.get(m).data(), &[2., 3.]);
    }

    #[test]
    fn max_rows_values_and_grad_routing() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::new([3, 2], vec![1., 9., 5., 2., 3., 4.]));
        let m = tape.max_rows(a);
        assert_eq!(tape.get(m).data(), &[5., 9.]);
        let loss = tape.sum_all(m);
        let grads = tape.backward(loss);
        assert_eq!(
            grads.get(a).unwrap().data(),
            &[0., 1., 1., 0., 0., 0.],
            "gradient routes only to the argmax entries"
        );
    }

    #[test]
    fn grad_check_mean_rows() {
        check_grad(
            &[vec![0.5, -1.0, 0.3, 0.8, -0.2, 1.1]],
            &[Shape::from([3, 2])],
            |tape, vars| {
                let m = tape.mean_rows(vars[0]);
                let s = tape.sqr(m);
                tape.sum_all(s)
            },
        );
    }

    #[test]
    fn grad_check_max_rows() {
        // Values chosen with a clear margin so finite differences do not
        // cross the argmax boundary.
        check_grad(
            &[vec![0.5, -1.0, 3.0, 0.8, -0.2, 1.1]],
            &[Shape::from([3, 2])],
            |tape, vars| {
                let m = tape.max_rows(vars[0]);
                let s = tape.sqr(m);
                tape.sum_all(s)
            },
        );
    }
}
