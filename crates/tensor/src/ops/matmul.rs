//! Matrix multiplication and transposes.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// `out[m,n] += a[m,k] * b[k,n]` over contiguous row-major buffers.
///
/// The `i-k-j` loop order keeps the inner loop streaming over `b`'s rows and
/// `out`'s rows, which is the cache-friendly layout for row-major data.
pub fn matmul_raw(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

fn transpose_raw(x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; x.len()];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = x[r * cols + c];
        }
    }
    out
}

impl Tape {
    /// Matrix product. Supported operand ranks:
    ///
    /// * `[m,k] × [k,n] → [m,n]`
    /// * `[b,m,k] × [k,n] → [b,m,n]` (shared right operand)
    /// * `[b,m,k] × [b,k,n] → [b,m,n]` (batched)
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.get(a), self.get(b));
        let (ra, rb) = (va.shape().rank(), vb.shape().rank());
        match (ra, rb) {
            (2, 2) => self.matmul_2d(a, b),
            (3, 2) => {
                let (bsz, m, k) = (va.shape().dim(0), va.shape().dim(1), va.shape().dim(2));
                let flat = self.reshape(a, [bsz * m, k]);
                let out = self.matmul_2d(flat, b);
                self.reshape(out, [bsz, m, vb.shape().dim(1)])
            }
            (3, 3) => self.matmul_batched(a, b),
            _ => panic!("unsupported matmul ranks: {} x {}", va.shape(), vb.shape()),
        }
    }

    fn matmul_2d(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.get(a), self.get(b));
        let (m, k) = (va.shape().dim(0), va.shape().dim(1));
        let (k2, n) = (vb.shape().dim(0), vb.shape().dim(1));
        assert_eq!(k, k2, "matmul inner dims: {} x {}", va.shape(), vb.shape());
        let mut out = vec![0.0f32; m * n];
        matmul_raw(va.data(), vb.data(), &mut out, m, k, n);
        self.push(
            Tensor::new([m, n], out),
            vec![a.id, b.id],
            Some(Box::new(move |g: &Tensor| {
                // dA = g @ B^T ; dB = A^T @ g
                let bt = transpose_raw(vb.data(), k, n);
                let mut ga = vec![0.0f32; m * k];
                matmul_raw(g.data(), &bt, &mut ga, m, n, k);
                let at = transpose_raw(va.data(), m, k);
                let mut gb = vec![0.0f32; k * n];
                matmul_raw(&at, g.data(), &mut gb, k, m, n);
                vec![Tensor::new([m, k], ga), Tensor::new([k, n], gb)]
            })),
        )
    }

    fn matmul_batched(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.get(a), self.get(b));
        let (bsz, m, k) = (va.shape().dim(0), va.shape().dim(1), va.shape().dim(2));
        let (bsz2, k2, n) = (vb.shape().dim(0), vb.shape().dim(1), vb.shape().dim(2));
        assert_eq!(bsz, bsz2, "batched matmul batch dims differ");
        assert_eq!(k, k2, "matmul inner dims: {} x {}", va.shape(), vb.shape());
        let mut out = vec![0.0f32; bsz * m * n];
        for i in 0..bsz {
            matmul_raw(
                &va.data()[i * m * k..(i + 1) * m * k],
                &vb.data()[i * k * n..(i + 1) * k * n],
                &mut out[i * m * n..(i + 1) * m * n],
                m,
                k,
                n,
            );
        }
        self.push(
            Tensor::new([bsz, m, n], out),
            vec![a.id, b.id],
            Some(Box::new(move |g: &Tensor| {
                let mut ga = vec![0.0f32; bsz * m * k];
                let mut gb = vec![0.0f32; bsz * k * n];
                for i in 0..bsz {
                    let gs = &g.data()[i * m * n..(i + 1) * m * n];
                    let asl = &va.data()[i * m * k..(i + 1) * m * k];
                    let bsl = &vb.data()[i * k * n..(i + 1) * k * n];
                    let bt = transpose_raw(bsl, k, n);
                    matmul_raw(gs, &bt, &mut ga[i * m * k..(i + 1) * m * k], m, n, k);
                    let at = transpose_raw(asl, m, k);
                    matmul_raw(&at, gs, &mut gb[i * k * n..(i + 1) * k * n], k, m, n);
                }
                vec![Tensor::new([bsz, m, k], ga), Tensor::new([bsz, k, n], gb)]
            })),
        )
    }

    /// Transpose of a 2-D tensor, or of the last two axes of a 3-D tensor.
    pub fn transpose(&self, a: Var) -> Var {
        let va = self.get(a);
        match va.shape().rank() {
            2 => {
                let (m, n) = (va.shape().dim(0), va.shape().dim(1));
                let out = transpose_raw(va.data(), m, n);
                self.push(
                    Tensor::new([n, m], out),
                    vec![a.id],
                    Some(Box::new(move |g: &Tensor| {
                        vec![Tensor::new([m, n], transpose_raw(g.data(), n, m))]
                    })),
                )
            }
            3 => {
                let (b, m, n) = (va.shape().dim(0), va.shape().dim(1), va.shape().dim(2));
                let mut out = vec![0.0f32; b * m * n];
                for i in 0..b {
                    let t = transpose_raw(&va.data()[i * m * n..(i + 1) * m * n], m, n);
                    out[i * m * n..(i + 1) * m * n].copy_from_slice(&t);
                }
                self.push(
                    Tensor::new([b, n, m], out),
                    vec![a.id],
                    Some(Box::new(move |g: &Tensor| {
                        let mut gr = vec![0.0f32; b * m * n];
                        for i in 0..b {
                            let t = transpose_raw(&g.data()[i * m * n..(i + 1) * m * n], n, m);
                            gr[i * m * n..(i + 1) * m * n].copy_from_slice(&t);
                        }
                        vec![Tensor::new([b, m, n], gr)]
                    })),
                )
            }
            r => panic!("transpose supports rank 2 or 3, got rank {r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_grad;
    use crate::shape::Shape;

    #[test]
    fn matmul_raw_identity() {
        let a = vec![1., 2., 3., 4.]; // [2,2]
        let eye = vec![1., 0., 0., 1.];
        let mut out = vec![0.0; 4];
        matmul_raw(&a, &eye, &mut out, 2, 2, 2);
        assert_eq!(out, a);
    }

    #[test]
    fn matmul_2d_known_values() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]));
        let b = tape.leaf(Tensor::new([3, 2], vec![7., 8., 9., 10., 11., 12.]));
        let c = tape.matmul(a, b);
        assert_eq!(tape.get(c).data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_3d_shared_rhs() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::new([2, 1, 2], vec![1., 0., 0., 1.]));
        let b = tape.leaf(Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]));
        let c = tape.matmul(a, b);
        assert_eq!(tape.shape_of(c), Shape::from([2, 1, 3]));
        assert_eq!(tape.get(c).data(), &[1., 2., 3., 4., 5., 6.]);
    }

    #[test]
    fn transpose_roundtrip() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]));
        let t = tape.transpose(a);
        let tt = tape.transpose(t);
        assert_eq!(tape.get(tt).data(), tape.get(a).data());
    }

    #[test]
    fn grad_check_matmul_2d() {
        check_grad(
            &[
                vec![0.5, -1.0, 0.3, 0.8, -0.2, 1.1],
                vec![0.9, 0.1, -0.4, 0.7, 0.2, -0.6],
            ],
            &[Shape::from([2, 3]), Shape::from([3, 2])],
            |tape, vars| {
                let c = tape.matmul(vars[0], vars[1]);
                tape.sum_all(c)
            },
        );
    }

    #[test]
    fn grad_check_matmul_batched() {
        check_grad(
            &[
                vec![0.5, -1.0, 0.3, 0.8, -0.2, 1.1, 0.4, -0.7],
                vec![0.9, 0.1, -0.4, 0.7, 0.2, -0.6, 1.2, 0.05],
            ],
            &[Shape::from([2, 2, 2]), Shape::from([2, 2, 2])],
            |tape, vars| {
                let c = tape.matmul(vars[0], vars[1]);
                tape.sum_all(c)
            },
        );
    }

    #[test]
    fn grad_check_transpose_3d() {
        check_grad(
            &[vec![0.5, -1.0, 0.3, 0.8, -0.2, 1.1, 0.4, -0.7]],
            &[Shape::from([2, 2, 2])],
            |tape, vars| {
                let t = tape.transpose(vars[0]);
                let s = tape.sqr(t);
                tape.sum_all(s)
            },
        );
    }
}
