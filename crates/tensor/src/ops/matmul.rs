//! Matrix multiplication and transposes.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// `out[m,n] += a[m,k] * b[k,n]` over contiguous row-major buffers.
///
/// Dense kernel: the `k` loop is unrolled four-wide so each pass over an
/// output row folds four rank-1 updates into one fused sweep — four times
/// fewer passes over `out`, and an inner loop the compiler can vectorize
/// without a data-dependent branch. For operands that are mostly zero *rows*
/// (one-hot / padded inputs) use [`matmul_raw_sparse`] instead.
pub fn matmul_raw(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        let mut kk = 0;
        while kk + 4 <= k {
            let (a0, a1, a2, a3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
            let (b0, rest) = b[kk * n..].split_at(n);
            let (b1, rest) = rest.split_at(n);
            let (b2, rest) = rest.split_at(n);
            let b3 = &rest[..n];
            for (j, o) in out_row.iter_mut().enumerate() {
                *o += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
            }
            kk += 4;
        }
        for (kk, &av) in a_row.iter().enumerate().skip(kk) {
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// `out[m,n] += a[m,k] * b[k,n]`, skipping zero entries of `a`.
///
/// Worth it only when `a` is mostly zeros — one-hot selector matrices and the
/// padded-position gradient rows of embedding backward. On dense data the
/// per-element branch costs more than the multiplies it saves; use
/// [`matmul_raw`] there.
pub fn matmul_raw_sparse(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Transpose tile edge: 32×32 f32 tiles are 4 KiB read + 4 KiB write,
/// comfortably inside L1 alongside the working set.
const TR_TILE: usize = 32;

/// `out[c, r] = x[r, c]` for a row-major `[rows, cols]` buffer — the kernel
/// behind [`crate::Tape::transpose`], exported so the grad-free inference
/// path builds its `Kᵀ` and tied-embedding-head operands with the exact
/// same element placement.
///
/// Tiled: the naive double loop strides `rows`-wide on every write, so past
/// L1 each store is a fresh cache line touched once per column sweep. Walking
/// [`TR_TILE`]² tiles keeps both the read rows and the write columns resident
/// while a tile is transposed. Pure data movement — element placement is
/// identical to the naive loop (pinned in this module's tests and in
/// `tests/gemm_properties.rs`).
pub fn transpose_into(x: &[f32], rows: usize, cols: usize, out: &mut [f32]) {
    debug_assert_eq!(x.len(), rows * cols);
    debug_assert_eq!(out.len(), rows * cols);
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + TR_TILE).min(rows);
        let mut c0 = 0;
        while c0 < cols {
            let c1 = (c0 + TR_TILE).min(cols);
            for r in r0..r1 {
                for c in c0..c1 {
                    out[c * rows + r] = x[r * cols + c];
                }
            }
            c0 = c1;
        }
        r0 = r1;
    }
}

impl Tape {
    /// Matrix product. Supported operand ranks:
    ///
    /// * `[m,k] × [k,n] → [m,n]`
    /// * `[b,m,k] × [k,n] → [b,m,n]` (shared right operand)
    /// * `[b,m,k] × [b,k,n] → [b,m,n]` (batched)
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let (ra, rb, a_dims, b_dims) = {
            let (va, vb) = (self.value(a), self.value(b));
            (
                va.shape().rank(),
                vb.shape().rank(),
                va.shape().clone(),
                vb.shape().clone(),
            )
        };
        match (ra, rb) {
            (2, 2) => self.matmul_2d(a, b),
            (3, 2) => {
                let (bsz, m, k) = (a_dims.dim(0), a_dims.dim(1), a_dims.dim(2));
                let flat = self.reshape(a, [bsz * m, k]);
                let out = self.matmul_2d(flat, b);
                self.reshape(out, [bsz, m, b_dims.dim(1)])
            }
            (3, 3) => self.matmul_batched(a, b),
            _ => panic!("unsupported matmul ranks: {a_dims} x {b_dims}"),
        }
    }

    fn matmul_2d(&self, a: Var, b: Var) -> Var {
        let _span = delrec_obs::span!("tensor.matmul");
        let (m, k, n, out) = {
            let (va, vb) = (self.value(a), self.value(b));
            let (m, k) = (va.shape().dim(0), va.shape().dim(1));
            let (k2, n) = (vb.shape().dim(0), vb.shape().dim(1));
            assert_eq!(k, k2, "matmul inner dims: {} x {}", va.shape(), vb.shape());
            let mut out = self.alloc(m * n);
            super::gemm::gemm_auto(va.data(), vb.data(), &mut out, m, k, n);
            (m, k, n, out)
        };
        self.push(
            Tensor::new([m, n], out),
            vec![a.id, b.id],
            Some(Box::new(move |ctx| {
                // dA = g @ B^T ; dB = A^T @ g
                let (va, vb, g) = (ctx.value(a), ctx.value(b), ctx.grad());
                let mut bt = ctx.alloc(k * n);
                transpose_into(vb.data(), k, n, &mut bt);
                let mut ga = ctx.alloc(m * k);
                super::gemm::gemm_auto(g.data(), &bt, &mut ga, m, n, k);
                ctx.recycle(bt);
                let mut at = ctx.alloc(m * k);
                transpose_into(va.data(), m, k, &mut at);
                let mut gb = ctx.alloc(k * n);
                super::gemm::gemm_auto(&at, g.data(), &mut gb, k, m, n);
                ctx.recycle(at);
                vec![Tensor::new([m, k], ga), Tensor::new([k, n], gb)]
            })),
        )
    }

    fn matmul_batched(&self, a: Var, b: Var) -> Var {
        let _span = delrec_obs::span!("tensor.matmul");
        let (bsz, m, k, n, out) = {
            let (va, vb) = (self.value(a), self.value(b));
            let (bsz, m, k) = (va.shape().dim(0), va.shape().dim(1), va.shape().dim(2));
            let (bsz2, k2, n) = (vb.shape().dim(0), vb.shape().dim(1), vb.shape().dim(2));
            assert_eq!(bsz, bsz2, "batched matmul batch dims differ");
            assert_eq!(k, k2, "matmul inner dims: {} x {}", va.shape(), vb.shape());
            let mut out = self.alloc(bsz * m * n);
            for i in 0..bsz {
                matmul_raw(
                    &va.data()[i * m * k..(i + 1) * m * k],
                    &vb.data()[i * k * n..(i + 1) * k * n],
                    &mut out[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
            (bsz, m, k, n, out)
        };
        self.push(
            Tensor::new([bsz, m, n], out),
            vec![a.id, b.id],
            Some(Box::new(move |ctx| {
                let (va, vb, g) = (ctx.value(a), ctx.value(b), ctx.grad());
                let mut ga = ctx.alloc(bsz * m * k);
                let mut gb = ctx.alloc(bsz * k * n);
                let mut bt = ctx.alloc(k * n);
                let mut at = ctx.alloc(m * k);
                for i in 0..bsz {
                    let gs = &g.data()[i * m * n..(i + 1) * m * n];
                    let asl = &va.data()[i * m * k..(i + 1) * m * k];
                    let bsl = &vb.data()[i * k * n..(i + 1) * k * n];
                    transpose_into(bsl, k, n, &mut bt);
                    matmul_raw(gs, &bt, &mut ga[i * m * k..(i + 1) * m * k], m, n, k);
                    transpose_into(asl, m, k, &mut at);
                    matmul_raw(&at, gs, &mut gb[i * k * n..(i + 1) * k * n], k, m, n);
                }
                ctx.recycle(bt);
                ctx.recycle(at);
                vec![Tensor::new([bsz, m, k], ga), Tensor::new([bsz, k, n], gb)]
            })),
        )
    }

    /// Transpose of a 2-D tensor, or of the last two axes of a 3-D tensor.
    pub fn transpose(&self, a: Var) -> Var {
        let rank = self.value(a).shape().rank();
        match rank {
            2 => {
                let (m, n, out) = {
                    let va = self.value(a);
                    let (m, n) = (va.shape().dim(0), va.shape().dim(1));
                    let mut out = self.alloc(m * n);
                    transpose_into(va.data(), m, n, &mut out);
                    (m, n, out)
                };
                self.push(
                    Tensor::new([n, m], out),
                    vec![a.id],
                    Some(Box::new(move |ctx| {
                        let mut gr = ctx.alloc(m * n);
                        transpose_into(ctx.grad().data(), n, m, &mut gr);
                        vec![Tensor::new([m, n], gr)]
                    })),
                )
            }
            3 => {
                let (b, m, n, out) = {
                    let va = self.value(a);
                    let (b, m, n) = (va.shape().dim(0), va.shape().dim(1), va.shape().dim(2));
                    let mut out = self.alloc(b * m * n);
                    for i in 0..b {
                        transpose_into(
                            &va.data()[i * m * n..(i + 1) * m * n],
                            m,
                            n,
                            &mut out[i * m * n..(i + 1) * m * n],
                        );
                    }
                    (b, m, n, out)
                };
                self.push(
                    Tensor::new([b, n, m], out),
                    vec![a.id],
                    Some(Box::new(move |ctx| {
                        let g = ctx.grad();
                        let mut gr = ctx.alloc(b * m * n);
                        for i in 0..b {
                            transpose_into(
                                &g.data()[i * m * n..(i + 1) * m * n],
                                n,
                                m,
                                &mut gr[i * m * n..(i + 1) * m * n],
                            );
                        }
                        vec![Tensor::new([b, m, n], gr)]
                    })),
                )
            }
            r => panic!("transpose supports rank 2 or 3, got rank {r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_grad;
    use crate::shape::Shape;

    #[test]
    fn matmul_raw_identity() {
        let a = vec![1., 2., 3., 4.]; // [2,2]
        let eye = vec![1., 0., 0., 1.];
        let mut out = vec![0.0; 4];
        matmul_raw(&a, &eye, &mut out, 2, 2, 2);
        assert_eq!(out, a);
    }

    #[test]
    fn dense_and_sparse_kernels_agree() {
        // Covers the unroll remainder (k = 7 hits both the 4-wide body and
        // the tail) and zero entries (the sparse kernel's skip path).
        let (m, k, n) = (3, 7, 5);
        let a: Vec<f32> = (0..m * k)
            .map(|i| {
                if i % 3 == 0 {
                    0.0
                } else {
                    (i as f32) * 0.25 - 2.0
                }
            })
            .collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32) * 0.5 - 8.0).collect();
        let mut dense = vec![0.0; m * n];
        let mut sparse = vec![0.0; m * n];
        matmul_raw(&a, &b, &mut dense, m, k, n);
        matmul_raw_sparse(&a, &b, &mut sparse, m, k, n);
        for (d, s) in dense.iter().zip(&sparse) {
            assert!((d - s).abs() < 1e-4, "kernels disagree: {d} vs {s}");
        }
    }

    #[test]
    fn matmul_2d_known_values() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]));
        let b = tape.leaf(Tensor::new([3, 2], vec![7., 8., 9., 10., 11., 12.]));
        let c = tape.matmul(a, b);
        assert_eq!(tape.get(c).data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_3d_shared_rhs() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::new([2, 1, 2], vec![1., 0., 0., 1.]));
        let b = tape.leaf(Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]));
        let c = tape.matmul(a, b);
        assert_eq!(tape.shape_of(c), Shape::from([2, 1, 3]));
        assert_eq!(tape.get(c).data(), &[1., 2., 3., 4., 5., 6.]);
    }

    #[test]
    fn tiled_transpose_matches_naive_loop() {
        // Shapes straddling the tile edge in each dimension, plus degenerate
        // row/column vectors.
        for &(rows, cols) in &[
            (1usize, 1usize),
            (1, 70),
            (70, 1),
            (5, 9),
            (TR_TILE, TR_TILE),
            (TR_TILE - 1, TR_TILE + 1),
            (2 * TR_TILE + 3, TR_TILE + 5),
        ] {
            let x: Vec<f32> = (0..rows * cols).map(|i| i as f32 * 0.37 - 4.0).collect();
            let mut naive = vec![0.0f32; rows * cols];
            for r in 0..rows {
                for c in 0..cols {
                    naive[c * rows + r] = x[r * cols + c];
                }
            }
            let mut tiled = vec![0.0f32; rows * cols];
            transpose_into(&x, rows, cols, &mut tiled);
            assert_eq!(naive, tiled, "rows={rows} cols={cols}");
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]));
        let t = tape.transpose(a);
        let tt = tape.transpose(t);
        assert_eq!(tape.get(tt).data(), tape.get(a).data());
    }

    #[test]
    fn grad_check_matmul_2d() {
        check_grad(
            &[
                vec![0.5, -1.0, 0.3, 0.8, -0.2, 1.1],
                vec![0.9, 0.1, -0.4, 0.7, 0.2, -0.6],
            ],
            &[Shape::from([2, 3]), Shape::from([3, 2])],
            |tape, vars| {
                let c = tape.matmul(vars[0], vars[1]);
                tape.sum_all(c)
            },
        );
    }

    #[test]
    fn grad_check_matmul_batched() {
        check_grad(
            &[
                vec![0.5, -1.0, 0.3, 0.8, -0.2, 1.1, 0.4, -0.7],
                vec![0.9, 0.1, -0.4, 0.7, 0.2, -0.6, 1.2, 0.05],
            ],
            &[Shape::from([2, 2, 2]), Shape::from([2, 2, 2])],
            |tape, vars| {
                let c = tape.matmul(vars[0], vars[1]);
                tape.sum_all(c)
            },
        );
    }

    #[test]
    fn grad_check_transpose_3d() {
        check_grad(
            &[vec![0.5, -1.0, 0.3, 0.8, -0.2, 1.1, 0.4, -0.7]],
            &[Shape::from([2, 2, 2])],
            |tape, vars| {
                let t = tape.transpose(vars[0]);
                let s = tape.sqr(t);
                tape.sum_all(s)
            },
        );
    }
}
