//! Softmax-family ops and the fused cross-entropy loss.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Numerically-stable softmax of one row, written into `out`.
fn softmax_row(row: &[f32], out: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for (o, &x) in out.iter_mut().zip(row) {
        let e = (x - max).exp();
        *o = e;
        sum += e;
    }
    let inv = 1.0 / sum;
    for o in out.iter_mut() {
        *o *= inv;
    }
}

impl Tape {
    /// Softmax over the last axis.
    pub fn softmax(&self, a: Var) -> Var {
        let va = self.get(a);
        let d = va.shape().last();
        let rows = va.shape().rows();
        let mut out = vec![0.0f32; va.numel()];
        for r in 0..rows {
            softmax_row(va.row(r), &mut out[r * d..(r + 1) * d]);
        }
        let out_data = out.clone();
        self.push(
            Tensor::new(va.shape().clone(), out),
            vec![a.id],
            Some(Box::new(move |g: &Tensor| {
                // dx = y ⊙ (g − ⟨g, y⟩) per row.
                let mut gr = vec![0.0f32; g.numel()];
                for r in 0..rows {
                    let y = &out_data[r * d..(r + 1) * d];
                    let gs = &g.data()[r * d..(r + 1) * d];
                    let dot: f32 = y.iter().zip(gs).map(|(&yv, &gv)| yv * gv).sum();
                    for c in 0..d {
                        gr[r * d + c] = y[c] * (gs[c] - dot);
                    }
                }
                vec![Tensor::new(g.shape().clone(), gr)]
            })),
        )
    }

    /// Log-softmax over the last axis.
    pub fn log_softmax(&self, a: Var) -> Var {
        let va = self.get(a);
        let d = va.shape().last();
        let rows = va.shape().rows();
        let mut out = vec![0.0f32; va.numel()];
        let mut probs = vec![0.0f32; va.numel()];
        for r in 0..rows {
            let row = va.row(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let lse = max + row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
            for c in 0..d {
                out[r * d + c] = row[c] - lse;
                probs[r * d + c] = (row[c] - lse).exp();
            }
        }
        self.push(
            Tensor::new(va.shape().clone(), out),
            vec![a.id],
            Some(Box::new(move |g: &Tensor| {
                // dx = g − softmax(x) * sum(g) per row.
                let mut gr = vec![0.0f32; g.numel()];
                for r in 0..rows {
                    let gs = &g.data()[r * d..(r + 1) * d];
                    let total: f32 = gs.iter().sum();
                    for c in 0..d {
                        gr[r * d + c] = gs[c] - probs[r * d + c] * total;
                    }
                }
                vec![Tensor::new(g.shape().clone(), gr)]
            })),
        )
    }

    /// Mean cross-entropy between row logits and integer targets.
    ///
    /// `logits` is `[n, C]` (or `[C]` for a single example); `targets` holds
    /// one class index per row. Fused for numerical stability; the backward
    /// pass is `(softmax − onehot) / n`.
    pub fn cross_entropy(&self, logits: Var, targets: &[usize]) -> Var {
        let vl = self.get(logits);
        let d = vl.shape().last();
        let rows = vl.shape().rows();
        assert_eq!(
            targets.len(),
            rows,
            "cross_entropy: {} targets for {} rows",
            targets.len(),
            rows
        );
        let mut probs = vec![0.0f32; vl.numel()];
        let mut loss = 0.0f32;
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < d, "target {t} out of range for {d} classes");
            softmax_row(vl.row(r), &mut probs[r * d..(r + 1) * d]);
            loss -= probs[r * d + t].max(1e-12).ln();
        }
        loss /= rows as f32;
        let targets = targets.to_vec();
        let shape = vl.shape().clone();
        self.push(
            Tensor::scalar(loss),
            vec![logits.id],
            Some(Box::new(move |g: &Tensor| {
                let scale = g.item() / rows as f32;
                let mut gr = probs.clone();
                for (r, &t) in targets.iter().enumerate() {
                    gr[r * d + t] -= 1.0;
                }
                for v in &mut gr {
                    *v *= scale;
                }
                vec![Tensor::new(shape.clone(), gr)]
            })),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_grad;
    use crate::shape::Shape;

    #[test]
    fn softmax_rows_sum_to_one() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::new([2, 3], vec![1., 2., 3., -1., 0., 1.]));
        let y = tape.get(tape.softmax(a));
        let s0: f32 = y.row(0).iter().sum();
        let s1: f32 = y.row(1).iter().sum();
        assert!((s0 - 1.0).abs() < 1e-6 && (s1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1., 2., 3.]));
        let b = tape.leaf(Tensor::from_vec(vec![1001., 1002., 1003.]));
        let (ya, yb) = (tape.get(tape.softmax(a)), tape.get(tape.softmax(b)));
        for (x, y) in ya.data().iter().zip(yb.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![0.3, -1.2, 2.0]));
        let ls = tape.get(tape.log_softmax(a));
        let s = tape.get(tape.softmax(a));
        for (l, p) in ls.data().iter().zip(s.data()) {
            assert!((l.exp() - p).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_near_zero() {
        let tape = Tape::new();
        let logits = tape.leaf(Tensor::new([1, 3], vec![100., 0., 0.]));
        let loss = tape.cross_entropy(logits, &[0]);
        assert!(tape.get(loss).item() < 1e-5);
    }

    #[test]
    fn cross_entropy_uniform_is_log_c() {
        let tape = Tape::new();
        let logits = tape.leaf(Tensor::new([2, 4], vec![0.0; 8]));
        let loss = tape.cross_entropy(logits, &[1, 2]);
        assert!((tape.get(loss).item() - (4f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn grad_check_softmax_and_ce() {
        check_grad(
            &[vec![0.5, -1.2, 2.0, 0.1, 0.9, -0.4]],
            &[Shape::from([2, 3])],
            |tape, vars| tape.cross_entropy(vars[0], &[2, 0]),
        );
        check_grad(
            &[vec![0.5, -1.2, 2.0, 0.1, 0.9, -0.4]],
            &[Shape::from([2, 3])],
            |tape, vars| {
                let y = tape.softmax(vars[0]);
                let q = tape.sqr(y);
                tape.sum_all(q)
            },
        );
        check_grad(
            &[vec![0.5, -1.2, 2.0]],
            &[Shape::from([1, 3])],
            |tape, vars| {
                let y = tape.log_softmax(vars[0]);
                let q = tape.sqr(y);
                tape.sum_all(q)
            },
        );
    }
}
