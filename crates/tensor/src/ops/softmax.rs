//! Softmax-family ops and the fused cross-entropy loss.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Numerically-stable softmax of one row, written into `out`.
fn softmax_row(row: &[f32], out: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for (o, &x) in out.iter_mut().zip(row) {
        let e = (x - max).exp();
        *o = e;
        sum += e;
    }
    let inv = 1.0 / sum;
    for o in out.iter_mut() {
        *o *= inv;
    }
}

impl Tape {
    /// Softmax over the last axis.
    pub fn softmax(&self, a: Var) -> Var {
        let _span = delrec_obs::span!("tensor.softmax");
        let (rows, d, shape, out) = {
            let va = self.value(a);
            let d = va.shape().last();
            let rows = va.shape().rows();
            let mut out = self.alloc(va.numel());
            for r in 0..rows {
                softmax_row(va.row(r), &mut out[r * d..(r + 1) * d]);
            }
            (rows, d, va.shape().clone(), out)
        };
        self.push(
            Tensor::new(shape, out),
            vec![a.id],
            Some(Box::new(move |ctx| {
                // dx = y ⊙ (g − ⟨g, y⟩) per row.
                let (y, g) = (ctx.out(), ctx.grad());
                let mut gr = ctx.alloc(g.numel());
                for r in 0..rows {
                    let ys = &y.data()[r * d..(r + 1) * d];
                    let gs = &g.data()[r * d..(r + 1) * d];
                    let dot: f32 = ys.iter().zip(gs).map(|(&yv, &gv)| yv * gv).sum();
                    for c in 0..d {
                        gr[r * d + c] = ys[c] * (gs[c] - dot);
                    }
                }
                vec![Tensor::new(g.shape().clone(), gr)]
            })),
        )
    }

    /// Softmax over the last axis restricted to a *valid prefix* per row:
    /// `out[r, c] = softmax(a[r, ..valid[r]])[c]` for `c < valid[r]`, and
    /// exactly `0.0` beyond it.
    ///
    /// This is the attention-mask primitive for right-padded batches. Because
    /// the max/sum run over the same contiguous prefix a single unpadded
    /// sequence would use, the valid outputs are bitwise identical to calling
    /// [`Tape::softmax`] on the unpadded row — the property the batched ==
    /// single-example tests pin down.
    ///
    /// # Panics
    /// Panics if `valid.len()` differs from the row count or any count is 0
    /// or exceeds the row width.
    pub fn softmax_masked(&self, a: Var, valid: &[usize]) -> Var {
        let _span = delrec_obs::span!("tensor.softmax");
        let (rows, d, shape, out) = {
            let va = self.value(a);
            let d = va.shape().last();
            let rows = va.shape().rows();
            assert_eq!(
                valid.len(),
                rows,
                "softmax_masked: {} valid counts for {rows} rows",
                valid.len()
            );
            let mut out = self.alloc(va.numel());
            for (r, &v) in valid.iter().enumerate() {
                assert!(
                    v >= 1 && v <= d,
                    "softmax_masked: valid count {v} out of 1..={d}"
                );
                softmax_row(&va.row(r)[..v], &mut out[r * d..r * d + v]);
                // Tail stays zero: padded keys get no probability mass.
            }
            (rows, d, va.shape().clone(), out)
        };
        let valid = valid.to_vec();
        self.push(
            Tensor::new(shape, out),
            vec![a.id],
            Some(Box::new(move |ctx| {
                let (y, g) = (ctx.out(), ctx.grad());
                let mut gr = ctx.alloc(g.numel());
                for (r, &v) in valid.iter().enumerate() {
                    let ys = &y.data()[r * d..r * d + v];
                    let gs = &g.data()[r * d..r * d + v];
                    let dot: f32 = ys.iter().zip(gs).map(|(&yv, &gv)| yv * gv).sum();
                    for c in 0..v {
                        gr[r * d + c] = ys[c] * (gs[c] - dot);
                    }
                    // Masked positions held constant zeros: no gradient.
                }
                debug_assert_eq!(valid.len(), rows);
                vec![Tensor::new(g.shape().clone(), gr)]
            })),
        )
    }

    /// Log-softmax over the last axis.
    pub fn log_softmax(&self, a: Var) -> Var {
        let (rows, d, shape, out) = {
            let va = self.value(a);
            let d = va.shape().last();
            let rows = va.shape().rows();
            let mut out = self.alloc(va.numel());
            for r in 0..rows {
                let row = va.row(r);
                let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let lse = max + row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
                for c in 0..d {
                    out[r * d + c] = row[c] - lse;
                }
            }
            (rows, d, va.shape().clone(), out)
        };
        self.push(
            Tensor::new(shape, out),
            vec![a.id],
            Some(Box::new(move |ctx| {
                // dx = g − softmax(x) * sum(g) per row; softmax = exp(out).
                let (y, g) = (ctx.out(), ctx.grad());
                let mut gr = ctx.alloc(g.numel());
                for r in 0..rows {
                    let gs = &g.data()[r * d..(r + 1) * d];
                    let total: f32 = gs.iter().sum();
                    for c in 0..d {
                        gr[r * d + c] = gs[c] - y.data()[r * d + c].exp() * total;
                    }
                }
                vec![Tensor::new(g.shape().clone(), gr)]
            })),
        )
    }

    /// Mean cross-entropy between row logits and integer targets.
    ///
    /// `logits` is `[n, C]` (or `[C]` for a single example); `targets` holds
    /// one class index per row. Fused for numerical stability; the backward
    /// pass is `(softmax − onehot) / n`.
    pub fn cross_entropy(&self, logits: Var, targets: &[usize]) -> Var {
        let (rows, d, probs, loss) = {
            let vl = self.value(logits);
            let d = vl.shape().last();
            let rows = vl.shape().rows();
            assert_eq!(
                targets.len(),
                rows,
                "cross_entropy: {} targets for {} rows",
                targets.len(),
                rows
            );
            let mut probs = self.alloc(vl.numel());
            let mut loss = 0.0f32;
            for (r, &t) in targets.iter().enumerate() {
                assert!(t < d, "target {t} out of range for {d} classes");
                softmax_row(vl.row(r), &mut probs[r * d..(r + 1) * d]);
                loss -= probs[r * d + t].max(1e-12).ln();
            }
            loss /= rows as f32;
            (rows, d, probs, loss)
        };
        let targets = targets.to_vec();
        self.push(
            Tensor::scalar(loss),
            vec![logits.id],
            Some(Box::new(move |ctx| {
                let scale = ctx.grad().item() / rows as f32;
                let mut gr = ctx.alloc_copy(&probs);
                for (r, &t) in targets.iter().enumerate() {
                    gr[r * d + t] -= 1.0;
                }
                for v in &mut gr {
                    *v *= scale;
                }
                vec![Tensor::new(ctx.value(logits).shape().clone(), gr)]
            })),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_grad;
    use crate::shape::Shape;

    #[test]
    fn softmax_rows_sum_to_one() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::new([2, 3], vec![1., 2., 3., -1., 0., 1.]));
        let y = tape.get(tape.softmax(a));
        let s0: f32 = y.row(0).iter().sum();
        let s1: f32 = y.row(1).iter().sum();
        assert!((s0 - 1.0).abs() < 1e-6 && (s1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1., 2., 3.]));
        let b = tape.leaf(Tensor::from_vec(vec![1001., 1002., 1003.]));
        let (ya, yb) = (tape.get(tape.softmax(a)), tape.get(tape.softmax(b)));
        for (x, y) in ya.data().iter().zip(yb.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn masked_softmax_matches_unpadded_rows_exactly() {
        let tape = Tape::new();
        // Row 0 uses 2 of 4 positions, row 1 all 4.
        let padded = tape.leaf(Tensor::new(
            [2, 4],
            vec![0.3, -1.2, 99.0, 99.0, 0.5, 0.1, -0.7, 2.0],
        ));
        let y = tape.get(tape.softmax_masked(padded, &[2, 4]));
        let short = tape.leaf(Tensor::from_vec(vec![0.3, -1.2]));
        let ys = tape.get(tape.softmax(short));
        assert_eq!(
            &y.row(0)[..2],
            ys.data(),
            "valid prefix must be bitwise equal"
        );
        assert_eq!(
            &y.row(0)[2..],
            &[0.0, 0.0],
            "padded tail must be exactly zero"
        );
        let full = tape.leaf(Tensor::from_vec(vec![0.5, 0.1, -0.7, 2.0]));
        let yf = tape.get(tape.softmax(full));
        assert_eq!(y.row(1), yf.data());
    }

    #[test]
    fn grad_check_masked_softmax() {
        check_grad(
            &[vec![0.5, -1.2, 2.0, 0.1, 0.9, -0.4, 1.3, -2.0]],
            &[Shape::from([2, 4])],
            |tape, vars| {
                let y = tape.softmax_masked(vars[0], &[3, 4]);
                let q = tape.sqr(y);
                tape.sum_all(q)
            },
        );
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![0.3, -1.2, 2.0]));
        let ls = tape.get(tape.log_softmax(a));
        let s = tape.get(tape.softmax(a));
        for (l, p) in ls.data().iter().zip(s.data()) {
            assert!((l.exp() - p).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_near_zero() {
        let tape = Tape::new();
        let logits = tape.leaf(Tensor::new([1, 3], vec![100., 0., 0.]));
        let loss = tape.cross_entropy(logits, &[0]);
        assert!(tape.get(loss).item() < 1e-5);
    }

    #[test]
    fn cross_entropy_uniform_is_log_c() {
        let tape = Tape::new();
        let logits = tape.leaf(Tensor::new([2, 4], vec![0.0; 8]));
        let loss = tape.cross_entropy(logits, &[1, 2]);
        assert!((tape.get(loss).item() - (4f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn grad_check_softmax_and_ce() {
        check_grad(
            &[vec![0.5, -1.2, 2.0, 0.1, 0.9, -0.4]],
            &[Shape::from([2, 3])],
            |tape, vars| tape.cross_entropy(vars[0], &[2, 0]),
        );
        check_grad(
            &[vec![0.5, -1.2, 2.0, 0.1, 0.9, -0.4]],
            &[Shape::from([2, 3])],
            |tape, vars| {
                let y = tape.softmax(vars[0]);
                let q = tape.sqr(y);
                tape.sum_all(q)
            },
        );
        check_grad(
            &[vec![0.5, -1.2, 2.0]],
            &[Shape::from([1, 3])],
            |tape, vars| {
                let y = tape.log_softmax(vars[0]);
                let q = tape.sqr(y);
                tape.sum_all(q)
            },
        );
    }
}
