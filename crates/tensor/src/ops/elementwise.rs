//! Elementwise arithmetic with suffix broadcasting.
//!
//! Broadcasting rule: for binary ops the right operand must either match the
//! left's shape exactly, be a scalar, or match a *suffix* of the left's shape
//! (the bias-add case). The backward pass for a broadcast operand sums the
//! gradient over the broadcast leading dimensions.

use crate::shape::Shape;
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// How the right operand lines up with the left.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Broadcast {
    /// Same shape.
    Exact,
    /// Right is a scalar.
    Scalar,
    /// Right matches a suffix of the left's shape; repeats over leading dims.
    Suffix,
}

fn classify(a: &Shape, b: &Shape) -> Broadcast {
    if a == b {
        Broadcast::Exact
    } else if b.numel() == 1 {
        Broadcast::Scalar
    } else if a.ends_with(b) {
        Broadcast::Suffix
    } else {
        panic!("cannot broadcast {b} against {a}")
    }
}

impl Tape {
    fn binary(
        &self,
        a: Var,
        b: Var,
        fwd: impl Fn(f32, f32) -> f32,
        dfa: impl Fn(f32, f32) -> f32 + 'static,
        dfb: impl Fn(f32, f32) -> f32 + 'static,
    ) -> Var {
        let (shape, out) = {
            let (va, vb) = (self.value(a), self.value(b));
            let mode = classify(va.shape(), vb.shape());
            debug_assert!(matches!(
                mode,
                Broadcast::Exact | Broadcast::Scalar | Broadcast::Suffix
            ));
            let n = vb.numel();
            let mut out = self.alloc(va.numel());
            for (i, (o, &x)) in out.iter_mut().zip(va.data()).enumerate() {
                *o = fwd(x, vb.data()[i % n]);
            }
            (va.shape().clone(), out)
        };
        self.push(
            Tensor::new(shape, out),
            vec![a.id, b.id],
            Some(Box::new(move |ctx| {
                let (va, vb, g) = (ctx.value(a), ctx.value(b), ctx.grad());
                let mode = classify(va.shape(), vb.shape());
                let n = vb.numel();
                let mut ga = ctx.alloc(va.numel());
                for (i, (o, &gv)) in ga.iter_mut().zip(g.data()).enumerate() {
                    *o = gv * dfa(va.data()[i], vb.data()[i % n]);
                }
                let gb = match mode {
                    Broadcast::Exact => {
                        let mut gb = ctx.alloc(va.numel());
                        for (i, (o, &gv)) in gb.iter_mut().zip(g.data()).enumerate() {
                            *o = gv * dfb(va.data()[i], vb.data()[i]);
                        }
                        gb
                    }
                    Broadcast::Scalar | Broadcast::Suffix => {
                        // Sum the full-shaped gradient down onto the suffix.
                        let mut gb = ctx.alloc(n);
                        for (i, &gv) in g.data().iter().enumerate() {
                            gb[i % n] += gv * dfb(va.data()[i], vb.data()[i % n]);
                        }
                        gb
                    }
                };
                vec![
                    Tensor::new(va.shape().clone(), ga),
                    Tensor::new(vb.shape().clone(), gb),
                ]
            })),
        )
    }

    /// Elementwise `a + b` (suffix broadcasting on `b`).
    pub fn add(&self, a: Var, b: Var) -> Var {
        self.binary(a, b, |x, y| x + y, |_, _| 1.0, |_, _| 1.0)
    }

    /// Elementwise `a - b` (suffix broadcasting on `b`).
    pub fn sub(&self, a: Var, b: Var) -> Var {
        self.binary(a, b, |x, y| x - y, |_, _| 1.0, |_, _| -1.0)
    }

    /// Elementwise `a * b` (suffix broadcasting on `b`).
    pub fn mul(&self, a: Var, b: Var) -> Var {
        self.binary(a, b, |x, y| x * y, |_, y| y, |x, _| x)
    }

    /// Elementwise `a / b` (suffix broadcasting on `b`).
    pub fn div(&self, a: Var, b: Var) -> Var {
        self.binary(a, b, |x, y| x / y, |_, y| 1.0 / y, |x, y| -x / (y * y))
    }

    fn unary(
        &self,
        a: Var,
        fwd: impl Fn(f32) -> f32,
        dfa: impl Fn(f32, f32) -> f32 + 'static,
    ) -> Var {
        let (shape, out) = {
            let va = self.value(a);
            let mut out = self.alloc(va.numel());
            for (o, &x) in out.iter_mut().zip(va.data()) {
                *o = fwd(x);
            }
            (va.shape().clone(), out)
        };
        self.push(
            Tensor::new(shape, out),
            vec![a.id],
            Some(Box::new(move |ctx| {
                let (va, y, g) = (ctx.value(a), ctx.out(), ctx.grad());
                let mut ga = ctx.alloc(va.numel());
                for (i, (o, &gv)) in ga.iter_mut().zip(g.data()).enumerate() {
                    *o = gv * dfa(va.data()[i], y.data()[i]);
                }
                vec![Tensor::new(va.shape().clone(), ga)]
            })),
        )
    }

    /// `a * s` for a scalar constant `s`.
    pub fn scale(&self, a: Var, s: f32) -> Var {
        self.unary(a, |x| x * s, move |_, _| s)
    }

    /// `a + s` for a scalar constant `s`.
    pub fn add_scalar(&self, a: Var, s: f32) -> Var {
        self.unary(a, move |x| x + s, |_, _| 1.0)
    }

    /// Elementwise negation.
    pub fn neg(&self, a: Var) -> Var {
        self.scale(a, -1.0)
    }

    /// Elementwise square.
    pub fn sqr(&self, a: Var) -> Var {
        self.unary(a, |x| x * x, |x, _| 2.0 * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_grad;

    #[test]
    fn add_exact_values() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1., 2.]));
        let b = tape.leaf(Tensor::from_vec(vec![10., 20.]));
        let c = tape.add(a, b);
        assert_eq!(tape.get(c).data(), &[11., 22.]);
    }

    #[test]
    fn add_suffix_broadcast_backward_sums() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::new([2, 3], vec![0.; 6]));
        let bias = tape.leaf(Tensor::from_vec(vec![1., 2., 3.]));
        let c = tape.add(a, bias);
        let loss = tape.sum_all(c);
        let grads = tape.backward(loss);
        // Each bias element is used twice (once per row).
        assert_eq!(grads.get(bias).unwrap().data(), &[2., 2., 2.]);
    }

    #[test]
    fn scalar_broadcast() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1., 2., 3.]));
        let s = tape.leaf(Tensor::scalar(10.0));
        let c = tape.mul(a, s);
        assert_eq!(tape.get(c).data(), &[10., 20., 30.]);
        let loss = tape.sum_all(c);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(s).unwrap().item(), 6.0);
    }

    #[test]
    #[should_panic(expected = "cannot broadcast")]
    fn invalid_broadcast_panics() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::new([2, 3], vec![0.; 6]));
        let b = tape.leaf(Tensor::from_vec(vec![0.; 2]));
        tape.add(a, b);
    }

    #[test]
    fn grad_check_binary_ops() {
        for op in ["add", "sub", "mul", "div"] {
            check_grad(
                &[vec![0.5, -1.2, 2.0, 0.3], vec![1.5, 0.7, -0.9, 2.2]],
                &[Shape::from([2, 2]), Shape::from([2, 2])],
                |tape, vars| {
                    let c = match op {
                        "add" => tape.add(vars[0], vars[1]),
                        "sub" => tape.sub(vars[0], vars[1]),
                        "mul" => tape.mul(vars[0], vars[1]),
                        _ => tape.div(vars[0], vars[1]),
                    };
                    tape.sum_all(c)
                },
            );
        }
    }

    #[test]
    fn grad_check_unary_ops() {
        check_grad(
            &[vec![0.5, -1.2, 2.0]],
            &[Shape::from([3])],
            |tape, vars| {
                let s = tape.scale(vars[0], 3.0);
                let q = tape.sqr(s);
                let n = tape.neg(q);
                let p = tape.add_scalar(n, 1.0);
                tape.sum_all(p)
            },
        );
    }
}
