//! Pointwise nonlinearities.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

pub(crate) const SQRT_2_OVER_PI: f32 = 0.797_884_6;
pub(crate) const GELU_COEF: f32 = 0.044_715;

pub(crate) fn gelu_fwd(x: f32) -> f32 {
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + GELU_COEF * x * x * x)).tanh())
}

fn gelu_bwd(x: f32) -> f32 {
    let inner = SQRT_2_OVER_PI * (x + GELU_COEF * x * x * x);
    let t = inner.tanh();
    let dt = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * dt * SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_COEF * x * x)
}

impl Tape {
    fn pointwise(
        &self,
        a: Var,
        fwd: impl Fn(f32) -> f32,
        // Derivative as a function of (input, output).
        bwd: impl Fn(f32, f32) -> f32 + 'static,
    ) -> Var {
        let (shape, out) = {
            let va = self.value(a);
            let mut out = self.alloc(va.numel());
            for (o, &x) in out.iter_mut().zip(va.data()) {
                *o = fwd(x);
            }
            (va.shape().clone(), out)
        };
        self.push(
            Tensor::new(shape, out),
            vec![a.id],
            Some(Box::new(move |ctx| {
                let (va, y, g) = (ctx.value(a), ctx.out(), ctx.grad());
                let mut gr = ctx.alloc(va.numel());
                for (i, (o, &gv)) in gr.iter_mut().zip(g.data()).enumerate() {
                    *o = gv * bwd(va.data()[i], y.data()[i]);
                }
                vec![Tensor::new(va.shape().clone(), gr)]
            })),
        )
    }

    /// Rectified linear unit.
    pub fn relu(&self, a: Var) -> Var {
        self.pointwise(a, |x| x.max(0.0), |x, _| if x > 0.0 { 1.0 } else { 0.0 })
    }

    /// GELU with the tanh approximation (the transformer FFN nonlinearity).
    pub fn gelu(&self, a: Var) -> Var {
        self.pointwise(a, gelu_fwd, |x, _| gelu_bwd(x))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self, a: Var) -> Var {
        self.pointwise(a, |x| 1.0 / (1.0 + (-x).exp()), |_, y| y * (1.0 - y))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self, a: Var) -> Var {
        self.pointwise(a, |x| x.tanh(), |_, y| 1.0 - y * y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_grad;
    use crate::shape::Shape;

    #[test]
    fn relu_clamps_negatives() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![-1., 0., 2.]));
        assert_eq!(tape.get(tape.relu(a)).data(), &[0., 0., 2.]);
    }

    #[test]
    fn sigmoid_midpoint() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![0.0]));
        assert!((tape.get(tape.sigmoid(a)).item() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gelu_known_values() {
        // gelu(0) = 0; gelu(large) ≈ identity; gelu(-large) ≈ 0.
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![0.0, 6.0, -6.0]));
        let y = tape.get(tape.gelu(a));
        assert!(y.data()[0].abs() < 1e-6);
        assert!((y.data()[1] - 6.0).abs() < 1e-3);
        assert!(y.data()[2].abs() < 1e-3);
    }

    #[test]
    fn grad_check_activations() {
        // Inputs avoid the ReLU kink at 0.
        let input = vec![0.5, -1.2, 2.0, -0.3, 0.9];
        for op in ["relu", "gelu", "sigmoid", "tanh"] {
            check_grad(
                std::slice::from_ref(&input),
                &[Shape::from([5])],
                |tape, vars| {
                    let y = match op {
                        "relu" => tape.relu(vars[0]),
                        "gelu" => tape.gelu(vars[0]),
                        "sigmoid" => tape.sigmoid(vars[0]),
                        _ => tape.tanh(vars[0]),
                    };
                    tape.sum_all(y)
                },
            );
        }
    }
}
