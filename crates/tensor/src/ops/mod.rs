//! Differentiable operations, implemented as methods on [`crate::Tape`].
//!
//! Each submodule groups a family of ops; every op's gradient is verified
//! against finite differences in its module tests and in the crate's
//! property-test suite.

mod activation;
mod elementwise;
mod embedding;
mod matmul;
mod norm;
mod reduce;
mod slice;
mod softmax;

pub use matmul::{matmul_raw, matmul_raw_sparse};
