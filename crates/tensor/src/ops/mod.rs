//! Differentiable operations, implemented as methods on [`crate::Tape`].
//!
//! Each submodule groups a family of ops; every op's gradient is verified
//! against finite differences in its module tests and in the crate's
//! property-test suite.

mod activation;
mod elementwise;
mod embedding;
mod gemm;
mod matmul;
mod norm;
mod reduce;
mod slice;
mod softmax;

pub use gemm::{
    gemm, gemm_auto, gemm_packed, gemm_packed_q8, matmul_raw_strided, pack_b, pack_b_q8,
    pack_b_transposed, pack_b_transposed_q8, quantize_pack, PackedB, QuantizedPanel,
    AUTO_PACK_MIN_MACS, MR, NR,
};
pub use matmul::{matmul_raw, matmul_raw_sparse, transpose_into};

// Forward-only kernels shared with the grad-free inference path
// (`crate::infer`), which must mirror the tape's arithmetic bitwise.
pub(crate) use activation::{gelu_fwd, GELU_COEF, SQRT_2_OVER_PI};
pub(crate) use norm::EPS as LN_EPS;
