//! Named trainable parameters and their binding into autograd tapes.

use crate::shape::Shape;
use crate::tape::{Gradients, Tape, Var};
use crate::tensor::Tensor;
use std::cell::RefCell;
use std::collections::HashMap;

/// Stable handle to a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) usize);

/// Owns all trainable tensors of a model (or of several models sharing one
/// optimizer). Parameters can be individually frozen — DELRec freezes the
/// LM in Stage 1 and the soft prompts in Stage 2.
#[derive(Clone, Default)]
pub struct ParamStore {
    names: Vec<String>,
    tensors: Vec<Tensor>,
    trainable: Vec<bool>,
    index: HashMap<String, usize>,
    /// Monotone write counter; see [`ParamStore::version`].
    version: u64,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new trainable parameter under a unique name.
    ///
    /// # Panics
    /// Panics if the name is already taken.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let name = name.into();
        assert!(
            !self.index.contains_key(&name),
            "duplicate parameter name {name:?}"
        );
        let id = self.tensors.len();
        self.index.insert(name.clone(), id);
        self.names.push(name);
        self.tensors.push(value);
        self.trainable.push(true);
        self.version += 1;
        ParamId(id)
    }

    /// Current value of a parameter.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutable value (used by optimizers and serialization).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        self.version += 1;
        &mut self.tensors[id.0]
    }

    /// Monotone write counter: bumped by every [`ParamStore::add`] and every
    /// [`ParamStore::get_mut`] (conservatively — the borrow may not write).
    /// Inference-side caches derived from parameter values (e.g. the LM's
    /// prefix K/V cache) snapshot this to detect updates without hashing
    /// tensors.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Look up a parameter by name.
    pub fn id_of(&self, name: &str) -> Option<ParamId> {
        self.index.get(name).copied().map(ParamId)
    }

    /// Name of a parameter.
    pub fn name_of(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Shape of a parameter.
    pub fn shape_of(&self, id: ParamId) -> &Shape {
        self.tensors[id.0].shape()
    }

    /// Mark a parameter trainable or frozen. Frozen parameters are skipped by
    /// optimizers but still participate in forward/backward.
    pub fn set_trainable(&mut self, id: ParamId, trainable: bool) {
        self.trainable[id.0] = trainable;
    }

    /// Freeze or unfreeze every parameter whose name starts with `prefix`.
    /// Returns how many parameters were affected.
    pub fn set_trainable_prefix(&mut self, prefix: &str, trainable: bool) -> usize {
        let mut n = 0;
        for (i, name) in self.names.iter().enumerate() {
            if name.starts_with(prefix) {
                self.trainable[i] = trainable;
                n += 1;
            }
        }
        n
    }

    /// Whether a parameter is currently trainable.
    pub fn is_trainable(&self, id: ParamId) -> bool {
        self.trainable[id.0]
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.tensors.iter().map(Tensor::numel).sum()
    }

    /// Total scalar count across trainable parameters only.
    pub fn num_trainable_scalars(&self) -> usize {
        self.tensors
            .iter()
            .zip(&self.trainable)
            .filter(|(_, &t)| t)
            .map(|(t, _)| t.numel())
            .sum()
    }

    /// Iterate over `(id, name, tensor)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.names
            .iter()
            .zip(&self.tensors)
            .enumerate()
            .map(|(i, (n, t))| (ParamId(i), n.as_str(), t))
    }
}

/// One forward/backward pass's view of a [`ParamStore`]: binds parameters
/// into a [`Tape`] lazily (each parameter is copied in at most once) and
/// remembers the bindings so gradients can be routed back by [`Ctx::grads`].
pub struct Ctx<'a> {
    /// The tape recording this pass.
    pub tape: &'a Tape,
    store: &'a ParamStore,
    bound: RefCell<HashMap<usize, Var>>,
    /// Whether dropout & co. should be active.
    pub train: bool,
}

impl<'a> Ctx<'a> {
    /// New context over a tape and parameter store.
    pub fn new(tape: &'a Tape, store: &'a ParamStore, train: bool) -> Self {
        Ctx {
            tape,
            store,
            bound: RefCell::new(HashMap::new()),
            train,
        }
    }

    /// Bind (or reuse) the tape variable holding parameter `id`.
    pub fn p(&self, id: ParamId) -> Var {
        if let Some(&v) = self.bound.borrow().get(&id.0) {
            return v;
        }
        let v = self.tape.leaf(self.store.get(id).clone());
        self.bound.borrow_mut().insert(id.0, v);
        v
    }

    /// The store backing this context.
    pub fn store(&self) -> &ParamStore {
        self.store
    }

    /// Collect gradients for every *trainable* bound parameter after a
    /// backward pass. Parameters the loss did not touch are skipped.
    pub fn grads(&self, grads: &mut Gradients) -> Vec<(ParamId, Tensor)> {
        let mut out: Vec<(ParamId, Tensor)> = Vec::new();
        for (&pid, &var) in self.bound.borrow().iter() {
            let id = ParamId(pid);
            if !self.store.is_trainable(id) {
                continue;
            }
            if let Some(g) = grads.take(var) {
                out.push((id, g));
            }
        }
        // Deterministic order regardless of hash-map iteration.
        out.sort_by_key(|(id, _)| *id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![1., 2.]));
        assert_eq!(store.id_of("w"), Some(w));
        assert_eq!(store.name_of(w), "w");
        assert_eq!(store.num_scalars(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_name_panics() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::scalar(1.0));
        store.add("w", Tensor::scalar(2.0));
    }

    #[test]
    fn freeze_by_prefix() {
        let mut store = ParamStore::new();
        let a = store.add("lm.layer0.w", Tensor::scalar(1.0));
        let b = store.add("lm.layer1.w", Tensor::scalar(1.0));
        let c = store.add("soft_prompt", Tensor::scalar(1.0));
        let n = store.set_trainable_prefix("lm.", false);
        assert_eq!(n, 2);
        assert!(!store.is_trainable(a));
        assert!(!store.is_trainable(b));
        assert!(store.is_trainable(c));
        assert_eq!(store.num_trainable_scalars(), 1);
    }

    #[test]
    fn ctx_binds_once_and_routes_grads() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![3.0, 4.0]));
        let frozen = store.add("frozen", Tensor::from_vec(vec![1.0, 1.0]));
        store.set_trainable(frozen, false);

        let tape = Tape::new();
        let ctx = Ctx::new(&tape, &store, true);
        let v1 = ctx.p(w);
        let v2 = ctx.p(w);
        assert_eq!(v1, v2, "parameter bound twice must reuse the same var");

        let f = ctx.p(frozen);
        let prod = tape.mul(v1, f);
        let loss = tape.sum_all(prod);
        let mut grads = tape.backward(loss);
        let updates = ctx.grads(&mut grads);
        assert_eq!(updates.len(), 1, "frozen parameter excluded");
        assert_eq!(updates[0].0, w);
        assert_eq!(updates[0].1.data(), &[1.0, 1.0]);
    }
}
