//! Tensor shapes: dimension bookkeeping shared by every op.

use std::fmt;

/// The shape of a dense row-major tensor.
///
/// Rank is unbounded in principle, but everything in this workspace uses rank
/// 0 (scalars) through 3 (batched matrices).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Shape of a scalar (rank 0, one element).
    pub fn scalar() -> Self {
        Shape(vec![])
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (`1` for scalars).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Dimension `i`. Panics if out of range.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Last dimension; panics on scalars.
    pub fn last(&self) -> usize {
        *self.0.last().expect("scalar shape has no last dimension")
    }

    /// All dimensions except the last, i.e. the number of "rows" when the
    /// tensor is viewed as a stack of vectors of length [`Shape::last`].
    pub fn rows(&self) -> usize {
        self.0[..self.rank() - 1].iter().product()
    }

    /// True if `suffix` matches the trailing dimensions of `self`, the
    /// broadcast rule used by bias additions.
    pub fn ends_with(&self, suffix: &Shape) -> bool {
        suffix.rank() <= self.rank() && self.0[self.rank() - suffix.rank()..] == suffix.0[..]
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
    }

    #[test]
    fn numel_and_rows() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rows(), 6);
        assert_eq!(s.last(), 4);
    }

    #[test]
    fn ends_with_suffix() {
        let s = Shape::from([2, 3, 4]);
        assert!(s.ends_with(&Shape::from([4])));
        assert!(s.ends_with(&Shape::from([3, 4])));
        assert!(!s.ends_with(&Shape::from([2, 4])));
        assert!(s.ends_with(&Shape::from([2, 3, 4])));
        assert!(!s.ends_with(&Shape::from([1, 2, 3, 4])));
    }

    #[test]
    fn display_is_bracketed() {
        assert_eq!(format!("{}", Shape::from([2, 3])), "[2, 3]");
        assert_eq!(format!("{}", Shape::scalar()), "[]");
    }
}
