//! Define-by-run reverse-mode autograd.
//!
//! A [`Tape`] records every operation as a node holding its output value, its
//! parent node ids, and a backward closure that maps the upstream gradient to
//! one gradient per parent. [`Tape::backward`] walks the nodes in reverse
//! topological order (which is simply reverse creation order) accumulating
//! gradients.

use crate::shape::Shape;
use crate::tensor::Tensor;
use std::cell::{Ref, RefCell};

/// Handle to a value recorded on a [`Tape`]. Cheap to copy; only valid for
/// the tape that created it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var {
    pub(crate) id: usize,
}

type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<Tensor>>;

pub(crate) struct Node {
    value: Tensor,
    parents: Vec<usize>,
    backward: Option<BackwardFn>,
}

/// A gradient tape: the computation graph for one forward/backward pass.
///
/// Tapes are intended to be short-lived — build one per training step, call
/// [`Tape::backward`], read the gradients, and drop it.
///
/// ```
/// use delrec_tensor::{Tape, Tensor};
///
/// let tape = Tape::new();
/// let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0]));
/// let y = tape.sqr(x);              // y = x²
/// let loss = tape.sum_all(y);       // loss = Σ x²
/// let grads = tape.backward(loss);
/// assert_eq!(grads.get(x).unwrap().data(), &[2.0, 4.0, 6.0]); // d/dx = 2x
/// ```
#[derive(Default)]
pub struct Tape {
    pub(crate) nodes: RefCell<Vec<Node>>,
}

impl Tape {
    /// Create an empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Record a leaf value (an input or parameter). Leaves receive gradients
    /// but have no backward function.
    pub fn leaf(&self, value: Tensor) -> Var {
        self.push(value, vec![], None)
    }

    /// Record a constant. Identical to [`Tape::leaf`]; the distinct name
    /// documents intent (the gradient, if any, is simply never read).
    pub fn constant(&self, value: Tensor) -> Var {
        self.leaf(value)
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True if the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow the value of a variable.
    pub fn value(&self, v: Var) -> Ref<'_, Tensor> {
        Ref::map(self.nodes.borrow(), |nodes| &nodes[v.id].value)
    }

    /// Clone the value of a variable out of the tape.
    pub fn get(&self, v: Var) -> Tensor {
        self.nodes.borrow()[v.id].value.clone()
    }

    /// Shape of a variable's value.
    pub fn shape_of(&self, v: Var) -> Shape {
        self.nodes.borrow()[v.id].value.shape().clone()
    }

    pub(crate) fn push(
        &self,
        value: Tensor,
        parents: Vec<usize>,
        backward: Option<BackwardFn>,
    ) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        let id = nodes.len();
        nodes.push(Node {
            value,
            parents,
            backward,
        });
        Var { id }
    }

    /// Run reverse-mode differentiation from `loss` (which must be a scalar)
    /// and return the gradient of every node with respect to it.
    ///
    /// # Panics
    /// Panics if `loss` is not a single-element tensor.
    pub fn backward(&self, loss: Var) -> Gradients {
        let nodes = self.nodes.borrow();
        assert_eq!(
            nodes[loss.id].value.numel(),
            1,
            "backward() requires a scalar loss, got shape {}",
            nodes[loss.id].value.shape()
        );
        let mut grads: Vec<Option<Tensor>> = (0..nodes.len()).map(|_| None).collect();
        grads[loss.id] = Some(Tensor::full(nodes[loss.id].value.shape().clone(), 1.0));
        for id in (0..=loss.id).rev() {
            let Some(g) = grads[id].as_ref() else {
                continue;
            };
            let node = &nodes[id];
            if let Some(back) = &node.backward {
                let parent_grads = back(g);
                debug_assert_eq!(
                    parent_grads.len(),
                    node.parents.len(),
                    "backward fn returned wrong number of gradients"
                );
                for (&pid, pg) in node.parents.iter().zip(parent_grads) {
                    debug_assert_eq!(
                        pg.shape(),
                        nodes[pid].value.shape(),
                        "gradient shape mismatch for parent node {pid}"
                    );
                    match &mut grads[pid] {
                        Some(existing) => existing.add_assign(&pg),
                        slot @ None => *slot = Some(pg),
                    }
                }
            }
        }
        Gradients { grads }
    }
}

/// Gradients of every tape node with respect to the loss passed to
/// [`Tape::backward`].
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of `v`, or `None` if the loss did not depend on it.
    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.id).and_then(|g| g.as_ref())
    }

    /// Gradient of `v`, defaulting to zeros of the given shape when the loss
    /// did not depend on it.
    pub fn get_or_zeros(&self, v: Var, shape: &Shape) -> Tensor {
        self.get(v)
            .cloned()
            .unwrap_or_else(|| Tensor::zeros(shape.clone()))
    }

    /// Take ownership of the gradient of `v`.
    pub fn take(&mut self, v: Var) -> Option<Tensor> {
        self.grads.get_mut(v.id).and_then(|g| g.take())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let tape = Tape::new();
        let v = tape.leaf(Tensor::from_vec(vec![1., 2., 3.]));
        assert_eq!(tape.get(v).data(), &[1., 2., 3.]);
        assert_eq!(tape.len(), 1);
    }

    #[test]
    fn backward_through_chain() {
        // loss = sum(2 * x) => dloss/dx = 2 everywhere.
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1., 2., 3.]));
        let y = tape.scale(x, 2.0);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(x).unwrap().data(), &[2., 2., 2.]);
    }

    #[test]
    fn gradient_accumulates_over_fanout() {
        // loss = sum(x + x) => dloss/dx = 2.
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![5., -1.]));
        let y = tape.add(x, x);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(x).unwrap().data(), &[2., 2.]);
    }

    #[test]
    fn unused_leaf_has_no_gradient() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0]));
        let unused = tape.leaf(Tensor::from_vec(vec![9.0]));
        let loss = tape.sum_all(x);
        let grads = tape.backward(loss);
        assert!(grads.get(unused).is_none());
        assert!(grads.get(x).is_some());
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn non_scalar_loss_panics() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1., 2.]));
        tape.backward(x);
    }
}
