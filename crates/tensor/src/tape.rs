//! Define-by-run reverse-mode autograd.
//!
//! A [`Tape`] records every operation as a node holding its output value, its
//! parent node ids, and a backward closure that maps the upstream gradient to
//! one gradient per parent. [`Tape::backward`] walks the nodes in reverse
//! topological order (which is simply reverse creation order) accumulating
//! gradients.
//!
//! Two pieces keep the hot path allocation-light:
//!
//! * Backward closures receive a [`BwdCtx`] giving read access to every node
//!   value already on the tape, so ops capture [`Var`] handles and small
//!   metadata instead of cloning their operands into the closure.
//! * A [`BufferPool`] recycles `Vec<f32>` buffers. Node values return to the
//!   pool when the tape drops, gradients when [`Gradients`] drops, and both
//!   forward and backward passes allocate scratch through it. Sharing one
//!   pool across the tapes of a training loop (via [`Tape::with_pool`]) makes
//!   every step after the first run in recycled memory.

use crate::shape::Shape;
use crate::tensor::Tensor;
use std::cell::{Ref, RefCell};
use std::sync::{Arc, Mutex};

/// Handle to a value recorded on a [`Tape`]. Cheap to copy; only valid for
/// the tape that created it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var {
    pub(crate) id: usize,
}

/// Size-classed free list of `f32` buffers.
///
/// Buffers are binned by `floor(log2(capacity))`, so a request of `n`
/// elements is served from the first non-empty bin of capacity ≥ `n` (at most
/// two bins above the exact fit, to avoid handing huge buffers to tiny
/// requests). Misses fall back to a fresh allocation; each bin is capped, and
/// the pool as a whole holds at most [`BufferPool::total_float_cap`] floats,
/// so a one-off giant pass (or a serving peak) cannot pin memory forever.
///
/// The free lists are **sharded by thread**: each thread is pinned
/// round-robin to one of a fixed set of lock-striped shards, so the parallel
/// scoring path (`delrec-par` workers each running their own chunk) recycles
/// scratch without contending on a single mutex. A thread takes from and
/// returns to its own shard, which also keeps recycling hit rates intact —
/// a worker gets back the very buffers it freed. Each shard enforces
/// `total_float_cap / shards`, so the pool-wide retention bound holds under
/// any number of workers without a racy global counter.
pub struct BufferPool {
    shards: Box<[Mutex<PoolInner>]>,
    /// Per-shard retention bound (`total_float_cap / shards`).
    shard_float_cap: usize,
    /// Pool-wide retention bound: total pooled floats never exceeds this.
    total_float_cap: usize,
}

#[derive(Default)]
struct PoolInner {
    bins: Vec<Vec<Vec<f32>>>,
    /// Sum of `capacity()` over every pooled buffer.
    total_floats: usize,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::with_total_float_cap(POOL_TOTAL_FLOAT_CAP)
    }
}

/// Shard count for every pool in the process: enough for the configured lane
/// count (power of two for cheap masking), at least 4 so test-injected pools
/// on small machines still spread, at most 16 to bound per-pool overhead.
fn pool_shards() -> usize {
    delrec_par::default_lanes()
        .max(4)
        .next_power_of_two()
        .min(16)
}

/// This thread's home shard, assigned round-robin at first use.
fn home_shard(nshards: usize) -> usize {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SEED: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    SEED.with(|s| *s) & (nshards - 1)
}

/// Per-bin retention cap. 64 buffers per size class comfortably covers the
/// widest layer fan-out in this workspace while bounding steady-state memory.
const POOL_BIN_CAP: usize = 64;
/// How many bins above the exact size class to search before allocating.
const POOL_SLACK_BINS: usize = 2;
/// Default total retention cap: 32 Mi floats (128 MiB). Large enough that a
/// training step or a batched forward recycles everything it touches, small
/// enough that a long-running server cannot accrete peak-load allocations.
const POOL_TOTAL_FLOAT_CAP: usize = 32 << 20;

fn size_class(n: usize) -> usize {
    // floor(log2(n)) for n ≥ 1; class 0 holds capacities 1..=1, etc.
    usize::BITS as usize - 1 - (n.max(1)).leading_zeros() as usize
}

impl BufferPool {
    /// Fresh, empty pool with the default retention cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh pool retaining at most `total_floats` floats across all bins
    /// (each ~4 bytes). Serving deployments size this to their memory budget;
    /// tests shrink it to exercise eviction.
    pub fn with_total_float_cap(total_floats: usize) -> Self {
        let n = pool_shards();
        let shards: Vec<Mutex<PoolInner>> = (0..n).map(|_| Mutex::default()).collect();
        BufferPool {
            shards: shards.into_boxed_slice(),
            shard_float_cap: total_floats / n,
            total_float_cap: total_floats,
        }
    }

    /// The pool's retention cap, in floats.
    pub fn total_float_cap(&self) -> usize {
        self.total_float_cap
    }

    /// Total floats currently pooled (sum of buffer capacities across
    /// shards). Each shard respects its own slice of the cap, so this never
    /// exceeds [`total_float_cap`](Self::total_float_cap) even transiently.
    pub fn total_floats(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().total_floats)
            .sum()
    }

    /// The shard serving the current thread.
    fn shard(&self) -> &Mutex<PoolInner> {
        &self.shards[home_shard(self.shards.len())]
    }

    /// A zeroed buffer of length `n`, recycled when possible.
    ///
    /// Normalization is the pool's job, never the call site's: whatever was
    /// `put` in, the returned buffer has `len() == n` exactly, every element
    /// `0.0`, and capacity at most one size class above the slack-bin search
    /// ceiling — a recycled buffer that once served a much larger request is
    /// trimmed here rather than handed back over-long.
    pub fn take(&self, n: usize) -> Vec<f32> {
        delrec_obs::counter!("tensor.pool.take").incr();
        if let Some(mut buf) = self.take_raw(n) {
            Self::normalize(&mut buf, n);
            buf.resize(n, 0.0);
            return buf;
        }
        delrec_obs::counter!("tensor.pool.miss").incr();
        vec![0.0; n]
    }

    /// A buffer holding a copy of `src`, recycled when possible. Same
    /// normalization guarantees as [`BufferPool::take`], with
    /// `len() == src.len()`.
    pub fn take_copy(&self, src: &[f32]) -> Vec<f32> {
        delrec_obs::counter!("tensor.pool.take").incr();
        if let Some(mut buf) = self.take_raw(src.len()) {
            Self::normalize(&mut buf, src.len());
            buf.extend_from_slice(src);
            return buf;
        }
        delrec_obs::counter!("tensor.pool.miss").incr();
        src.to_vec()
    }

    /// Empty a recycled buffer and bound its capacity for a request of `n`
    /// elements. `take_raw` already limits the served size class, so the
    /// shrink is defense in depth: the guarantee belongs to the pool, not to
    /// the bin search.
    fn normalize(buf: &mut Vec<f32>, n: usize) {
        buf.clear();
        let cls = size_class(n) + POOL_SLACK_BINS + 1;
        if cls < usize::BITS as usize && buf.capacity() > (1 << cls) {
            buf.shrink_to(1 << cls);
        }
    }

    fn take_raw(&self, n: usize) -> Option<Vec<f32>> {
        if n == 0 {
            return None;
        }
        let mut inner = self.shard().lock().unwrap();
        let lo = size_class(n);
        if lo >= inner.bins.len() {
            return None;
        }
        // Capacities in n's own class straddle n — scan for one that fits.
        if let Some(pos) = inner.bins[lo].iter().rposition(|b| b.capacity() >= n) {
            let buf = inner.bins[lo].swap_remove(pos);
            inner.total_floats -= buf.capacity();
            return Some(buf);
        }
        // Every buffer in a strictly higher class is guaranteed to fit.
        let hi = (lo + POOL_SLACK_BINS).min(inner.bins.len() - 1);
        for cls in lo + 1..=hi {
            if let Some(buf) = inner.bins[cls].pop() {
                debug_assert!(buf.capacity() >= n);
                inner.total_floats -= buf.capacity();
                return Some(buf);
            }
        }
        None
    }

    /// Return a buffer to the pool. Buffers beyond the per-class cap, beyond
    /// the pool's total-float cap, or with no capacity are simply dropped —
    /// retention is bounded no matter how hard a load peak churned.
    pub fn put(&self, buf: Vec<f32>) {
        let cap = buf.capacity();
        if cap == 0 {
            return;
        }
        let mut inner = self.shard().lock().unwrap();
        if inner.total_floats + cap > self.shard_float_cap {
            return; // over budget: let the allocator have it back
        }
        let cls = size_class(cap);
        if inner.bins.len() <= cls {
            inner.bins.resize_with(cls + 1, Vec::new);
        }
        if inner.bins[cls].len() < POOL_BIN_CAP {
            inner.bins[cls].push(buf);
            inner.total_floats += cap;
        }
    }

    /// Number of buffers currently pooled (diagnostics and tests).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().bins.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// True when nothing is pooled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Everything a backward closure may touch: the upstream gradient, the values
/// of all tape nodes (so closures read operands instead of owning clones of
/// them), this node's own forward output, and the buffer pool for scratch.
pub struct BwdCtx<'a> {
    nodes: &'a [Node],
    id: usize,
    grad: &'a Tensor,
    pool: &'a BufferPool,
}

impl<'a> BwdCtx<'a> {
    /// Gradient of the loss with respect to this node's output.
    pub fn grad(&self) -> &'a Tensor {
        self.grad
    }

    /// Value of any variable recorded before this node (operands, usually).
    pub fn value(&self, v: Var) -> &'a Tensor {
        &self.nodes[v.id].value
    }

    /// This node's own forward output.
    pub fn out(&self) -> &'a Tensor {
        &self.nodes[self.id].value
    }

    /// Zeroed scratch buffer of length `n` from the pool.
    pub fn alloc(&self, n: usize) -> Vec<f32> {
        self.pool.take(n)
    }

    /// Pooled copy of `src`.
    pub fn alloc_copy(&self, src: &[f32]) -> Vec<f32> {
        self.pool.take_copy(src)
    }

    /// Return a finished scratch buffer to the pool.
    pub fn recycle(&self, buf: Vec<f32>) {
        self.pool.put(buf);
    }
}

type BackwardFn = Box<dyn Fn(&BwdCtx) -> Vec<Tensor>>;

pub(crate) struct Node {
    value: Tensor,
    parents: Vec<usize>,
    backward: Option<BackwardFn>,
}

/// A gradient tape: the computation graph for one forward/backward pass.
///
/// Tapes are intended to be short-lived — build one per training step, call
/// [`Tape::backward`], read the gradients, and drop it. Loops that build many
/// tapes should share one [`BufferPool`] via [`Tape::with_pool`] so each
/// step's tensors are carved out of the previous step's memory.
///
/// ```
/// use delrec_tensor::{Tape, Tensor};
///
/// let tape = Tape::new();
/// let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0]));
/// let y = tape.sqr(x);              // y = x²
/// let loss = tape.sum_all(y);       // loss = Σ x²
/// let grads = tape.backward(loss);
/// assert_eq!(grads.get(x).unwrap().data(), &[2.0, 4.0, 6.0]); // d/dx = 2x
/// ```
#[derive(Default)]
pub struct Tape {
    pub(crate) nodes: RefCell<Vec<Node>>,
    pool: Arc<BufferPool>,
}

impl Tape {
    /// Create an empty tape with its own private buffer pool.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Create an empty tape backed by a shared buffer pool. Training loops
    /// pass the same pool to every step's tape so buffers recycle across
    /// steps instead of hitting the allocator.
    pub fn with_pool(pool: Arc<BufferPool>) -> Self {
        Tape {
            nodes: RefCell::new(Vec::new()),
            pool,
        }
    }

    /// The buffer pool backing this tape.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Zeroed buffer of length `n` from this tape's pool (forward scratch).
    pub fn alloc(&self, n: usize) -> Vec<f32> {
        self.pool.take(n)
    }

    /// Pooled copy of `src`.
    pub fn alloc_copy(&self, src: &[f32]) -> Vec<f32> {
        self.pool.take_copy(src)
    }

    /// Record a leaf value (an input or parameter). Leaves receive gradients
    /// but have no backward function.
    pub fn leaf(&self, value: Tensor) -> Var {
        self.push(value, vec![], None)
    }

    /// Record a constant. Identical to [`Tape::leaf`]; the distinct name
    /// documents intent (the gradient, if any, is simply never read).
    pub fn constant(&self, value: Tensor) -> Var {
        self.leaf(value)
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True if the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow the value of a variable.
    pub fn value(&self, v: Var) -> Ref<'_, Tensor> {
        Ref::map(self.nodes.borrow(), |nodes| &nodes[v.id].value)
    }

    /// Clone the value of a variable out of the tape.
    pub fn get(&self, v: Var) -> Tensor {
        self.nodes.borrow()[v.id].value.clone()
    }

    /// Shape of a variable's value.
    pub fn shape_of(&self, v: Var) -> Shape {
        self.nodes.borrow()[v.id].value.shape().clone()
    }

    pub(crate) fn push(
        &self,
        value: Tensor,
        parents: Vec<usize>,
        backward: Option<BackwardFn>,
    ) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        let id = nodes.len();
        nodes.push(Node {
            value,
            parents,
            backward,
        });
        Var { id }
    }

    /// Run reverse-mode differentiation from `loss` (which must be a scalar)
    /// and return the gradient of every node with respect to it.
    ///
    /// # Panics
    /// Panics if `loss` is not a single-element tensor.
    pub fn backward(&self, loss: Var) -> Gradients {
        let nodes = self.nodes.borrow();
        assert_eq!(
            nodes[loss.id].value.numel(),
            1,
            "backward() requires a scalar loss, got shape {}",
            nodes[loss.id].value.shape()
        );
        let mut grads: Vec<Option<Tensor>> = (0..nodes.len()).map(|_| None).collect();
        grads[loss.id] = Some(Tensor::full(nodes[loss.id].value.shape().clone(), 1.0));
        for id in (0..=loss.id).rev() {
            let Some(g) = grads[id].as_ref() else {
                continue;
            };
            let node = &nodes[id];
            if let Some(back) = &node.backward {
                let ctx = BwdCtx {
                    nodes: &nodes,
                    id,
                    grad: g,
                    pool: &self.pool,
                };
                let parent_grads = back(&ctx);
                debug_assert_eq!(
                    parent_grads.len(),
                    node.parents.len(),
                    "backward fn returned wrong number of gradients"
                );
                for (&pid, pg) in node.parents.iter().zip(parent_grads) {
                    debug_assert_eq!(
                        pg.shape(),
                        nodes[pid].value.shape(),
                        "gradient shape mismatch for parent node {pid}"
                    );
                    match &mut grads[pid] {
                        Some(existing) => {
                            existing.add_assign(&pg);
                            self.pool.put(pg.into_data());
                        }
                        slot @ None => *slot = Some(pg),
                    }
                }
            }
        }
        Gradients {
            grads,
            pool: Arc::clone(&self.pool),
        }
    }
}

impl Drop for Tape {
    fn drop(&mut self) {
        // Hand every node's buffer back to the pool so the next tape built on
        // the same pool replays the step without fresh allocations.
        for node in self.nodes.get_mut().drain(..) {
            self.pool.put(node.value.into_data());
        }
    }
}

/// Gradients of every tape node with respect to the loss passed to
/// [`Tape::backward`]. Gradients not moved out with [`Gradients::take`]
/// return to the tape's buffer pool on drop.
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
    pool: Arc<BufferPool>,
}

impl Gradients {
    /// Gradient of `v`, or `None` if the loss did not depend on it.
    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.id).and_then(|g| g.as_ref())
    }

    /// Gradient of `v`, defaulting to zeros of the given shape when the loss
    /// did not depend on it.
    pub fn get_or_zeros(&self, v: Var, shape: &Shape) -> Tensor {
        self.get(v)
            .cloned()
            .unwrap_or_else(|| Tensor::zeros(shape.clone()))
    }

    /// Take ownership of the gradient of `v`.
    pub fn take(&mut self, v: Var) -> Option<Tensor> {
        self.grads.get_mut(v.id).and_then(|g| g.take())
    }
}

impl Drop for Gradients {
    fn drop(&mut self) {
        for g in self.grads.drain(..).flatten() {
            self.pool.put(g.into_data());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let tape = Tape::new();
        let v = tape.leaf(Tensor::from_vec(vec![1., 2., 3.]));
        assert_eq!(tape.get(v).data(), &[1., 2., 3.]);
        assert_eq!(tape.len(), 1);
    }

    #[test]
    fn backward_through_chain() {
        // loss = sum(2 * x) => dloss/dx = 2 everywhere.
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1., 2., 3.]));
        let y = tape.scale(x, 2.0);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(x).unwrap().data(), &[2., 2., 2.]);
    }

    #[test]
    fn gradient_accumulates_over_fanout() {
        // loss = sum(x + x) => dloss/dx = 2.
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![5., -1.]));
        let y = tape.add(x, x);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(x).unwrap().data(), &[2., 2.]);
    }

    #[test]
    fn unused_leaf_has_no_gradient() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0]));
        let unused = tape.leaf(Tensor::from_vec(vec![9.0]));
        let loss = tape.sum_all(x);
        let grads = tape.backward(loss);
        assert!(grads.get(unused).is_none());
        assert!(grads.get(x).is_some());
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn non_scalar_loss_panics() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1., 2.]));
        tape.backward(x);
    }

    #[test]
    fn pool_serves_and_recycles_buffers() {
        let pool = BufferPool::new();
        let buf = pool.take(100);
        assert_eq!(buf.len(), 100);
        assert!(buf.iter().all(|&v| v == 0.0));
        pool.put(buf);
        assert_eq!(pool.len(), 1);
        let again = pool.take(100);
        assert_eq!(again.len(), 100);
        assert_eq!(pool.len(), 0, "buffer was reused, not re-pooled");
        // A request far larger than anything pooled allocates fresh.
        pool.put(again);
        let big = pool.take(100_000);
        assert_eq!(big.len(), 100_000);
        assert_eq!(pool.len(), 1, "small buffer not handed to huge request");
    }

    #[test]
    fn take_normalizes_oversized_recycled_buffers() {
        let pool = BufferPool::new();
        pool.put(Vec::with_capacity(256));
        // Class 8 is within the slack window of a class-6 request, so the
        // 256-capacity buffer is reused — normalized to the requested length.
        let buf = pool.take(65);
        assert_eq!(pool.len(), 0, "recycled, not freshly allocated");
        assert_eq!(buf.len(), 65, "length normalized in the pool");
        assert!(buf.iter().all(|&v| v == 0.0));
        assert!(buf.capacity() <= 512, "capacity bounded near the request");
    }

    #[test]
    fn take_copy_normalizes_length_to_source() {
        let pool = BufferPool::new();
        let mut big = pool.take(100);
        big.iter_mut().for_each(|v| *v = 3.0);
        pool.put(big);
        let src: Vec<f32> = (0..30).map(|i| i as f32).collect();
        let copied = pool.take_copy(&src);
        assert_eq!(pool.len(), 0, "recycled, not freshly allocated");
        assert_eq!(copied, src, "exactly the source, no stale tail");
    }

    #[test]
    fn pool_zeroes_reused_buffers() {
        let pool = BufferPool::new();
        let mut buf = pool.take(8);
        buf.iter_mut().for_each(|v| *v = 7.0);
        pool.put(buf);
        let reused = pool.take(6);
        assert!(reused.iter().all(|&v| v == 0.0), "stale data leaked");
    }

    #[test]
    fn pool_total_float_cap_bounds_retention_under_churn() {
        // Shard budget of 1000 floats: puts beyond it are dropped, so a burst
        // of large buffers (a simulated load peak) cannot pin memory. A
        // single thread only ever touches its home shard, so its retention is
        // bounded by cap/shards exactly.
        let cap = 1000 * pool_shards();
        let pool = BufferPool::with_total_float_cap(cap);
        for _ in 0..10 {
            pool.put(vec![0.0; 256]);
        }
        assert!(
            pool.total_floats() <= cap,
            "pooled {} floats, cap {cap}",
            pool.total_floats()
        );
        assert_eq!(pool.len(), 3, "exactly ⌊1000/256⌋ buffers retained");
        // Taking releases budget; the pool accepts puts again.
        let buf = pool.take(256);
        assert_eq!(pool.len(), 2);
        pool.put(buf);
        assert_eq!(pool.len(), 3);
        // A single buffer over the whole cap is never retained.
        pool.put(vec![0.0; 2 * cap]);
        assert_eq!(pool.len(), 3, "over-cap buffer dropped");
        assert!(pool.total_floats() <= cap);
    }

    #[test]
    fn pool_growth_cap_holds_under_parallel_churn() {
        // N threads hammering take/put from every shard: the pool-wide
        // retention bound must hold at every observable instant, because each
        // shard enforces its own slice of the cap (no racy global counter).
        let pool = Arc::new(BufferPool::with_total_float_cap(10_000));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let p = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let n = 64 + ((t * 37 + i) % 7) * 100;
                        let b = p.take(n);
                        assert_eq!(b.len(), n);
                        p.put(b);
                        let pooled = p.total_floats();
                        assert!(pooled <= p.total_float_cap(), "pooled {pooled}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(pool.total_floats() <= pool.total_float_cap());
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool = Arc::new(BufferPool::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let b = p.take(64);
                        assert_eq!(b.len(), 64);
                        p.put(b);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(pool.total_floats() <= pool.total_float_cap());
    }

    #[test]
    fn dropping_tape_and_grads_refills_shared_pool() {
        let pool = Arc::new(BufferPool::new());
        {
            let tape = Tape::with_pool(Arc::clone(&pool));
            let x = tape.leaf(Tensor::from_vec(vec![1., 2., 3.]));
            let y = tape.sqr(x);
            let loss = tape.sum_all(y);
            let grads = tape.backward(loss);
            assert!(grads.get(x).is_some());
        }
        assert!(
            pool.len() >= 3,
            "node values and gradients should return to the pool"
        );
        // A second identical pass should be served from the pool.
        let before = pool.len();
        {
            let tape = Tape::with_pool(Arc::clone(&pool));
            let x = tape.leaf(Tensor::from_vec(vec![1., 2., 3.]));
            let y = tape.sqr(x);
            let loss = tape.sum_all(y);
            let _ = tape.backward(loss);
        }
        assert!(pool.len() >= before, "pool should not shrink across steps");
    }

    #[test]
    fn results_identical_with_and_without_shared_pool() {
        let run = |pool: Option<Arc<BufferPool>>| -> Vec<f32> {
            let tape = match pool {
                Some(p) => Tape::with_pool(p),
                None => Tape::new(),
            };
            let x = tape.leaf(Tensor::from_vec(vec![0.5, -1.5, 2.0]));
            let y = tape.sqr(x);
            let z = tape.scale(y, 3.0);
            let loss = tape.sum_all(z);
            let grads = tape.backward(loss);
            grads.get(x).unwrap().data().to_vec()
        };
        let fresh = run(None);
        let pool = Arc::new(BufferPool::new());
        let first = run(Some(Arc::clone(&pool)));
        let second = run(Some(pool)); // runs entirely on recycled buffers
        assert_eq!(fresh, first);
        assert_eq!(fresh, second);
    }
}
