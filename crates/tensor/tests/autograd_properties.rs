//! Property-based verification of the autograd engine: analytic gradients
//! match finite differences for randomly-sampled inputs through composite
//! graphs, and algebraic identities hold.

use delrec_tensor::grad_check::check_grad;
use delrec_tensor::{Shape, Tape, Tensor};
use proptest::prelude::*;

/// Bounded, well-conditioned values (finite differences are noisy near 0 for
/// division and at large magnitudes for exp-family ops).
fn values(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(prop_oneof![-2.0f32..-0.2, 0.2f32..2.0], n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn elementwise_chain_gradients(a in values(6), b in values(6)) {
        check_grad(
            &[a, b],
            &[Shape::from([2, 3]), Shape::from([2, 3])],
            |tape, vars| {
                let s = tape.add(vars[0], vars[1]);
                let m = tape.mul(s, vars[0]);
                let t = tape.tanh(m);
                tape.sum_all(t)
            },
        );
    }

    #[test]
    fn matmul_composite_gradients(a in values(6), b in values(6)) {
        check_grad(
            &[a, b],
            &[Shape::from([2, 3]), Shape::from([3, 2])],
            |tape, vars| {
                let p = tape.matmul(vars[0], vars[1]);
                let q = tape.sigmoid(p);
                tape.mean_all(q)
            },
        );
    }

    #[test]
    fn softmax_cross_entropy_gradients(logits in values(8)) {
        check_grad(&[logits], &[Shape::from([2, 4])], |tape, vars| {
            tape.cross_entropy(vars[0], &[1, 3])
        });
    }

    #[test]
    fn layer_norm_gradients(x in values(8), g in values(4), b in values(4)) {
        check_grad(
            &[x, g, b],
            &[Shape::from([2, 4]), Shape::from([4]), Shape::from([4])],
            |tape, vars| {
                let y = tape.layer_norm(vars[0], vars[1], vars[2]);
                let q = tape.sqr(y);
                tape.sum_all(q)
            },
        );
    }

    #[test]
    fn gather_scatter_gradients(x in values(8)) {
        check_grad(&[x], &[Shape::from([4, 2])], |tape, vars| {
            let g = tape.gather_rows(vars[0], &[3, 1, 3, 0]);
            let s = tape.scatter_rows(vars[0], &[(0, 1), (2, 0), (2, 1)], 3);
            let gs = tape.sqr(g);
            let ss = tape.sqr(s);
            let a = tape.sum_all(gs);
            let b = tape.sum_all(ss);
            tape.add(a, b)
        });
    }

    /// (A·B)ᵀ = Bᵀ·Aᵀ as computed by the tape ops.
    #[test]
    fn transpose_matmul_identity(a in values(6), b in values(6)) {
        let tape = Tape::new();
        let av = tape.leaf(Tensor::new([2, 3], a));
        let bv = tape.leaf(Tensor::new([3, 2], b));
        let ab_t = tape.transpose(tape.matmul(av, bv));
        let bt_at = tape.matmul(tape.transpose(bv), tape.transpose(av));
        let lhs = tape.get(ab_t);
        let rhs = tape.get(bt_at);
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// reshape → reshape-back is the identity, including for gradients.
    #[test]
    fn reshape_roundtrip_identity(x in values(12)) {
        let tape = Tape::new();
        let v = tape.leaf(Tensor::new([3, 4], x.clone()));
        let r = tape.reshape(v, [2, 6]);
        let back = tape.reshape(r, [3, 4]);
        let restored = tape.get(back);
        prop_assert_eq!(restored.data(), &x[..]);
        let loss = tape.sum_all(back);
        let grads = tape.backward(loss);
        prop_assert_eq!(grads.get(v).unwrap().data(), &vec![1.0f32; 12][..]);
    }

    /// Gradient accumulates linearly: d(sum(a·x + b·x))/dx = a + b.
    #[test]
    fn fanout_linearity(x in values(5), a in 0.5f32..3.0, b in 0.5f32..3.0) {
        let tape = Tape::new();
        let v = tape.leaf(Tensor::from_vec(x));
        let s1 = tape.scale(v, a);
        let s2 = tape.scale(v, b);
        let sum = tape.add(s1, s2);
        let loss = tape.sum_all(sum);
        let grads = tape.backward(loss);
        for &g in grads.get(v).unwrap().data() {
            prop_assert!((g - (a + b)).abs() < 1e-5);
        }
    }
}
