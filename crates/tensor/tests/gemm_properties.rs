//! Property-based pins for the blocked GEMM path (`ops/gemm.rs`).
//!
//! The kernel's contract is not "close to" but **bitwise-identical to**
//! [`matmul_raw`]: the register-blocked tile must accumulate every output in
//! the exact 4-wide k-group order of the naive kernel, so the fused LM
//! forward, the tape, and the golden-metrics pin all stay on one arithmetic.
//! Every property here compares `f32::to_bits`, never an epsilon, across
//! randomized shapes that independently hit the three remainder classes:
//! `k % 4` (the unroll tail), `n % NR` (a partial B panel), and `m % MR`
//! (a partial row tile).

use delrec_tensor::{
    gemm, gemm_auto, gemm_packed, gemm_packed_q8, matmul_raw, matmul_raw_strided, pack_b,
    pack_b_q8, pack_b_transposed, transpose_into, MR, NR,
};
use proptest::prelude::*;

/// Deterministic value stream so each (shape, seed) case is reproducible.
fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// `gemm == matmul_raw` to the bit, accumulate semantics included.
    /// Shape ranges start below the tile/unroll widths (m < MR, k < 4,
    /// n < NR all reachable) and extend past several full tiles.
    #[test]
    fn gemm_is_bitwise_matmul_raw(m in 1usize..3 * MR + 2, k in 1usize..19, n in 1usize..3 * NR + 3, seed in 0u64..1 << 32) {
        let a = fill(seed, m * k);
        let b = fill(seed ^ 0xA5A5, k * n);
        let mut want = fill(seed ^ 0x0F0F, m * n); // non-zero: exercises += semantics
        let mut got = want.clone();
        matmul_raw(&a, &b, &mut want, m, k, n);
        gemm(&a, &b, &mut got, m, k, n);
        prop_assert_eq!(bits(&want), bits(&got), "m={} k={} n={}", m, k, n);
    }

    /// Overwrite mode over garbage equals matmul_raw over zeros: the
    /// register accumulators start at the same 0.0 a fill would store.
    #[test]
    fn overwrite_is_bitwise_matmul_raw_over_zeros(m in 1usize..14, k in 1usize..17, n in 1usize..21, seed in 0u64..1 << 32) {
        let a = fill(seed, m * k);
        let b = fill(seed ^ 0x1234, k * n);
        let mut want = vec![0.0f32; m * n];
        matmul_raw(&a, &b, &mut want, m, k, n);
        let bp = pack_b(&b, k, n);
        let mut got = fill(seed ^ 0x777, m * n); // garbage must not leak through
        gemm_packed(&a, k, &bp, &mut got, m, false);
        prop_assert_eq!(bits(&want), bits(&got));
        let mut got_strided = fill(seed ^ 0x888, m * n);
        matmul_raw_strided(&a, k, &b, &mut got_strided, m, k, n, false);
        prop_assert_eq!(bits(&want), bits(&got_strided));
    }

    /// Strided A (reading k columns out of a wider lda-pitch buffer — the
    /// fused-QKV access pattern) matches a contiguous copy bitwise, for both
    /// the packed kernel and the strided naive kernel.
    #[test]
    fn strided_a_is_bitwise_contiguous(m in 1usize..10, k in 1usize..13, n in 1usize..18, pad in 0usize..5, seed in 0u64..1 << 32) {
        let lda = k + pad;
        let wide = fill(seed, m * lda);
        let mut narrow = vec![0.0f32; m * k];
        for i in 0..m {
            narrow[i * k..(i + 1) * k].copy_from_slice(&wide[i * lda..i * lda + k]);
        }
        let b = fill(seed ^ 0xBEEF, k * n);
        let mut want = vec![0.0f32; m * n];
        matmul_raw(&narrow, &b, &mut want, m, k, n);

        let bp = pack_b(&b, k, n);
        let mut got = vec![0.0f32; m * n];
        gemm_packed(&wide, lda, &bp, &mut got, m, false);
        prop_assert_eq!(bits(&want), bits(&got));

        let mut got2 = vec![0.0f32; m * n];
        matmul_raw_strided(&wide, lda, &b, &mut got2, m, k, n, true);
        prop_assert_eq!(bits(&want), bits(&got2));
    }

    /// Packing the transpose directly (the tied-embedding-head path) equals
    /// materializing the transpose and packing it.
    #[test]
    fn transposed_pack_is_bitwise_transpose_then_pack(m in 1usize..7, k in 1usize..13, n in 1usize..26, seed in 0u64..1 << 32) {
        let src = fill(seed, n * k); // stored [n, k], multiplies as [k, n]
        let mut bt = vec![0.0f32; n * k];
        transpose_into(&src, n, k, &mut bt);
        let a = fill(seed ^ 0xC0DE, m * k);
        let mut want = vec![0.0f32; m * n];
        matmul_raw(&a, &bt, &mut want, m, k, n);
        let bp = pack_b_transposed(&src, k, n);
        let mut got = vec![0.0f32; m * n];
        gemm_packed(&a, k, &bp, &mut got, m, false);
        prop_assert_eq!(bits(&want), bits(&got));
    }

    /// Both arms of the `gemm_auto` dispatch heuristic produce identical
    /// bits, so the m/n/MAC thresholds are a pure performance choice. The
    /// shape ranges straddle the 8k-MAC packing threshold (up to ~59k MACs),
    /// so both the raw and packed routes are exercised.
    #[test]
    fn gemm_auto_is_bitwise_matmul_raw(m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..1 << 32) {
        let a = fill(seed, m * k);
        let b = fill(seed ^ 0xD1CE, k * n);
        let mut want = vec![0.0f32; m * n];
        matmul_raw(&a, &b, &mut want, m, k, n);
        let mut got = vec![0.0f32; m * n];
        gemm_auto(&a, &b, &mut got, m, k, n);
        prop_assert_eq!(bits(&want), bits(&got));
    }

    /// Parallel `gemm_packed` is bitwise-identical to the 1-lane serial path
    /// at every tested thread count. Shapes are scaled up so the product
    /// crosses the parallel work threshold: `wide` below forces the
    /// panel-block path (too few row tiles to split), the tall arm forces
    /// row blocks, and both accumulate modes run on the same operands.
    #[test]
    fn parallel_gemm_is_bitwise_serial_at_every_thread_count(
        wide in prop_oneof![Just(false), Just(true)],
        dim in 1usize..5,
        k in 33usize..96,
        acc in prop_oneof![Just(false), Just(true)],
        seed in 0u64..1 << 32,
    ) {
        // Tall: m in 33..161, n in 17..81 — always ≥ 2 row tiles.
        // Wide: m in 1..5, n in 257..1281 — 1 row tile, ≥ 32 panels.
        let (m, n) = if wide { (dim, 256 * dim + 256) } else { (32 * dim + 1, 16 * dim + 1) };
        let a = fill(seed, m * k);
        let b = fill(seed ^ 0xFACE, k * n);
        let bp = pack_b(&b, k, n);
        let seed_out = fill(seed ^ 0x5EED, m * n);
        let serial = delrec_par::with_pool(&delrec_par::ThreadPool::new(1), || {
            let mut out = seed_out.clone();
            gemm_packed(&a, k, &bp, &mut out, m, acc);
            out
        });
        for lanes in [2usize, 3, 7, 8] {
            let pool = delrec_par::ThreadPool::new(lanes);
            let got = delrec_par::with_pool(&pool, || {
                let mut out = seed_out.clone();
                gemm_packed(&a, k, &bp, &mut out, m, acc);
                out
            });
            prop_assert_eq!(bits(&serial), bits(&got), "m={} k={} n={} acc={} lanes={}", m, k, n, acc, lanes);
        }
    }

    /// Per-channel quantization invariants of `pack_b_q8`: in every column
    /// the max-abs value maps to a ±127 code, all-zero columns keep a 0.0
    /// scale with all-zero codes (no NaN anywhere downstream), and every
    /// dequantized element sits within maxabs/254 of the original — half a
    /// code step at the column's own scale.
    #[test]
    fn q8_pack_per_channel_scale_properties(
        k in 1usize..24,
        n in 1usize..26,
        zero_col in 0usize..26,
        seed in 0u64..1 << 32,
    ) {
        let mut b = fill(seed, k * n);
        let zc = zero_col % n;
        for kk in 0..k {
            b[kk * n + zc] = 0.0;
        }
        let bq = pack_b_q8(&b, k, n);
        // Identity A makes the kernel emit the dequantized panel itself:
        // row kk of `deq` is `widen(q[kk, :]) · scales`, one multiply per
        // element, so every invariant is observable through the public API.
        let mut eye = vec![0.0f32; k * k];
        for kk in 0..k {
            eye[kk * k + kk] = 1.0;
        }
        let mut deq = vec![f32::NAN; k * n];
        gemm_packed_q8(&eye, k, &bq, &mut deq, k, false);
        prop_assert!(deq.iter().all(|x| !x.is_nan()), "kernel emitted NaN");
        for j in 0..n {
            let maxabs = (0..k).map(|kk| b[kk * n + j].abs()).fold(0.0f32, f32::max);
            let s = bq.scales()[j];
            prop_assert!(s.is_finite(), "column {} scale not finite", j);
            let col_max = (0..k).map(|kk| deq[kk * n + j].abs()).fold(0.0f32, f32::max);
            if maxabs == 0.0 {
                prop_assert_eq!(s, 0.0, "zero column {} must get scale 0", j);
                for kk in 0..k {
                    prop_assert_eq!(deq[kk * n + j].to_bits(), 0.0f32.to_bits());
                }
                continue;
            }
            prop_assert!(
                (s - maxabs / 127.0).abs() <= f32::EPSILON * maxabs,
                "column {}: scale {} vs maxabs/127 {}", j, s, maxabs / 127.0
            );
            // The max-abs element maps to a ±127 code, and no code exceeds
            // it: the column's dequantized max is exactly 127 · scale.
            prop_assert_eq!(
                col_max.to_bits(),
                (127.0 * s).to_bits(),
                "column {}: max |dequant| must be 127·scale", j
            );
            for kk in 0..k {
                prop_assert!(
                    (deq[kk * n + j] - b[kk * n + j]).abs() <= maxabs / 254.0 + f32::EPSILON * maxabs,
                    "column {} row {}: dequant error above maxabs/254", j, kk
                );
            }
        }
    }

    /// Parallel `gemm_packed_q8` is bitwise-identical to the 1-lane serial
    /// path at thread counts {2, 4, 8}, through both the row-block and
    /// panel-block splits, in both accumulate modes — the q8 mirror of the
    /// f32 determinism pin above.
    #[test]
    fn parallel_q8_is_bitwise_serial_at_every_thread_count(
        wide in prop_oneof![Just(false), Just(true)],
        dim in 1usize..5,
        k in 33usize..96,
        acc in prop_oneof![Just(false), Just(true)],
        seed in 0u64..1 << 32,
    ) {
        let (m, n) = if wide { (dim, 256 * dim + 256) } else { (32 * dim + 1, 16 * dim + 1) };
        let a = fill(seed, m * k);
        let b = fill(seed ^ 0xFACE, k * n);
        let bq = pack_b_q8(&b, k, n);
        let seed_out = fill(seed ^ 0x5EED, m * n);
        let serial = delrec_par::with_pool(&delrec_par::ThreadPool::new(1), || {
            let mut out = seed_out.clone();
            gemm_packed_q8(&a, k, &bq, &mut out, m, acc);
            out
        });
        for lanes in [2usize, 4, 8] {
            let pool = delrec_par::ThreadPool::new(lanes);
            let got = delrec_par::with_pool(&pool, || {
                let mut out = seed_out.clone();
                gemm_packed_q8(&a, k, &bq, &mut out, m, acc);
                out
            });
            prop_assert_eq!(bits(&serial), bits(&got), "m={} k={} n={} acc={} lanes={}", m, k, n, acc, lanes);
        }
    }

    /// Tiled transpose places every element exactly like the naive loop,
    /// including shapes straddling the tile boundary.
    #[test]
    fn tiled_transpose_matches_naive(rows in 1usize..70, cols in 1usize..70, seed in 0u64..1 << 32) {
        let x = fill(seed, rows * cols);
        let mut naive = vec![0.0f32; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                naive[c * rows + r] = x[r * cols + c];
            }
        }
        let mut tiled = vec![0.0f32; rows * cols];
        transpose_into(&x, rows, cols, &mut tiled);
        prop_assert_eq!(bits(&naive), bits(&tiled));
    }
}

/// Directed corner sweep on top of the random shapes: every combination of
/// {below, at, just above} the MR / 4-group / NR edges.
#[test]
fn remainder_class_grid_is_bitwise() {
    for m in [1, MR - 1, MR, MR + 1, 2 * MR] {
        for k in [1, 3, 4, 5, 8, 9] {
            for n in [1, NR - 1, NR, NR + 1, 2 * NR, 2 * NR + 3] {
                let a = fill((m * 1009 + k) as u64, m * k);
                let b = fill((n * 2003 + 1) as u64, k * n);
                let mut want = vec![0.0f32; m * n];
                matmul_raw(&a, &b, &mut want, m, k, n);
                let mut got = vec![0.0f32; m * n];
                gemm(&a, &b, &mut got, m, k, n);
                assert_eq!(bits(&want), bits(&got), "m={m} k={k} n={n}");
            }
        }
    }
}
