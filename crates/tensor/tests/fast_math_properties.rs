//! Property-based verification of the fast transcendental kernels against
//! the libm reference: error bounds over their useful domains, and
//! monotonicity of `fast_exp` (rank-based consumers — softmax, candidate
//! scoring — tolerate small absolute error but not order inversions).

use delrec_tensor::{fast_exp, fast_gelu, fast_sigmoid, fast_tanh};
use proptest::prelude::*;

fn rel_err(approx: f32, exact: f32) -> f32 {
    if exact == 0.0 {
        approx.abs()
    } else {
        ((approx - exact) / exact).abs()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn fast_exp_relative_error_bound(x in -20.0f32..20.0) {
        let e = rel_err(fast_exp(x), x.exp());
        prop_assert!(e <= 2e-5, "fast_exp({x}) rel err {e}");
    }

    #[test]
    fn fast_tanh_absolute_error_bound(x in -20.0f32..20.0) {
        let e = (fast_tanh(x) - x.tanh()).abs();
        prop_assert!(e <= 1e-4, "fast_tanh({x}) abs err {e}");
    }

    #[test]
    fn fast_gelu_absolute_error_bound(x in -20.0f32..20.0) {
        // Reference: the exact tanh-approximation GELU the tape computes.
        let t = 0.797_884_6 * (x + 0.044_715 * x * x * x);
        let want = 0.5 * x * (1.0 + t.tanh());
        let e = (fast_gelu(x) - want).abs();
        prop_assert!(e <= 1e-4, "fast_gelu({x}) abs err {e}");
    }

    #[test]
    fn fast_sigmoid_absolute_error_bound(x in -20.0f32..20.0) {
        let want = 1.0 / (1.0 + (-x).exp());
        let e = (fast_sigmoid(x) - want).abs();
        prop_assert!(e <= 1e-4, "fast_sigmoid({x}) abs err {e}");
    }

    #[test]
    fn fast_exp_is_monotone_on_random_pairs(a in -88.0f32..88.0, b in -88.0f32..88.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            fast_exp(lo) <= fast_exp(hi),
            "fast_exp inverted: f({lo}) = {} > f({hi}) = {}",
            fast_exp(lo),
            fast_exp(hi)
        );
    }
}

/// Dense deterministic sweep: adjacent samples 1e-2 apart across the softmax
/// working range must never invert. (A full per-ulp sweep of [-88, 89] was
/// run offline during development: zero inversions.)
#[test]
fn fast_exp_is_monotone_on_dense_grid() {
    let mut prev = fast_exp(-20.0);
    let mut x = -20.0f32;
    while x < 20.0 {
        x += 1e-2;
        let cur = fast_exp(x);
        assert!(cur >= prev, "inversion at x = {x}: {cur} < {prev}");
        prev = cur;
    }
}

/// The clamp edges: overflow to +inf, underflow to zero, never NaN.
#[test]
fn fast_exp_saturates_cleanly() {
    assert_eq!(fast_exp(f32::INFINITY), f32::INFINITY);
    assert_eq!(fast_exp(1000.0), f32::INFINITY);
    assert_eq!(fast_exp(-1000.0), 0.0);
    assert_eq!(fast_exp(f32::NEG_INFINITY), 0.0);
    assert_eq!(fast_exp(0.0), 1.0);
}
