//! Deterministic fixed-size thread pool shared by the DELRec execution layers.
//!
//! The pool exists to spread *already-deterministic* work across cores
//! without changing a single bit of the output. The contract every caller in
//! the workspace relies on:
//!
//! * **Partitioning is a pure function of the problem shape** — helpers like
//!   [`partition`] and [`chunk_ranges`] depend only on `(len, parts)`, never
//!   on timing or thread identity.
//! * **Each task writes a disjoint output range** — [`ThreadPool::for_each_range`]
//!   hands every task its own `&mut [T]` sub-slice, so there is no shared
//!   accumulator and no reduction whose order could float.
//! * **Which thread runs a task is irrelevant** — tasks are claimed
//!   dynamically for load balance, but since task *i* computes a pure
//!   function of its index into its own range, claim order cannot perturb
//!   results. Parallel output is bitwise-identical to serial at every thread
//!   count, including 1.
//!
//! Sizing comes from `DELREC_THREADS` (default: the machine's available
//! parallelism). A pool of `n` *lanes* owns `n - 1` parked worker threads;
//! the caller of a parallel region is always the n-th lane and participates
//! in executing its own tasks, which also guarantees progress for nested
//! parallel regions (a worker waiting on an inner region drains the queue
//! instead of blocking). With one lane everything runs inline on the caller
//! — the pool degrades to plain serial execution with zero threads spawned.
//!
//! The process-wide pool is reached through [`current`]; tests inject a
//! specific size with [`with_pool`]. The pool reports
//! `par.pool.{tasks,queue_depth,workers}` into the metrics registry and runs
//! every task under a `par.task` span, so per-worker span trees merge into
//! [`delrec_obs::profile`] like any other thread's.

#![warn(missing_docs)]

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use delrec_obs::{counter, gauge, span};

/// Hard ceiling on configured lanes — guards against absurd `DELREC_THREADS`.
const MAX_LANES: usize = 256;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    /// Worker thread count (`lanes - 1`).
    workers: usize,
    /// Total execution lanes including the caller of a parallel region.
    lanes: usize,
}

impl Shared {
    fn pop_job(&self) -> Option<Job> {
        let mut st = self.state.lock().unwrap();
        let job = st.queue.pop_front();
        if job.is_some() {
            gauge!("par.pool.queue_depth").set(st.queue.len() as f64);
        }
        job
    }
}

/// Completion latch for one scope: counts outstanding tasks and stores the
/// first panic. Notifies on *every* completion so helping waiters re-scan
/// the queue (a completing task may have enqueued nested work).
struct Latch {
    state: Mutex<LatchState>,
    cv: Condvar,
}

struct LatchState {
    pending: usize,
    panic: Option<Box<dyn Any + Send + 'static>>,
}

impl Latch {
    fn new() -> Latch {
        Latch {
            state: Mutex::new(LatchState {
                pending: 0,
                panic: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn add(&self, n: usize) {
        self.state.lock().unwrap().pending += n;
    }

    fn complete(&self, panic: Option<Box<dyn Any + Send + 'static>>) {
        let mut st = self.state.lock().unwrap();
        st.pending -= 1;
        if st.panic.is_none() {
            st.panic = panic;
        }
        drop(st);
        self.cv.notify_all();
    }

    fn is_done(&self) -> bool {
        self.state.lock().unwrap().pending == 0
    }

    /// Block until either the latch drains or another task completes (the
    /// caller then re-scans the pool queue for claimable work).
    fn wait_event(&self) {
        let st = self.state.lock().unwrap();
        if st.pending == 0 {
            return;
        }
        drop(self.cv.wait(st).unwrap());
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send + 'static>> {
        self.state.lock().unwrap().panic.take()
    }
}

/// Joins the workers when the last externally-held handle drops.
struct JoinGuard {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Drop for JoinGuard {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.work_cv.notify_all();
        for h in self.handles.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

/// A fixed-size scoped thread pool. Cheap to clone: clones share the same
/// workers. Workers shut down when the last *externally created* handle
/// drops (handles observed by workers via [`current`] do not keep the pool
/// alive).
pub struct ThreadPool {
    shared: Arc<Shared>,
    _guard: Option<Arc<JoinGuard>>,
}

impl Clone for ThreadPool {
    fn clone(&self) -> ThreadPool {
        ThreadPool {
            shared: self.shared.clone(),
            _guard: self._guard.clone(),
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("lanes", &self.shared.lanes)
            .finish()
    }
}

impl ThreadPool {
    /// Pool with `lanes` execution lanes (clamped to `1..=256`): `lanes - 1`
    /// parked worker threads plus the caller of each parallel region.
    pub fn new(lanes: usize) -> ThreadPool {
        let lanes = lanes.clamp(1, MAX_LANES);
        let workers = lanes - 1;
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            workers,
            lanes,
        });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let sh = shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("delrec-par-{i}"))
                .spawn(move || worker_loop(sh))
                .expect("spawn pool worker");
            handles.push(handle);
        }
        ThreadPool {
            shared: shared.clone(),
            _guard: Some(Arc::new(JoinGuard {
                shared,
                handles: Mutex::new(handles),
            })),
        }
    }

    /// Execution lanes (worker threads + the calling lane). `1` means fully
    /// serial: no threads exist and every API runs inline.
    pub fn lanes(&self) -> usize {
        self.shared.lanes
    }

    /// Worker thread count (`lanes - 1`).
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Fork-join scope: closures passed to [`Scope::spawn`] may borrow
    /// anything that outlives the `scope` call. Blocks until every spawned
    /// task finished; the calling thread helps execute queued tasks while it
    /// waits. The first panic from the closure or any task is propagated.
    pub fn scope<'env, F, R>(&'env self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        // Inside the region every lane — workers *and* the caller — resolves
        // `current()` to this pool, so nested parallel regions stay on it.
        let _current = OverrideGuard::set(ThreadPool {
            shared: self.shared.clone(),
            _guard: None,
        });
        let scope = Scope {
            pool: self,
            latch: Arc::new(Latch::new()),
            scope: PhantomData,
            env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.help_until(&scope.latch);
        if let Some(p) = scope.latch.take_panic() {
            resume_unwind(p);
        }
        match result {
            Ok(r) => r,
            Err(p) => resume_unwind(p),
        }
    }

    /// Run `f(0..n)` with every lane claiming indices from a shared counter.
    /// Blocks until all `n` calls completed; panics are propagated. Safe for
    /// bitwise-deterministic work because each index computes a pure
    /// function into its own output range — claim order is irrelevant.
    pub fn run_indexed(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        let helpers = self.shared.workers.min(n - 1);
        if helpers == 0 {
            let _current = OverrideGuard::set(ThreadPool {
                shared: self.shared.clone(),
                _guard: None,
            });
            for i in 0..n {
                f(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        let claim = |next: &AtomicUsize| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            f(i);
        };
        self.scope(|s| {
            for _ in 0..helpers {
                s.spawn(|| claim(&next));
            }
            claim(&next);
        });
    }

    /// Split `data` into the given disjoint, ascending ranges and run
    /// `f(i, &mut data[ranges[i]])` for each in parallel. The ranges must be
    /// non-overlapping, in ascending order, and within bounds (checked).
    pub fn for_each_range<T, F>(&self, data: &mut [T], ranges: &[Range<usize>], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let mut watermark = 0usize;
        for r in ranges {
            assert!(
                r.start >= watermark && r.start <= r.end && r.end <= data.len(),
                "for_each_range: ranges must be ascending, disjoint, in bounds"
            );
            watermark = r.end;
        }
        let base = SendPtr(data.as_mut_ptr());
        self.run_indexed(ranges.len(), &|i| {
            let r = &ranges[i];
            // SAFETY: ranges are disjoint (checked above), so concurrent
            // tasks touch non-overlapping memory; run_indexed blocks until
            // all tasks finished, so no slice outlives the borrow of `data`.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(r.start), r.end - r.start) };
            f(i, chunk);
        });
    }

    /// [`for_each_range`](Self::for_each_range) over fixed-size chunks of
    /// `chunk` elements (last chunk short), as produced by [`chunk_ranges`].
    pub fn for_each_chunk<T, F>(&self, data: &mut [T], chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let ranges = chunk_ranges(data.len(), chunk);
        self.for_each_range(data, &ranges, f);
    }

    /// Detached fire-and-forget task (used by the serve runtime). Runs
    /// inline on the caller when the pool has no workers, so a 1-lane pool
    /// cannot strand tasks. A panicking task is swallowed after bumping
    /// `par.pool.task_panics`.
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.inject(Box::new(move || {
            if catch_unwind(AssertUnwindSafe(f)).is_err() {
                counter!("par.pool.task_panics").incr();
            }
        }));
    }

    fn inject(&self, job: Job) {
        if self.shared.workers == 0 {
            run_job(job);
            return;
        }
        counter!("par.pool.tasks").incr();
        let mut st = self.shared.state.lock().unwrap();
        st.queue.push_back(job);
        gauge!("par.pool.queue_depth").set(st.queue.len() as f64);
        drop(st);
        self.shared.work_cv.notify_one();
    }

    /// Wait for `latch` while helping execute queued tasks (any task — the
    /// queue is global, and running someone else's task still makes global
    /// progress; a task of ours that is already running on a worker will
    /// notify the latch when it completes).
    fn help_until(&self, latch: &Latch) {
        loop {
            if latch.is_done() {
                return;
            }
            match self.shared.pop_job() {
                Some(job) => run_job(job),
                None => latch.wait_event(),
            }
        }
    }
}

fn run_job(job: Job) {
    let _span = span!("par.task");
    job();
}

fn worker_loop(shared: Arc<Shared>) {
    // Nested parallel regions inside a task should reuse the owning pool,
    // not fall through to the global one.
    let pool = ThreadPool {
        shared: shared.clone(),
        _guard: None,
    };
    CURRENT.with(|c| *c.borrow_mut() = Some(pool));
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    gauge!("par.pool.queue_depth").set(st.queue.len() as f64);
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        run_job(job);
    }
}

/// Fork-join scope handed to the closure of [`ThreadPool::scope`].
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'env ThreadPool,
    latch: Arc<Latch>,
    scope: PhantomData<&'scope mut &'scope ()>,
    env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task that may borrow anything outliving the enclosing
    /// `scope` call. Runs inline when the pool has no workers.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.latch.add(1);
        let latch = self.latch.clone();
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            latch.complete(result.err());
        });
        // SAFETY: `scope` blocks (helping) until the latch drains before it
        // returns, so the job — and everything it borrows from 'scope/'env —
        // is guaranteed to have finished running by the time those borrows
        // could end. Erasing the lifetime only lets the job sit in the
        // 'static queue meanwhile.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        self.pool.inject(job);
    }
}

/// Raw pointer wrapper so disjoint-range tasks can share one base pointer.
/// The accessor (rather than field access) makes closures capture the whole
/// wrapper, keeping the `Send`/`Sync` impls below in effect.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}
// SAFETY: only used to reconstruct disjoint sub-slices of a `&mut [T]` whose
// borrow outlives the parallel region; `T: Send` bounds on the public APIs
// make moving elements' ownership across threads sound.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

// ---------------------------------------------------------------------------
// Deterministic partitioners
// ---------------------------------------------------------------------------

/// Split `0..len` into at most `parts` contiguous ranges with sizes
/// differing by at most one — a pure function of `(len, parts)`. Returns no
/// empty ranges; fewer than `parts` ranges when `len < parts`.
pub fn partition(len: usize, parts: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts; // first `extra` ranges get one more element
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// Split `0..len` into fixed-size chunks of `chunk` elements (last chunk
/// short) — a pure function of `(len, chunk)`. This is the partitioner the
/// eval runner's serial and parallel paths share.
pub fn chunk_ranges(len: usize, chunk: usize) -> Vec<Range<usize>> {
    assert!(chunk > 0, "chunk_ranges: chunk must be positive");
    let mut out = Vec::with_capacity(len.div_ceil(chunk));
    let mut start = 0;
    while start < len {
        let end = (start + chunk).min(len);
        out.push(start..end);
        start = end;
    }
    out
}

// ---------------------------------------------------------------------------
// Process-wide pool and injection
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT: std::cell::RefCell<Option<ThreadPool>> =
        const { std::cell::RefCell::new(None) };
}

/// Restores the previous `CURRENT` override on drop (panic-safe).
struct OverrideGuard(Option<ThreadPool>);

impl OverrideGuard {
    fn set(pool: ThreadPool) -> OverrideGuard {
        OverrideGuard(CURRENT.with(|c| c.borrow_mut().replace(pool)))
    }
}

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        let prev = self.0.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Lane count the process-wide pool will use: `DELREC_THREADS` if set (a
/// positive integer, clamped to 256), else the machine's available
/// parallelism, else 1. Pure read — does not start the pool.
pub fn default_lanes() -> usize {
    if let Ok(v) = std::env::var("DELREC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(MAX_LANES);
            }
        }
        eprintln!("[delrec-par] ignoring invalid DELREC_THREADS={v:?}");
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_LANES)
}

/// The process-wide pool, started on first use with [`default_lanes`] lanes.
pub fn global() -> ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL
        .get_or_init(|| {
            let pool = ThreadPool::new(default_lanes());
            gauge!("par.pool.workers").set(pool.workers() as f64);
            pool
        })
        .clone()
}

/// The pool the current thread should schedule onto: the innermost
/// [`with_pool`] override, the owning pool on a worker thread, or the
/// process-wide [`global`] pool.
pub fn current() -> ThreadPool {
    CURRENT.with(|c| c.borrow().clone()).unwrap_or_else(global)
}

/// Run `f` with [`current`] resolving to `pool` on this thread — how tests
/// pin an exact thread count. Restores the previous override even on panic.
pub fn with_pool<R>(pool: &ThreadPool, f: impl FnOnce() -> R) -> R {
    let _restore = OverrideGuard::set(pool.clone());
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_indexed_covers_every_index_once() {
        for lanes in [1, 2, 3, 7, 8] {
            let pool = ThreadPool::new(lanes);
            let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            pool.run_indexed(100, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "lanes={lanes}"
            );
        }
    }

    #[test]
    fn for_each_chunk_writes_disjoint_ranges() {
        for lanes in [1, 2, 3, 8] {
            let pool = ThreadPool::new(lanes);
            let mut data = vec![0u64; 103];
            pool.for_each_chunk(&mut data, 10, |ci, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v = (ci * 10 + k) as u64;
                }
            });
            let expect: Vec<u64> = (0..103).collect();
            assert_eq!(data, expect, "lanes={lanes}");
        }
    }

    #[test]
    fn scope_tasks_borrow_environment() {
        let pool = ThreadPool::new(4);
        let input = vec![1u64, 2, 3, 4, 5];
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for v in &input {
                s.spawn(|| {
                    total.fetch_add(*v, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn nested_regions_complete_without_deadlock() {
        let pool = ThreadPool::new(3);
        let mut out = vec![0usize; 64];
        let outer = partition(out.len(), 4);
        pool.for_each_range(&mut out, &outer, |oi, chunk| {
            // Each outer task opens its own inner parallel region.
            current().for_each_chunk(chunk, 4, |ii, inner| {
                for (k, v) in inner.iter_mut().enumerate() {
                    *v = oi * 100 + ii * 10 + k;
                }
            });
        });
        for (oi, r) in outer.iter().enumerate() {
            for (j, idx) in r.clone().enumerate() {
                assert_eq!(out[idx], oi * 100 + (j / 4) * 10 + j % 4);
            }
        }
    }

    #[test]
    fn nested_regions_inside_worker_use_owning_pool() {
        let pool = ThreadPool::new(4);
        let seen = Mutex::new(Vec::new());
        pool.run_indexed(8, &|_| {
            seen.lock().unwrap().push(current().lanes());
        });
        assert!(seen.lock().unwrap().iter().all(|&l| l == 4));
    }

    #[test]
    fn panic_in_task_propagates_to_scope_caller() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(16, &|i| {
                if i == 7 {
                    panic!("boom at 7");
                }
            });
        }));
        let err = result.expect_err("panic should propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom at 7");
        // The pool must still be usable after a propagated panic.
        let n = AtomicUsize::new(0);
        pool.run_indexed(8, &|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn one_lane_pool_runs_inline_and_spawn_does_not_strand() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.workers(), 0);
        let caller = std::thread::current().id();
        let ran_on = Mutex::new(None);
        pool.run_indexed(4, &|_| {
            *ran_on.lock().unwrap() = Some(std::thread::current().id());
        });
        assert_eq!(*ran_on.lock().unwrap(), Some(caller));
        // Detached spawn on a worker-less pool runs inline, not never.
        let fired = Arc::new(AtomicUsize::new(0));
        let f2 = fired.clone();
        pool.spawn(move || {
            f2.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(fired.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn spawn_detached_runs_on_worker() {
        let pool = ThreadPool::new(2);
        let (tx, rx) = std::sync::mpsc::channel();
        pool.spawn(move || {
            tx.send(std::thread::current().name().map(String::from))
                .unwrap();
        });
        let name = rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        assert_eq!(name.as_deref(), Some("delrec-par-0"));
    }

    #[test]
    fn partition_is_exact_and_balanced() {
        for len in [0usize, 1, 2, 5, 7, 64, 103] {
            for parts in [1usize, 2, 3, 7, 8, 200] {
                let ranges = partition(len, parts);
                assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), len);
                assert!(ranges.len() <= parts.max(1));
                assert!(ranges.iter().all(|r| !r.is_empty()) || len == 0);
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(|r| r.len()).min(),
                    ranges.iter().map(|r| r.len()).max(),
                ) {
                    assert!(max - min <= 1, "len={len} parts={parts}");
                }
                let mut watermark = 0;
                for r in &ranges {
                    assert_eq!(r.start, watermark);
                    watermark = r.end;
                }
            }
        }
    }

    #[test]
    fn chunk_ranges_match_serial_chunking() {
        for len in [0usize, 1, 15, 16, 17, 100] {
            let ranges = chunk_ranges(len, 16);
            let serial: Vec<(usize, usize)> = (0..len)
                .collect::<Vec<_>>()
                .chunks(16)
                .map(|c| (c[0], c[c.len() - 1] + 1))
                .collect();
            let ours: Vec<(usize, usize)> = ranges.iter().map(|r| (r.start, r.end)).collect();
            assert_eq!(ours, serial);
        }
    }

    #[test]
    fn with_pool_overrides_and_restores_current() {
        let a = ThreadPool::new(2);
        let b = ThreadPool::new(3);
        with_pool(&a, || {
            assert_eq!(current().lanes(), 2);
            with_pool(&b, || assert_eq!(current().lanes(), 3));
            assert_eq!(current().lanes(), 2);
        });
    }

    #[test]
    fn worker_spans_merge_into_profile() {
        delrec_obs::reset();
        delrec_obs::set_enabled(true);
        let pool = ThreadPool::new(4);
        pool.run_indexed(12, &|_| {
            let _s = span!("par.test.work");
            std::hint::black_box(0u64);
        });
        delrec_obs::set_enabled(false);
        let report = delrec_obs::profile();
        let work: u64 = report
            .flat()
            .iter()
            .filter(|s| s.name == "par.test.work")
            .map(|s| s.count)
            .sum();
        assert_eq!(work, 12, "spans recorded on worker threads must merge");
    }
}
