//! `infer` — throughput of the grad-free inference engine vs. the autograd
//! tape on the MiniLm prompt scorer. Sweeps {tape, engine exact/fast} ×
//! {prefix cache off/on} × B ∈ {1, 8, 32} over the same recommendation
//! prompts and writes `BENCH_infer.json`.
//!
//! What to expect: the tape pays per-op node allocation and closure boxing on
//! every forward, and pads every example to the longest prompt in its chunk.
//! The engine removes the tape bookkeeping, prunes the final block down to
//! the mask rows (one row per example instead of the whole padded batch —
//! the dominant win for a 1-layer model, since the [B·T, vocab] head matmul
//! and T² softmaxes collapse to [B, ·]), and with the prefix cache skips
//! re-encoding the shared template head. Fast math trades the libm
//! transcendentals for polynomial kernels on top. Exact-mode engine scores
//! are asserted bitwise equal to the tape's before timing starts.

use delrec_bench::harness::PromptStream;
use delrec_bench::{banner, write_json, CliArgs, ExperimentContext};
use delrec_core::{LmPreset, TeacherKind};
use delrec_data::synthetic::DatasetProfile;
use delrec_eval::json::Json;
use delrec_eval::report::Table;
use delrec_lm::verbalizer;
use delrec_tensor::{Ctx, InferCtx, MathMode, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::Range;
use std::time::Instant;

const BATCH_SIZES: [usize; 3] = [1, 8, 32];

/// Process `n` examples in chunks of `batch`, returning items/sec — best of
/// three passes (the engine configurations are fast enough at bench scale
/// that a single pass is timer-noise-dominated).
fn measure(n: usize, batch: usize, mut run_chunk: impl FnMut(Range<usize>)) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..3 {
        let start = Instant::now();
        let mut i = 0;
        while i < n {
            let end = (i + batch).min(n);
            run_chunk(i..end);
            i = end;
        }
        best = best.max(n as f64 / start.elapsed().as_secs_f64().max(1e-9));
    }
    best
}

fn main() {
    let args = CliArgs::from_env();
    banner(&format!(
        "Inference engine — MiniLm items/sec at B = {{1, 8, 32}} (scale: {})",
        args.scale
    ));
    let ctx = ExperimentContext::new(DatasetProfile::MovieLens100K, args.scale, args.seed);

    // The same prompt stream the batching benchmark scores.
    let lm = ctx.lm(LmPreset::Large);
    let prompts = PromptStream::build(&ctx, TeacherKind::SASRec, args.seed, 64);
    let PromptStream {
        seqs,
        mask_pos,
        title_sets,
        prefix_len,
    } = &prompts;
    let (n, prefix_len) = (seqs.len(), *prefix_len);
    let shared_prefix = prompts.shared_prefix().to_vec();

    // Correctness gate before any timing: exact engine scores (cache on)
    // must be bitwise identical to the tape's.
    {
        let tape = Tape::new();
        let c = Ctx::new(&tape, lm.store(), false);
        let mut rng = StdRng::seed_from_u64(0);
        let logits = tape.get(lm.mask_logits_batch(&c, seqs, None, mask_pos, &mut rng));
        let refs: Vec<&[Vec<u32>]> = title_sets.iter().map(|t| t.as_slice()).collect();
        let want = verbalizer::rank_candidates_batch(&logits, &refs);
        let ic = InferCtx::new(MathMode::Exact);
        let cache = lm.build_prefix_cache(&ic, &shared_prefix, None);
        let logits = lm.mask_logits_infer_batch(&ic, seqs, None, mask_pos, cache.as_ref());
        let got = verbalizer::rank_candidates_batch_mode(&logits, &refs, MathMode::Exact);
        assert_eq!(got, want, "exact engine must reproduce tape scores");
    }

    let mut table = Table::new(
        std::iter::once("Engine".to_string())
            .chain(BATCH_SIZES.iter().map(|b| format!("B={b}")))
            .collect::<Vec<_>>(),
    );
    let mut engines = Vec::new();
    let mut tape_by_batch = [f64::NAN; BATCH_SIZES.len()];

    // Reference: the PR-1 tape path.
    {
        let mut cells = Vec::new();
        let mut series = Vec::new();
        for (bi, &b) in BATCH_SIZES.iter().enumerate() {
            let ips = measure(n, b, |r| {
                let tape = Tape::new();
                let c = Ctx::new(&tape, lm.store(), false);
                let mut rng = StdRng::seed_from_u64(0);
                let logits = lm.mask_logits_batch(
                    &c,
                    &seqs[r.clone()],
                    None,
                    &mask_pos[r.clone()],
                    &mut rng,
                );
                let logits = tape.get(logits);
                let refs: Vec<&[Vec<u32>]> = title_sets[r].iter().map(|t| t.as_slice()).collect();
                let _ = verbalizer::rank_candidates_batch(&logits, &refs);
            });
            tape_by_batch[bi] = ips;
            cells.push(format!("{ips:.1} (1.00x)"));
            series.push(Json::obj([
                ("batch", Json::from(b)),
                ("items_per_sec", Json::from(ips)),
                ("speedup_vs_tape", Json::from(1.0)),
            ]));
        }
        table.row(
            std::iter::once("tape".to_string())
                .chain(cells)
                .collect::<Vec<_>>(),
        );
        engines.push(Json::obj([
            ("engine", Json::from("tape")),
            ("series", Json::arr(series)),
        ]));
    }

    // Closure shared by the four engine configurations.
    let mut run_engine = |label: &str, math: MathMode, use_cache: bool, table: &mut Table| {
        let ic = InferCtx::new(math);
        // Built once per run, like the eval path (rebuilt only when
        // parameters, math mode, or the template prefix change).
        let cache = if use_cache {
            lm.build_prefix_cache(&ic, &shared_prefix, None)
        } else {
            None
        };
        let mut cells = Vec::new();
        let mut series = Vec::new();
        let mut base = f64::NAN;
        for (bi, &b) in BATCH_SIZES.iter().enumerate() {
            let ips = measure(n, b, |r| {
                let logits = lm.mask_logits_infer_batch(
                    &ic,
                    &seqs[r.clone()],
                    None,
                    &mask_pos[r.clone()],
                    cache.as_ref(),
                );
                let refs: Vec<&[Vec<u32>]> = title_sets[r].iter().map(|t| t.as_slice()).collect();
                let _ = verbalizer::rank_candidates_batch_mode(&logits, &refs, math);
            });
            if b == 1 {
                base = ips;
            }
            series.push(Json::obj([
                ("batch", Json::from(b)),
                ("items_per_sec", Json::from(ips)),
                ("speedup_vs_b1", Json::from(ips / base)),
                ("speedup_vs_tape", Json::from(ips / tape_by_batch[bi])),
            ]));
            cells.push(format!("{ips:.1} ({:.2}x tape)", ips / tape_by_batch[bi]));
        }
        table.row(
            std::iter::once(label.to_string())
                .chain(cells)
                .collect::<Vec<_>>(),
        );
        engines.push(Json::obj([
            ("engine", Json::from(label)),
            ("series", Json::arr(series)),
        ]));
    };

    run_engine("infer_exact", MathMode::Exact, false, &mut table);
    run_engine("infer_exact_cache", MathMode::Exact, true, &mut table);
    run_engine("infer_fast", MathMode::Fast, false, &mut table);
    run_engine("infer_fast_cache", MathMode::Fast, true, &mut table);

    println!("{}", table.to_markdown());
    let blob = Json::obj([
        ("experiment", Json::from("infer")),
        ("scale", Json::from(args.scale.to_string())),
        ("dataset", Json::from(ctx.dataset.name.clone())),
        ("examples", Json::from(n)),
        ("prefix_len", Json::from(prefix_len)),
        ("engines", Json::arr(engines)),
    ]);
    write_json(&args.out, "BENCH_infer", &blob).expect("write results");
}
