//! Diagnostics: verify the LM + verbalizer training path can overfit a tiny
//! fixed set of recommendation prompts. If this cannot reach near-zero loss,
//! the training pipeline (not the task) is broken.

use delrec_bench::{CliArgs, ExperimentContext};
use delrec_core::prompt::{PromptBuilder, SoftMode};
use delrec_core::stage2::build_lsr_items;
use delrec_core::LmPreset;
use delrec_data::synthetic::DatasetProfile;
use delrec_lm::verbalizer;
use delrec_tensor::optim::{clip_grad_norm, Adam, Optimizer};
use delrec_tensor::{Ctx, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = CliArgs::from_env();
    let ctx_exp = ExperimentContext::new(DatasetProfile::MovieLens100K, args.scale, args.seed);
    let mut lm = ctx_exp.lm(LmPreset::Xl);
    lm.set_backbone_trainable(true);
    let pb = PromptBuilder::new(&ctx_exp.pipeline.vocab, &ctx_exp.pipeline.items, "sasrec");
    let items = build_lsr_items(
        &ctx_exp.dataset,
        &pb,
        &ctx_exp.pipeline.items,
        15,
        SoftMode::None,
        16,
        1,
    );
    println!(
        "overfitting {} items, prompt len {}",
        items.len(),
        items[0].prompt.tokens.len()
    );
    let mut opt = Adam::new(2e-3);
    let mut rng = StdRng::seed_from_u64(0);
    for epoch in 0..60 {
        let (loss_value, mut updates) = {
            let tape = Tape::new();
            let ctx = Ctx::new(&tape, lm.store(), true);
            let mut rows = Vec::new();
            let mut targets = Vec::new();
            for item in &items {
                let logits = lm.mask_logits(
                    &ctx,
                    &item.prompt.tokens,
                    None,
                    item.prompt.mask_pos,
                    &mut rng,
                );
                rows.push(verbalizer::candidate_scores(
                    &tape,
                    logits,
                    &item.candidates,
                ));
                targets.push(item.target_idx);
            }
            let scores = tape.stack_rows(&rows);
            let loss = tape.cross_entropy(scores, &targets);
            let v = tape.get(loss).item();
            let mut grads = tape.backward(loss);
            (v, ctx.grads(&mut grads))
        };
        clip_grad_norm(&mut updates, 5.0);
        opt.apply(lm.store_mut(), &updates);
        if epoch % 10 == 0 || epoch == 59 {
            println!(
                "epoch {epoch:>3}: loss {loss_value:.4} (chance {:.4})",
                (15f32).ln()
            );
        }
    }
}
