//! `retrieval` — the full-catalog retrieve → re-rank pipeline, written to
//! `BENCH_retrieval.json`.
//!
//! Three gates, all asserted **before** a single timing is reported:
//!
//! 1. **Recall.** The retrieval stage's recall@{50,100} of the held-out
//!    target over the test split must clear pinned floors, and its coverage
//!    of the oracle 15-way candidate sets (same seed discipline as the
//!    ranking eval) is recorded alongside.
//! 2. **End-to-end quality.** `recommend(history) -> top-k` with no
//!    candidate list must land HR@10 / NDCG@10 within a pinned budget of the
//!    oracle-candidate protocol (which is handed a 15-way set containing the
//!    target — the full-catalog pipeline has to *find* it first, so the
//!    budget is a headroom bound, not an equality).
//! 3. **Determinism.** Retrieval and the full pipeline must be bitwise
//!    identical across thread counts {1, 2, 4, 8}, on both the fitted model
//!    and a synthetic catalog big enough to engage the parallel GEMM driver.
//! 4. **Batched ≡ sequential.** `retrieve_batch` and `recommend_batch` must
//!    be bitwise identical to looping the single-query path, at every tested
//!    thread count and batch size, both index formats.
//!
//! Then the headline measurements: full-catalog scan throughput over the
//! item-count × embedding-dim sweep (`CatalogWorkload`), f32 and q8 panels;
//! the batched multi-query scan against B sequential m=1 scans at B=32 on a
//! 32k-item catalog (the coalescing win the serve scheduler cashes in); and
//! the fitted pipeline's per-request latency split into retrieve and re-rank
//! stages, solo vs batched.

use delrec_bench::harness::{
    adaptive_speedup_gate, best_wall_ns, fill, fit_delrec, CatalogWorkload,
};
use delrec_bench::{banner, write_json, CliArgs, ExperimentContext};
use delrec_core::{LmPreset, Recommender, TeacherKind};
use delrec_data::synthetic::DatasetProfile;
use delrec_data::{ItemId, Split};
use delrec_eval::json::Json;
use delrec_eval::{
    evaluate, evaluate_retrieval, evaluate_top_k, RetrievalEvalConfig, TopKQuery, TopKRecommender,
};
use delrec_par::{with_pool, ThreadPool};
use delrec_retrieval::{IndexFormat, ItemIndex, Retriever};
use std::hint::black_box;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const K: usize = 10;
/// Recall floors for the retrieval stage at the standard depths. Both sit
/// well above the random baseline (n / catalog ≈ 0.37 at depth 50 on the
/// smoke catalog): an untrained scan fails them, the fitted one measured
/// 1.000 at both depths (smoke, seed 42), leaving real headroom.
const RECALL_FLOOR_50: f64 = 0.50;
const RECALL_FLOOR_100: f64 = 0.90;
/// How far the full-catalog pipeline may trail the oracle-candidate
/// protocol. The oracle is handed a 15-way set that *contains* the target;
/// the pipeline searches the whole catalog — a large gap is expected, but it
/// must stay bounded or retrieval is broken. Measured gaps at smoke/seed 42:
/// HR 0.433, NDCG 0.198.
const E2E_HR10_BUDGET: f64 = 0.60;
const E2E_NDCG10_BUDGET: f64 = 0.40;
/// The catalog-scale sweep: item count × embedding dim, far past what a
/// fitted smoke-scale LM provides.
const SWEEP: [(usize, usize); 4] = [(2048, 32), (8192, 64), (32768, 64), (65536, 128)];
const SWEEP_QUERIES: usize = 16;
/// The batched-scan measurement: B queries coalesced into one `[B,d]×[d,n]`
/// GEMM vs B sequential m=1 scans, on a catalog big enough that the win is
/// memory traffic (the item panel streams through cache once per batch
/// instead of once per query).
const BATCH_N_ITEMS: usize = 32768;
const BATCH_DIM: usize = 64;
const BATCH_B: usize = 32;
/// Batch sizes the bitwise gate replays (1 pins the degenerate case, 32
/// spans multiple register tiles, 5 is deliberately unaligned).
const GATE_BATCHES: [usize; 3] = [1, 5, 32];
/// The f32 speedup target for the batched scan on a multi-core host. On
/// hosts below the adaptive gate's core floor this drops to a no-regression
/// bound — same precedent as `bench/bin/par`.
const BATCH_SPEEDUP_TARGET: f64 = 2.0;
/// Q8 is gated no-regression at every core count: its per-tile dequant
/// compute is per-output-element and is not amortised by row batching (the
/// q8 win is index footprint, not batched throughput), so batching must
/// simply not slow it down.
const Q8_NO_REGRESSION: f64 = 0.85;

fn bits(ranked: &[(ItemId, f32)]) -> Vec<(u32, u32)> {
    ranked.iter().map(|&(id, s)| (id.0, s.to_bits())).collect()
}

fn main() {
    let args = CliArgs::from_env();
    banner(&format!(
        "Full-catalog retrieval → re-rank (scale: {})",
        args.scale
    ));
    let ctx = ExperimentContext::new(DatasetProfile::MovieLens100K, args.scale, args.seed);
    let model = fit_delrec(&ctx, TeacherKind::SASRec, LmPreset::Large);
    let rec = Recommender::new(model);
    let eval_cfg = ctx.eval_config();

    // ---- Gate 1: retrieval recall ----------------------------------------
    let ret_cfg = RetrievalEvalConfig {
        ns: vec![50, 100],
        m: eval_cfg.m,
        candidate_seed: eval_cfg.candidate_seed,
        max_examples: eval_cfg.max_examples,
    };
    let ret = evaluate_retrieval(
        |h, n| rec.retrieve(h, n).into_iter().map(|(id, _)| id).collect(),
        &ctx.dataset,
        Split::Test,
        &ret_cfg,
    );
    println!(
        "retrieval over {} examples: recall@50 {:.3} (floor {RECALL_FLOOR_50}), \
         recall@100 {:.3} (floor {RECALL_FLOOR_100}), coverage@100 {:.3}",
        ret.len(),
        ret.recall_at(50),
        ret.recall_at(100),
        ret.coverage_at(100)
    );
    assert!(
        ret.recall_at(50) >= RECALL_FLOOR_50,
        "recall gate: recall@50 {:.3} below floor {RECALL_FLOOR_50}",
        ret.recall_at(50)
    );
    assert!(
        ret.recall_at(100) >= RECALL_FLOOR_100,
        "recall gate: recall@100 {:.3} below floor {RECALL_FLOOR_100}",
        ret.recall_at(100)
    );

    // ---- Gate 2: end-to-end quality vs the oracle-candidate protocol ------
    let oracle = evaluate(&rec, &ctx.dataset, Split::Test, &eval_cfg);
    let e2e = evaluate_top_k(&rec, &ctx.dataset, Split::Test, K, eval_cfg.max_examples);
    let hr_gap = oracle.hr(K) - e2e.hr(K);
    let ndcg_gap = oracle.ndcg(K) - e2e.ndcg(K);
    println!(
        "end-to-end@{K}: full-catalog HR {:.3} / NDCG {:.3} (found {:.3}) vs \
         oracle-candidate HR {:.3} / NDCG {:.3} — gaps {:.3} / {:.3}",
        e2e.hr(K),
        e2e.ndcg(K),
        e2e.found_rate(),
        oracle.hr(K),
        oracle.ndcg(K),
        hr_gap,
        ndcg_gap
    );
    assert!(
        hr_gap <= E2E_HR10_BUDGET,
        "quality gate: HR@{K} gap {hr_gap:.3} exceeds budget {E2E_HR10_BUDGET}"
    );
    assert!(
        ndcg_gap <= E2E_NDCG10_BUDGET,
        "quality gate: NDCG@{K} gap {ndcg_gap:.3} exceeds budget {E2E_NDCG10_BUDGET}"
    );

    // ---- Gate 3: thread-count determinism --------------------------------
    // (a) The fitted pipeline: retrieval and full recommend, every lane
    // count bitwise identical to serial.
    let history: Vec<ItemId> = ctx.dataset.examples(Split::Test)[0].prefix.clone();
    let serial = ThreadPool::new(1);
    let want_ret = with_pool(&serial, || bits(&rec.retrieve(&history, 100)));
    let want_rec = with_pool(&serial, || bits(&rec.recommend_top_k(&history, K)));
    for &t in &THREADS[1..] {
        let pool = ThreadPool::new(t);
        let got_ret = with_pool(&pool, || bits(&rec.retrieve(&history, 100)));
        let got_rec = with_pool(&pool, || bits(&rec.recommend_top_k(&history, K)));
        assert_eq!(want_ret, got_ret, "retrieval diverged at {t} threads");
        assert_eq!(want_rec, got_rec, "recommend diverged at {t} threads");
    }
    // (b) A synthetic catalog big enough that the scan's parallel GEMM
    // driver actually engages — the fitted smoke catalog may be too small.
    let big = CatalogWorkload::build(8192, 64, 4, args.seed);
    for &format in &[IndexFormat::F32, IndexFormat::Q8] {
        let r = Retriever::build(big.embeddings.clone(), big.dim, 0, format);
        let want: Vec<_> = with_pool(&serial, || {
            big.histories
                .iter()
                .map(|h| bits(&r.retrieve(h, 100)))
                .collect()
        });
        for &t in &THREADS[1..] {
            let pool = ThreadPool::new(t);
            let got: Vec<_> = with_pool(&pool, || {
                big.histories
                    .iter()
                    .map(|h| bits(&r.retrieve(h, 100)))
                    .collect()
            });
            assert_eq!(want, got, "{format:?} scan diverged at {t} threads");
        }
    }
    println!("determinism gate: retrieval and recommend bitwise stable across {THREADS:?} threads");

    // ---- Gate 4: batched ≡ sequential ------------------------------------
    // (a) `retrieve_batch` on a synthetic catalog: every batch size, thread
    // count, and index format must reproduce the m=1 loop bit-for-bit.
    let bgate = CatalogWorkload::build(8192, 64, *GATE_BATCHES.iter().max().unwrap(), args.seed);
    let gate_refs: Vec<&[ItemId]> = bgate.histories.iter().map(|h| h.as_slice()).collect();
    for &format in &[IndexFormat::F32, IndexFormat::Q8] {
        let r = Retriever::build(bgate.embeddings.clone(), bgate.dim, 0, format);
        let want: Vec<_> = with_pool(&serial, || {
            gate_refs
                .iter()
                .map(|h| bits(&r.retrieve(h, 100)))
                .collect()
        });
        for &t in &THREADS {
            let pool = ThreadPool::new(t);
            for &b in &GATE_BATCHES {
                let got = with_pool(&pool, || r.retrieve_batch(&gate_refs[..b], 100));
                for (i, row) in got.iter().enumerate() {
                    assert_eq!(
                        want[i],
                        bits(row),
                        "{format:?} retrieve_batch(B={b}) row {i} diverged at {t} threads"
                    );
                }
            }
        }
    }
    // (b) The fitted pipeline: `recommend_batch` over mixed histories and
    // per-request depths must reproduce the solo `recommend_top_k` loop.
    let batch_requests: Vec<(Vec<ItemId>, usize)> = ctx
        .dataset
        .examples(Split::Test)
        .iter()
        .take(6)
        .enumerate()
        .map(|(i, ex)| (ex.prefix.clone(), [K, 5, 1, K, 3, 7][i % 6]))
        .collect();
    let want_batch: Vec<_> = with_pool(&serial, || {
        batch_requests
            .iter()
            .map(|(h, k)| bits(&rec.recommend_top_k(h, *k)))
            .collect()
    });
    for &t in &THREADS {
        let pool = ThreadPool::new(t);
        let queries: Vec<TopKQuery<'_>> = batch_requests
            .iter()
            .map(|(h, k)| (h.as_slice(), *k))
            .collect();
        let got = with_pool(&pool, || rec.recommend_top_k_batch(&queries));
        for (i, row) in got.iter().enumerate() {
            assert_eq!(
                want_batch[i],
                bits(row),
                "recommend_batch row {i} diverged from solo at {t} threads"
            );
        }
    }
    println!(
        "batched gate: retrieve_batch and recommend_batch bitwise equal to the \
         sequential loop at B {GATE_BATCHES:?}, {THREADS:?} threads, both formats"
    );

    // ---- Timing: catalog-scale scan sweep --------------------------------
    let mut sweep_rows = Vec::new();
    for point in CatalogWorkload::sweep(&SWEEP, SWEEP_QUERIES, args.seed) {
        let mut row = vec![
            ("n_items", Json::from(point.n_items)),
            ("dim", Json::from(point.dim)),
            ("queries", Json::from(SWEEP_QUERIES)),
        ];
        for &format in &[IndexFormat::F32, IndexFormat::Q8] {
            let label = match format {
                IndexFormat::F32 => "f32",
                IndexFormat::Q8 => "q8",
            };
            let build_ns = best_wall_ns(|| {
                black_box(Retriever::build(
                    point.embeddings.clone(),
                    point.dim,
                    0,
                    format,
                ));
            });
            let r = Retriever::build(point.embeddings.clone(), point.dim, 0, format);
            let pass_ns = best_wall_ns(|| {
                for h in &point.histories {
                    black_box(r.retrieve(h, 100));
                }
            });
            let per_query_ns = pass_ns / SWEEP_QUERIES as f64;
            let items_per_s = point.n_items as f64 / (per_query_ns / 1e9);
            println!(
                "scan {}x{} [{label}]: build {:.2} ms, {:.3} ms/query, {:.1}M items/s",
                point.n_items,
                point.dim,
                build_ns / 1e6,
                per_query_ns / 1e6,
                items_per_s / 1e6
            );
            row.push((
                match format {
                    IndexFormat::F32 => "f32",
                    IndexFormat::Q8 => "q8",
                },
                Json::obj([
                    ("build_ns", Json::from(build_ns)),
                    ("per_query_ns", Json::from(per_query_ns)),
                    ("items_per_s", Json::from(items_per_s)),
                    ("index_bytes", Json::from(r.index().bytes())),
                ]),
            ));
        }
        sweep_rows.push(Json::obj(row));
    }

    // ---- Timing: batched multi-query scan vs B sequential scans ----------
    // Raw `scan_batch_into` against a loop of m=1 `scan_into` on identical
    // queries — the exact coalescing the serve scheduler cashes in. The f32
    // gate follows the `par` bench precedent: a speedup target on multi-core
    // hosts, a no-regression bound on starved ones, and the verdict is
    // *recorded*, never asserted (timing on shared hosts is noisy; the
    // bitwise gates above are the hard ones).
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let bw = CatalogWorkload::build(BATCH_N_ITEMS, BATCH_DIM, BATCH_B, args.seed);
    let batch_queries = fill(args.seed ^ 0x5ca1_ab1e, BATCH_B * BATCH_DIM);
    let mut batched_rows = Vec::new();
    for &format in &[IndexFormat::F32, IndexFormat::Q8] {
        let label = match format {
            IndexFormat::F32 => "f32",
            IndexFormat::Q8 => "q8",
        };
        let idx = ItemIndex::build(bw.embeddings.clone(), BATCH_DIM, 0, format);
        let mut out = vec![0.0f32; BATCH_B * BATCH_N_ITEMS];
        let batched_ns = best_wall_ns(|| {
            out.fill(0.0);
            idx.scan_batch_into(&batch_queries, BATCH_B, &mut out);
            black_box(&out);
        });
        let mut row_buf = vec![0.0f32; BATCH_N_ITEMS];
        let sequential_ns = best_wall_ns(|| {
            for i in 0..BATCH_B {
                row_buf.fill(0.0);
                idx.scan_into(
                    &batch_queries[i * BATCH_DIM..(i + 1) * BATCH_DIM],
                    &mut row_buf,
                );
                black_box(&row_buf);
            }
        });
        let speedup = sequential_ns / batched_ns;
        let (gate_mode, target) = match format {
            IndexFormat::F32 => adaptive_speedup_gate(cores, BATCH_SPEEDUP_TARGET),
            IndexFormat::Q8 => ("no_regression", Q8_NO_REGRESSION),
        };
        let met = speedup >= target;
        println!(
            "batched scan {BATCH_N_ITEMS}x{BATCH_DIM} B={BATCH_B} [{label}]: \
             batched {:.3} ms, {BATCH_B}x sequential {:.3} ms, speedup {speedup:.2}x \
             — gate [{gate_mode}] target {target:.2} on {cores} core(s){}",
            batched_ns / 1e6,
            sequential_ns / 1e6,
            if met { "" } else { " — MISSED" }
        );
        batched_rows.push((
            label,
            Json::obj([
                ("batched_ns", Json::from(batched_ns)),
                ("sequential_ns", Json::from(sequential_ns)),
                ("speedup", Json::from(speedup)),
                (
                    "rows_items_per_s",
                    Json::from((BATCH_B * BATCH_N_ITEMS) as f64 / (batched_ns / 1e9)),
                ),
                ("gate_mode", Json::from(gate_mode)),
                ("target", Json::from(target)),
                ("met", Json::Bool(met)),
            ]),
        ));
    }
    // End-to-end batched retrieval (encode + scan + top-k) on the same
    // catalog — the number a caller holding B histories actually sees.
    let bw_refs: Vec<&[ItemId]> = bw.histories.iter().map(|h| h.as_slice()).collect();
    let r = Retriever::build(bw.embeddings.clone(), bw.dim, 0, IndexFormat::F32);
    let e2e_batched_ns = best_wall_ns(|| {
        black_box(r.retrieve_batch(&bw_refs, 100));
    });
    let e2e_sequential_ns = best_wall_ns(|| {
        for h in &bw_refs {
            black_box(r.retrieve(h, 100));
        }
    });
    println!(
        "batched retrieve-100 B={BATCH_B} [f32]: batched {:.3} ms, sequential {:.3} ms \
         ({:.2}x end-to-end)",
        e2e_batched_ns / 1e6,
        e2e_sequential_ns / 1e6,
        e2e_sequential_ns / e2e_batched_ns
    );

    // ---- Timing: fitted pipeline stage latencies -------------------------
    let retrieve_ns = best_wall_ns(|| {
        black_box(rec.retrieve(&history, 100));
    });
    let recommend_ns = best_wall_ns(|| {
        black_box(rec.recommend_top_k(&history, K));
    });
    // The batched fitted pipeline: B requests through one retrieve_batch +
    // one flattened re-rank vs B solo recommend calls.
    let fitted_histories: Vec<&[ItemId]> =
        batch_requests.iter().map(|(h, _)| h.as_slice()).collect();
    let fitted_b = fitted_histories.len();
    let recommend_batch_ns = best_wall_ns(|| {
        black_box(rec.recommend_batch(&fitted_histories, K));
    });
    let recommend_loop_ns = best_wall_ns(|| {
        for h in &fitted_histories {
            black_box(rec.recommend_top_k(h, K));
        }
    });
    println!(
        "fitted pipeline: retrieve-100 {:.3} ms, recommend-{K} {:.2} ms \
         (re-rank ≈ {:.2} ms); recommend_batch B={fitted_b} {:.2} ms vs \
         {:.2} ms solo loop ({:.2}x)",
        retrieve_ns / 1e6,
        recommend_ns / 1e6,
        (recommend_ns - retrieve_ns) / 1e6,
        recommend_batch_ns / 1e6,
        recommend_loop_ns / 1e6,
        recommend_loop_ns / recommend_batch_ns
    );

    let blob = Json::obj([
        ("experiment", Json::from("retrieval")),
        ("scale", Json::from(args.scale.to_string())),
        ("dataset", Json::from(ctx.dataset.name.clone())),
        ("catalog_items", Json::from(ctx.dataset.num_items())),
        (
            "recall",
            Json::obj([
                ("examples", Json::from(ret.len())),
                ("recall_at_50", Json::from(ret.recall_at(50))),
                ("recall_at_100", Json::from(ret.recall_at(100))),
                ("coverage_at_50", Json::from(ret.coverage_at(50))),
                ("coverage_at_100", Json::from(ret.coverage_at(100))),
                ("floor_50", Json::from(RECALL_FLOOR_50)),
                ("floor_100", Json::from(RECALL_FLOOR_100)),
                ("met", Json::Bool(true)), // asserted above
            ]),
        ),
        (
            "end_to_end",
            Json::obj([
                ("k", Json::from(K)),
                ("hr", Json::from(e2e.hr(K))),
                ("ndcg", Json::from(e2e.ndcg(K))),
                ("found_rate", Json::from(e2e.found_rate())),
                ("oracle_hr", Json::from(oracle.hr(K))),
                ("oracle_ndcg", Json::from(oracle.ndcg(K))),
                ("hr_gap", Json::from(hr_gap)),
                ("ndcg_gap", Json::from(ndcg_gap)),
                ("hr_budget", Json::from(E2E_HR10_BUDGET)),
                ("ndcg_budget", Json::from(E2E_NDCG10_BUDGET)),
                ("met", Json::Bool(true)), // asserted above
            ]),
        ),
        (
            "determinism",
            Json::obj([
                (
                    "threads",
                    Json::arr(THREADS.iter().map(|&t| Json::from(t)).collect::<Vec<_>>()),
                ),
                ("bitwise_identical", Json::Bool(true)), // asserted above
                (
                    "batch_sizes",
                    Json::arr(
                        GATE_BATCHES
                            .iter()
                            .map(|&b| Json::from(b))
                            .collect::<Vec<_>>(),
                    ),
                ),
                ("batched_equals_sequential", Json::Bool(true)), // asserted above
            ]),
        ),
        ("scan_sweep", Json::arr(sweep_rows)),
        (
            "batched_scan",
            Json::obj(
                [
                    ("n_items", Json::from(BATCH_N_ITEMS)),
                    ("dim", Json::from(BATCH_DIM)),
                    ("batch", Json::from(BATCH_B)),
                    ("cores", Json::from(cores)),
                    (
                        "e2e_retrieve",
                        Json::obj([
                            ("batched_ns", Json::from(e2e_batched_ns)),
                            ("sequential_ns", Json::from(e2e_sequential_ns)),
                            ("speedup", Json::from(e2e_sequential_ns / e2e_batched_ns)),
                        ]),
                    ),
                ]
                .into_iter()
                .chain(batched_rows)
                .collect::<Vec<_>>(),
            ),
        ),
        (
            "pipeline_latency",
            Json::obj([
                ("retrieve_100_ns", Json::from(retrieve_ns)),
                ("recommend_k_ns", Json::from(recommend_ns)),
                ("recommend_batch_b", Json::from(fitted_b)),
                ("recommend_batch_ns", Json::from(recommend_batch_ns)),
                ("recommend_loop_ns", Json::from(recommend_loop_ns)),
            ]),
        ),
    ]);
    write_json(&args.out, "BENCH_retrieval", &blob).expect("write results");
}
