//! Reproduces **Table I** — dataset statistics (sequences, items,
//! interactions, sparsity) for the synthetic profiles, side by side with the
//! paper's published values for the real datasets.

use delrec_bench::{banner, write_json, CliArgs};
use delrec_data::synthetic::{DatasetProfile, SyntheticConfig};
use delrec_eval::json::Json;
use delrec_eval::report::Table;

fn main() {
    let args = CliArgs::from_env();
    banner(&format!(
        "Table I — dataset statistics (scale: {})",
        args.scale
    ));
    let mut table = Table::new([
        "Dataset",
        "sequences",
        "items",
        "interactions",
        "sparsity",
        "paper sparsity",
    ]);
    let mut rows = Vec::new();
    for profile in [
        DatasetProfile::MovieLens100K,
        DatasetProfile::Steam,
        DatasetProfile::Beauty,
        DatasetProfile::HomeKitchen,
        DatasetProfile::KuaiRec,
    ] {
        if !args.includes(profile.name()) {
            continue;
        }
        let ds = SyntheticConfig::profile(profile)
            .scaled(args.scale.dataset_factor())
            .generate(args.seed);
        let st = ds.stats();
        table.row([
            ds.name.clone(),
            st.sequences.to_string(),
            st.items.to_string(),
            st.interactions.to_string(),
            format!("{:.2}%", st.sparsity * 100.0),
            format!("{:.2}%", profile.paper_sparsity() * 100.0),
        ]);
        rows.push(Json::obj([
            ("dataset", Json::from(ds.name.clone())),
            ("sequences", Json::from(st.sequences)),
            ("items", Json::from(st.items)),
            ("interactions", Json::from(st.interactions)),
            ("sparsity", Json::from(st.sparsity)),
            ("paper_sparsity", Json::from(profile.paper_sparsity())),
        ]));
    }
    println!("{}", table.to_markdown());
    println!(
        "Note: absolute sizes are scaled to CPU budgets; the preserved \
         property is the sparsity/size *ordering* (see DESIGN.md)."
    );
    let blob = Json::obj([
        ("experiment", Json::from("table1")),
        ("scale", Json::from(args.scale.to_string())),
        ("rows", Json::arr(rows)),
    ]);
    write_json(&args.out, "table1", &blob).expect("write results");
}
