//! `soak` — open-loop soak of the serving runtime across a model hot-swap
//! and a simulated kill/recover, over a WAL-backed session store.
//!
//! The run sustains paced traffic through three waves on one persistence
//! directory:
//!
//! 1. **Pre-swap wave** — open-loop arrivals build per-user sessions on a
//!    persistent server; every response is verified bitwise against direct
//!    scoring on the client-tracked history. Probe users then record
//!    reference scores on their settled sessions.
//! 2. **Hot swap** — the fitted model is repacked through a `save → load`
//!    round-trip and published under live configuration. A post-swap wave
//!    hits fresh users (verified bitwise against the repacked model), and
//!    the probes re-score: untouched sessions must not change by a single
//!    bit across the swap, and every post-swap response must acknowledge the
//!    new generation.
//! 3. **Kill / recover** — the server is dropped, a garbage torn tail is
//!    appended to one shard log (the crash that never acked), and the store
//!    is recovered: the rebuilt state must be bitwise identical to the
//!    pre-crash dump with zero lost sessions. A restarted server on the same
//!    directory then continues the original sessions seamlessly.
//!
//! Gates (abort on violation, recorded in the JSON): zero bitwise scoring
//! mismatches in every wave, zero probe drift across the swap, recovered
//! state ≡ pre-crash state, zero lost sessions, `completed + shed +
//! timed_out ≤ submitted` on every ledger, and p99 latency bounded by the
//! request deadline budget. Observability: `serve.wal.*` and
//! `serve.<n>.swap.*` metrics are exported into the blob.
//!
//! Writes `BENCH_soak.json`.

use delrec_bench::harness::{fit_delrec, ScoringWorkload};
use delrec_bench::{banner, write_json, CliArgs, ExperimentContext};
use delrec_core::{DelRec, LmPreset, TeacherKind};
use delrec_data::synthetic::DatasetProfile;
use delrec_data::ItemId;
use delrec_eval::json::Json;
use delrec_eval::report::Table;
use delrec_eval::Ranker;
use delrec_serve::{
    MetricsSnapshot, PersistConfig, RecRequest, ServeConfig, Server, SessionStore, WalOptions,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client-side session replay: the store's append/truncate semantics.
fn replay_session(hist: &mut Vec<ItemId>, delta: &[ItemId], max_history: usize) -> Vec<ItemId> {
    hist.extend_from_slice(delta);
    if hist.len() > max_history {
        hist.drain(..hist.len() - max_history);
    }
    hist.clone()
}

/// Read one counter from the global observability registry (0 if absent).
fn global_counter(name: &str) -> u64 {
    delrec_obs::global()
        .snapshot()
        .into_iter()
        .find(|(n, _)| n == name)
        .and_then(|(_, v)| match v {
            delrec_obs::MetricValue::Counter(c) => Some(c),
            _ => None,
        })
        .unwrap_or(0)
}

/// One wave's outcome: the server-side ledger plus the client-side bitwise
/// verification tally.
struct Wave {
    label: &'static str,
    submitted: usize,
    completed: u64,
    shed_or_timed_out: u64,
    rejected: u64,
    mismatches: usize,
    wrong_seq: usize,
    p50_ms: f64,
    p99_ms: f64,
}

impl Wave {
    fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::from(self.label)),
            ("submitted", Json::from(self.submitted)),
            ("completed", Json::from(self.completed as usize)),
            (
                "shed_or_timed_out",
                Json::from(self.shed_or_timed_out as usize),
            ),
            ("rejected", Json::from(self.rejected as usize)),
            ("bitwise_mismatches", Json::from(self.mismatches)),
            ("wrong_model_seq", Json::from(self.wrong_seq)),
            ("latency_p50_ms", Json::from(self.p50_ms)),
            ("latency_p99_ms", Json::from(self.p99_ms)),
        ])
    }
}

/// The ledger invariant every server snapshot must satisfy.
fn assert_ledger(snap: &MetricsSnapshot, label: &str) {
    assert!(
        snap.completed + snap.shed_expired + snap.timed_out <= snap.submitted,
        "[{label}] ledger violated: completed {} + shed {} + timed_out {} > submitted {}",
        snap.completed,
        snap.shed_expired,
        snap.timed_out,
        snap.submitted
    );
}

/// Drive one open-loop wave: users `user_base + (i % users)` receive paced
/// delta appends drawn from the workload, every completed response is
/// verified bitwise against `verify_model` on the client-tracked history,
/// and (when `expect_seq` is set) must acknowledge exactly that publish
/// sequence. `sessions` carries each user's shadow history across waves —
/// and across the kill/recover.
#[allow(clippy::too_many_arguments)]
fn run_wave(
    label: &'static str,
    server: &Server<DelRec>,
    verify_model: &DelRec,
    work: &ScoringWorkload,
    sessions: &mut HashMap<u64, Vec<ItemId>>,
    user_base: u64,
    users: u64,
    n: usize,
    offered_rps: f64,
    budget: Duration,
    expect_seq: Option<u64>,
) -> Wave {
    let client = server.client();
    let max_history = server.config().max_history;
    let interarrival = Duration::from_secs_f64(1.0 / offered_rps);
    let start = Instant::now();
    let mut rejected = 0u64;
    let mut inflight = Vec::with_capacity(n);
    for i in 0..n {
        let due = start + interarrival * i as u32;
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let user = user_base + (i as u64 % users);
        let prefix = work.prefix(i);
        let delta = &prefix[..prefix.len().min(3)];
        let expected = replay_session(sessions.entry(user).or_default(), delta, max_history);
        let cands = work.candidates(i).to_vec();
        match client.submit(RecRequest {
            user_id: user,
            recent_items: delta.to_vec(),
            candidates: cands.clone(),
            deadline: Some(Instant::now() + budget),
        }) {
            Ok(h) => inflight.push((h, expected, cands)),
            Err(_) => rejected += 1,
        }
    }

    let mut completed = 0u64;
    let mut shed = 0u64;
    let mut mismatches = 0usize;
    let mut wrong_seq = 0usize;
    let mut verified = Vec::new();
    for (h, hist, cands) in inflight {
        match h.wait() {
            Ok(resp) => {
                completed += 1;
                if expect_seq.is_some_and(|s| resp.model_seq != s) {
                    wrong_seq += 1;
                }
                verified.push((resp.scores, hist, cands));
            }
            Err(_) => shed += 1,
        }
    }
    // Verify after the wave drains so direct scoring never overlaps the
    // server's own forwards.
    for (scores, hist, cands) in &verified {
        if verify_model.score_candidates(hist, cands) != *scores {
            mismatches += 1;
        }
    }

    let after = server.metrics().snapshot();
    assert_ledger(&after, label);
    eprintln!(
        "[{label}] {completed}/{n} completed, {shed} shed, {rejected} rejected, \
         {mismatches} bitwise mismatches"
    );
    Wave {
        label,
        submitted: n,
        completed,
        shed_or_timed_out: shed,
        rejected,
        mismatches,
        wrong_seq,
        p50_ms: after.latency_p50.as_secs_f64() * 1e3,
        p99_ms: after.latency_p99.as_secs_f64() * 1e3,
    }
}

fn main() {
    let args = CliArgs::from_env();
    banner(&format!(
        "Soak — durable sessions + model hot-swap under live traffic (scale: {})",
        args.scale
    ));
    let ctx = ExperimentContext::new(DatasetProfile::MovieLens100K, args.scale, args.seed);
    let teacher = TeacherKind::SASRec;
    let preset = LmPreset::Large;
    let model = Arc::new(fit_delrec(&ctx, teacher, preset));

    let (wave_n, users) = match args.scale.to_string().as_str() {
        "smoke" => (48usize, 6u64),
        _ => (160, 16),
    };
    let work = ScoringWorkload::build_cycled(&ctx, args.seed, wave_n);

    // Calibrate offered load to half of the model's direct throughput so the
    // open loop stays sustainable and sheds only on real regressions.
    let t = Instant::now();
    std::hint::black_box(work.score_pass(model.as_ref(), 16));
    let model_rps = wave_n as f64 / t.elapsed().as_secs_f64().max(1e-9);
    let offered_rps = (0.5 * model_rps).clamp(20.0, 2000.0);
    let budget = Duration::from_millis(1000);
    eprintln!("[calibrate] direct ≈ {model_rps:.0} req/s, offering {offered_rps:.0} req/s");

    let wal_dir: PathBuf = std::env::temp_dir().join(format!("delrec-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let cfg = || ServeConfig {
        max_batch: 16,
        batch_window: Duration::from_millis(1),
        max_queue: 4096,
        num_workers: 0,
        session_shards: 8,
        persistence: Some(PersistConfig {
            dir: wal_dir.clone(),
            // Aggressive compaction so the soak exercises live snapshotting,
            // not just log appends.
            wal: WalOptions {
                snapshot_bytes: 2048,
                fsync: false,
            },
        }),
        ..ServeConfig::default()
    };

    let mut sessions: HashMap<u64, Vec<ItemId>> = HashMap::new();
    let mut waves = Vec::new();

    // ---- Phase 1: pre-swap wave + probe baselines --------------------------
    let server = Server::start(Arc::clone(&model), cfg());
    waves.push(run_wave(
        "pre-swap",
        &server,
        &model,
        &work,
        &mut sessions,
        0,
        users,
        wave_n,
        offered_rps,
        budget,
        Some(0),
    ));

    // Probes: settled sessions re-scored with an empty delta, before and
    // after the swap. Their bits are the swap-transparency gate.
    let client = server.client();
    let probe_users: Vec<u64> = (0..users.min(6)).collect();
    let probe_scores = |tag: &str| -> Vec<Vec<f32>> {
        probe_users
            .iter()
            .enumerate()
            .map(|(i, &u)| {
                client
                    .submit(RecRequest {
                        user_id: u,
                        recent_items: vec![],
                        candidates: work.candidates(i).to_vec(),
                        deadline: None,
                    })
                    .unwrap_or_else(|e| panic!("probe {tag} admission: {e}"))
                    .wait()
                    .unwrap_or_else(|e| panic!("probe {tag} response: {e}"))
                    .scores
            })
            .collect()
    };
    let probes_before = probe_scores("pre-swap");

    // ---- Phase 2: hot swap (repack via save → load) under live config -----
    eprintln!("[swap] repacking the fitted model (save → load) …");
    let mut blob = Vec::new();
    model.save(&mut blob).expect("serialize fitted model");
    let mut repack_cfg = ctx.delrec_config(teacher);
    repack_cfg.lm = preset;
    let repacked = Arc::new(
        DelRec::load(&ctx.pipeline, &repack_cfg, &mut blob.as_slice()).expect("restore model"),
    );
    let seq = server.publish(Arc::clone(&repacked));
    assert_eq!(seq, 1, "first publish must be sequence 1");

    waves.push(run_wave(
        "post-swap",
        &server,
        &repacked,
        &work,
        &mut sessions,
        1_000,
        users,
        wave_n,
        offered_rps,
        budget,
        Some(1),
    ));

    let probes_after = probe_scores("post-swap");
    let probe_diffs = probes_before
        .iter()
        .zip(&probes_after)
        .filter(|(a, b)| a != b)
        .count();
    assert_eq!(
        probe_diffs, 0,
        "hot swap changed bits for untouched sessions"
    );
    eprintln!(
        "[swap] {} probe sessions bitwise stable across publish",
        probe_users.len()
    );

    // ---- Phase 3: kill, recover, verify, restart ---------------------------
    let pre_crash = server.sessions().dump();
    let swap_snap = server.metrics().snapshot();
    assert_eq!(swap_snap.model_publishes, 1);
    assert_ledger(&swap_snap, "pre-kill");
    let final_p99_ms = swap_snap.latency_p99.as_secs_f64() * 1e3;
    drop(server); // the kill: in-memory state is gone, only the WAL remains

    // A crash can tear the record being written when the plug pulls; no such
    // record was ever acknowledged. Simulate one and demand recovery shrugs.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(wal_dir.join("shard-000.log"))
            .expect("open shard log for tail injection");
        f.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00]).unwrap();
    }

    let torn_before = global_counter("serve.wal.torn_tails");
    let recovered = SessionStore::recover(&wal_dir).expect("recover WAL directory");
    let torn_after = global_counter("serve.wal.torn_tails");
    let recovered_dump = recovered.dump();
    let lost = pre_crash.len().saturating_sub(recovered_dump.len());
    assert_eq!(lost, 0, "sessions lost across kill/recover");
    assert_eq!(
        recovered_dump, pre_crash,
        "recovered state must be bitwise identical to the pre-crash view"
    );
    assert!(torn_after > torn_before, "injected torn tail not observed");
    eprintln!(
        "[recover] {} sessions recovered bitwise, torn tail truncated",
        recovered_dump.len()
    );
    drop(recovered); // release the shard logs before the restart reopens them

    // Restart on the same directory (recover-on-start) and continue the
    // *original* sessions: the shadow histories survive in `sessions`, so a
    // bitwise-clean wave proves continuity through the crash.
    let server = Server::start(Arc::clone(&repacked), cfg());
    assert_eq!(
        server.sessions().dump(),
        pre_crash,
        "recover-on-start state"
    );
    waves.push(run_wave(
        "post-recover",
        &server,
        &repacked,
        &work,
        &mut sessions,
        0,
        users,
        wave_n,
        offered_rps,
        budget,
        Some(0),
    ));
    let restart_snap = server.shutdown();
    assert_ledger(&restart_snap, "post-recover");

    // ---- Gates and report --------------------------------------------------
    let total_mismatches: usize = waves.iter().map(|w| w.mismatches).sum();
    let total_wrong_seq: usize = waves.iter().map(|w| w.wrong_seq).sum();
    assert_eq!(total_mismatches, 0, "bitwise scoring mismatches in soak");
    assert_eq!(total_wrong_seq, 0, "responses acknowledged the wrong model");
    let budget_ms = budget.as_secs_f64() * 1e3;
    for w in &waves {
        assert!(
            w.p99_ms <= budget_ms,
            "[{}] p99 {:.1}ms exceeds the {budget_ms:.0}ms budget",
            w.label,
            w.p99_ms
        );
        assert!(w.completed > 0, "[{}] nothing completed", w.label);
    }

    let mut table = Table::new(["wave", "done", "shed", "mismatch", "p50", "p99"]);
    for w in &waves {
        table.row(vec![
            w.label.into(),
            format!("{}/{}", w.completed, w.submitted),
            format!("{}", w.shed_or_timed_out + w.rejected),
            format!("{}", w.mismatches),
            format!("{:.1}ms", w.p50_ms),
            format!("{:.1}ms", w.p99_ms),
        ]);
    }
    println!("{}", table.to_markdown());

    let wal_metrics = Json::obj([
        (
            "appends",
            Json::from(global_counter("serve.wal.appends") as usize),
        ),
        (
            "append_bytes",
            Json::from(global_counter("serve.wal.append_bytes") as usize),
        ),
        (
            "snapshots",
            Json::from(global_counter("serve.wal.snapshots") as usize),
        ),
        (
            "records_recovered",
            Json::from(global_counter("serve.wal.records_recovered") as usize),
        ),
        (
            "torn_tails",
            Json::from(global_counter("serve.wal.torn_tails") as usize),
        ),
        (
            "recoveries",
            Json::from(global_counter("serve.wal.recoveries") as usize),
        ),
    ]);
    let blob = Json::obj([
        ("experiment", Json::from("soak")),
        ("scale", Json::from(args.scale.to_string())),
        ("dataset", Json::from(ctx.dataset.name.clone())),
        ("offered_rps", Json::from(offered_rps)),
        ("budget_ms", Json::from(budget_ms)),
        ("waves", Json::arr(waves.iter().map(Wave::to_json))),
        (
            "gates",
            Json::obj([
                ("bitwise_mismatches", Json::from(total_mismatches)),
                ("wrong_model_seq", Json::from(total_wrong_seq)),
                ("probe_sessions", Json::from(probe_users.len())),
                ("probe_bit_diffs_across_swap", Json::from(probe_diffs)),
                ("sessions_pre_crash", Json::from(pre_crash.len())),
                ("sessions_lost", Json::from(lost)),
                ("recovered_bitwise_equal", Json::from(1usize)),
                ("ledger_consistent", Json::from(1usize)),
                ("p99_within_budget", Json::from(1usize)),
            ]),
        ),
        (
            "swap",
            Json::obj([
                ("publishes", Json::from(swap_snap.model_publishes as usize)),
                ("final_p99_ms", Json::from(final_p99_ms)),
            ]),
        ),
        ("wal", wal_metrics),
    ]);
    write_json(&args.out, "BENCH_soak", &blob).expect("write results");
    let _ = std::fs::remove_dir_all(&wal_dir);
}
