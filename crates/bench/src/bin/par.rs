//! `par` — scaling curves for the shared `delrec-par` thread pool (see the
//! "Parallel execution" section of `DESIGN.md`), written to `BENCH_par.json`.
//!
//! Two measurements, both behind correctness gates that assert **bitwise**
//! agreement before a single timing is reported:
//!
//! 1. **GEMM scaling.** The packed kernel on a square shape big enough to
//!    cross the parallel work threshold, timed at thread counts {1, 2, 4}.
//!    Gate: every thread count reproduces the 1-lane output bit for bit.
//! 2. **Batch-32 scoring scaling.** A fitted DELRec scored over the same
//!    request stream as BENCH_gemm, at thread counts {1, 2, 4}, best-of-3
//!    walls. Gate: every thread count produces identical score bits.
//!
//! The speedup target adapts to the machine: with ≥ 4 cores the batch-32
//! gate is ≥ 1.8x at 4 threads vs 1; on fewer cores extra lanes cannot buy
//! wall time, so the gate relaxes to "no regression" and the core count is
//! recorded in the JSON so the numbers read honestly.

use delrec_bench::harness::{
    adaptive_speedup_gate, best_ns, best_wall_ns, fill, fit_delrec, score_bits, ScoringWorkload,
};
use delrec_bench::{banner, write_json, CliArgs, ExperimentContext};
use delrec_core::{LmPreset, TeacherKind};
use delrec_data::synthetic::DatasetProfile;
use delrec_eval::json::Json;
use delrec_par::{with_pool, ThreadPool};
use delrec_tensor::{gemm_packed, pack_b};
use std::hint::black_box;

const BATCH: usize = 32;
const THREADS: [usize; 3] = [1, 2, 4];

/// GEMM at one shape across thread counts: gate bitwise identity against the
/// 1-lane result, then report per-thread-count best-of-3 times.
fn gemm_scaling(m: usize, k: usize, n: usize, iters: u32) -> Json {
    let a = fill(7, m * k);
    let b = fill(11, k * n);
    let bp = pack_b(&b, k, n);
    let run = |lanes: usize| -> Vec<f32> {
        let pool = ThreadPool::new(lanes);
        with_pool(&pool, || {
            let mut out = vec![0.0f32; m * n];
            gemm_packed(&a, k, &bp, &mut out, m, false);
            out
        })
    };
    let want: Vec<u32> = run(1).iter().map(|x| x.to_bits()).collect();
    let mut points = Vec::new();
    for &t in &THREADS {
        let got: Vec<u32> = run(t).iter().map(|x| x.to_bits()).collect();
        assert_eq!(
            want, got,
            "correctness gate: parallel gemm diverged from serial at {t} threads"
        );
        let pool = ThreadPool::new(t);
        let mut out = vec![0.0f32; m * n];
        let ns = with_pool(&pool, || {
            best_ns(iters, || {
                gemm_packed(&a, k, &bp, black_box(&mut out), m, false);
            })
        });
        points.push((t, ns));
    }
    let base = points[0].1;
    for &(t, ns) in &points {
        println!(
            "  gemm [{m}x{k}x{n}] {t} thread(s): {:9.0} ns  ({:.2}x vs 1)",
            ns,
            base / ns
        );
    }
    Json::obj([
        ("m", Json::from(m)),
        ("k", Json::from(k)),
        ("n", Json::from(n)),
        (
            "points",
            Json::arr(
                points
                    .iter()
                    .map(|&(t, ns)| {
                        Json::obj([
                            ("threads", Json::from(t)),
                            ("best_ns", Json::from(ns)),
                            ("speedup_vs_1", Json::from(base / ns)),
                        ])
                    })
                    .collect::<Vec<Json>>(),
            ),
        ),
    ])
}

fn main() {
    let args = CliArgs::from_env();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    banner(&format!(
        "PAR — shared thread pool scaling (scale: {}, cores: {cores})",
        args.scale
    ));

    // ---- Part 1: GEMM scaling curve --------------------------------------
    // 256^3 = 16.8M MACs, far past the 128k-MAC parallel threshold; the
    // skinny [32, 64, 1024] shape exercises the panel-split path the
    // tied-embedding head uses.
    println!("gemm scaling (gate: bitwise vs 1 thread):");
    let gemm_curves = Json::arr(vec![
        gemm_scaling(256, 256, 256, 40),
        gemm_scaling(32, 64, 1024, 200),
    ]);

    // ---- Part 2: batch-32 scoring scaling --------------------------------
    let ctx = ExperimentContext::new(DatasetProfile::MovieLens100K, args.scale, args.seed);
    let model = fit_delrec(&ctx, TeacherKind::SASRec, LmPreset::Large);
    let work = ScoringWorkload::build(&ctx, args.seed, 64);
    let n = work.len();

    // Correctness gate, then best-of-3 walls, per thread count.
    let serial_pool = ThreadPool::new(1);
    let want = with_pool(&serial_pool, || score_bits(&work.score_pass(&model, BATCH)));
    let mut points = Vec::new();
    for &t in &THREADS {
        let pool = ThreadPool::new(t);
        let ns = with_pool(&pool, || {
            let got = score_bits(&work.score_pass(&model, BATCH));
            assert_eq!(
                want, got,
                "correctness gate: batch scoring diverged from serial at {t} threads"
            );
            best_wall_ns(|| {
                black_box(work.score_pass(&model, BATCH));
            })
        });
        points.push((t, ns));
    }
    let base = points[0].1;
    for &(t, ns) in &points {
        println!(
            "batch-{BATCH} score_candidates_batch, {t} thread(s): {:8.2} ms  ({:.2}x vs 1)",
            ns / 1e6,
            base / ns
        );
    }

    // Speedup gate: honest about the hardware. On < 4 cores, 4 lanes cannot
    // beat 1 — demand "no regression" (within timing noise) instead.
    let at4 = points
        .iter()
        .find(|&&(t, _)| t == 4)
        .map_or(1.0, |&(_, ns)| base / ns);
    let (gate_mode, target) = adaptive_speedup_gate(cores, 1.8);
    let met = at4 >= target;
    println!(
        "gate [{gate_mode}] on {cores} core(s): 4-thread speedup {at4:.2}x vs target ≥ {target}x{}",
        if met { "" } else { " — MISSED" }
    );

    let blob = Json::obj([
        ("experiment", Json::from("par")),
        ("scale", Json::from(args.scale.to_string())),
        ("dataset", Json::from(ctx.dataset.name.clone())),
        ("cores", Json::from(cores)),
        ("gemm_scaling", gemm_curves),
        (
            "batch_scoring",
            Json::obj([
                ("batch", Json::from(BATCH)),
                ("requests_per_pass", Json::from(n)),
                (
                    "points",
                    Json::arr(
                        points
                            .iter()
                            .map(|&(t, ns)| {
                                Json::obj([
                                    ("threads", Json::from(t)),
                                    ("best_wall_ns", Json::from(ns)),
                                    ("speedup_vs_1", Json::from(base / ns)),
                                ])
                            })
                            .collect::<Vec<Json>>(),
                    ),
                ),
                (
                    "gate",
                    Json::obj([
                        ("mode", Json::from(gate_mode)),
                        ("speedup_at_4_threads", Json::from(at4)),
                        ("target", Json::from(target)),
                        ("met", Json::Bool(met)),
                    ]),
                ),
            ]),
        ),
    ]);
    write_json(&args.out, "BENCH_par", &blob).expect("write results");
}
