//! Runs every reproduction binary in sequence with shared arguments.
//! Equivalent to invoking `repro_table1` … `repro_case_study` one by one;
//! useful for producing a complete `results/` directory in one command.

use std::process::Command;

const BINARIES: [&str; 9] = [
    "repro_table1",
    "repro_table2",
    "repro_table3",
    "repro_table4",
    "repro_table5",
    "repro_fig7",
    "repro_fig8",
    "repro_rq5",
    "repro_design_ablations",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir").to_path_buf();
    let mut failures = Vec::new();
    for bin in BINARIES.iter().chain(["repro_case_study"].iter()) {
        eprintln!("\n===== {bin} =====");
        let status = Command::new(bin_dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} FAILED with {status}");
            failures.push(*bin);
        }
    }
    if failures.is_empty() {
        eprintln!("\nall reproductions completed");
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
