//! Reproduces **Table II** — overall performance of conventional models,
//! LLM-based baselines, and DELRec on the four benchmark datasets, with
//! paired t-test significance stars against each DELRec row's conventional
//! backbone.

use delrec_bench::{banner, write_json, CliArgs, ExperimentContext, Method};
use delrec_core::TeacherKind;
use delrec_data::synthetic::DatasetProfile;
use delrec_data::Split;
use delrec_eval::json::Json;
use delrec_eval::report::Table;
use delrec_eval::{evaluate, paired_t_test, RankingReport};

const KS: [usize; 5] = [1, 5, 5, 10, 10];
const METRIC_NAMES: [&str; 5] = ["HR@1", "HR@5", "NDCG@5", "HR@10", "NDCG@10"];

fn metric(report: &RankingReport, idx: usize) -> f64 {
    match idx {
        0 => report.hr(1),
        1 => report.hr(5),
        2 => report.ndcg(5),
        3 => report.hr(10),
        _ => report.ndcg(10),
    }
}

fn main() {
    let args = CliArgs::from_env();
    let mut all = Vec::new();
    for profile in DatasetProfile::TABLE2 {
        if !args.includes(profile.name()) {
            continue;
        }
        let ctx = ExperimentContext::new(profile, args.scale, args.seed);
        banner(&format!(
            "Table II — {} (scale: {})",
            ctx.dataset.name, args.scale
        ));
        let eval_cfg = ctx.eval_config();

        let mut reports: Vec<(Method, RankingReport)> = Vec::new();
        for method in Method::TABLE2 {
            let ranker = method.fit(&ctx);
            let report = evaluate(ranker.as_ref(), &ctx.dataset, Split::Test, &eval_cfg);
            eprintln!(
                "[{}] {}: HR@1 {:.4}, HR@10 {:.4}",
                ctx.dataset.name,
                method.label(),
                report.hr(1),
                report.hr(10)
            );
            reports.push((method, report));
        }

        // Significance: DELRec(x) vs its conventional backbone, per metric.
        let backbone_report = |kind: TeacherKind| {
            reports
                .iter()
                .find(|(m, _)| *m == Method::Conventional(kind))
                .map(|(_, r)| r.clone())
                .expect("backbone evaluated")
        };

        let mut table = Table::new(
            ["Group", "Method"]
                .into_iter()
                .map(String::from)
                .chain(METRIC_NAMES.iter().map(|s| s.to_string()))
                .collect::<Vec<_>>(),
        );
        let mut json_rows = Vec::new();
        for (method, report) in &reports {
            let mut cells = vec![method.group().to_string(), method.label()];
            let mut json_metrics = Vec::new();
            for (mi, name) in METRIC_NAMES.iter().enumerate() {
                let value = metric(report, mi);
                let stars = if let Method::DelRec(kind) = method {
                    let base = backbone_report(*kind);
                    let (ours, theirs) = if name.starts_with("HR") {
                        (report.per_example_hr(KS[mi]), base.per_example_hr(KS[mi]))
                    } else {
                        (
                            report.per_example_ndcg(KS[mi]),
                            base.per_example_ndcg(KS[mi]),
                        )
                    };
                    paired_t_test(&ours, &theirs).improvement_stars()
                } else {
                    ""
                };
                cells.push(format!("{value:.4}{stars}"));
                json_metrics.push((name.to_string(), Json::from(value)));
            }
            table.row(cells);
            json_rows.push(Json::obj(
                [
                    ("method".to_string(), Json::from(method.label())),
                    ("group".to_string(), Json::from(method.group())),
                ]
                .into_iter()
                .chain(json_metrics),
            ));
        }
        println!("{}", table.to_markdown());
        all.push(Json::obj([
            ("dataset", Json::from(ctx.dataset.name.clone())),
            ("rows", Json::arr(json_rows)),
        ]));
    }
    let blob = Json::obj([
        ("experiment", Json::from("table2")),
        ("scale", Json::from(args.scale.to_string())),
        ("seed", Json::from(args.seed as f64)),
        ("datasets", Json::arr(all)),
    ]);
    write_json(&args.out, "table2", &blob).expect("write results");
}
