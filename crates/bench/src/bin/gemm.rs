//! `gemm` — payoff of the packed register-blocked GEMM and fused QKV/FFN
//! projections (see the "GEMM kernel" section of `DESIGN.md`), written to
//! `BENCH_gemm.json`.
//!
//! Three measurements, all behind correctness gates that assert **bitwise**
//! agreement before a single timing is reported:
//!
//! 1. **Kernel microbench.** `matmul_raw` vs the blocked kernel (packing per
//!    call, and against a cached pack) on the LM's own shapes: the old
//!    per-head projection, the fused per-layer panel, and the tied-embedding
//!    head. Gate: the blocked kernel reproduces `matmul_raw` bit for bit on
//!    every timed shape.
//! 2. **End-to-end batch-32 scoring.** A fitted DELRec scored over the same
//!    request stream as BENCH_obs, fused path vs the legacy per-head path
//!    (`set_fused_projections(false)` — the pre-PR engine, kept in-tree as
//!    the reference), best-of-3 wall each. Gate: fused, legacy, and the
//!    autograd tape all produce identical score bits. Target (recorded, not
//!    asserted — it is hardware-dependent): fused ≥ 1.3x legacy.
//! 3. **Attribution re-run.** The BENCH_obs batch-32 profile repeated on the
//!    fused path: the `lm.qkv` + `lm.pack` share of wall, against the 55.5%
//!    `lm.qkv` share PR 4 measured on the per-head path.

use delrec_bench::harness::{best_ns, best_wall_ns, fill, fit_delrec, score_bits, ScoringWorkload};
use delrec_bench::{banner, write_json, CliArgs, ExperimentContext};
use delrec_core::{LmPreset, TeacherKind};
use delrec_data::synthetic::DatasetProfile;
use delrec_eval::json::Json;
use delrec_tensor::{gemm_auto, matmul_raw, pack_b, PackedB};
use std::hint::black_box;
use std::time::Instant;

const BATCH: usize = 32;
/// `lm.qkv` share of batch-32 wall on the per-head path (results/BENCH_obs.json).
const PRE_PR_QKV_PCT: f64 = 55.5;

/// One timed kernel shape: gate bitwise equality, then time the three
/// kernels (naive, pack-per-call, cached-pack).
fn kernel_case(label: &str, m: usize, k: usize, n: usize, iters: u32) -> Json {
    let a = fill(1, m * k);
    let b = fill(2, k * n);
    let mut want = vec![0.0f32; m * n];
    matmul_raw(&a, &b, &mut want, m, k, n);
    let mut got = vec![0.0f32; m * n];
    gemm_auto(&a, &b, &mut got, m, k, n);
    assert_eq!(
        want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        "correctness gate: blocked kernel diverged from matmul_raw at {label}"
    );

    let mut out = vec![0.0f32; m * n];
    let naive_ns = best_ns(iters, || {
        out.fill(0.0);
        matmul_raw(&a, &b, black_box(&mut out), m, k, n);
    });
    let pack_each_ns = best_ns(iters, || {
        let bp = pack_b(&b, k, n);
        delrec_tensor::gemm_packed(&a, k, &bp, black_box(&mut out), m, false);
    });
    let bp: PackedB = pack_b(&b, k, n);
    let cached_ns = best_ns(iters, || {
        delrec_tensor::gemm_packed(&a, k, &bp, black_box(&mut out), m, false);
    });
    println!(
        "  {label:<28} [{m:>3}x{k:>2}x{n:>2}]  naive {naive_ns:8.0} ns   pack-each \
         {pack_each_ns:8.0} ns   cached-pack {cached_ns:8.0} ns ({:.2}x)",
        naive_ns / cached_ns
    );
    Json::obj([
        ("label", Json::from(label)),
        ("m", Json::from(m)),
        ("k", Json::from(k)),
        ("n", Json::from(n)),
        ("naive_ns", Json::from(naive_ns)),
        ("pack_each_ns", Json::from(pack_each_ns)),
        ("cached_pack_ns", Json::from(cached_ns)),
        ("speedup_cached_vs_naive", Json::from(naive_ns / cached_ns)),
    ])
}

fn main() {
    let args = CliArgs::from_env();
    banner(&format!(
        "GEMM v2 — blocked kernel + fused projections vs the per-head path (scale: {})",
        args.scale
    ));

    // ---- Part 1: kernel microbench on the LM's shapes --------------------
    // d = 16, dh = 8, ffn = 32, vocab ≈ 60 (the Large preset the serving
    // benches use); 96 rows ≈ batch-32 × 3 suffix positions.
    println!("kernel (gate: bitwise vs matmul_raw):");
    let kernels = Json::arr(vec![
        kernel_case("per-head projection", 96, 16, 8, 20_000),
        kernel_case("fused qkv panel", 96, 16, 48, 8_000),
        kernel_case("ffn w1", 96, 16, 32, 10_000),
        kernel_case("tied-embedding head", 32, 16, 60, 10_000),
    ]);

    // ---- Part 2: end-to-end batch-32 scoring, fused vs legacy ------------
    let ctx = ExperimentContext::new(DatasetProfile::MovieLens100K, args.scale, args.seed);
    let mut model = fit_delrec(&ctx, TeacherKind::SASRec, LmPreset::Large);
    let work = ScoringWorkload::build(&ctx, args.seed, 64);
    let n = work.len();
    let score_pass = |model: &_| work.score_pass(model, BATCH);

    // Correctness gate: fused, legacy, and the tape agree bitwise.
    let fused_scores = score_pass(&model);
    model.set_fused_projections(false);
    let legacy_scores = score_pass(&model);
    assert_eq!(
        score_bits(&fused_scores),
        score_bits(&legacy_scores),
        "correctness gate: fused path diverged from the per-head path"
    );
    model.set_inference_engine(false);
    let tape_scores = score_pass(&model);
    assert_eq!(
        score_bits(&fused_scores),
        score_bits(&tape_scores),
        "correctness gate: engine diverged from the tape"
    );
    model.set_inference_engine(true);
    println!("e2e gate: fused == legacy == tape over {n} requests (bitwise)");

    // Timed passes: each mode gets a warm-up (prefix cache, engine pool,
    // weight pack, title cache), then best-of-3 walls.
    let legacy_ns = best_wall_ns(|| {
        black_box(score_pass(&model));
    }); // still in legacy mode
    model.set_fused_projections(true);
    let fused_ns = best_wall_ns(|| {
        black_box(score_pass(&model));
    });
    let speedup = legacy_ns / fused_ns;
    let target = 1.3;
    println!(
        "batch-{BATCH} score_candidates_batch: legacy {:.2} ms → fused {:.2} ms = {speedup:.2}x \
         (target ≥ {target}x{})",
        legacy_ns / 1e6,
        fused_ns / 1e6,
        if speedup >= target { "" } else { " — MISSED" },
    );

    // ---- Part 3: attribution re-run on the fused path --------------------
    const PASSES: usize = 5;
    delrec_obs::set_enabled(true);
    delrec_obs::reset();
    let t0 = Instant::now();
    for _ in 0..PASSES {
        black_box(score_pass(&model));
    }
    let wall_ns = t0.elapsed().as_nanos() as f64;
    delrec_obs::set_enabled(false);
    let report = delrec_obs::profile();
    let flat = report.flat();
    let self_pct = |name: &str| -> f64 {
        let ns: u64 = flat
            .iter()
            .filter(|f| f.name == name)
            .map(|f| f.self_ns)
            .sum();
        100.0 * ns as f64 / wall_ns
    };
    let qkv_pct = self_pct("lm.qkv");
    let pack_pct = self_pct("lm.pack");
    let covered_ns: u64 = report.roots().iter().map(|r| r.total_ns).sum();
    let coverage_pct = 100.0 * covered_ns as f64 / wall_ns;
    let dominant = &flat[0];
    println!(
        "attribution: lm.qkv {qkv_pct:.1}% + lm.pack {pack_pct:.1}% of wall (was \
         {PRE_PR_QKV_PCT}% pre-PR); dominant span now {} ({:.1}%); coverage {coverage_pct:.1}%",
        dominant.name,
        100.0 * dominant.self_ns as f64 / wall_ns
    );
    assert!(
        qkv_pct + pack_pct < PRE_PR_QKV_PCT,
        "correctness of the attribution claim: projection share must drop"
    );

    let blob = Json::obj([
        ("experiment", Json::from("gemm")),
        ("scale", Json::from(args.scale.to_string())),
        ("dataset", Json::from(ctx.dataset.name.clone())),
        ("kernels", kernels),
        (
            "e2e",
            Json::obj([
                ("batch", Json::from(BATCH)),
                ("requests_per_pass", Json::from(n)),
                ("legacy_wall_ns", Json::from(legacy_ns)),
                ("fused_wall_ns", Json::from(fused_ns)),
                ("speedup", Json::from(speedup)),
                ("target", Json::from(target)),
                ("target_met", Json::Bool(speedup >= target)),
            ]),
        ),
        (
            "attribution",
            Json::obj([
                ("passes", Json::from(PASSES)),
                ("wall_ns", Json::from(wall_ns)),
                ("coverage_pct", Json::from(coverage_pct)),
                ("qkv_pct_of_wall", Json::from(qkv_pct)),
                ("pack_pct_of_wall", Json::from(pack_pct)),
                ("pre_pr_qkv_pct_of_wall", Json::from(PRE_PR_QKV_PCT)),
                (
                    "dominant",
                    Json::obj([
                        ("name", Json::from(dominant.name)),
                        (
                            "pct_of_wall",
                            Json::from(100.0 * dominant.self_ns as f64 / wall_ns),
                        ),
                    ]),
                ),
            ]),
        ),
    ]);
    write_json(&args.out, "BENCH_gemm", &blob).expect("write results");
}
