//! `batching` — throughput of the batch-first execution paths. Scores the
//! same example stream at batch sizes {1, 8, 32} for the batched teachers
//! (SASRec, GRU4Rec) and the MiniLm prompt scorer, reporting items/sec and
//! the speedup over the single-example path. Writes `BENCH_batching.json`.
//!
//! Expect the teachers to gain the most: their per-item forward is tiny, so
//! single-example scoring is dominated by per-tape overhead that batching
//! amortizes (GRU4Rec additionally turns T per-step mat-vecs into [B,d]
//! matmuls). The MiniLm prompt forward is compute-bound even at B = 1 on a
//! single core (~115-token prompts), so its curve is flatter.

use delrec_bench::{banner, write_json, CliArgs, ExperimentContext};
use delrec_core::{LmPreset, PromptBuilder, SoftMode, TeacherKind};
use delrec_data::synthetic::DatasetProfile;
use delrec_data::{CandidateSampler, ItemId, Split};
use delrec_eval::json::Json;
use delrec_eval::report::Table;
use delrec_lm::verbalizer;
use delrec_tensor::{Ctx, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::Range;
use std::time::Instant;

const BATCH_SIZES: [usize; 3] = [1, 8, 32];

/// Process `n` examples in chunks of `batch`, returning items/sec.
fn measure(n: usize, batch: usize, mut run_chunk: impl FnMut(Range<usize>)) -> f64 {
    let start = Instant::now();
    let mut i = 0;
    while i < n {
        let end = (i + batch).min(n);
        run_chunk(i..end);
        i = end;
    }
    n as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// Sweep the batch sizes over one scorer and emit (table cells, JSON series).
fn sweep(n: usize, mut run_chunk: impl FnMut(Range<usize>)) -> (Vec<String>, Vec<Json>) {
    let mut cells = Vec::new();
    let mut series = Vec::new();
    let mut base = f64::NAN;
    for &b in &BATCH_SIZES {
        let ips = measure(n, b, &mut run_chunk);
        if b == 1 {
            base = ips;
        }
        let speedup = ips / base;
        cells.push(format!("{ips:.1} ({speedup:.2}x)"));
        series.push(Json::obj([
            ("batch", Json::from(b)),
            ("items_per_sec", Json::from(ips)),
            ("speedup_vs_b1", Json::from(speedup)),
        ]));
    }
    (cells, series)
}

fn main() {
    let args = CliArgs::from_env();
    banner(&format!(
        "Batching — items/sec at B = {{1, 8, 32}} (scale: {})",
        args.scale
    ));
    let ctx = ExperimentContext::new(DatasetProfile::MovieLens100K, args.scale, args.seed);
    let examples = ctx.dataset.examples(Split::Test);
    let n = examples.len().min(64);
    assert!(n > 0, "no test examples");

    let mut table = Table::new(
        std::iter::once("Scorer".to_string())
            .chain(BATCH_SIZES.iter().map(|b| format!("B={b}")))
            .collect::<Vec<_>>(),
    );
    let mut scorers = Vec::new();

    // Teachers: one batched forward per chunk of prefixes.
    let prefixes: Vec<&[ItemId]> = examples[..n].iter().map(|e| e.prefix.as_slice()).collect();
    for kind in [TeacherKind::SASRec, TeacherKind::GRU4Rec] {
        let teacher = ctx.teacher(kind);
        let (cells, series) = sweep(n, |r| {
            let _ = teacher.scores_batch(&prefixes[r]);
        });
        table.row(
            std::iter::once(kind.name().to_string())
                .chain(cells)
                .collect::<Vec<_>>(),
        );
        scorers.push(Json::obj([
            ("scorer", Json::from(kind.name())),
            ("series", Json::arr(series)),
        ]));
    }

    // MiniLm scorer: one padded mask-logits forward + batched verbalizer
    // ranking per chunk of recommendation prompts.
    let lm = ctx.lm(LmPreset::Large);
    let pb = PromptBuilder::new(
        &ctx.pipeline.vocab,
        &ctx.pipeline.items,
        TeacherKind::SASRec.name(),
    );
    let sampler = CandidateSampler::new(ctx.dataset.num_items(), 15);
    let mut seqs = Vec::with_capacity(n);
    let mut mask_pos = Vec::with_capacity(n);
    let mut title_sets = Vec::with_capacity(n);
    for (i, ex) in examples[..n].iter().enumerate() {
        let cands = sampler.candidates(ex.target, args.seed, i);
        let take = ex.prefix.len().min(9);
        let prompt =
            pb.recommendation(&ex.prefix[ex.prefix.len() - take..], &cands, SoftMode::None);
        seqs.push(prompt.tokens);
        mask_pos.push(prompt.mask_pos);
        title_sets.push(ctx.pipeline.items.titles_of(&cands));
    }
    let (cells, series) = sweep(n, |r| {
        let tape = Tape::new();
        let c = Ctx::new(&tape, lm.store(), false);
        let mut rng = StdRng::seed_from_u64(0);
        let logits =
            lm.mask_logits_batch(&c, &seqs[r.clone()], None, &mask_pos[r.clone()], &mut rng);
        let logits = tape.get(logits);
        let refs: Vec<&[Vec<u32>]> = title_sets[r].iter().map(|t| t.as_slice()).collect();
        let _ = verbalizer::rank_candidates_batch(&logits, &refs);
    });
    table.row(
        std::iter::once("minilm".to_string())
            .chain(cells)
            .collect::<Vec<_>>(),
    );
    scorers.push(Json::obj([
        ("scorer", Json::from("minilm")),
        ("series", Json::arr(series)),
    ]));

    println!("{}", table.to_markdown());
    let blob = Json::obj([
        ("experiment", Json::from("batching")),
        ("scale", Json::from(args.scale.to_string())),
        ("dataset", Json::from(ctx.dataset.name.clone())),
        ("examples", Json::from(n)),
        ("scorers", Json::arr(scorers)),
    ]);
    write_json(&args.out, "BENCH_batching", &blob).expect("write results");
}
