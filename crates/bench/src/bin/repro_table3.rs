//! Reproduces **Table III** — Ablation Study I: what the *learned soft
//! prompts* contribute. Uses the SASRec backbone (as the paper does) and
//! compares `w/o SP`, `w MCP` (manual textual construction), and `w USP`
//! (untrained random soft prompts) against the full method.

use delrec_bench::methods::fit_delrec_variant;
use delrec_bench::{banner, write_json, CliArgs, ExperimentContext};
use delrec_core::{TeacherKind, Variant};
use delrec_data::synthetic::DatasetProfile;
use delrec_data::Split;
use delrec_eval::json::Json;
use delrec_eval::report::Table;
use delrec_eval::{evaluate, RankingReport};

fn metrics(r: &RankingReport) -> [f64; 5] {
    [r.hr(1), r.hr(5), r.ndcg(5), r.hr(10), r.ndcg(10)]
}

fn main() {
    let args = CliArgs::from_env();
    let variants: Vec<Variant> = Variant::TABLE3
        .into_iter()
        .chain([Variant::Default])
        .collect();
    let mut all = Vec::new();
    for profile in DatasetProfile::TABLE2 {
        if !args.includes(profile.name()) {
            continue;
        }
        let ctx = ExperimentContext::new(profile, args.scale, args.seed);
        banner(&format!(
            "Table III — {} (SASRec backbone, scale: {})",
            ctx.dataset.name, args.scale
        ));
        let eval_cfg = ctx.eval_config();
        let mut table = Table::new(["Variant", "HR@1", "HR@5", "NDCG@5", "HR@10", "NDCG@10"]);
        let mut rows = Vec::new();
        for &variant in &variants {
            let model = fit_delrec_variant(&ctx, TeacherKind::SASRec, variant);
            let report = evaluate(&model, &ctx.dataset, Split::Test, &eval_cfg);
            let m = metrics(&report);
            eprintln!(
                "[{}] {}: HR@1 {:.4}",
                ctx.dataset.name,
                variant.label(),
                m[0]
            );
            table.row(
                std::iter::once(variant.label().to_string())
                    .chain(m.iter().map(|v| format!("{v:.4}")))
                    .collect::<Vec<_>>(),
            );
            rows.push(Json::obj([
                ("variant", Json::from(variant.label())),
                ("hr1", Json::from(m[0])),
                ("hr5", Json::from(m[1])),
                ("ndcg5", Json::from(m[2])),
                ("hr10", Json::from(m[3])),
                ("ndcg10", Json::from(m[4])),
            ]));
        }
        println!("{}", table.to_markdown());
        all.push(Json::obj([
            ("dataset", Json::from(ctx.dataset.name.clone())),
            ("rows", Json::arr(rows)),
        ]));
    }
    let blob = Json::obj([
        ("experiment", Json::from("table3")),
        ("scale", Json::from(args.scale.to_string())),
        ("datasets", Json::arr(all)),
    ]);
    write_json(&args.out, "table3", &blob).expect("write results");
}
