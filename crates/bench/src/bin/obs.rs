//! `obs` — cost and payoff of the observability layer.
//!
//! Two measurements, written to `BENCH_obs.json`:
//!
//! 1. **Disabled-mode overhead.** Span profiling ships off. On the infer
//!    bench's hottest configuration (engine, exact math, prefix cache,
//!    B = 32) a disabled `span!` costs one relaxed atomic load and a
//!    never-taken branch, and an always-on counter costs one cached
//!    `OnceLock` load plus a relaxed add. Both per-call costs are measured
//!    in tight loops, multiplied by the per-pass instrumentation-event
//!    counts (taken from one *enabled* pass and a registry delta), and
//!    divided by the measured disabled-mode pass time. The quotient is an
//!    upper bound on what this PR added to the uninstrumented hot path —
//!    measured arithmetically rather than A/B because the uninstrumented
//!    binary no longer exists, and a sub-2% wall-clock difference between
//!    two separate runs drowns in scheduler noise anyway. **Gate: < 2%.**
//!
//! 2. **Batch-32 time attribution.** The first real profile of
//!    `score_candidates_batch` over a fitted DELRec: spans from all six
//!    layers (serve enters via its own integration tests; here the scoring
//!    stack below it) aggregated over several passes, printed as a tree,
//!    and reduced to a flat self-time ranking. The component ranking is the
//!    answer to the question BENCH_serve left open: what dominates the
//!    1.36x model-layer batching ceiling. **Gate: components must cover
//!    ≥ 90% of measured wall time.**

use delrec_bench::harness::{fit_delrec, PromptStream, ScoringWorkload};
use delrec_bench::{banner, write_json, CliArgs, ExperimentContext};
use delrec_core::{LmPreset, TeacherKind};
use delrec_data::synthetic::DatasetProfile;
use delrec_eval::json::Json;
use delrec_lm::verbalizer;
use delrec_obs::{FlatSpanStats, MetricValue, SpanStats};
use delrec_tensor::{InferCtx, MathMode};
use std::hint::black_box;
use std::time::Instant;

const BATCH: usize = 32;

/// Nanoseconds per call of `f`, measured over `iters` iterations.
fn per_call_ns(iters: u64, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Sum of every counter in the global registry (histogram/gauge entries are
/// cross-checked separately; counters are what the hot path increments).
fn counter_total() -> u64 {
    delrec_obs::global()
        .snapshot()
        .into_iter()
        .map(|(_, v)| match v {
            MetricValue::Counter(c) => c,
            _ => 0,
        })
        .sum()
}

fn span_to_json(s: &SpanStats) -> Json {
    Json::obj([
        ("name", Json::from(s.name)),
        ("count", Json::from(s.count as f64)),
        ("total_ns", Json::from(s.total_ns as f64)),
        ("self_ns", Json::from(s.self_ns() as f64)),
        (
            "children",
            Json::arr(s.children.iter().map(span_to_json).collect::<Vec<_>>()),
        ),
    ])
}

fn flat_to_json(f: &FlatSpanStats, wall_ns: f64) -> Json {
    Json::obj([
        ("name", Json::from(f.name)),
        ("count", Json::from(f.count as f64)),
        ("total_ns", Json::from(f.total_ns as f64)),
        ("self_ns", Json::from(f.self_ns as f64)),
        (
            "pct_of_wall",
            Json::from(100.0 * f.self_ns as f64 / wall_ns),
        ),
    ])
}

fn main() {
    let args = CliArgs::from_env();
    banner(&format!(
        "Observability — disabled-mode overhead and batch-{BATCH} attribution (scale: {})",
        args.scale
    ));
    let ctx = ExperimentContext::new(DatasetProfile::MovieLens100K, args.scale, args.seed);

    // ---- Part 1: disabled-mode overhead on the infer hot path -------------
    // The same prompt stream as BENCH_infer, hottest configuration only.
    let lm = ctx.lm(LmPreset::Large);
    let prompts = PromptStream::build(&ctx, TeacherKind::SASRec, args.seed, 64);
    let n = prompts.len();
    let ic = InferCtx::new(MathMode::Exact);
    let cache = lm.build_prefix_cache(&ic, prompts.shared_prefix(), None);
    let one_pass = || {
        let mut i = 0;
        while i < n {
            let end = (i + BATCH).min(n);
            let logits = lm.mask_logits_infer_batch(
                &ic,
                &prompts.seqs[i..end],
                None,
                &prompts.mask_pos[i..end],
                cache.as_ref(),
            );
            let refs = prompts.title_refs(i..end);
            black_box(verbalizer::rank_candidates_batch_mode(
                &logits,
                &refs,
                MathMode::Exact,
            ));
            i = end;
        }
    };

    // Per-call costs of the two instrumentation primitives.
    delrec_obs::set_enabled(false);
    let span_ns = per_call_ns(4_000_000, || {
        black_box(delrec_obs::span!("obs_bench.probe"));
    });
    let counter_ns = per_call_ns(4_000_000, || {
        delrec_obs::counter!("obs_bench.probe").incr();
    });

    // Events per pass: spans from one enabled pass, counters from a
    // registry delta around a disabled pass (counters are always on).
    delrec_obs::set_enabled(true);
    delrec_obs::reset();
    one_pass();
    let spans_per_pass = delrec_obs::profile().total_count();
    delrec_obs::set_enabled(false);
    let c0 = counter_total();
    one_pass();
    let counters_per_pass = counter_total() - c0;

    // Disabled-mode pass wall time, best of five (shortest pass has the
    // least scheduler interference).
    let mut pass_ns = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        one_pass();
        pass_ns = pass_ns.min(t.elapsed().as_nanos() as f64);
    }
    let overhead_ns = spans_per_pass as f64 * span_ns + counters_per_pass as f64 * counter_ns;
    let overhead_pct = 100.0 * overhead_ns / pass_ns;
    println!(
        "disabled overhead: {spans_per_pass} spans × {span_ns:.2} ns + \
         {counters_per_pass} counters × {counter_ns:.2} ns = {overhead_ns:.0} ns \
         over a {:.2} ms pass → {overhead_pct:.4}%",
        pass_ns / 1e6
    );
    assert!(
        overhead_pct < 2.0,
        "disabled-mode overhead {overhead_pct:.4}% breaches the 2% budget"
    );

    // ---- Part 2: batch-32 attribution over a fitted DELRec ----------------
    let model = fit_delrec(&ctx, TeacherKind::SASRec, LmPreset::Large);
    // Warm the caches (prefix K/V, title sets, engine pool) outside the
    // profiled window — steady-state serving is what the ceiling is about.
    let work = ScoringWorkload::build(&ctx, args.seed, 64);
    let score_pass = || {
        black_box(work.score_pass(&model, BATCH));
    };
    score_pass(); // warm-up, unprofiled

    const PASSES: usize = 5;
    delrec_obs::set_enabled(true);
    delrec_obs::reset();
    let t0 = Instant::now();
    for _ in 0..PASSES {
        score_pass();
    }
    let wall_ns = t0.elapsed().as_nanos() as f64;
    delrec_obs::set_enabled(false);
    let report = delrec_obs::profile();

    let covered_ns: u64 = report.roots().iter().map(|r| r.total_ns).sum();
    let coverage_pct = 100.0 * covered_ns as f64 / wall_ns;
    let flat = report.flat();
    let dominant = &flat[0];
    println!("{}", report.render_text());
    println!(
        "batch-{BATCH} scoring: {:.2} ms over {PASSES} passes, spans cover {coverage_pct:.1}%; \
         dominant component: {} ({:.1}% of wall)",
        wall_ns / 1e6,
        dominant.name,
        100.0 * dominant.self_ns as f64 / wall_ns
    );
    assert!(
        coverage_pct >= 90.0,
        "span coverage {coverage_pct:.1}% below the 90% attribution bar"
    );

    let blob = Json::obj([
        ("experiment", Json::from("obs")),
        ("scale", Json::from(args.scale.to_string())),
        ("dataset", Json::from(ctx.dataset.name.clone())),
        (
            "disabled_overhead",
            Json::obj([
                ("span_ns_per_call", Json::from(span_ns)),
                ("counter_ns_per_call", Json::from(counter_ns)),
                ("spans_per_pass", Json::from(spans_per_pass as f64)),
                ("counters_per_pass", Json::from(counters_per_pass as f64)),
                ("pass_wall_ns", Json::from(pass_ns)),
                ("overhead_pct", Json::from(overhead_pct)),
                ("budget_pct", Json::from(2.0)),
            ]),
        ),
        (
            "profile",
            Json::obj([
                ("batch", Json::from(BATCH)),
                ("passes", Json::from(PASSES)),
                ("requests_per_pass", Json::from(n)),
                ("wall_ns", Json::from(wall_ns)),
                ("covered_ns", Json::from(covered_ns as f64)),
                ("coverage_pct", Json::from(coverage_pct)),
                (
                    "dominant",
                    Json::obj([
                        ("name", Json::from(dominant.name)),
                        ("self_ns", Json::from(dominant.self_ns as f64)),
                        (
                            "pct_of_wall",
                            Json::from(100.0 * dominant.self_ns as f64 / wall_ns),
                        ),
                    ]),
                ),
                (
                    "components",
                    Json::arr(
                        flat.iter()
                            .map(|f| flat_to_json(f, wall_ns))
                            .collect::<Vec<_>>(),
                    ),
                ),
                (
                    "tree",
                    Json::arr(report.roots().iter().map(span_to_json).collect::<Vec<_>>()),
                ),
            ]),
        ),
    ]);
    write_json(&args.out, "BENCH_obs", &blob).expect("write results");
}
