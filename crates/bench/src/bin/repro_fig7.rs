//! Reproduces **Figure 7** — HR@1 as a function of the soft-prompt size `k`.
//! The paper sweeps k up to 120 and finds a plateau around k = 80 on its 3B
//! backbone; our MiniLM sweeps a proportionally smaller range.

use delrec_bench::{banner, write_json, CliArgs, ExperimentContext};
use delrec_core::{DelRec, LmPreset, TeacherKind};
use delrec_data::synthetic::DatasetProfile;
use delrec_data::Split;
use delrec_eval::evaluate;
use delrec_eval::json::Json;
use delrec_eval::report::{ascii_chart, Table};

const K_SWEEP: [usize; 5] = [4, 8, 16, 24, 32];

fn main() {
    let args = CliArgs::from_env();
    banner(&format!(
        "Figure 7 — HR@1 vs soft-prompt size k (scale: {})",
        args.scale
    ));
    let mut table = Table::new(
        std::iter::once("Dataset".to_string())
            .chain(K_SWEEP.iter().map(|k| format!("k={k}")))
            .collect::<Vec<_>>(),
    );
    let mut all = Vec::new();
    for profile in DatasetProfile::TABLE2 {
        if !args.includes(profile.name()) {
            continue;
        }
        let ctx = ExperimentContext::new(profile, args.scale, args.seed);
        let teacher = ctx.teacher(TeacherKind::SASRec);
        let mut cells = vec![ctx.dataset.name.clone()];
        let mut series = Vec::new();
        let mut points: Vec<(String, f64)> = Vec::new();
        for &k in &K_SWEEP {
            let mut cfg = ctx.delrec_config(TeacherKind::SASRec);
            cfg.k_soft = k;
            let model = DelRec::fit(
                &ctx.dataset,
                &ctx.pipeline,
                teacher.as_ref(),
                ctx.lm(LmPreset::Xl),
                &cfg,
            );
            let hr1 = evaluate(&model, &ctx.dataset, Split::Test, &ctx.eval_config()).hr(1);
            eprintln!("[{}] k={k}: HR@1 {hr1:.4}", ctx.dataset.name);
            cells.push(format!("{hr1:.4}"));
            points.push((format!("k={k}"), hr1));
            series.push(Json::obj([("k", Json::from(k)), ("hr1", Json::from(hr1))]));
        }
        table.row(cells);
        println!(
            "{}",
            ascii_chart(&format!("HR@1 on {}", ctx.dataset.name), &points, 40)
        );
        all.push(Json::obj([
            ("dataset", Json::from(ctx.dataset.name.clone())),
            ("series", Json::arr(series)),
        ]));
    }
    println!("{}", table.to_markdown());
    let blob = Json::obj([
        ("experiment", Json::from("fig7")),
        ("scale", Json::from(args.scale.to_string())),
        ("datasets", Json::arr(all)),
    ]);
    write_json(&args.out, "fig7", &blob).expect("write results");
}
